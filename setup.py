"""Setup shim for environments without the `wheel` package.

Enables `pip install -e . --no-build-isolation` (legacy editable path)
on offline machines; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
