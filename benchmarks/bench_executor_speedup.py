"""Executor backends — real wall-clock speedup on the Table 1 workload.

Unlike the other benchmarks, which validate *simulated* cluster time,
this one measures the real time this process spends running a Table-1
style G-means workload under each task-execution backend. It asserts
two things:

* equivalence — every backend produces byte-identical results
  (centers, k, iterations, simulated time);
* speedup — ``processes`` with 4 workers beats ``serial`` by >= 2x on
  a machine with >= 4 CPUs. On smaller machines (CI runners are often
  1-2 cores) the assertion is skipped — a process pool cannot
  outrun the serial loop without cores to run on — but the measured
  ratio is still recorded in ``BENCH_executors.json`` for the record.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import paper_family_dataset
from repro.evaluation.benchjson import write_bench_json
from repro.evaluation.experiments import EXPERIMENT_ALPHA
from repro.evaluation.harness import build_world
from repro.mapreduce.executors import shutdown_shared_pools

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executors.json"

K_REAL = 16
N_POINTS = 60_000
SEED = 3
NUM_WORKERS = 4


def run_once(backend: str) -> tuple[dict, float]:
    """One Table-1 G-means run; returns (result signature, wall seconds)."""
    mixture = paper_family_dataset(n_clusters=K_REAL, n_points=N_POINTS, rng=SEED)
    world = build_world(
        mixture,
        nodes=4,
        target_splits=16,
        seed=SEED,
        executor=backend,
        num_workers=NUM_WORKERS,
    )
    config = MRGMeansConfig(seed=SEED, alpha=EXPERIMENT_ALPHA)
    start = time.perf_counter()
    result = MRGMeans(world.runtime, config).fit(world.dataset)
    elapsed = time.perf_counter() - start
    signature = {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "completed": result.completed,
        "centers_sha": result.centers.tobytes().hex()[:64],
        "simulated_seconds": result.simulated_seconds,
    }
    return signature, elapsed


def test_executor_speedup(report):
    measurements = {}
    signatures = {}
    for backend in ("serial", "threads", "processes"):
        if backend == "processes":
            # Pay pool start-up before the measured run, as a long-lived
            # driver would (pools are shared process-wide).
            shutdown_shared_pools()
            _, _ = run_once(backend)
        signatures[backend], measurements[backend] = run_once(backend)

    assert signatures["threads"] == signatures["serial"]
    assert signatures["processes"] == signatures["serial"]

    speedup = measurements["serial"] / measurements["processes"]
    cpus = os.cpu_count() or 1
    write_bench_json(
        BENCH_JSON,
        "executor_speedup_table1",
        workload={
            "algorithm": "gmeans_mr",
            "clusters": K_REAL,
            "n_points": N_POINTS,
            "dimensions": 10,
            "seed": SEED,
            "num_workers": NUM_WORKERS,
        },
        metrics={
            "wall_seconds": {k: round(v, 3) for k, v in measurements.items()},
            "speedup_processes_vs_serial": round(speedup, 3),
            "results_byte_identical": True,
        },
    )

    lines = ["executor backends — wall-clock on the Table 1 workload", ""]
    for backend, seconds in measurements.items():
        lines.append(f"  {backend:<10} {seconds:8.2f} s")
    lines.append("")
    lines.append(
        f"  processes vs serial: {speedup:.2f}x "
        f"({NUM_WORKERS} workers on {cpus} CPUs)"
    )
    report("executor_speedup", "\n".join(lines))

    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {NUM_WORKERS} workers on "
            f"{cpus} CPUs, measured {speedup:.2f}x"
        )
