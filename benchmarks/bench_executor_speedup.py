"""Executor backends — real wall-clock speedup on the Table 1 workload.

Unlike the other benchmarks, which validate *simulated* cluster time,
this one measures the real time this process spends running a Table-1
style G-means workload under each (executor backend × data plane)
cell. It asserts two things:

* equivalence — every cell produces byte-identical results (centers,
  k, iterations, simulated time), pickled or zero-copy;
* speedup — ``processes`` with 4 workers over the shared-memory data
  plane beats ``serial`` by >= 2x. The assertion needs real cores: on
  machines with fewer CPUs than workers the test is *skipped* after
  recording (a process pool cannot outrun the serial loop without
  cores to run on, and silently recording a sub-1x ratio as a pass
  would be misleading) — ``BENCH_executors.json`` still archives the
  measured ratios and each cell's data-plane mode for the record.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import paper_family_dataset
from repro.evaluation.benchjson import write_bench_json
from repro.evaluation.experiments import EXPERIMENT_ALPHA
from repro.evaluation.harness import build_world
from repro.mapreduce.executors import shutdown_shared_pools

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executors.json"

K_REAL = 16
N_POINTS = 60_000
SEED = 3
NUM_WORKERS = 4

#: The measured matrix: serial/pickled is the reference; threads and
#: processes run the zero-copy plane (their speedup case); processes
#: is also measured with pickled splits to isolate the plane's win.
CELLS = (
    ("serial", "pickled"),
    ("threads", "shared"),
    ("processes", "pickled"),
    ("processes", "shared"),
)


def run_once(backend: str, data_plane: str) -> tuple[dict, float]:
    """One Table-1 G-means run; returns (result signature, wall seconds)."""
    mixture = paper_family_dataset(n_clusters=K_REAL, n_points=N_POINTS, rng=SEED)
    world = build_world(
        mixture,
        nodes=4,
        target_splits=16,
        seed=SEED,
        executor=backend,
        num_workers=NUM_WORKERS,
        data_plane=data_plane,
    )
    config = MRGMeansConfig(seed=SEED, alpha=EXPERIMENT_ALPHA)
    start = time.perf_counter()
    result = MRGMeans(world.runtime, config).fit(world.dataset)
    elapsed = time.perf_counter() - start
    world.dfs.release()
    signature = {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "completed": result.completed,
        "centers_sha": result.centers.tobytes().hex()[:64],
        "simulated_seconds": result.simulated_seconds,
    }
    return signature, elapsed


def test_executor_speedup(report):
    measurements = {}
    signatures = {}
    for backend, plane in CELLS:
        if backend == "processes":
            # Pay pool start-up before the measured run, as a long-lived
            # driver would (pools are shared process-wide).
            shutdown_shared_pools()
            _, _ = run_once(backend, plane)
        cell = f"{backend}/{plane}"
        signatures[cell], measurements[cell] = run_once(backend, plane)

    reference = signatures["serial/pickled"]
    for cell, signature in signatures.items():
        assert signature == reference, cell

    serial_s = measurements["serial/pickled"]
    speedup = serial_s / measurements["processes/shared"]
    plane_gain = measurements["processes/pickled"] / measurements["processes/shared"]
    cpus = os.cpu_count() or 1
    write_bench_json(
        BENCH_JSON,
        "executor_speedup_table1",
        workload={
            "algorithm": "gmeans_mr",
            "clusters": K_REAL,
            "n_points": N_POINTS,
            "dimensions": 10,
            "seed": SEED,
            "num_workers": NUM_WORKERS,
        },
        metrics={
            "wall_seconds": {k: round(v, 3) for k, v in measurements.items()},
            "data_plane": {f"{b}/{p}": p for b, p in CELLS},
            "speedup_processes_vs_serial": round(speedup, 3),
            "shared_vs_pickled_processes": round(plane_gain, 3),
            "speedup_asserted": cpus >= NUM_WORKERS,
            "results_byte_identical": True,
        },
    )

    lines = ["executor backends — wall-clock on the Table 1 workload", ""]
    for cell, seconds in measurements.items():
        lines.append(f"  {cell:<20} {seconds:8.2f} s")
    lines.append("")
    lines.append(
        f"  processes/shared vs serial: {speedup:.2f}x "
        f"({NUM_WORKERS} workers on {cpus} CPUs)"
    )
    lines.append(f"  shared vs pickled (processes): {plane_gain:.2f}x")
    report("executor_speedup", "\n".join(lines))

    if cpus < NUM_WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {NUM_WORKERS} CPUs, have {cpus} "
            "(ratios recorded in BENCH_executors.json)"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup with {NUM_WORKERS} workers on "
        f"{cpus} CPUs, measured {speedup:.2f}x"
    )
