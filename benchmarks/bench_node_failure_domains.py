"""Node failure domains — capacity-proportional degradation and the
Figure-2-predicted strategy flip.

Not a paper table: the EDBT testbed never lost a node mid-run. But the
paper's cost model makes two testable predictions about what *should*
happen when nodes die:

* Makespan degrades in proportion to lost slot capacity — the
  slot-bound phases are LPT schedules over ``live_slots``, so halving
  the schedulable nodes roughly doubles the slot-bound time while the
  algorithmic work (counters, k-trajectory) is byte-identical.
* The §3.2 mapper-vs-reducer decision flips at the capacity threshold
  where the live reduce-slot pool drops below the number of clusters
  to test — but only when Figure 2's heap model (64 bytes per
  buffered projection) says the biggest cluster fits a reducer heap.
"""

import pytest

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.core.strategy import decide_test_strategy
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.nodes import ClusterState
from repro.observability.diffing import summarize_replay
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records
from repro.mapreduce.runtime import MapReduceRuntime

NODES = 4
DEAD_LEVELS = (0, 1, 2)


def run_with_dead_nodes(dead):
    """One seeded G-means run with ``dead`` nodes pre-failed.

    The cluster state is degraded *deterministically* (no fault model,
    no RNG) so every capacity level performs byte-identical algorithmic
    work and the only variable is the surviving slot pool.
    """
    mixture = generate_gaussian_mixture(
        n_points=20_000, n_clusters=8, dimensions=4, rng=13
    )
    dfs = InMemoryDFS(split_size_bytes=16 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    config = ClusterConfig(nodes=NODES)
    state = ClusterState(config)
    for node_id in range(dead):
        state.fail(node_id)
    sink = InMemoryJournalSink()
    runtime = MapReduceRuntime(
        dfs,
        cluster=config,
        rng=21,
        cluster_state=state,
        journal=Journal(sink),
    )
    result = MRGMeans(runtime, MRGMeansConfig(seed=9)).fit(dataset)
    return result, summarize_replay(replay_records(sink.records))


def test_makespan_degrades_with_lost_slot_capacity(report):
    outcomes = {dead: run_with_dead_nodes(dead) for dead in DEAD_LEVELS}

    # Identical algorithmic work at every capacity level.
    baseline_result, baseline = outcomes[0]
    for dead in DEAD_LEVELS[1:]:
        result, summary = outcomes[dead]
        assert result.k_found == baseline_result.k_found
        assert result.centers.tobytes() == baseline_result.centers.tobytes()
        assert summary.counters == baseline.counters
        assert summary.k_trajectory == baseline.k_trajectory

    # Time degrades monotonically as capacity shrinks...
    times = [outcomes[d][1].simulated_seconds for d in DEAD_LEVELS]
    assert all(a < b for a, b in zip(times, times[1:]))

    # ...and the slot-bound map phase degrades in proportion to the
    # lost capacity: LPT over half the slots takes about twice as long.
    lines = [
        "== node failure domains: capacity-proportional degradation ==",
        f"(nodes={NODES}, byte-identical work at every level)",
        "",
        "dead  live slots  map s     total s   map ratio  slot ratio",
    ]
    base_map = baseline.phase_seconds["map_seconds"]
    for dead in DEAD_LEVELS:
        _result, summary = outcomes[dead]
        live = NODES - dead
        slot_ratio = NODES / live
        map_ratio = summary.phase_seconds["map_seconds"] / base_map
        lines.append(
            f"{dead:>4}  {live * 8:>10}  {summary.phase_seconds['map_seconds']:>8.2f}"
            f"  {summary.simulated_seconds:>8.2f}  {map_ratio:>9.2f}"
            f"  {slot_ratio:>10.2f}"
        )
        assert map_ratio == pytest.approx(slot_ratio, rel=0.25)
    report("node_failure_domains", "\n".join(lines))


def test_strategy_flips_at_heap_predicted_capacity_threshold():
    """Sweep dead nodes: the mapper→reducer flip lands exactly where
    live reduce slots drop below the test count — heap permitting."""
    config = ClusterConfig(nodes=4, reduce_slots_per_node=2, task_heap_mb=64)
    clusters_to_test = 5
    fits_heap = 100_000  # 100k pts x 64 B = ~6.1 MB, well under heap
    exceeds_heap = 2_000_000  # ~122 MB, over the 64 MB usable heap

    flips = []
    for dead in range(4):
        state = ClusterState(config)
        for node_id in range(dead):
            state.fail(node_id)
        decision = decide_test_strategy(
            clusters_to_test, fits_heap, state
        )
        flips.append((state.total_reduce_slots, decision.strategy))
        # The flip is exactly the capacity threshold: reducer-side as
        # soon as parallelism runs short, mapper-side while it doesn't.
        expected = (
            "reducer"
            if clusters_to_test > state.total_reduce_slots
            else "mapper"
        )
        assert decision.strategy == expected
        assert decision.heap_fits

    # 8 and 6 live slots hold the mapper-side line; 4 and 2 flip.
    assert flips == [
        (8, "mapper"),
        (6, "mapper"),
        (4, "reducer"),
        (2, "reducer"),
    ]

    # Figure 2's heap model gates the flip: the same capacity squeeze
    # with a cluster too big for a reducer heap must NOT flip.
    state = ClusterState(config)
    for node_id in range(3):
        state.fail(node_id)
    decision = decide_test_strategy(clusters_to_test, exceeds_heap, state)
    assert not decision.heap_fits
    assert decision.predicted_heap_bytes == exceeds_heap * 64
    assert decision.predicted_heap_bytes > config.usable_heap_bytes
    assert decision.strategy == "mapper"
