"""Figure 4 — the local-minimum tableau on the 10-cluster demo.

Paper: G-means finds 14 centers covering all 10 clusters; multi-k-means
at exactly k=10 places two centers in one cluster and none in another,
ending with a visibly worse clustering.
"""

from repro.evaluation import experiments


def test_fig4_local_minimum(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig4_local_minimum, rounds=1, iterations=1
    )
    report("fig4_local_minimum", result.text)

    # G-means covers every true cluster (possibly with extra centers).
    gmeans_row = result.rows[0]
    assert gmeans_row["uncovered_true_clusters"] == 0
    assert 10 <= result.data["gmeans_k"] <= 16
    # Fixed-k random-init k-means gets stuck in a local minimum in a
    # majority of seeds (the paper shows one such run).
    assert result.data["stuck_runs"] >= result.data["total_runs"] // 2
    # And its average quality is worse than G-means'.
    assert result.data["gmeans_distance"] < result.data["baseline_mean_distance"]
