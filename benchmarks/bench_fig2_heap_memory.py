"""Figure 2 — reducer heap required by TestClusters.

Paper: jobs crash with "Java heap space" below a frontier that fits
``heap_MB = 64 * millions_of_points - 42.67`` — i.e. 64 bytes per
buffered projection.
"""

import pytest

from repro.evaluation import experiments
from repro.evaluation.paper_values import FIG2_SLOPE_BYTES_PER_POINT


def test_fig2_heap_frontier(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig2_heap_memory, rounds=1, iterations=1
    )
    report("fig2_heap_memory", result.text)

    slope = result.data["slope_bytes_per_point"]
    # Paper: 64 bytes/point. The 1-MB heap grid quantises the fit a bit.
    assert slope == pytest.approx(FIG2_SLOPE_BYTES_PER_POINT, rel=0.15)
    # The frontier is monotone: more points need at least as much heap.
    min_heap = result.data["min_heap_by_n"]
    sizes = sorted(min_heap)
    assert all(
        min_heap[a] <= min_heap[b] for a, b in zip(sizes, sizes[1:])
    )
    # Both outcomes were actually observed (the figure has both marks).
    outcomes = {row["succeeded"] for row in result.rows}
    assert outcomes == {True, False}
