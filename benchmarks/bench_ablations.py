"""Ablations of the design choices DESIGN.md calls out.

These are not paper tables — they isolate the decisions Section 3 of
the paper makes (or leaves open) and measure each one's effect:
k-means passes per round, the hybrid test strategy, mapper-vote
combination, the membership anchor, skew-aware partitioning, initial
center selection, and Spark-style input caching.
"""

import numpy as np
import pytest

from repro.evaluation import ablations


def test_ablation_kmeans_iterations(benchmark, report):
    """Paper: "only two k-means iterations are sufficient" — quality is
    flat from 2 passes on, while cost keeps climbing."""
    result = benchmark.pedantic(
        ablations.ablation_kmeans_iterations, rounds=1, iterations=1
    )
    report("ablation_kmeans_iterations", result.text)
    by_iters = {r["kmeans_iterations"]: r for r in result.rows}
    # Quality: no meaningful gain beyond 2 passes.
    assert by_iters[2]["avg_distance"] <= by_iters[1]["avg_distance"] + 0.05
    assert abs(by_iters[4]["avg_distance"] - by_iters[2]["avg_distance"]) < 0.1
    # Cost: monotone in passes.
    times = [r["time_seconds"] for r in result.rows]
    assert all(a < b for a, b in zip(times, times[1:]))


def test_ablation_test_strategy(benchmark, report):
    result = benchmark.pedantic(
        ablations.ablation_test_strategy, rounds=1, iterations=1
    )
    report("ablation_test_strategy", result.text)
    by_strategy = {r["strategy"]: r for r in result.rows}
    # At small k, auto follows the paper's rule and stays mapper-side.
    assert by_strategy["auto"]["used"] == "mapper"
    # Reducer-side full-sample tests have more power -> split more.
    assert by_strategy["reducer"]["k_found"] > by_strategy["mapper"]["k_found"]


def test_ablation_vote_rules(benchmark, report):
    result = benchmark.pedantic(
        ablations.ablation_vote_rules, rounds=1, iterations=1
    )
    report("ablation_vote_rules", result.text)
    by_rule = {r["vote_rule"]: r for r in result.rows}
    # Eagerness ordering: any_reject >= weighted_majority >= all_reject.
    assert (
        by_rule["any_reject"]["k_found"]
        >= by_rule["weighted_majority"]["k_found"]
        >= by_rule["all_reject"]["k_found"]
    )


def test_ablation_anchor_modes(benchmark, report):
    """The paper-literal previous-center anchor freezes multi-cluster
    aggregates more often than the centroid anchor."""
    result = benchmark.pedantic(
        ablations.ablation_anchor_modes, rounds=1, iterations=1,
        kwargs={"seed": 0},
    )
    report("ablation_anchor_modes", result.text)
    by_variant = {r["variant"]: r for r in result.rows}
    literal = by_variant["paper-literal"]
    centroid = by_variant["centroid (default)"]
    assert centroid["coverage_holes"] <= literal["coverage_holes"]
    assert centroid["mean_avg_distance"] <= literal["mean_avg_distance"] + 0.1


def test_ablation_balanced_partitioning(benchmark, report):
    result = benchmark.pedantic(
        ablations.ablation_balanced_partitioning, rounds=1, iterations=1
    )
    report("ablation_balanced_partitioning", result.text)
    by_mode = {r["partitioner"]: r for r in result.rows}
    assert (
        by_mode["balanced"]["reduce_imbalance"]
        <= by_mode["hash"]["reduce_imbalance"]
    )
    assert (
        by_mode["balanced"]["reduce_seconds"]
        <= by_mode["hash"]["reduce_seconds"] + 1e-9
    )


def test_ablation_init_methods(benchmark, report):
    result = benchmark.pedantic(
        ablations.ablation_init_methods, rounds=1, iterations=1
    )
    report("ablation_init_methods", result.text)
    by_init = {r["init"]: r for r in result.rows}
    # Careful seeding covers every true cluster; random seeding misses
    # some and pays dearly in distance.
    assert by_init["kmeans++"]["true_clusters_covered"] == 16
    assert by_init["kmeans||"]["true_clusters_covered"] == 16
    assert by_init["random"]["avg_distance"] > by_init["kmeans++"]["avg_distance"]
    assert by_init["kmeans||"]["avg_distance"] == pytest.approx(
        by_init["kmeans++"]["avg_distance"], rel=0.25
    )


def test_ablation_cache_input(benchmark, report):
    result = benchmark.pedantic(
        ablations.ablation_cache_input, rounds=1, iterations=1
    )
    report("ablation_cache_input", result.text)
    cold, warm = result.rows
    assert warm["disk_reads"] == 1
    assert warm["cached_reads"] == cold["disk_reads"] - 1
    assert warm["time_seconds"] < cold["time_seconds"] * 0.6
    assert warm["k_found"] == cold["k_found"]


def test_ablation_normality_tests(benchmark, report):
    """Swapping the split test: all three find a sensible clustering;
    Anderson-Darling (the G-means choice) is at least as accurate as
    the cheap moment test."""
    result = benchmark.pedantic(
        ablations.ablation_normality_tests, rounds=1, iterations=1
    )
    report("ablation_normality_tests", result.text)
    by_test = {r["normality_test"]: r for r in result.rows}
    for r in result.rows:
        assert r["ratio"] >= 0.8
        assert r["ari"] > 0.6
    assert by_test["anderson"]["ari"] >= by_test["jarque_bera"]["ari"] - 0.05


def test_ablation_cluster_shapes(benchmark, report):
    """Robustness: compact non-Gaussian shapes are handled; uniform
    background noise explodes k but shatters cleanly (purity ~1)."""
    result = benchmark.pedantic(
        ablations.ablation_cluster_shapes, rounds=1, iterations=1
    )
    report("ablation_cluster_shapes", result.text)
    by_dataset = {r["dataset"]: r for r in result.rows}
    for label in ("gaussian (paper)", "anisotropic (cond 8)", "uniform balls"):
        assert by_dataset[label]["ari"] > 0.9
    noisy = by_dataset["gaussian + 5% noise"]
    assert noisy["ratio"] > 2.0  # k explodes on the noise field
    assert noisy["purity"] > 0.95  # ...but real clusters stay pure


def test_ablation_algorithms(benchmark, report):
    """MR G-means vs MR X-means vs fixed-k k-means on one dataset."""
    result = benchmark.pedantic(
        ablations.ablation_algorithms, rounds=1, iterations=1
    )
    report("ablation_algorithms", result.text)
    by_alg = {r["algorithm"]: r for r in result.rows}
    gmeans = by_alg["MR G-means"]
    xmeans = by_alg["MR X-means"]
    # Both k-finders land near the truth (k_real = 16) with good ARI.
    assert 12 <= gmeans["k_found"] <= 28
    assert 12 <= xmeans["k_found"] <= 28
    assert gmeans["ari"] > 0.8
    assert xmeans["ari"] > 0.8
    # X-means' per-iteration pipeline is longer (children + BIC jobs).
    assert xmeans["dataset_reads"] > gmeans["dataset_reads"]
