"""What-if re-scheduler accuracy — predicted vs. actually re-run.

Records one seeded G-means run (4 nodes, combiner on), asks
``whatif_replay`` to predict the makespan under a grid of scenarios
(2 and 8 nodes, combiner on and off), then *actually re-runs* the
workload under each scenario and compares.

The workload pins the job chain so the comparison is apples-to-apples:

* ``strategy="mapper"`` and ``num_reduce_tasks=16`` keep the G-means
  split trajectory (and therefore the job list) identical across node
  counts — capacity-following reduce sizing would otherwise perturb
  the iteration count;
* ``vectorized=False`` uses the per-record mapper path, where the
  combiner genuinely collapses records (the vectorised mappers
  pre-sum per split, making the combiner a no-op);
* a slow network (``network_mbps_per_node=0.25``) makes shuffle a
  material slice of the makespan, so the combiner axis is a real test.

The what-if model is a calibrated re-scheduler over the journal, not a
fresh simulation — but on an invariant job chain its node scaling and
counter-driven combiner growth reproduce the cost model exactly, so
the accuracy bound here is tight. The measurement nests into
``BENCH_observability.json`` at the repo root.
"""

from __future__ import annotations

import pathlib

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.benchjson import merge_bench_json
from repro.evaluation.harness import build_world
from repro.mapreduce.costmodel import CostParameters
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records
from repro.observability.whatif import Scenario, whatif_replay

BENCH_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

SEED = 11
N_POINTS = 6_000
K_REAL = 4
DIMENSIONS = 4
BASE_NODES = 4
COST = CostParameters(
    seconds_per_coordinate_op=1e-6,
    task_startup_seconds=0.05,
    job_startup_seconds=0.3,
    network_mbps_per_node=0.25,
)
#: (nodes, combiner) grid, predicted from the (4, True) base run.
GRID = [(2, True), (8, True), (2, False), (8, False)]
MAX_MEDIAN_REL_ERROR = 0.02
MAX_REL_ERROR = 0.05


def run_once(nodes: int, combiner: bool):
    """One journalled G-means run; returns (result, replay)."""
    mixture = generate_gaussian_mixture(
        n_points=N_POINTS, n_clusters=K_REAL, dimensions=DIMENSIONS, rng=SEED
    )
    sink = InMemoryJournalSink()
    world = build_world(
        mixture,
        nodes=nodes,
        target_splits=16,
        seed=SEED,
        cost=COST,
        journal=Journal(sink),
    )
    config = MRGMeansConfig(
        seed=SEED,
        use_combiner=combiner,
        strategy="mapper",
        vectorized=False,
        num_reduce_tasks=16,
    )
    result = MRGMeans(world.runtime, config).fit(world.dataset)
    return result, replay_records(sink.records)


def test_whatif_accuracy(report):
    base_result, base_replay = run_once(BASE_NODES, True)
    recorded = base_replay.total_simulated_seconds()

    rows = []
    for nodes, combiner in GRID:
        scenario = Scenario(
            nodes=None if nodes == BASE_NODES else nodes,
            combiner=None if combiner else False,
        )
        prediction = whatif_replay(
            base_replay,
            scenario,
            task_startup_seconds=COST.task_startup_seconds,
        )
        actual_result, actual_replay = run_once(nodes, combiner)
        assert actual_result.k_found == base_result.k_found, (
            "scenario re-run found a different k — job chain is not "
            "invariant, the comparison is meaningless"
        )
        actual = actual_replay.total_simulated_seconds()
        rel_err = abs(prediction.predicted_total - actual) / actual
        rows.append(
            {
                "nodes": nodes,
                "combiner": combiner,
                "predicted_seconds": round(prediction.predicted_total, 4),
                "actual_seconds": round(actual, 4),
                "rel_error": round(rel_err, 6),
            }
        )

    errors = sorted(row["rel_error"] for row in rows)
    median_err = (errors[1] + errors[2]) / 2  # len(GRID) == 4
    max_err = errors[-1]

    merge_bench_json(
        BENCH_JSON,
        "whatif_accuracy_gmeans",
        workload={
            "algorithm": "gmeans_mr",
            "clusters": K_REAL,
            "n_points": N_POINTS,
            "dimensions": DIMENSIONS,
            "seed": SEED,
            "base_nodes": BASE_NODES,
            "grid": [list(cell) for cell in GRID],
            "strategy": "mapper",
            "vectorized": False,
            "num_reduce_tasks": 16,
            "network_mbps_per_node": COST.network_mbps_per_node,
        },
        metrics={
            "recorded_seconds": round(recorded, 4),
            "scenarios": rows,
            "median_rel_error": round(median_err, 6),
            "max_rel_error": round(max_err, 6),
            "max_median_rel_error_bound": MAX_MEDIAN_REL_ERROR,
            "max_rel_error_bound": MAX_REL_ERROR,
        },
    )

    lines = [
        "what-if accuracy — predicted vs. re-run makespan",
        "",
        f"  base: {BASE_NODES} nodes, combiner on, "
        f"{recorded:.3f} simulated s",
        "",
        "  nodes  combiner  predicted    actual   rel err",
    ]
    for row in rows:
        lines.append(
            f"  {row['nodes']:5d}  {str(row['combiner']):8s}"
            f"  {row['predicted_seconds']:9.3f}"
            f"  {row['actual_seconds']:8.3f}"
            f"  {row['rel_error']:8.5f}"
        )
    lines += [
        "",
        f"  median rel error: {median_err:.6f}"
        f"  (budget {MAX_MEDIAN_REL_ERROR})",
        f"  max rel error:    {max_err:.6f}  (budget {MAX_REL_ERROR})",
    ]
    report("whatif_accuracy", "\n".join(lines))

    assert median_err < MAX_MEDIAN_REL_ERROR, (
        f"median what-if error {median_err:.4f} exceeds "
        f"{MAX_MEDIAN_REL_ERROR}"
    )
    assert max_err < MAX_REL_ERROR, (
        f"worst what-if error {max_err:.4f} exceeds {MAX_REL_ERROR}"
    )
