"""Table 4 / Figure 5 — node scaling (scaled).

Paper (100M points, 1000 clusters): 798 min on 4 nodes, 447 on 8, 323
on 12 — speedups 1.79x and 2.47x against ideals of 2x and 3x, i.e.
near-linear with the usual fixed-cost droop.
"""

import pytest

from repro.evaluation import experiments
from repro.evaluation.paper_values import TABLE4


def test_table4_node_scaling(benchmark, report):
    result = benchmark.pedantic(
        experiments.table4_node_scaling, rounds=1, iterations=1
    )
    report("table4_node_scaling", result.text)

    rows = result.rows
    # Identical algorithmic work on every topology (the paper: "All
    # tests completed after 13 iterations").
    assert len({r["k_found"] for r in rows}) == 1
    assert len({r["iterations"] for r in rows}) == 1
    # Time decreases monotonically with nodes.
    times = [r["time_seconds"] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    # Speedups land near the paper's measured efficiencies.
    paper_speedups = [
        TABLE4["time_minutes"][0] / t for t in TABLE4["time_minutes"]
    ]
    for row, paper in zip(rows, paper_speedups):
        assert row["speedup"] == pytest.approx(paper, rel=0.25)
    # Sub-ideal but better than half of ideal (near-linear).
    for row in rows[1:]:
        assert 0.5 * row["ideal_speedup"] < row["speedup"] < row["ideal_speedup"]
