"""Table 3 — clustering quality at equal k.

Paper: average point-to-center distance of G-means beats multi-k-means
run at the very same k for 10 iterations, by ~10% — progressive center
placement dodges the local minima random initialisation falls into.
"""

import numpy as np

from repro.evaluation import experiments


def test_table3_quality_advantage(benchmark, report):
    result = benchmark.pedantic(
        experiments.table3_quality, rounds=1, iterations=1
    )
    report("table3_quality", result.text)

    rows = result.rows
    # G-means matches or beats the randomly-initialised baseline on
    # every dataset (ties happen when the baseline dodges all local
    # minima at a given seed).
    for r in rows:
        assert r["gmeans"] <= r["multi_kmeans"] * 1.01
    # Mean advantage in the paper's direction and band (~10%, allow 2-25%).
    mean_advantage = result.data["mean_advantage"]
    assert 0.02 <= mean_advantage <= 0.25
    # And G-means is at worst marginally behind the k-means++ baseline
    # (the better-init fix the paper's related work points to).
    for r in rows:
        assert r["gmeans"] <= r["multi_kmeans_pp"] * 1.05
