"""Figure 3 — running time of G-means vs multi-k-means.

Paper: G-means' *total* running time grows gently with k while a
*single* multi-k-means iteration grows quadratically; the curves cross
around k ~ 100-150, beyond which one baseline iteration already costs
more than the entire G-means run.
"""

from repro.evaluation import experiments


def test_fig3_running_time_crossover(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig3_crossover, rounds=1, iterations=1
    )
    report("fig3_crossover", result.text)

    rows = result.rows
    # The crossover exists and sits in the tens-to-couple-hundred range
    # (absolute k units — directly comparable to the paper's plot).
    crossover = result.data["crossover_k"]
    assert crossover is not None
    assert 16 <= crossover <= 256
    # Beyond the crossover multi-k-means runs away: at the largest k one
    # baseline iteration costs several times the whole G-means run
    # (paper at k=400: 10252 s vs ~2300 s).
    last = rows[-1]
    assert last["multi"] > 3.0 * last["gmeans"]
    # Below the crossover G-means is the more expensive of the two.
    first = rows[0]
    assert first["gmeans"] > first["multi"]
