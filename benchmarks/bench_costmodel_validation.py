"""Section 4 — the closed-form cost model against runtime counters.

Paper: G-means needs O(4 log2 k) dataset reads, O(8nk) distance
computations and ~2k Anderson-Darling tests; multi-k-means needs
O(n k^2) distances per iteration. The simulator counts every one of
those quantities, so the closed forms can be validated directly.
"""

import pytest

from repro.evaluation import experiments


def test_costmodel_predictions_match_counters(benchmark, report):
    result = benchmark.pedantic(
        experiments.costmodel_validation, rounds=1, iterations=1
    )
    report("costmodel_validation", result.text)

    by_name = {r["quantity"]: r for r in result.rows}
    # Dataset reads are exact: jobs/iteration x iterations.
    assert by_name["G-means dataset reads"]["ratio"] == pytest.approx(1.0)
    assert by_name["multi-k-means dataset reads"]["ratio"] == pytest.approx(1.0)
    # Multi-k-means distances are exact: n x sum(k) per pass.
    assert by_name["multi-k-means distance computations"]["ratio"] == pytest.approx(1.0)
    # G-means distances and tests are order-level estimates (the sum of
    # active centers per iteration depends on the split trajectory).
    assert 0.3 <= by_name["G-means distance computations"]["ratio"] <= 3.0
    assert 0.3 <= by_name["G-means AD tests"]["ratio"] <= 3.0
