"""Table 2 — average time of one multi-k-means iteration (scaled).

Paper (10M points): 237 s at k=50 rising to 10252 s at k=400 — growth
far above linear, consistent with the O(n k^2) distance count.
"""

import numpy as np

from repro.evaluation import experiments


def test_table2_multi_kmeans_iteration_time(benchmark, report):
    result = benchmark.pedantic(
        experiments.table2_multi_kmeans, rounds=1, iterations=1
    )
    report("table2_multikmeans", result.text)

    rows = result.rows
    times = [r["time_seconds"] for r in rows]
    ks = [r["clusters"] for r in rows]
    # Strictly growing, and superlinear: time ratio beats k ratio.
    assert all(a < b for a, b in zip(times, times[1:]))
    assert times[-1] / times[0] > (ks[-1] / ks[0]) * 1.5
    # The quadratic fit is near-perfect; the linear fit is worse.
    assert result.data["correlation_k2"] > 0.999
    assert result.data["correlation_k2"] > result.data["correlation_k"]
    # Distance counts follow sum(1..k) exactly.
    for r in rows:
        k = r["clusters"]
        expected = 20_000 * k * (k + 1) // 2
        assert r["distances_per_iteration"] == expected
