"""Journal overhead — the observability tax on a real workload.

Runs the same seeded G-means workload in four modes — journalling off
(the default ``NullJournalSink``), journalling on (a
``FileJournalSink`` appending JSON lines, flushed at every span and
event boundary), full live telemetry (the file sink teed through a
``TelemetrySink`` into a ``LiveRunState`` with per-task profiling
armed), and live telemetry with the in-flight anomaly detectors armed
on top (``AnomalyWatchdog`` at default thresholds) — and asserts:

* equivalence — results are byte-identical across all four modes
  (telemetry observes the record stream, it never touches an RNG);
* overhead — the file sink costs < 5% wall-clock on top of the
  uninstrumented run, and live telemetry *with* tracemalloc-based task
  profiling stays < 10% (best-of-``REPEATS`` per mode, to damp
  scheduler noise) — with the detectors armed included under the same
  10% budget.

The measurement lands in ``BENCH_observability.json`` at the repo root.
"""

from __future__ import annotations

import pathlib
import time

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import paper_family_dataset
from repro.evaluation.benchjson import merge_bench_json
from repro.evaluation.harness import build_world
from repro.observability import (
    AnomalyWatchdog,
    FileJournalSink,
    Journal,
    LiveRunState,
    TelemetrySink,
)

BENCH_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

K_REAL = 8
N_POINTS = 60_000
SEED = 11
REPEATS = 5
MAX_OVERHEAD = 0.05
MAX_OVERHEAD_PROFILED = 0.10


def run_once(
    journal: "Journal | None", profile_tasks: bool = False
) -> tuple[dict, float]:
    """One G-means run; returns (result signature, wall seconds)."""
    mixture = paper_family_dataset(n_clusters=K_REAL, n_points=N_POINTS, rng=SEED)
    world = build_world(
        mixture,
        nodes=4,
        target_splits=16,
        seed=SEED,
        journal=journal,
        profile_tasks=profile_tasks,
    )
    config = MRGMeansConfig(seed=SEED)
    start = time.perf_counter()
    result = MRGMeans(world.runtime, config).fit(world.dataset)
    elapsed = time.perf_counter() - start
    signature = {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "completed": result.completed,
        "centers_sha": result.centers.tobytes().hex()[:64],
        "simulated_seconds": result.simulated_seconds,
        "counters": result.totals.counters.as_dict(),
    }
    return signature, elapsed


def test_journal_overhead(report, tmp_path):
    run_once(None)  # warm caches before anything is measured
    off_times, on_times, live_times, armed_times = [], [], [], []
    off_signature = on_signature = live_signature = armed_signature = None
    journal_records = 0
    anomalies_fired = 0
    for repeat in range(REPEATS):
        off_signature, off_elapsed = run_once(None)
        off_times.append(off_elapsed)

        path = tmp_path / f"bench-journal-{repeat}.jsonl"
        journal = Journal(FileJournalSink(str(path)))
        on_signature, on_elapsed = run_once(journal)
        journal.close()
        on_times.append(on_elapsed)
        journal_records = sum(1 for _ in path.open())

        live_path = tmp_path / f"bench-live-{repeat}.jsonl"
        live_journal = Journal(
            TelemetrySink(FileJournalSink(str(live_path)), state=LiveRunState())
        )
        live_signature, live_elapsed = run_once(
            live_journal, profile_tasks=True
        )
        live_journal.close()
        live_times.append(live_elapsed)

        armed_path = tmp_path / f"bench-armed-{repeat}.jsonl"
        armed_sink = TelemetrySink(
            FileJournalSink(str(armed_path)), state=LiveRunState()
        )
        armed_journal = Journal(armed_sink)
        armed_sink.anomaly = AnomalyWatchdog(armed_journal)
        armed_signature, armed_elapsed = run_once(
            armed_journal, profile_tasks=True
        )
        armed_journal.close()
        armed_times.append(armed_elapsed)
        anomalies_fired = len(armed_sink.anomaly.fired)

        assert on_signature == off_signature, (
            "journalling changed results — determinism contract broken"
        )
        assert live_signature == off_signature, (
            "live telemetry / profiling changed results — "
            "determinism contract broken"
        )
        assert armed_signature == off_signature, (
            "anomaly detectors changed results — "
            "determinism contract broken"
        )

    best_off, best_on, best_live = min(off_times), min(on_times), min(live_times)
    best_armed = min(armed_times)
    overhead = best_on / best_off - 1.0
    overhead_live = best_live / best_off - 1.0
    overhead_armed = best_armed / best_off - 1.0

    merge_bench_json(
        BENCH_JSON,
        "journal_overhead_gmeans",
        workload={
            "algorithm": "gmeans_mr",
            "clusters": K_REAL,
            "n_points": N_POINTS,
            "seed": SEED,
            "repeats": REPEATS,
        },
        metrics={
            "wall_seconds": {
                "journal_off": round(best_off, 3),
                "journal_on": round(best_on, 3),
                "live_telemetry_profiled": round(best_live, 3),
                "live_detectors_armed": round(best_armed, 3),
            },
            "journal_records": journal_records,
            "anomalies_fired": anomalies_fired,
            "overhead_fraction": round(overhead, 4),
            "max_overhead_fraction": MAX_OVERHEAD,
            "overhead_fraction_live_profiled": round(overhead_live, 4),
            "max_overhead_fraction_live_profiled": MAX_OVERHEAD_PROFILED,
            "overhead_fraction_detectors_armed": round(overhead_armed, 4),
            "max_overhead_fraction_detectors_armed": MAX_OVERHEAD_PROFILED,
            "results_byte_identical": True,
        },
    )

    lines = [
        "run journal — file-sink overhead on a G-means workload",
        "",
        f"  journal off      {best_off:8.2f} s   (best of {REPEATS})",
        f"  journal on       {best_on:8.2f} s   ({journal_records} records)",
        f"  live + profiled  {best_live:8.2f} s   (telemetry tee + tracemalloc)",
        f"  + detectors      {best_armed:8.2f} s   "
        f"(anomaly watchdog armed, {anomalies_fired} firing(s))",
        "",
        f"  journal overhead: {overhead * 100:.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)",
        f"  live+profiling overhead: {overhead_live * 100:.2f}%"
        f"  (budget {MAX_OVERHEAD_PROFILED * 100:.0f}%)",
        f"  detectors-armed overhead: {overhead_armed * 100:.2f}%"
        f"  (budget {MAX_OVERHEAD_PROFILED * 100:.0f}%)",
    ]
    report("journal_overhead", "\n".join(lines))

    assert overhead < MAX_OVERHEAD, (
        f"file journal cost {overhead * 100:.2f}% wall-clock, "
        f"budget is {MAX_OVERHEAD * 100:.0f}%"
    )
    assert overhead_live < MAX_OVERHEAD_PROFILED, (
        f"live telemetry with profiling cost {overhead_live * 100:.2f}% "
        f"wall-clock, budget is {MAX_OVERHEAD_PROFILED * 100:.0f}%"
    )
    assert overhead_armed < MAX_OVERHEAD_PROFILED, (
        f"anomaly detectors cost {overhead_armed * 100:.2f}% "
        f"wall-clock, budget is {MAX_OVERHEAD_PROFILED * 100:.0f}%"
    )
