"""Table 1 — G-means across the d-family (scaled).

Paper (10M points in R^10):

| clusters   | 100  | 200  | 400  | 800  | 1600 |
| discovered | 134  | 305  | 626  | 1264 | 2455 |
| time (s)   | 1286 | 1667 | 2291 | 4208 | 5593 |
| iterations | 9    | 10   | 11   | 13   | 13   |

Shapes to reproduce: discovered k overestimates the truth by a roughly
constant factor (~1.5), execution time scales ~linearly with k, and
iterations sit a little above ``log2(k)``.
"""

import numpy as np

from repro.evaluation import experiments


def test_table1_gmeans_scaling(benchmark, report):
    result = benchmark.pedantic(
        experiments.table1_gmeans_scaling, rounds=1, iterations=1
    )
    report("table1_gmeans_scaling", result.text)

    rows = result.rows
    ratios = [r["ratio"] for r in rows]
    # Overestimation: k_found >= ~k_real on every dataset, and the
    # mean ratio sits in the paper's 1-1.7 band.
    assert all(ratio >= 0.85 for ratio in ratios)
    assert 1.0 <= float(np.mean(ratios)) <= 1.8
    # Time grows ~linearly with k.
    assert result.data["correlation"] > 0.9
    times = [r["time_seconds"] for r in rows]
    assert all(a < b for a, b in zip(times, times[1:]))
    # Iterations ~ log2(k) plus a few extras (paper: 9..13 for 100..1600).
    for r in rows:
        expected = int(np.ceil(np.log2(r["clusters"])))
        assert expected <= r["iterations"] <= expected + 7
