"""Figure 1 — evolution of G-means centers on the 10-cluster R^2 set.

Paper: three snapshots showing centers doubling into place; the final
run plants centers in every true cluster.
"""

from repro.evaluation import experiments


def test_fig1_center_evolution(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig1_center_evolution, rounds=1, iterations=1
    )
    report("fig1_center_evolution", result.text)

    rows = result.rows
    # Centers double while everything still splits: k 1 -> 2 -> 4 ...
    assert rows[0]["k_before"] == 1
    assert rows[1]["k_before"] == 2
    assert rows[2]["k_before"] == 4
    # The run terminates with all 10 true clusters found (possibly a
    # few extra centers, as in the paper's "14 centers" outcome).
    final = result.data["result"]
    assert final.completed
    assert 10 <= final.k_found <= 16
