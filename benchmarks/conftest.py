"""Benchmark-suite plumbing.

Every benchmark runs its experiment exactly once (pedantic mode:
``rounds=1``) — these are *reproduction* runs whose value is the
rendered paper-vs-measured report, not statistical timing of a hot
loop. Reports are printed and archived under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Print an experiment report and archive it to benchmarks/out/."""

    def _report(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report
