"""Full-pipeline integration: all three drivers on shared worlds."""

import numpy as np
import pytest

from repro.clustering.metrics import assign_nearest, average_distance, wcss
from repro.core import MRGMeans, MRGMeansConfig, MRKMeans, MultiKMeans
from repro.data.generator import generate_gaussian_mixture, paper_family_dataset
from repro.data.loader import write_points, write_points_as_text
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def world():
    mixture = generate_gaussian_mixture(
        n_points=3000, n_clusters=6, dimensions=4, rng=17, cluster_std=1.0
    )
    dfs = InMemoryDFS(split_size_bytes=16384)
    dataset = write_points(dfs, "pts", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=23)
    return mixture, runtime, dataset


def test_gmeans_vs_multikmeans_agree_on_k(world):
    mixture, runtime, dataset = world
    g = MRGMeans(runtime, MRGMeansConfig(seed=1)).fit(dataset)
    m = MultiKMeans(
        runtime, k_min=2, k_max=10, iterations=8, init="kmeans++", seed=1
    ).fit(dataset)
    assert 5 <= g.k_found <= 9
    # Elbow on a 6-cluster mixture: within one of the truth is as sharp
    # as the criterion gets (the paper's whole point is that these
    # sweep-and-score criteria are blunt as well as expensive).
    assert 4 <= m.best_k <= 8


def test_gmeans_quality_close_to_dedicated_kmeans(world):
    mixture, runtime, dataset = world
    g = MRGMeans(runtime, MRGMeansConfig(seed=2)).fit(dataset)
    baseline = MRKMeans(
        runtime, k=g.k_found, init="kmeans++", max_iterations=15, seed=2
    ).fit(dataset)
    g_dist = average_distance(mixture.points, g.centers)
    b_dist = average_distance(mixture.points, baseline.centers)
    assert g_dist <= b_dist * 1.15


def test_found_centers_near_true_centers(world):
    mixture, runtime, dataset = world
    g = MRGMeans(runtime, MRGMeansConfig(seed=3)).fit(dataset)
    for true_center in mixture.centers:
        d = np.linalg.norm(g.centers - true_center, axis=1)
        assert d.min() < 2.0  # within 2 sigma


def test_text_mode_pipeline_end_to_end():
    """Full-fidelity mode: the dataset lives as text lines and the jobs
    consume decoded points (exercises the codec in the data path)."""
    mixture = generate_gaussian_mixture(800, 3, 2, rng=29)
    dfs = InMemoryDFS(split_size_bytes=8192)
    f = write_points_as_text(dfs, "pts", mixture.points)

    # Decode each split back to points and rewrite in numpy mode: this is
    # what a RecordReader does between HDFS and the mapper.
    from repro.data.textio import decode_points

    decoded = decode_points(list(f.all_records()))
    assert np.array_equal(decoded, mixture.points)
    g = write_points(dfs, "pts-decoded", decoded)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=31)
    result = MRGMeans(runtime, MRGMeansConfig(seed=4)).fit(g)
    assert 2 <= result.k_found <= 5


def test_unbalanced_clusters_still_found():
    mixture = generate_gaussian_mixture(
        4000, 3, 3, rng=41, weights=np.array([0.7, 0.2, 0.1])
    )
    dfs = InMemoryDFS(split_size_bytes=16384)
    dataset = write_points(dfs, "pts", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=43)
    result = MRGMeans(runtime, MRGMeansConfig(seed=5)).fit(dataset)
    assert 3 <= result.k_found <= 5
    labels, _ = assign_nearest(result.centers, mixture.centers)
    assert set(labels.tolist()) == {0, 1, 2}


def test_overestimate_then_merge_recovers_k():
    """The paper's overestimation + future-work merge, end to end."""
    mixture = paper_family_dataset(n_clusters=12, n_points=12_000, rng=47)
    dfs = InMemoryDFS(split_size_bytes=32768)
    dataset = write_points(dfs, "pts", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=53)
    result = MRGMeans(
        runtime, MRGMeansConfig(seed=6, alpha=0.01, post_merge=True)
    ).fit(dataset)
    assert result.k_found >= 12
    assert result.merged_centers.shape[0] <= result.k_found
    merged_wcss = wcss(mixture.points, result.merged_centers)
    raw_wcss = wcss(mixture.points, result.centers)
    # Merging loses little quality while shedding duplicate centers.
    assert merged_wcss <= raw_wcss * 2.0
