"""Live telemetry acceptance: telemetry and profiling never perturb
results, the metrics endpoint serves a run mid-flight, an SLO abort is
checkpointed and resumable, and the file journal stays canonical under
the processes executor with telemetry armed.
"""

import io
import json
import urllib.request

import pytest

from repro.common.errors import SLOViolationError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.hdfs import BlockFaultModel, InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import (
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    canonical_records,
    load_journal,
)
from repro.observability.live import LiveRunState, MetricsServer, TelemetrySink
from repro.observability.slo import SLOWatchdog, parse_slo_rules

MIXTURE = generate_gaussian_mixture(
    n_points=600, n_clusters=3, dimensions=2, rng=7
)

RUNTIME_SEED = 99
CONFIG = dict(seed=5, checkpoint_dir="ck/gmeans", max_iterations=10)
CHAOS = dict(
    faults=FaultModel(task_failure_probability=0.12, max_attempts=2),
)


def chaos_world(journal, dfs=None, profile_tasks=False, config=None):
    """The flaky world from the journal chaos suite, telemetry-ready."""
    if dfs is None:
        dfs = InMemoryDFS(
            split_size_bytes=4096,
            fault_model=BlockFaultModel(replica_loss_probability=0.02, seed=3),
        )
        write_points(dfs, "points", MIXTURE.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        config=config
        or RuntimeConfig(max_job_retries=20, retry_backoff_seconds=5.0),
        journal=journal,
        profile_tasks=profile_tasks,
        **CHAOS,
    )
    return dfs, runtime


def signature(result):
    return {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "completed": result.completed,
        "centers": result.centers.tobytes(),
        "shape": result.centers.shape,
        "seconds": result.totals.simulated_seconds,
        "counters": result.totals.counters.snapshot(),
        "history": [
            (s.iteration, s.k_before, s.k_after, s.clusters_split,
             s.strategy, s.centers.tobytes())
            for s in result.history
        ],
    }


def test_chaos_run_with_telemetry_and_profiling_is_byte_identical():
    """The determinism acceptance test: telemetry observes, never perturbs."""
    plain_sink = InMemoryJournalSink()
    _dfs, plain_runtime = chaos_world(Journal(plain_sink))
    baseline = MRGMeans(plain_runtime, MRGMeansConfig(**CONFIG)).fit("points")

    teed = InMemoryJournalSink()
    state = LiveRunState()
    watchdog = SLOWatchdog(
        parse_slo_rules("warn:max_k=1000"), stream=io.StringIO()
    )
    sink = TelemetrySink(teed, state=state, watchdog=watchdog)
    _dfs2, live_runtime = chaos_world(Journal(sink), profile_tasks=True)
    live = MRGMeans(live_runtime, MRGMeansConfig(**CONFIG)).fit("points")

    # Same bytes out, same canonical journal — profiling measurements
    # travel in wall-prefixed keys and vanish under canonicalisation.
    assert signature(live) == signature(baseline)
    assert canonical_records(teed.records) == canonical_records(
        plain_sink.records
    )
    profiled = [
        record
        for record in teed.records
        if record.get("type") == "task" and "wall_cpu_seconds" in record
    ]
    tasks = [r for r in teed.records if r.get("type") == "task"]
    assert profiled and len(profiled) == len(tasks)  # CPU on every task
    sampled = [r for r in profiled if "wall_peak_memory_bytes" in r]
    # Memory peaks are sampled: first task per phase, geometrically
    # sampled jobs (1, 2, 4, 8, ...) only.
    assert sampled and len(sampled) < len(profiled)

    # The live aggregate reconciles exactly with the run's own accounting.
    assert state.run_status == "ok"
    assert state.k_current == baseline.k_found
    assert state.iterations_done == baseline.iterations
    assert state.counters.snapshot() == baseline.totals.counters.snapshot()
    assert state.simulated_seconds == pytest.approx(
        baseline.totals.simulated_seconds
    )
    assert state.job_retries > 0  # the chaos showed up in the aggregate


def test_metrics_endpoint_scraped_mid_run():
    """``/metrics`` answered while the run is in flight carries the
    counters accounted so far — scraped deterministically the moment
    the first iteration closes."""
    state = LiveRunState()
    server = MetricsServer(state, port=0)
    scrapes = []

    def scrape(record, st):
        if (
            not scrapes
            and record.get("type") == "span_end"
            and st.iterations_done == 1
        ):
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                text = r.read().decode("utf-8")
            with urllib.request.urlopen(server.url + "/state", timeout=5) as r:
                snap = json.loads(r.read())
            scrapes.append((text, snap, st.counters_copy().as_dict()))

    sink = TelemetrySink(
        InMemoryJournalSink(), state=state, server=server, listeners=[scrape]
    )
    try:
        _dfs, runtime = chaos_world(Journal(sink))
        result = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
    finally:
        server.close()

    assert result.iterations > 1  # the scrape really was mid-run
    [(text, snap, expected_counters)] = scrapes
    assert "repro_live_iterations_done 1.0" in text
    assert "repro_live_run_complete 0.0" in text
    map_tasks = expected_counters["framework"]["MAP_TASKS"]
    assert f"repro_framework_map_tasks {map_tasks}" in text.splitlines()
    assert snap["run_status"] == "running"
    assert snap["iterations_done"] == 1
    assert snap["counters"]["framework"]["MAP_TASKS"] == map_tasks


def test_slo_abort_checkpoints_then_resumes_byte_identical():
    """A ``max_k`` breach aborts with the typed error at a clean point;
    relaxing the rule and resuming finishes the exact baseline run."""
    plain_sink = InMemoryJournalSink()
    _dfs, plain_runtime = chaos_world(Journal(plain_sink))
    baseline = MRGMeans(plain_runtime, MRGMeansConfig(**CONFIG)).fit("points")
    limit = baseline.k_found - 1
    assert limit >= 1

    watchdog = SLOWatchdog(
        parse_slo_rules(f"max_k={limit}"), stream=io.StringIO()
    )
    sink = TelemetrySink(InMemoryJournalSink(), watchdog=watchdog)
    dfs, guarded_runtime = chaos_world(Journal(sink))
    with pytest.raises(SLOViolationError) as excinfo:
        MRGMeans(guarded_runtime, MRGMeansConfig(**CONFIG)).fit("points")
    assert excinfo.value.rule == "max_k"
    assert excinfo.value.observed > limit
    # The abort landed after the iteration's checkpoint was written.
    checkpoints = [
        name for name in dfs.listdir() if name.startswith("ck/gmeans/iter-")
    ]
    assert checkpoints

    # Driver restart without the rule: resume completes the run and the
    # result is byte-identical to the never-aborted baseline.
    _dfs3, revived = chaos_world(Journal(InMemoryJournalSink()), dfs=dfs)
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )
    assert signature(resumed) == signature(baseline)


def test_file_journal_under_processes_executor_with_telemetry(tmp_path):
    """Concurrent workers + live telemetry still append one totally
    ordered, canonical journal (emission stays in the submitting
    process) — and the results match the serial chaos baseline."""
    plain_sink = InMemoryJournalSink()
    _dfs, serial_runtime = chaos_world(Journal(plain_sink))
    serial = MRGMeans(serial_runtime, MRGMeansConfig(**CONFIG)).fit("points")

    path = tmp_path / "procs.jsonl"
    state = LiveRunState()
    journal = Journal(TelemetrySink(FileJournalSink(str(path)), state=state))
    _dfs2, procs_runtime = chaos_world(
        journal,
        profile_tasks=True,
        config=RuntimeConfig(
            executor="processes",
            num_workers=3,
            max_job_retries=20,
            retry_backoff_seconds=5.0,
        ),
    )
    procs = MRGMeans(procs_runtime, MRGMeansConfig(**CONFIG)).fit("points")
    journal.close()

    assert signature(procs) == signature(serial)
    records = load_journal(str(path))
    assert [record["seq"] for record in records] == list(range(len(records)))
    assert canonical_records(records) == canonical_records(plain_sink.records)
    assert state.run_status == "ok"
    assert state.counters.snapshot() == serial.totals.counters.snapshot()
