"""Node-failure-domain acceptance test: a seeded chaos run that kills
nodes mid-chain must complete correctly, journal the whole cascade —
``node_lost`` → correlated ``blocks_lost`` → ``re_replication`` →
``strategy_redecision`` — reconcile its replay accounting exactly
(including the float ``WASTED_COMPUTE_SECONDS``), and resume from a
checkpoint byte-identically after a node-loss-era abort.

The scenario is tuned so the paper's §3.2 rule actually flips: with 3
nodes × 1 reduce slot the static decision for testing 3 clusters is
mapper-side (3 ≯ 3 slots), but after a death the live pool is 2 slots
and the driver re-decides reducer-side.
"""

import pytest

from repro.common.errors import JobFailedError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.nodes import NodeFaultModel
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records

MIXTURE = generate_gaussian_mixture(
    n_points=600, n_clusters=3, dimensions=2, rng=7
)

RUNTIME_SEED = 99
CLUSTER = dict(nodes=3, reduce_slots_per_node=1, task_heap_mb=64)
#: Empirically tuned: this schedule kills two nodes mid-chain, loses
#: their blocks, heals onto survivors and flips the test strategy.
NODE_FAULTS = NodeFaultModel(node_failure_probability=0.02, seed=0)
CONFIG = dict(seed=5, checkpoint_dir="ck/gmeans", max_iterations=10)


@pytest.fixture(autouse=True)
def _clean_data_plane():
    from repro.mapreduce import dataplane

    dataplane.release_all()
    yield
    dataplane.release_all()


def node_chaos_world(journal, runtime_cls=MapReduceRuntime, data_plane=None):
    dfs = InMemoryDFS(split_size_bytes=4096, data_plane=data_plane)
    # replication 2 on 3 nodes: a death leaves exactly one survivor
    # without a copy, so the correlated batch visibly re-replicates.
    write_points(dfs, "points", MIXTURE.points, replication=2)
    runtime = runtime_cls(
        dfs,
        cluster=ClusterConfig(**CLUSTER),
        rng=RUNTIME_SEED,
        node_faults=NODE_FAULTS,
        journal=journal,
    )
    return dfs, runtime


def run_chaos(journal=None, data_plane=None):
    sink = InMemoryJournalSink()
    dfs, runtime = node_chaos_world(
        journal or Journal(sink), data_plane=data_plane
    )
    result = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
    return dfs, sink, result


def test_node_chaos_run_completes_with_full_cascade():
    """Node deaths degrade the run; they never corrupt it."""
    _dfs, sink, result = run_chaos()
    assert result.completed
    assert result.k_found == 3  # still finds the mixture's true k

    events = [r for r in sink.records if r.get("type") == "event"]
    names = [e["name"] for e in events]
    losses = [e for e in events if e["name"] == "node_lost"]
    assert losses

    for index, loss in enumerate(losses):
        node = loss["attrs"]["node"]
        start = events.index(loss)
        tail = events[start + 1 :]
        # Every replica of the dead node goes in one correlated batch...
        batch = next(e for e in tail if e["name"] == "blocks_lost")
        assert batch["attrs"]["node"] == node
        assert batch["attrs"]["correlated"] is True
        assert batch["attrs"]["count"] == loss["attrs"]["blocks_lost"]
        if index == 0:
            # ...and the first death heals onto survivors straight
            # after (node-batch heals carry the node; read-path heals
            # carry the file instead). Later deaths may have no
            # survivor left that lacks a copy.
            heal = next(
                e
                for e in tail
                if e["name"] == "re_replication" and "node" in e["attrs"]
            )
            assert heal["attrs"]["node"] == node
            assert heal["attrs"]["bytes"] > 0

    # In-flight work on the dead node was shifted to survivors.
    assert "tasks_rescheduled" in names

    # The §3.2 decision flipped once capacity shrank below the test
    # count — and the flip happened *after* the first death.
    flips = [e for e in events if e["name"] == "strategy_redecision"]
    assert flips
    assert events.index(flips[0]) > events.index(losses[0])
    for flip in flips:
        attrs = flip["attrs"]
        assert attrs["from_strategy"] == "mapper"
        assert attrs["to_strategy"] == "reducer"
        assert attrs["live_reduce_slots"] < attrs["static_reduce_slots"]
        assert attrs["clusters_to_test"] > attrs["live_reduce_slots"]

    # Capacity attributes on lifecycle events shrink monotonically.
    slots = [e["attrs"]["total_map_slots"] for e in losses]
    assert slots == sorted(slots, reverse=True)
    assert len(set(slots)) == len(slots)


def test_node_chaos_replay_reconciles_exactly():
    """Folding the journal reproduces the live totals bit-for-bit —
    including the float WASTED_COMPUTE_SECONDS from re-executions."""
    _dfs, sink, result = run_chaos()
    replay = replay_records(sink.records)
    totals = result.totals

    assert replay.total_counters().snapshot() == totals.counters.snapshot()
    assert replay.total_simulated_seconds() == totals.simulated_seconds

    wasted = totals.counters.get(
        FRAMEWORK_GROUP, MRCounter.WASTED_COMPUTE_SECONDS
    )
    assert isinstance(wasted, float) and wasted > 0.0
    assert (
        replay.total_counters().get(
            FRAMEWORK_GROUP, MRCounter.WASTED_COMPUTE_SECONDS
        )
        == wasted
    )
    assert totals.counters.get(FRAMEWORK_GROUP, MRCounter.BLOCKS_LOST) > 0

    lifecycle = replay.node_events()
    assert lifecycle
    assert all(e.name == "node_lost" for e in lifecycle)


def test_analyze_surfaces_node_health_and_capacity_timeline():
    from repro.observability.analyze import analyze_replay, render_analysis

    _dfs, sink, _result = run_chaos()
    report = analyze_replay(replay_records(sink.records))
    assert report.node_health
    dead = [n for n in report.node_health if n.final_status == "dead"]
    assert dead
    assert all(n.deaths >= 1 and n.blocks_lost > 0 for n in dead)

    timeline = report.capacity_timeline
    assert timeline
    slots = [p.total_map_slots for p in timeline]
    assert slots == sorted(slots, reverse=True)

    rendered = render_analysis(report)
    assert "node failure domains" in rendered
    assert "capacity timeline" in rendered


def test_resume_after_node_loss_abort_is_byte_identical():
    """Driver dies after nodes already did; the revived driver restores
    the node RNG and cluster state from the checkpoint and replays the
    rest of the chain byte-for-byte."""
    baseline_sink = InMemoryJournalSink()
    _dfs, _sink, uninterrupted = run_chaos(journal=Journal(baseline_sink))

    class KillingRuntime(MapReduceRuntime):
        def run(self, job, input_file, cached=False):
            if job.name.startswith("KMeans-i3"):
                raise JobFailedError(f"injected failure at {job.name}")
            return super().run(job, input_file, cached=cached)

    dfs, killer = node_chaos_world(
        Journal(InMemoryJournalSink()), runtime_cls=KillingRuntime
    )
    with pytest.raises(JobFailedError, match="injected failure"):
        MRGMeans(killer, MRGMeansConfig(**CONFIG)).fit("points")

    # Restart: same DFS (placements survive the driver), fresh runtime.
    revived = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(**CLUSTER),
        rng=RUNTIME_SEED,
        node_faults=NODE_FAULTS,
        journal=Journal(InMemoryJournalSink()),
    )
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )

    assert resumed.centers.tobytes() == uninterrupted.centers.tobytes()
    assert resumed.k_found == uninterrupted.k_found
    assert (
        resumed.totals.counters.snapshot()
        == uninterrupted.totals.counters.snapshot()
    )
    assert (
        resumed.totals.simulated_seconds
        == uninterrupted.totals.simulated_seconds
    )


def test_node_kill_chaos_leaves_no_orphan_shared_segments():
    """Node loss must not leak shared-memory segments: the blocks die
    in the topology, not in the data plane's accounting."""
    from repro.mapreduce import dataplane
    from repro.observability.journal import canonical_records

    sink = InMemoryJournalSink()
    dfs, _sink, _result = run_chaos(
        journal=Journal(sink), data_plane="shared"
    )
    assert any(
        r.get("name") == "node_lost"
        for r in sink.records
        if r.get("type") == "event"
    )
    dfs.release()
    assert dataplane.active_segments() == []
    assert dataplane.orphaned_system_segments() == []


def test_node_chaos_journal_identical_across_planes():
    from repro.observability.journal import canonical_records

    journals = {}
    for plane in ("pickled", "shared"):
        sink = InMemoryJournalSink()
        dfs, _sink, result = run_chaos(journal=Journal(sink), data_plane=plane)
        dfs.release()
        journals[plane] = canonical_records(sink.records)
    assert journals["pickled"]
    assert journals["shared"] == journals["pickled"]
