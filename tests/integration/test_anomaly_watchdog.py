"""In-flight anomaly watchdog acceptance: a seeded chaos run fires
every injected detector class live, the armed journal is byte-identical
across executor backends and data planes, ``repro anomalies --check``
re-derives the recorded firings exactly, and a predicted Figure-2 heap
breach aborts via SLO *before* the offending reduce phase with a
byte-identical resume.
"""

import io
import json
from collections import Counter

import pytest

from repro.cli import main
from repro.common.errors import SLOViolationError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.hdfs import BlockFaultModel, InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.anomaly import (
    ANOMALY,
    ANOMALY_CONFIG,
    FAULT_STORM,
    HEAP_BREACH_PREDICTED,
    STRAGGLER_ONSET,
    AnomalyWatchdog,
    parse_anomaly_spec,
    reconcile_anomalies,
)
from repro.observability.journal import (
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    canonical_records,
    load_journal,
)
from repro.observability.live import LiveRunState, TelemetrySink
from repro.observability.slo import SLOWatchdog, parse_slo_rules

MIXTURE = generate_gaussian_mixture(
    n_points=600, n_clusters=3, dimensions=2, rng=7
)

RUNTIME_SEED = 99
# The reducer-side TestClusters strategy is forced so the heap-breach
# predictor has per-key heap baselines to project from; the thresholds
# are tightened so the small chaos workload trips the injected classes.
CONFIG = dict(
    seed=5, checkpoint_dir="ck/gmeans", max_iterations=10, strategy="reducer"
)
SPEC = (
    "straggler_ratio=1.2,straggler_min_tasks=3,heap_fraction=0.0001,"
    "storm_window_seconds=30,storm_events=2"
)
# The classes this chaos scenario injects: task-failure retries stretch
# attempt durations (straggler_onset), block loss + retries cluster in
# simulated time (fault_storm), and the forced reducer-side strategy
# with a sliver of usable heap trips the Figure-2 projection
# (heap_breach_predicted).  Skew/cost drift need a workload whose
# imbalance *grows* against its own baseline and are exercised by the
# unit suite on synthetic journals.
INJECTED = {STRAGGLER_ONSET, FAULT_STORM, HEAP_BREACH_PREDICTED}


def chaos_world(journal, dfs=None, config=None):
    if dfs is None:
        dfs = InMemoryDFS(
            split_size_bytes=4096,
            fault_model=BlockFaultModel(replica_loss_probability=0.02, seed=3),
        )
        write_points(dfs, "points", MIXTURE.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        config=config
        or RuntimeConfig(max_job_retries=20, retry_backoff_seconds=5.0),
        journal=journal,
        faults=FaultModel(task_failure_probability=0.12, max_attempts=2),
    )
    return dfs, runtime


def armed_journal(sink, spec=SPEC, watchdog=None):
    state = LiveRunState()
    tee = TelemetrySink(sink, state=state, watchdog=watchdog)
    journal = Journal(tee)
    tee.anomaly = AnomalyWatchdog(journal, parse_anomaly_spec(spec))
    return journal, tee, state


def signature(result):
    return {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "centers": result.centers.tobytes(),
        "seconds": result.totals.simulated_seconds,
        "counters": result.totals.counters.snapshot(),
    }


def test_chaos_run_fires_each_injected_class_and_reconciles(tmp_path, capsys):
    path = tmp_path / "armed.jsonl"
    journal, tee, state = armed_journal(FileJournalSink(str(path)))
    _dfs, runtime = chaos_world(journal)
    result = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
    journal.close()
    assert result.completed

    fired = Counter(attrs["anomaly"] for attrs in tee.anomaly.fired)
    assert INJECTED <= set(fired)

    # The live aggregate saw exactly the recorded firings.
    records = load_journal(str(path))
    recorded = [r for r in records if r.get("name") == ANOMALY]
    assert len(recorded) == sum(fired.values())
    assert state.anomaly_counts == dict(fired)
    assert [r for r in records if r.get("name") == ANOMALY_CONFIG]

    # Exact replay reconciliation, via the library and the CLI.
    outcome = reconcile_anomalies(records)
    assert outcome.ok
    assert len(outcome.recorded) == len(recorded) + 1  # + anomaly_config
    assert main(["anomalies", str(path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "anomaly reconciliation: OK" in out

    # Post-hoc listing agrees with the in-flight firings.
    assert main(["anomalies", str(path), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert Counter(a["anomaly"] for a in data["anomalies"]) == fired


def test_armed_chaos_journal_is_canonical_across_backends_and_planes():
    results = {}
    journals = {}
    for backend, plane in [
        ("serial", "pickled"),
        ("threads", "pickled"),
        ("processes", "pickled"),
        ("processes", "shared"),
    ]:
        sink = InMemoryJournalSink()
        journal, tee, _state = armed_journal(sink)
        _dfs, runtime = chaos_world(
            journal,
            config=RuntimeConfig(
                executor=backend,
                num_workers=3,
                data_plane=plane,
                max_job_retries=20,
                retry_backoff_seconds=5.0,
            ),
        )
        key = f"{backend}/{plane}"
        results[key] = signature(
            MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
        )
        journal.close()
        assert tee.anomaly.fired, f"{key}: detectors must fire"
        journals[key] = canonical_records(sink.records)

    reference = journals["serial/pickled"]
    assert any(r.get("name") == ANOMALY for r in reference)
    for key, records in journals.items():
        assert results[key] == results["serial/pickled"], key
        assert records == reference, key


def test_heap_breach_predicted_fires_before_reduce_then_slo_abort_resumes():
    """The headline acceptance flow: the Figure-2 projection fires
    *before* the offending reduce phase starts, the ``on_anomaly`` SLO
    rule checkpoints-then-aborts, and resuming completes byte-identical
    to the never-aborted baseline."""
    plain_sink = InMemoryJournalSink()
    _dfs, plain_runtime = chaos_world(Journal(plain_sink))
    baseline = MRGMeans(plain_runtime, MRGMeansConfig(**CONFIG)).fit("points")

    watchdog = SLOWatchdog(
        parse_slo_rules(f"on_anomaly={HEAP_BREACH_PREDICTED}"),
        stream=io.StringIO(),
    )
    sink = InMemoryJournalSink()
    journal, tee, _state = armed_journal(sink, watchdog=watchdog)
    dfs, guarded_runtime = chaos_world(journal)
    with pytest.raises(SLOViolationError) as excinfo:
        MRGMeans(guarded_runtime, MRGMeansConfig(**CONFIG)).fit("points")
    assert HEAP_BREACH_PREDICTED in excinfo.value.rule
    journal.close()

    # The prediction strictly precedes the reduce phase it warns about:
    # the breach event for that job lands before the job's reduce
    # span_start in the totally ordered journal.
    breaches = [
        r
        for r in sink.records
        if r.get("name") == ANOMALY
        and r["attrs"]["anomaly"] == HEAP_BREACH_PREDICTED
    ]
    assert breaches
    first = breaches[0]
    reduce_starts = [
        r
        for r in sink.records
        if r.get("type") == "span_start"
        and r.get("kind") == "phase"
        and r.get("name") == "reduce"
        and r.get("parent") == first["parent"]
    ]
    assert reduce_starts and first["seq"] < reduce_starts[0]["seq"]

    # The interrupted armed journal still reconciles exactly.
    assert reconcile_anomalies(sink.records).ok

    # The abort landed after a checkpoint; resuming without the rule
    # completes the exact baseline run.
    assert any(name.startswith("ck/gmeans/iter-") for name in dfs.listdir())
    _dfs2, revived = chaos_world(Journal(InMemoryJournalSink()), dfs=dfs)
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )
    assert signature(resumed) == signature(baseline)
