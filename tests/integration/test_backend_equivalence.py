"""End-to-end backend equivalence: full algorithms, identical results.

The unit suite proves single jobs are byte-identical across executor
backends; these tests prove the property survives whole algorithm runs
— dozens of chained jobs whose inputs depend on previous outputs, so
any scheduling leak would compound and show up in the final centers.

The matrix has a second axis since the zero-copy data plane landed:
every (executor backend × data plane) cell must produce the same bytes
and the same canonical journal, and the shared plane must never leak a
segment — not after a clean fit, not after a chaos-induced failure,
not after an SLO abort.
"""

import io

import numpy as np
import pytest

from repro.common.errors import JobFailedError, SLOViolationError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.core.multi_kmeans import MultiKMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import build_world
from repro.mapreduce import dataplane
from repro.observability.journal import (
    InMemoryJournalSink,
    Journal,
    canonical_records,
)
from repro.observability.live import TelemetrySink
from repro.observability.slo import SLOWatchdog, parse_slo_rules

BACKENDS = ("serial", "threads", "processes")
PLANES = ("pickled", "shared")
MATRIX = [(b, p) for b in BACKENDS for p in PLANES]
SEEDS = (1, 7, 23)


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Whatever a test does, it must not strand shared-memory segments."""
    dataplane.release_all()
    yield
    leaked = dataplane.active_segments()
    orphans = dataplane.orphaned_system_segments()
    dataplane.release_all()
    assert leaked == [], f"leaked shared segments: {leaked}"
    assert orphans == [], f"orphaned /dev/shm segments: {orphans}"


def make_world(seed: int, backend: str, journal=None, data_plane=None):
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=seed
    )
    return build_world(
        mixture,
        nodes=2,
        target_splits=6,
        executor=backend,
        num_workers=2,
        journal=journal,
        data_plane=data_plane,
    )


def gmeans_signature(seed: int, backend: str, journal=None, data_plane=None):
    world = make_world(seed, backend, journal=journal, data_plane=data_plane)
    try:
        result = MRGMeans(world.runtime, MRGMeansConfig(seed=seed)).fit(
            world.dataset
        )
    finally:
        world.dfs.release()
    assert dataplane.active_segments() == []
    return (
        result.k_found,
        result.iterations,
        result.completed,
        result.centers.tobytes(),
        result.centers.shape,
    )


def multi_kmeans_signature(seed: int, backend: str, data_plane=None):
    world = make_world(seed, backend, data_plane=data_plane)
    try:
        result = MultiKMeans(
            world.runtime, k_min=1, k_max=5, iterations=4, seed=seed
        ).fit(world.dataset)
    finally:
        world.dfs.release()
    return (
        result.best_k,
        {k: c.tobytes() for k, c in result.centers_by_k.items()},
        {k: float(v) for k, v in result.wcss_by_k.items()},
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_gmeans_identical_across_backends(seed):
    reference = gmeans_signature(seed, "serial")
    for backend in BACKENDS[1:]:
        assert gmeans_signature(seed, backend) == reference, backend


def test_gmeans_identical_across_backend_plane_matrix():
    """All six (backend × data plane) cells produce the same bytes.

    The zero-copy plane changes *where* split arrays live, never what
    the tasks compute from them — serial reads the owner's buffers
    directly, process workers attach the segments — so the full matrix
    must agree with the serial/pickled reference byte for byte.
    """
    reference = gmeans_signature(7, "serial", data_plane="pickled")
    for backend, plane in MATRIX[1:]:
        cell = gmeans_signature(7, backend, data_plane=plane)
        assert cell == reference, (backend, plane)


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_kmeans_identical_across_backends(seed):
    reference = multi_kmeans_signature(seed, "serial")
    for backend in BACKENDS[1:]:
        assert multi_kmeans_signature(seed, backend) == reference, backend


def test_multi_kmeans_identical_across_planes():
    reference = multi_kmeans_signature(7, "serial", data_plane="pickled")
    assert multi_kmeans_signature(7, "serial", data_plane="shared") == reference
    assert (
        multi_kmeans_signature(7, "processes", data_plane="shared") == reference
    )


def test_gmeans_finds_same_sane_k_on_every_backend():
    """Not just mutually equal — a plausible answer for 3 planted blobs.

    (At this 600-point scale G-means may legitimately over-split by
    one; the point here is that every backend lands on the *same*
    plausible k, not that the tiny dataset is easy.)
    """
    ks = {backend: gmeans_signature(31, backend)[0] for backend in BACKENDS}
    assert len(set(ks.values())) == 1
    assert 2 <= ks["serial"] <= 5


def test_results_identical_with_journal_on_or_off():
    """Journalling must observe the run, never perturb it."""
    plain = gmeans_signature(7, "serial")
    journalled = gmeans_signature(7, "serial", journal=Journal(InMemoryJournalSink()))
    assert journalled == plain


def test_journal_canonical_form_identical_across_matrix():
    """Same seeded run → same journal in every matrix cell, modulo wall
    clock.

    Everything nondeterministic in a journal lives in ``wall*`` keys;
    after stripping them all six (backend × data plane) cells must have
    recorded the exact same sequence of spans, tasks and events — the
    data plane is invisible to the journal, not just to the results.
    """
    import json

    from repro.observability.critical import critical_path
    from repro.observability.replay import replay_records

    journals = {}
    paths = {}
    for backend, plane in MATRIX:
        sink = InMemoryJournalSink()
        gmeans_signature(7, backend, journal=Journal(sink), data_plane=plane)
        journals[backend, plane] = canonical_records(sink.records)
        path = critical_path(replay_records(sink.records))
        assert path.reconciled, (backend, plane)
        paths[backend, plane] = json.dumps(path.as_dict(), sort_keys=True)
    reference = journals["serial", "pickled"]
    assert reference  # the run actually recorded something
    kinds = {r.get("kind") for r in reference if r["type"] == "span_start"}
    assert kinds == {"run", "iteration", "job", "phase"}
    for cell in MATRIX[1:]:
        assert journals[cell] == reference, cell
        # Critical paths derive from canonical fields only, so they too
        # must serialize byte-identically in every cell.
        assert paths[cell] == paths["serial", "pickled"], cell


def test_no_leaked_segments_after_chaos_failure():
    """A chain that dies mid-run must not strand segments once its DFS
    is torn down — failure paths release exactly like success paths."""

    class Killer:
        def __init__(self, runtime):
            self.runtime = runtime
            self.jobs = 0

        def run(self, job, input_file, cached=False):
            self.jobs += 1
            if self.jobs >= 5:
                raise JobFailedError(f"injected failure at {job.name}")
            return self.runtime.run(job, input_file, cached=cached)

        def __getattr__(self, name):
            return getattr(self.runtime, name)

    world = make_world(7, "serial", data_plane="shared")
    assert dataplane.active_segments()  # the dataset really is shared
    with pytest.raises(JobFailedError, match="injected failure"):
        MRGMeans(Killer(world.runtime), MRGMeansConfig(seed=7)).fit(
            world.dataset
        )
    world.dfs.release()
    assert dataplane.active_segments() == []
    assert dataplane.orphaned_system_segments() == []


def test_no_leaked_segments_after_slo_abort():
    """An SLO-aborted run is interrupted at a checkpoint boundary; the
    shared plane must come back to zero segments all the same."""
    watchdog = SLOWatchdog(parse_slo_rules("max_k=2"), stream=io.StringIO())
    journal = Journal(TelemetrySink(watchdog=watchdog))
    world = make_world(7, "serial", journal=journal, data_plane="shared")
    config = MRGMeansConfig(seed=7, checkpoint_dir="ck/slo")
    with pytest.raises(SLOViolationError):
        MRGMeans(world.runtime, config).fit(world.dataset)
    world.dfs.release()
    assert dataplane.active_segments() == []
    assert dataplane.orphaned_system_segments() == []


def test_analytics_fields_recorded_and_deterministic():
    """The analytics instrumentation rides the determinism contract.

    The reduce-phase shuffle-skew attributes and the per-iteration
    ``strategy_decision`` events are derived purely from job data, so
    they must appear in every backend's journal with identical values
    (they are part of the canonical form the previous test compares).
    """
    sink = InMemoryJournalSink()
    gmeans_signature(7, "serial", journal=Journal(sink))
    records = canonical_records(sink.records)

    decisions = [
        r
        for r in records
        if r["type"] == "event" and r["name"] == "strategy_decision"
    ]
    assert decisions, "no strategy_decision events journalled"
    for event in decisions:
        attrs = event["attrs"]
        for key in (
            "strategy",
            "rule_strategy",
            "forced",
            "clusters_to_test",
            "max_cluster_points",
            "predicted_heap_bytes",
            "usable_heap_bytes",
            "total_reduce_slots",
        ):
            assert key in attrs, key

    reduce_starts = {
        r["span"]
        for r in records
        if r["type"] == "span_start"
        and r.get("kind") == "phase"
        and r["name"] == "reduce"
    }
    assert reduce_starts
    skewed = [
        r
        for r in records
        if r["type"] == "span_end"
        and r["span"] in reduce_starts
        and "bucket_records" in r["attrs"]
    ]
    assert len(skewed) == len(reduce_starts)
    for end in skewed:
        attrs = end["attrs"]
        assert len(attrs["bucket_records"]) == len(attrs["bucket_bytes"])
        assert attrs["distinct_keys"] >= 1

    job_ends = [
        r
        for r in records
        if r["type"] == "span_end" and r["attrs"].get("status") == "ok"
        and "timing" in r["attrs"]
    ]
    assert job_ends
    assert all("nodes" in r["attrs"] for r in job_ends)
