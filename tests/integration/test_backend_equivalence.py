"""End-to-end backend equivalence: full algorithms, identical results.

The unit suite proves single jobs are byte-identical across executor
backends; these tests prove the property survives whole algorithm runs
— dozens of chained jobs whose inputs depend on previous outputs, so
any scheduling leak would compound and show up in the final centers.
"""

import numpy as np
import pytest

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.core.multi_kmeans import MultiKMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import build_world
from repro.observability.journal import (
    InMemoryJournalSink,
    Journal,
    canonical_records,
)

BACKENDS = ("serial", "threads", "processes")
SEEDS = (1, 7, 23)


def make_world(seed: int, backend: str, journal=None):
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=seed
    )
    return build_world(
        mixture,
        nodes=2,
        target_splits=6,
        executor=backend,
        num_workers=2,
        journal=journal,
    )


def gmeans_signature(seed: int, backend: str, journal=None):
    world = make_world(seed, backend, journal=journal)
    result = MRGMeans(world.runtime, MRGMeansConfig(seed=seed)).fit(
        world.dataset
    )
    return (
        result.k_found,
        result.iterations,
        result.completed,
        result.centers.tobytes(),
        result.centers.shape,
    )


def multi_kmeans_signature(seed: int, backend: str):
    world = make_world(seed, backend)
    result = MultiKMeans(
        world.runtime, k_min=1, k_max=5, iterations=4, seed=seed
    ).fit(world.dataset)
    return (
        result.best_k,
        {k: c.tobytes() for k, c in result.centers_by_k.items()},
        {k: float(v) for k, v in result.wcss_by_k.items()},
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_gmeans_identical_across_backends(seed):
    reference = gmeans_signature(seed, "serial")
    for backend in BACKENDS[1:]:
        assert gmeans_signature(seed, backend) == reference, backend


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_kmeans_identical_across_backends(seed):
    reference = multi_kmeans_signature(seed, "serial")
    for backend in BACKENDS[1:]:
        assert multi_kmeans_signature(seed, backend) == reference, backend


def test_gmeans_finds_same_sane_k_on_every_backend():
    """Not just mutually equal — a plausible answer for 3 planted blobs.

    (At this 600-point scale G-means may legitimately over-split by
    one; the point here is that every backend lands on the *same*
    plausible k, not that the tiny dataset is easy.)
    """
    ks = {backend: gmeans_signature(31, backend)[0] for backend in BACKENDS}
    assert len(set(ks.values())) == 1
    assert 2 <= ks["serial"] <= 5


def test_results_identical_with_journal_on_or_off():
    """Journalling must observe the run, never perturb it."""
    plain = gmeans_signature(7, "serial")
    journalled = gmeans_signature(7, "serial", journal=Journal(InMemoryJournalSink()))
    assert journalled == plain


def test_journal_canonical_form_identical_across_backends():
    """Same seeded run → same journal on every backend, modulo wall clock.

    Everything nondeterministic in a journal lives in ``wall*`` keys;
    after stripping them the three backends must have recorded the
    exact same sequence of spans, tasks and events.
    """
    journals = {}
    for backend in BACKENDS:
        sink = InMemoryJournalSink()
        gmeans_signature(7, backend, journal=Journal(sink))
        journals[backend] = canonical_records(sink.records)
    reference = journals["serial"]
    assert reference  # the run actually recorded something
    kinds = {r.get("kind") for r in reference if r["type"] == "span_start"}
    assert kinds == {"run", "iteration", "job", "phase"}
    for backend in BACKENDS[1:]:
        assert journals[backend] == reference, backend


def test_analytics_fields_recorded_and_deterministic():
    """The analytics instrumentation rides the determinism contract.

    The reduce-phase shuffle-skew attributes and the per-iteration
    ``strategy_decision`` events are derived purely from job data, so
    they must appear in every backend's journal with identical values
    (they are part of the canonical form the previous test compares).
    """
    sink = InMemoryJournalSink()
    gmeans_signature(7, "serial", journal=Journal(sink))
    records = canonical_records(sink.records)

    decisions = [
        r
        for r in records
        if r["type"] == "event" and r["name"] == "strategy_decision"
    ]
    assert decisions, "no strategy_decision events journalled"
    for event in decisions:
        attrs = event["attrs"]
        for key in (
            "strategy",
            "rule_strategy",
            "forced",
            "clusters_to_test",
            "max_cluster_points",
            "predicted_heap_bytes",
            "usable_heap_bytes",
            "total_reduce_slots",
        ):
            assert key in attrs, key

    reduce_starts = {
        r["span"]
        for r in records
        if r["type"] == "span_start"
        and r.get("kind") == "phase"
        and r["name"] == "reduce"
    }
    assert reduce_starts
    skewed = [
        r
        for r in records
        if r["type"] == "span_end"
        and r["span"] in reduce_starts
        and "bucket_records" in r["attrs"]
    ]
    assert len(skewed) == len(reduce_starts)
    for end in skewed:
        attrs = end["attrs"]
        assert len(attrs["bucket_records"]) == len(attrs["bucket_bytes"])
        assert attrs["distinct_keys"] >= 1

    job_ends = [
        r
        for r in records
        if r["type"] == "span_end" and r["attrs"].get("status") == "ok"
        and "timing" in r["attrs"]
    ]
    assert job_ends
    assert all("nodes" in r["attrs"] for r in job_ends)
