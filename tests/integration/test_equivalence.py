"""MR implementations vs serial oracles on identical inputs."""

import numpy as np
import pytest

from repro.clustering.gmeans import GMeansOptions, gmeans
from repro.clustering.lloyd import lloyd_kmeans
from repro.core import MRGMeans, MRGMeansConfig, MRKMeans
from repro.data.generator import demo_r2_dataset, generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def make_runtime(points, split_bytes=8192, seed=61):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    return MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=seed), f


def test_mr_kmeans_bitwise_tracks_lloyd_per_iteration(small_mixture):
    """Iteration by iteration, MR k-means reproduces serial Lloyd."""
    pts = small_mixture.points
    init = pts[[10, 310, 590]]
    runtime, f = make_runtime(pts)
    serial = init.copy()
    mr = init.copy()
    from repro.clustering.lloyd import lloyd_step
    from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job

    for i in range(5):
        serial, _, _ = lloyd_step(pts, serial)
        result = runtime.run(make_kmeans_job(mr, 4, name=f"it{i}"), f)
        mr, _ = decode_kmeans_output(result.output, mr)
        assert np.allclose(mr, serial, atol=1e-9), f"diverged at iteration {i}"


def test_mr_gmeans_k_close_to_serial_gmeans(demo_mixture):
    serial = gmeans(
        demo_mixture.points, GMeansOptions(child_init="random"), rng=3
    )
    runtime, f = make_runtime(demo_mixture.points)
    mr = MRGMeans(runtime, MRGMeansConfig(seed=3)).fit(f)
    assert abs(mr.k_found - serial.k) <= 3
    # Quality within 20% of the serial oracle.
    from repro.clustering.metrics import wcss

    mr_wcss = wcss(demo_mixture.points, mr.centers)
    assert mr_wcss <= serial.inertia * 1.2


def test_mr_kmeans_quality_matches_serial_with_same_budget(small_mixture):
    pts = small_mixture.points
    runtime, f = make_runtime(pts)
    init = pts[[1, 101, 201]]
    mr = MRKMeans(runtime, k=3, max_iterations=10).fit(f, initial_centers=init)
    serial = lloyd_kmeans(pts, init=init, max_iterations=10)
    from repro.clustering.metrics import wcss

    assert wcss(pts, mr.centers) == pytest.approx(serial.inertia, rel=1e-6)


def test_split_layout_does_not_change_kmeans_result(small_mixture):
    """Sum-based reduction is associative: 2 splits or 20 splits give
    identical centers."""
    pts = small_mixture.points
    init = pts[[7, 77, 377]]
    results = []
    for split_bytes in (2048, 32768):
        runtime, f = make_runtime(pts, split_bytes=split_bytes)
        mr = MRKMeans(runtime, k=3, max_iterations=8).fit(f, initial_centers=init)
        results.append(mr.centers)
    assert np.allclose(results[0], results[1], atol=1e-9)
