"""Runtime features (faults, locality) under the full algorithms."""

import numpy as np
import pytest

from repro.core import MRGMeans, MRGMeansConfig, MRXMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.faults import FaultModel, TASK_FAILURES
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.locality import DATA_LOCAL_TASKS, REMOTE_TASKS
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def mixture():
    return generate_gaussian_mixture(3000, 5, 4, rng=301)


def make_runtime(points, seed=303, **runtime_kwargs):
    dfs = InMemoryDFS(split_size_bytes=8192)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=3), rng=seed, **runtime_kwargs
    )
    return runtime, f


def test_gmeans_result_invariant_under_faults(mixture):
    clean_runtime, clean_f = make_runtime(mixture.points)
    clean = MRGMeans(clean_runtime, MRGMeansConfig(seed=9)).fit(clean_f)

    faulty_runtime, faulty_f = make_runtime(
        mixture.points,
        faults=FaultModel(
            task_failure_probability=0.2,
            straggler_probability=0.2,
            max_attempts=20,
        ),
    )
    faulty = MRGMeans(faulty_runtime, MRGMeansConfig(seed=9)).fit(faulty_f)

    assert faulty.k_found == clean.k_found
    assert np.allclose(
        np.sort(faulty.centers, axis=0), np.sort(clean.centers, axis=0)
    )
    assert faulty.totals.simulated_seconds > clean.totals.simulated_seconds
    assert faulty.totals.counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0


def test_gmeans_result_invariant_under_locality(mixture):
    plain_runtime, plain_f = make_runtime(mixture.points)
    plain = MRGMeans(plain_runtime, MRGMeansConfig(seed=9)).fit(plain_f)

    local_runtime, local_f = make_runtime(mixture.points, locality=True)
    local = MRGMeans(local_runtime, MRGMeansConfig(seed=9)).fit(local_f)

    assert local.k_found == plain.k_found
    counters = local.totals.counters
    scheduled = counters.get(FRAMEWORK_GROUP, DATA_LOCAL_TASKS) + counters.get(
        FRAMEWORK_GROUP, REMOTE_TASKS
    )
    assert scheduled > 0


def test_xmeans_runs_under_speculative_faults(mixture):
    runtime, f = make_runtime(
        mixture.points,
        faults=FaultModel(
            straggler_probability=0.3, speculative_execution=True
        ),
    )
    result = MRXMeans(runtime, seed=9).fit(f)
    assert 4 <= result.k_found <= 7


def test_fault_storm_kills_the_run(mixture):
    from repro.common.errors import JobFailedError

    runtime, f = make_runtime(
        mixture.points,
        faults=FaultModel(task_failure_probability=1.0, max_attempts=2),
    )
    with pytest.raises(JobFailedError):
        MRGMeans(runtime, MRGMeansConfig(seed=9)).fit(f)
