"""The journal acceptance test: record a chaos run, replay it, and
cross-check the reconstruction against the live run's own accounting.

A journal is only trustworthy if a replay of its records reproduces
exactly what the run reported about itself: the final counter totals,
the simulated runtime, every retried attempt, every fault event, and —
for a killed-and-resumed chain — the checkpoint baseline the revived
driver started from.
"""

import pytest

from repro.common.errors import JobFailedError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.faults import TASK_FAILURES, FaultModel
from repro.mapreduce.hdfs import BlockFaultModel, InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records

MIXTURE = generate_gaussian_mixture(
    n_points=600, n_clusters=3, dimensions=2, rng=7
)

RUNTIME_SEED = 99
CONFIG = dict(seed=5, checkpoint_dir="ck/gmeans", max_iterations=10)


@pytest.fixture(autouse=True)
def _clean_data_plane():
    """Isolate each test's shared-segment accounting (earlier tests may
    run under ``$REPRO_DATA_PLANE=shared`` without releasing)."""
    from repro.mapreduce import dataplane

    dataplane.release_all()
    yield
    dataplane.release_all()


def chaos_world(journal, dfs=None, data_plane=None, executor="serial"):
    """A flaky world: task faults, lossy blocks, retries — journalled."""
    if dfs is None:
        dfs = InMemoryDFS(
            split_size_bytes=4096,
            fault_model=BlockFaultModel(replica_loss_probability=0.02, seed=3),
            data_plane=data_plane,
        )
        write_points(dfs, "points", MIXTURE.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        faults=FaultModel(task_failure_probability=0.12, max_attempts=2),
        config=RuntimeConfig(
            max_job_retries=20,
            retry_backoff_seconds=5.0,
            executor=executor,
            num_workers=2,
        ),
        journal=journal,
    )
    return dfs, runtime


def test_chaos_journal_replay_matches_live_accounting():
    """Replay totals == the run's own Counters and simulated seconds."""
    sink = InMemoryJournalSink()
    _dfs, runtime = chaos_world(Journal(sink))
    result = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
    replay = replay_records(sink.records)

    # The headline cross-check: folding the journal's successful job
    # spans back together reproduces the live run's totals exactly.
    totals = result.totals
    assert replay.total_counters().snapshot() == totals.counters.snapshot()
    assert replay.total_simulated_seconds() == totals.simulated_seconds

    # The chaos actually happened and was recorded as it happened:
    # retried attempts appear as failed job spans next to retry events,
    counters = totals.counters
    retries = counters.get(FRAMEWORK_GROUP, MRCounter.JOB_RETRIES)
    assert retries > 0
    failed = [j for j in replay.jobs() if j.get("status") == "failed"]
    assert len(failed) == retries
    assert len(replay.events_named("job_retry")) == retries
    assert len(replay.successful_jobs()) == totals.jobs

    # task-level faults surface as events under their phase spans,
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0
    assert replay.events_named("task_attempt_failures")

    # block loss shows up as replica failovers + healing re-replication,
    assert replay.events_named("replica_failover")
    assert replay.events_named("re_replication")

    # and every iteration's checkpoint write is on the record.
    writes = replay.events_named("checkpoint_write")
    assert len(writes) == result.iterations
    assert all(w.attrs["bytes"] > 0 for w in writes)


def test_chaos_journal_canonical_form_identical_across_planes():
    """The same chaotic run journals identically on either data plane.

    Fault injection draws from seeded RNGs in the submitting process,
    so even the retries, replica failovers and re-replications land in
    the same order whether splits travel by pickle or shared memory —
    the canonical journals must match record for record."""
    from repro.mapreduce import dataplane
    from repro.observability.journal import canonical_records

    journals = {}
    for plane in ("pickled", "shared"):
        sink = InMemoryJournalSink()
        dfs, runtime = chaos_world(Journal(sink), data_plane=plane)
        MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
        dfs.release()
        journals[plane] = canonical_records(sink.records)
    assert dataplane.active_segments() == []
    assert journals["pickled"]
    assert journals["shared"] == journals["pickled"]


def test_resumed_run_journal_carries_checkpoint_baseline():
    """Kill mid-chain, resume under a fresh journal: the new journal's
    checkpoint_restore baseline + its own jobs == the final totals."""

    class KillingRuntime(MapReduceRuntime):
        def run(self, job, input_file, cached=False):
            if job.name.startswith("KMeans-i3"):
                raise JobFailedError(f"injected failure at {job.name}")
            return super().run(job, input_file, cached=cached)

    dfs = InMemoryDFS(split_size_bytes=4096)
    write_points(dfs, "points", MIXTURE.points)
    killer = KillingRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        journal=Journal(InMemoryJournalSink()),
    )
    with pytest.raises(JobFailedError, match="injected failure"):
        MRGMeans(killer, MRGMeansConfig(**CONFIG)).fit("points")

    # Driver restart: new runtime, new journal, same DFS checkpoints.
    sink = InMemoryJournalSink()
    revived = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        journal=Journal(sink),
    )
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )
    replay = replay_records(sink.records)

    restores = replay.restored_baselines()
    assert len(restores) == 1
    assert restores[0].attrs["name"] == "ck/gmeans/iter-00002"
    baseline_seconds = restores[0].attrs["simulated_seconds"]
    assert 0.0 < baseline_seconds < resumed.totals.simulated_seconds

    # Totals still reconcile exactly: restored baseline + resumed jobs.
    totals = resumed.totals
    assert replay.total_counters().snapshot() == totals.counters.snapshot()
    assert replay.total_simulated_seconds() == totals.simulated_seconds
    assert (
        len(replay.successful_jobs()) + restores[0].attrs["jobs"]
        == totals.jobs
    )


def test_chaos_critical_path_reconciles_across_backend_plane_matrix():
    """Exact reconciliation survives chaos in every matrix cell, and the
    canonical critical path is byte-identical across cells.

    Retries, replica failovers and heartbeat charges all ride the
    journal's simulated accounting; the critical-path extractor
    replicates the replay's exact float fold, so in every (executor
    backend × data plane) cell the path length equals both the replay's
    and the live run's simulated seconds bit for bit — and, because it
    reads canonical fields only, serializes to the same bytes."""
    import json

    from repro.mapreduce import dataplane
    from repro.observability.critical import critical_path

    paths = {}
    for backend in ("serial", "threads", "processes"):
        for plane in ("pickled", "shared"):
            sink = InMemoryJournalSink()
            dfs, runtime = chaos_world(
                Journal(sink), data_plane=plane, executor=backend
            )
            result = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit("points")
            dfs.release()
            replay = replay_records(sink.records)
            path = critical_path(replay)
            assert path.reconciled, (backend, plane)
            assert path.total_seconds == result.totals.simulated_seconds
            assert path.off_path, "chaos produced no failed attempts"
            assert path.blame["retries"] > 0
            paths[backend, plane] = json.dumps(path.as_dict(), sort_keys=True)
    assert dataplane.active_segments() == []
    reference = paths["serial", "pickled"]
    for cell, payload in paths.items():
        assert payload == reference, cell
