"""Fault recovery end-to-end: kill, resume, retry, degrade — same answer.

The contract under test: faults and recovery perturb *time*, never
*results*. A G-means chain killed mid-run and resumed from its DFS
checkpoint must produce the byte-identical result an uninterrupted run
produces; a chain that rides out injected task/block faults via job
retries must match the fault-free baseline.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, JobFailedError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce import dataplane
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.hdfs import BlockFaultModel, InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(autouse=True)
def _clean_data_plane():
    """Start (and leave) each test with no shared segments: earlier
    tests may run under ``$REPRO_DATA_PLANE=shared`` without releasing
    their worlds, and the leak assertions here are global."""
    dataplane.release_all()
    yield
    dataplane.release_all()

MIXTURE = generate_gaussian_mixture(
    n_points=600, n_clusters=3, dimensions=2, rng=7
)

RUNTIME_SEED = 99
CONFIG = dict(seed=5, checkpoint_dir="ck/gmeans", max_iterations=10)


class KillingRuntime(MapReduceRuntime):
    """Fails every job whose name starts with one of ``kill_prefixes`` —
    a deterministic stand-in for the driver dying mid-chain."""

    def __init__(self, *args, kill_prefixes=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.kill_prefixes = tuple(kill_prefixes)

    def run(self, job, input_file, cached=False):
        if job.name.startswith(self.kill_prefixes or ("\0",)):
            raise JobFailedError(f"injected failure at {job.name}")
        return super().run(job, input_file, cached=cached)


def fresh_world(
    runtime_cls=MapReduceRuntime,
    faults=None,
    config=None,
    data_plane=None,
    **kw,
):
    dfs = InMemoryDFS(split_size_bytes=4096, data_plane=data_plane)
    f = write_points(dfs, "points", MIXTURE.points)
    runtime = runtime_cls(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        faults=faults,
        config=config,
        **kw,
    )
    return dfs, f, runtime


def signature(result):
    return {
        "k_found": result.k_found,
        "iterations": result.iterations,
        "completed": result.completed,
        "centers": result.centers.tobytes(),
        "shape": result.centers.shape,
        "seconds": result.totals.simulated_seconds,
        "counters": result.totals.counters.snapshot(),
        "history": [
            (
                s.iteration,
                s.k_before,
                s.k_after,
                s.clusters_tested,
                s.clusters_split,
                s.clusters_found,
                s.strategy,
                s.simulated_seconds,
                s.centers.tobytes(),
                s.degraded,
            )
            for s in result.history
        ],
    }


def test_killed_chain_resumes_byte_identical():
    """The acceptance test: kill at iteration 3, resume, same bytes."""
    _dfs, f, runtime = fresh_world()
    baseline = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit(f)
    assert baseline.iterations >= 3  # the kill point must be mid-chain

    dfs, f2, killer = fresh_world(
        KillingRuntime, kill_prefixes=("KMeans-i3",)
    )
    with pytest.raises(JobFailedError, match="injected failure"):
        MRGMeans(killer, MRGMeansConfig(**CONFIG)).fit(f2)
    # The chain died, but its checkpoints survive in the DFS.
    assert "ck/gmeans/iter-00002" in dfs.listdir()

    # Simulated driver restart: a brand-new runtime over the same DFS.
    revived = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
    )
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )
    assert signature(resumed) == signature(baseline)


def test_resume_from_explicit_checkpoint_infers_directory():
    _dfs, f, runtime = fresh_world()
    baseline = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit(f)

    dfs2, f2, runtime2 = fresh_world()
    MRGMeans(runtime2, MRGMeansConfig(**CONFIG)).fit(f2)
    revived = MapReduceRuntime(
        dfs2,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
    )
    # No checkpoint_dir in the config: the path carries it.
    resumed = MRGMeans(
        revived, MRGMeansConfig(seed=5, max_iterations=10)
    ).fit("points", resume_from="ck/gmeans/iter-00001")
    assert signature(resumed) == signature(baseline)


def test_resume_env_var_drives_fit(monkeypatch):
    from repro.core.config import RESUME_ENV

    _dfs, f, runtime = fresh_world()
    baseline = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit(f)

    dfs2, f2, runtime2 = fresh_world()
    MRGMeans(runtime2, MRGMeansConfig(**CONFIG)).fit(f2)
    revived = MapReduceRuntime(
        dfs2,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
    )
    monkeypatch.setenv(RESUME_ENV, "latest")
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit("points")
    assert signature(resumed) == signature(baseline)


def test_resume_latest_without_checkpoints_is_fresh_run():
    """``--resume latest`` on a virgin DFS just starts from scratch."""
    _dfs, f, runtime = fresh_world()
    baseline = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit(f)
    _dfs2, f2, runtime2 = fresh_world()
    result = MRGMeans(runtime2, MRGMeansConfig(**CONFIG)).fit(
        f2, resume_from="latest"
    )
    assert signature(result) == signature(baseline)


def test_resume_without_checkpointing_config_rejected():
    _dfs, f, runtime = fresh_world()
    gmeans = MRGMeans(runtime, MRGMeansConfig(seed=5))
    with pytest.raises(ConfigurationError, match="checkpoint"):
        gmeans.fit(f, resume_from="latest")


def test_job_retries_ride_out_task_faults():
    """Flaky tasks + job retry: same results as fault-free, more time."""
    _dfs, f, clean_runtime = fresh_world()
    clean = MRGMeans(clean_runtime, MRGMeansConfig(seed=5)).fit(f)

    _dfs2, f2, flaky_runtime = fresh_world(
        faults=FaultModel(task_failure_probability=0.12, max_attempts=2),
        config=RuntimeConfig(max_job_retries=20, retry_backoff_seconds=5.0),
    )
    survived = MRGMeans(flaky_runtime, MRGMeansConfig(seed=5)).fit(f2)
    assert survived.centers.tobytes() == clean.centers.tobytes()
    assert survived.k_found == clean.k_found
    assert survived.iterations == clean.iterations
    counters = survived.totals.counters
    assert counters.get(FRAMEWORK_GROUP, MRCounter.JOB_RETRIES) > 0
    assert survived.totals.simulated_seconds > clean.totals.simulated_seconds


def test_block_faults_heal_without_changing_results():
    _dfs, f, clean_runtime = fresh_world()
    clean = MRGMeans(clean_runtime, MRGMeansConfig(seed=5)).fit(f)

    dfs2 = InMemoryDFS(
        split_size_bytes=4096,
        fault_model=BlockFaultModel(replica_loss_probability=0.02, seed=3),
    )
    f2 = write_points(dfs2, "points", MIXTURE.points)
    runtime2 = MapReduceRuntime(
        dfs2,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        config=RuntimeConfig(max_job_retries=3),
    )
    healed = MRGMeans(runtime2, MRGMeansConfig(seed=5)).fit(f2)
    assert healed.centers.tobytes() == clean.centers.tobytes()
    assert healed.k_found == clean.k_found
    counters = healed.totals.counters
    assert counters.get(FRAMEWORK_GROUP, MRCounter.REPLICA_READS) > 0
    assert dfs2.replicas_lost > 0
    assert dfs2.re_replications == dfs2.replicas_lost


def test_degraded_test_job_keeps_clusters_and_terminates():
    """A permanently failed test job degrades, it does not abort."""
    _dfs, f, runtime = fresh_world(
        KillingRuntime,
        kill_prefixes=("TestClusters-i1", "TestFewClusters-i1"),
    )
    result = MRGMeans(runtime, MRGMeansConfig(seed=5, max_iterations=10)).fit(f)
    assert result.completed
    first = result.history[0]
    assert first.degraded
    # The conservative policy: nothing split, every tested cluster kept.
    assert first.clusters_split == 0
    assert first.k_after == first.k_before
    assert not any(s.degraded for s in result.history[1:])


def test_chaos_environment_matches_clean_baseline(monkeypatch):
    """The ``make chaos`` contract: env-injected faults, equal results."""
    _dfs, f, clean_runtime = fresh_world()
    clean = MRGMeans(clean_runtime, MRGMeansConfig(seed=5)).fit(f)

    monkeypatch.setenv("REPRO_TASK_FAILURE_PROB", "0.05")
    monkeypatch.setenv("REPRO_BLOCK_LOSS_PROB", "0.02")
    monkeypatch.setenv("REPRO_MAX_JOB_RETRIES", "3")
    dfs2 = InMemoryDFS(split_size_bytes=4096)
    f2 = write_points(dfs2, "points", MIXTURE.points)
    runtime2 = MapReduceRuntime(
        dfs2,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
    )
    chaotic = MRGMeans(runtime2, MRGMeansConfig(seed=5)).fit(f2)
    assert chaotic.centers.tobytes() == clean.centers.tobytes()
    assert chaotic.k_found == clean.k_found
    assert chaotic.iterations == clean.iterations


def test_killed_chain_resumes_byte_identical_under_shared_plane():
    """Kill + resume with shared-memory splits: same bytes as the
    uninterrupted pickled baseline, and the teardown releases every
    segment the killed-and-revived chain created."""
    baseline_dfs, f, runtime = fresh_world()
    baseline = MRGMeans(runtime, MRGMeansConfig(**CONFIG)).fit(f)
    baseline_dfs.release()  # $REPRO_DATA_PLANE may have shared this one too

    dfs, f2, killer = fresh_world(
        KillingRuntime, kill_prefixes=("KMeans-i3",), data_plane="shared"
    )
    assert dataplane.active_segments()  # dataset splits live in segments
    with pytest.raises(JobFailedError, match="injected failure"):
        MRGMeans(killer, MRGMeansConfig(**CONFIG)).fit(f2)

    revived = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
    )
    resumed = MRGMeans(revived, MRGMeansConfig(**CONFIG)).fit(
        "points", resume_from="latest"
    )
    assert signature(resumed) == signature(baseline)
    dfs.release()
    assert dataplane.active_segments() == []
    assert dataplane.orphaned_system_segments() == []


def test_block_faults_heal_under_shared_plane():
    """Replica loss and re-replication with shared-memory splits: total
    block loss releases the split's segment, healing keeps results
    byte-identical, and nothing leaks once the DFS is torn down."""
    clean_dfs, f, clean_runtime = fresh_world()
    clean = MRGMeans(clean_runtime, MRGMeansConfig(seed=5)).fit(f)
    clean_dfs.release()  # $REPRO_DATA_PLANE may have shared this one too

    dfs2 = InMemoryDFS(
        split_size_bytes=4096,
        fault_model=BlockFaultModel(replica_loss_probability=0.02, seed=3),
        data_plane="shared",
    )
    f2 = write_points(dfs2, "points", MIXTURE.points)
    runtime2 = MapReduceRuntime(
        dfs2,
        cluster=ClusterConfig(nodes=2, task_heap_mb=64),
        rng=RUNTIME_SEED,
        config=RuntimeConfig(max_job_retries=3),
    )
    healed = MRGMeans(runtime2, MRGMeansConfig(seed=5)).fit(f2)
    assert healed.centers.tobytes() == clean.centers.tobytes()
    assert healed.k_found == clean.k_found
    assert dfs2.replicas_lost > 0
    assert dfs2.re_replications == dfs2.replicas_lost
    dfs2.release()
    assert dataplane.active_segments() == []
    assert dataplane.orphaned_system_segments() == []


def test_heap_exhaustion_is_never_degraded_or_retried():
    """Figure 2's deterministic heap crash still aborts the chain —
    degradation and job retry only apply to fault-induced failures."""
    from repro.common.errors import JavaHeapSpaceError

    mixture = generate_gaussian_mixture(40_000, 2, 3, rng=73)
    dfs = InMemoryDFS(split_size_bytes=65536)
    f = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2, task_heap_mb=1),
        rng=RUNTIME_SEED,
        config=RuntimeConfig(max_job_retries=5),
    )
    gmeans = MRGMeans(runtime, MRGMeansConfig(seed=7, strategy="reducer"))
    with pytest.raises(JobFailedError, match="Java heap space") as err:
        gmeans.fit(f)
    assert isinstance(err.value.cause, JavaHeapSpaceError)
