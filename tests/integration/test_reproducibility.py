"""End-to-end reproducibility: experiments are bit-for-bit repeatable.

The whole repository's claim — "regenerating EXPERIMENTS.md reproduces
it byte for byte" — rests on every experiment being a pure function of
its seeds. These tests run representative experiments twice and demand
identical *rendered output*, which transitively pins every counter,
every center, and every simulated second.
"""

import pytest

from repro.evaluation import ablations, experiments


@pytest.mark.parametrize(
    "runner, kwargs",
    [
        (experiments.fig1_center_evolution, {"n_points": 800, "seed": 1}),
        (
            experiments.table1_gmeans_scaling,
            {"ks": [4, 8], "n_points": 4000, "seed": 3},
        ),
        (
            experiments.table2_multi_kmeans,
            {"ks": [4, 8], "n_points": 3000, "iterations": 1, "seed": 4},
        ),
        (
            experiments.table4_node_scaling,
            {"nodes_list": [2, 4], "n_points": 10_000, "k_real": 4, "seed": 7},
        ),
        (
            ablations.ablation_vote_rules,
            {"k_real": 4, "n_points": 4000, "seed": 19},
        ),
    ],
)
def test_experiment_output_is_bit_identical(runner, kwargs):
    first = runner(**kwargs)
    second = runner(**kwargs)
    assert first.text == second.text
    assert first.rows == second.rows


def test_report_generation_is_deterministic(tmp_path):
    from repro.evaluation.report import generate_report

    runners = {
        "tiny": lambda: experiments.fig1_center_evolution(
            n_points=600, seed=2
        )
    }
    assert generate_report(runners=runners) == generate_report(runners=runners)
