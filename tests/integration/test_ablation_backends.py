"""The ablation/tune engines ride the determinism contract.

An importance report contains only simulated, replay-accounted fields,
so the same seeded grid must serialize byte-identically no matter which
executor backend actually ran the tasks — the engine's infrastructure
rows *assert* the contract per flip; these tests assert it for the
report artifact as a whole.
"""

import json

from repro.observability.ablate import (
    WorkloadSpec,
    run_ablation,
    write_importance,
)
from repro.observability.tune import default_tune_spec, run_tune

BACKENDS = ("serial", "threads", "processes")

SPEC = WorkloadSpec(n_points=500)


def grid_bytes(tmp_path, backend, monkeypatch) -> bytes:
    monkeypatch.setenv("REPRO_EXECUTOR", backend)
    report = run_ablation(SPEC, components=["combiner", "split_factor"])
    out_dir = tmp_path / backend
    written = write_importance(report, out_dir=str(out_dir))
    return open(written["json"], "rb").read()


def test_ablation_report_byte_identical_across_backends(
    tmp_path, monkeypatch
):
    reference = grid_bytes(tmp_path, "serial", monkeypatch)
    assert json.loads(reference)["ok"]
    for backend in BACKENDS[1:]:
        assert grid_bytes(tmp_path, backend, monkeypatch) == reference, backend


def test_tune_report_identical_across_backends(monkeypatch):
    spec = default_tune_spec(n_points=1200)
    results = {}
    for backend in ("serial", "threads"):
        monkeypatch.setenv("REPRO_EXECUTOR", backend)
        report = run_tune(spec, top_n=2)
        results[backend] = json.dumps(report.as_dict(), sort_keys=True)
    assert results["serial"] == results["threads"]
    assert json.loads(results["serial"])["ok"]


def test_full_grid_infrastructure_rows_confirm_invariance():
    """The committed-report shape of the contract: every infrastructure
    flip in a full grid reports invariant_ok with all-zero deltas."""
    report = run_ablation(SPEC)
    infra = [v for v in report.variants if v.simulated_invariant]
    assert {v.component for v in infra} == {
        "executor",
        "dispatch",
        "data_plane",
    }
    for v in infra:
        assert v.invariant_ok, v.component
        assert v.delta_makespan == 0.0
        assert v.delta_shuffle_bytes == 0
        assert v.delta_wasted_seconds == 0.0
        assert v.events_delta == {}
