"""Full-fidelity text mode: every job consumes text splits directly.

Datasets written with ``write_points_as_text`` store actual encoded
lines; the RecordReader shim in ``repro.core.records`` decodes them
inside each mapper, exercising the codec through the whole pipeline.
"""

import numpy as np
import pytest

from repro.core import MRGMeans, MRGMeansConfig, MRKMeans, MultiKMeans
from repro.core.records import RECORDS_PARSED, first_split_points, record_point, split_points
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points, write_points_as_text
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import USER_GROUP
from repro.mapreduce.hdfs import InMemoryDFS, Split
from repro.mapreduce.job import MapContext
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def worlds():
    """The same mixture stored in numpy mode and in text mode."""
    mixture = generate_gaussian_mixture(1500, 4, 3, rng=201)
    dfs = InMemoryDFS(split_size_bytes=8192)
    write_points(dfs, "binary", mixture.points)
    write_points_as_text(dfs, "text", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=203)
    return mixture, runtime


def test_split_points_decodes_text(worlds):
    mixture, runtime = worlds
    text_split = runtime.dfs.open("text").splits[0]
    ctx = MapContext({}, Counters(), np.random.default_rng(0), 1 << 20, "t")
    decoded = split_points(text_split, ctx)
    assert decoded.shape[1] == mixture.dimensions
    assert ctx.counters.get(USER_GROUP, RECORDS_PARSED) == decoded.shape[0]


def test_split_points_passthrough_numpy(worlds):
    mixture, runtime = worlds
    binary_split = runtime.dfs.open("binary").splits[0]
    ctx = MapContext({}, Counters(), np.random.default_rng(0), 1 << 20, "t")
    out = split_points(binary_split, ctx)
    assert out is binary_split.records
    assert ctx.counters.get(USER_GROUP, RECORDS_PARSED) == 0


def test_record_point_both_forms():
    assert np.array_equal(record_point("1.5,2.5"), [1.5, 2.5])
    assert np.array_equal(record_point(np.array([1.5, 2.5])), [1.5, 2.5])


def test_first_split_points_text(worlds):
    _, runtime = worlds
    pts = first_split_points(runtime.dfs.open("text"))
    assert pts.ndim == 2


def test_mr_kmeans_identical_results_in_both_modes(worlds):
    mixture, runtime = worlds
    init = mixture.points[[3, 33, 333, 999]]
    binary = MRKMeans(runtime, k=4, max_iterations=8).fit(
        "binary", initial_centers=init
    )
    text = MRKMeans(runtime, k=4, max_iterations=8).fit(
        "text", initial_centers=init
    )
    assert np.allclose(binary.centers, text.centers, atol=1e-9)


def test_mr_gmeans_runs_on_text_dataset(worlds):
    mixture, runtime = worlds
    result = MRGMeans(runtime, MRGMeansConfig(seed=5)).fit("text")
    assert result.completed
    assert 3 <= result.k_found <= 6


def test_multi_kmeans_runs_on_text_dataset(worlds):
    mixture, runtime = worlds
    result = MultiKMeans(runtime, k_min=2, k_max=5, iterations=3, seed=7).fit("text")
    assert set(result.centers_by_k) == {2, 3, 4, 5}
