"""Heap-pressure behaviour and the hybrid strategy switch, end to end."""

import numpy as np
import pytest

from repro.common.errors import JobFailedError
from repro.core import MRGMeans, MRGMeansConfig
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def build(points, heap_mb, reduce_slots=2, nodes=2, split_bytes=16384, seed=71):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(
            nodes=nodes,
            reduce_slots_per_node=reduce_slots,
            task_heap_mb=heap_mb,
        ),
        rng=seed,
    )
    return runtime, f


def test_forced_reducer_strategy_crashes_on_tight_heap():
    """The misconfiguration the paper's switching rule exists to avoid:
    reducer-side testing of a huge cluster on a small JVM."""
    mixture = generate_gaussian_mixture(40_000, 2, 3, rng=73)
    runtime, f = build(mixture.points, heap_mb=1)
    driver = MRGMeans(runtime, MRGMeansConfig(seed=7, strategy="reducer"))
    with pytest.raises(JobFailedError, match="Java heap space"):
        driver.fit(f)


def test_auto_strategy_survives_tight_heap():
    """Same data, same heap: the paper's rule keeps testing mapper-side
    (per-split samples fit) and the run completes."""
    mixture = generate_gaussian_mixture(40_000, 2, 3, rng=73)
    runtime, f = build(mixture.points, heap_mb=1)
    result = MRGMeans(runtime, MRGMeansConfig(seed=7, strategy="auto")).fit(f)
    assert result.completed
    assert {h.strategy for h in result.history if h.strategy != "none"} == {"mapper"}
    assert 2 <= result.k_found <= 4


def test_auto_switches_to_reducer_when_conditions_met():
    """Many clusters (above reduce capacity) + small per-cluster heap
    need -> the rule switches to reducer-side testing."""
    mixture = generate_gaussian_mixture(
        6000, 12, 3, rng=79, center_low=0, center_high=200, cluster_std=1.0
    )
    runtime, f = build(
        mixture.points, heap_mb=512, reduce_slots=2, nodes=2, seed=83
    )  # capacity 4 < clusters to test once k grows
    result = MRGMeans(runtime, MRGMeansConfig(seed=11, strategy="auto")).fit(f)
    strategies = [h.strategy for h in result.history if h.strategy != "none"]
    assert strategies[0] == "mapper"
    assert "reducer" in strategies


def test_heap_high_water_matches_biggest_cluster():
    mixture = generate_gaussian_mixture(10_000, 1, 4, rng=89)
    runtime, f = build(mixture.points, heap_mb=16)
    from repro.core.test_clusters import make_test_clusters_job

    pair = np.vstack([mixture.points[0], mixture.points[1]])
    job = make_test_clusters_job(
        mixture.points.mean(axis=0, keepdims=True), {0: pair}, 1e-4, 1
    )
    result = runtime.run(job, f)
    assert result.max_reduce_heap_bytes == 10_000 * 64
