"""Cluster topology configuration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.cluster import MIB, PAPER_CLUSTER, ClusterConfig


def test_paper_cluster_matches_testbed():
    """4 nodes, 2 quad-core Xeons each -> 8 slots per node."""
    assert PAPER_CLUSTER.nodes == 4
    assert PAPER_CLUSTER.total_map_slots == 32
    assert PAPER_CLUSTER.total_reduce_slots == 32


def test_slot_totals_scale_with_nodes():
    c = ClusterConfig(nodes=12, map_slots_per_node=8, reduce_slots_per_node=4)
    assert c.total_map_slots == 96
    assert c.total_reduce_slots == 48


def test_heap_bytes_and_usable_fraction():
    c = ClusterConfig(task_heap_mb=100, max_heap_usage=0.66)
    assert c.task_heap_bytes == 100 * MIB
    assert c.usable_heap_bytes == int(100 * MIB * 0.66)


def test_default_max_heap_usage_is_two_thirds():
    assert ClusterConfig().max_heap_usage == pytest.approx(0.66)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"nodes": 0},
        {"map_slots_per_node": 0},
        {"reduce_slots_per_node": -1},
        {"task_heap_mb": 0},
        {"max_heap_usage": 1.5},
        {"max_heap_usage": -0.1},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        ClusterConfig(**kwargs)


def test_config_is_frozen():
    c = ClusterConfig()
    with pytest.raises(AttributeError):
        c.nodes = 8
