"""Chained-job driver: totals and the Spark-style cache option."""

import pytest

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.driver import JobChainDriver
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


class CountMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("n", 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def build():
    dfs = InMemoryDFS(split_size_bytes=64)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=1), rng=1)
    f = dfs.write("data", [f"r{i}" for i in range(20)], bytes_per_record=8)
    return runtime, f


def job(name="count"):
    return Job(name=name, mapper=CountMapper, reducer=SumReducer, num_reduce_tasks=1)


def test_totals_accumulate_across_jobs():
    runtime, f = build()
    driver = JobChainDriver(runtime)
    for i in range(3):
        driver.run(job(f"j{i}"), f)
    assert driver.totals.jobs == 3
    assert driver.totals.dataset_reads == 3
    assert driver.totals.cached_reads == 0
    assert driver.totals.simulated_seconds > 0


def test_cache_input_pays_first_read_only():
    runtime, f = build()
    driver = JobChainDriver(runtime, cache_input=True)
    first = driver.run(job("j0"), f)
    second = driver.run(job("j1"), f)
    assert driver.totals.dataset_reads == 1
    assert driver.totals.cached_reads == 1
    # Cached job spends less simulated time on its map phase.
    assert second.timing.map_seconds <= first.timing.map_seconds


def test_cache_tracks_files_independently():
    runtime, f = build()
    g = runtime.dfs.write("other", ["x"] * 4, bytes_per_record=8)
    driver = JobChainDriver(runtime, cache_input=True)
    driver.run(job("a"), f)
    driver.run(job("b"), g)
    driver.run(job("c"), f)
    assert driver.totals.dataset_reads == 2
    assert driver.totals.cached_reads == 1


def test_totals_expose_algorithm_counters():
    runtime, f = build()
    driver = JobChainDriver(runtime)
    driver.run(job(), f)
    assert driver.totals.distance_computations == 0
    assert driver.totals.ad_tests == 0
    assert driver.totals.cluster_tests == 0
    assert driver.totals.shuffle_bytes > 0


def test_run_accepts_file_name():
    runtime, f = build()
    driver = JobChainDriver(runtime, cache_input=True)
    driver.run(job("a"), "data")
    driver.run(job("b"), "data")
    assert driver.totals.cached_reads == 1


# -- checkpointing driver -----------------------------------------------


def test_checkpoint_file_names_sort_by_iteration():
    from repro.mapreduce.driver import checkpoint_file_name

    names = [checkpoint_file_name("ck", i) for i in (1, 2, 10, 100)]
    assert names == sorted(names)
    assert names[0] == "ck/iter-00001"


def test_save_and_load_checkpoint_roundtrip():
    from repro.mapreduce.driver import CheckpointingJobChainDriver

    runtime, f = build()
    driver = CheckpointingJobChainDriver(
        runtime, cache_input=True, checkpoint_dir="ck"
    )
    driver.run(job("j0"), f)
    driver.run(job("j1"), f)
    payload = {"answer": 41}
    name = driver.save_checkpoint(2, payload)
    assert name == "ck/iter-00002"
    assert runtime.dfs.exists(name)

    # A fresh driver over the same DFS (simulated driver restart).
    runtime2 = MapReduceRuntime(
        runtime.dfs, cluster=ClusterConfig(nodes=1), rng=999
    )
    driver2 = CheckpointingJobChainDriver(
        runtime2, cache_input=True, checkpoint_dir="ck"
    )
    restored = driver2.load_checkpoint(name)
    assert restored.iteration == 2
    assert restored.payload == payload
    assert driver2.totals.jobs == driver.totals.jobs
    assert driver2.totals.simulated_seconds == driver.totals.simulated_seconds
    assert (
        driver2.totals.counters.snapshot() == driver.totals.counters.snapshot()
    )
    # The restored runtime continues the checkpointed RNG streams.
    assert runtime2.rng_state == runtime.rng_state
    # The cache memory survives: the next run is a cached read.
    driver2.run(job("j2"), f)
    assert driver2.totals.cached_reads == driver.totals.cached_reads + 1


def test_latest_checkpoint_picks_highest_iteration():
    from repro.mapreduce.driver import CheckpointingJobChainDriver

    runtime, f = build()
    driver = CheckpointingJobChainDriver(runtime, checkpoint_dir="ck")
    assert driver.latest_checkpoint() is None
    for i in (1, 2, 11):
        driver.save_checkpoint(i, {"i": i})
    # Unrelated files in the directory are ignored.
    runtime.dfs.write("ck/notes", ["x"], bytes_per_record=8)
    assert driver.latest_checkpoint() == "ck/iter-00011"
    assert driver.load_checkpoint().payload == {"i": 11}


def test_checkpoints_overwrite_on_rerun():
    from repro.mapreduce.driver import CheckpointingJobChainDriver

    runtime, _f = build()
    driver = CheckpointingJobChainDriver(runtime, checkpoint_dir="ck")
    driver.save_checkpoint(1, {"pass": 1})
    driver.save_checkpoint(1, {"pass": 2})
    assert driver.load_checkpoint("ck/iter-00001").payload == {"pass": 2}


def test_load_checkpoint_rejects_non_checkpoint_file():
    from repro.common.errors import DataFormatError
    from repro.mapreduce.driver import CheckpointingJobChainDriver

    runtime, _f = build()
    driver = CheckpointingJobChainDriver(runtime, checkpoint_dir="ck")
    runtime.dfs.write("ck/iter-00001", ["not a checkpoint"], bytes_per_record=8)
    with pytest.raises(DataFormatError):
        driver.load_checkpoint("ck/iter-00001")


def test_checkpoint_dir_must_be_non_empty():
    from repro.common.errors import ConfigurationError
    from repro.mapreduce.driver import CheckpointingJobChainDriver

    runtime, _f = build()
    with pytest.raises(ConfigurationError):
        CheckpointingJobChainDriver(runtime, checkpoint_dir="")
