"""Chained-job driver: totals and the Spark-style cache option."""

import pytest

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.driver import JobChainDriver
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


class CountMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("n", 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def build():
    dfs = InMemoryDFS(split_size_bytes=64)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=1), rng=1)
    f = dfs.write("data", [f"r{i}" for i in range(20)], bytes_per_record=8)
    return runtime, f


def job(name="count"):
    return Job(name=name, mapper=CountMapper, reducer=SumReducer, num_reduce_tasks=1)


def test_totals_accumulate_across_jobs():
    runtime, f = build()
    driver = JobChainDriver(runtime)
    for i in range(3):
        driver.run(job(f"j{i}"), f)
    assert driver.totals.jobs == 3
    assert driver.totals.dataset_reads == 3
    assert driver.totals.cached_reads == 0
    assert driver.totals.simulated_seconds > 0


def test_cache_input_pays_first_read_only():
    runtime, f = build()
    driver = JobChainDriver(runtime, cache_input=True)
    first = driver.run(job("j0"), f)
    second = driver.run(job("j1"), f)
    assert driver.totals.dataset_reads == 1
    assert driver.totals.cached_reads == 1
    # Cached job spends less simulated time on its map phase.
    assert second.timing.map_seconds <= first.timing.map_seconds


def test_cache_tracks_files_independently():
    runtime, f = build()
    g = runtime.dfs.write("other", ["x"] * 4, bytes_per_record=8)
    driver = JobChainDriver(runtime, cache_input=True)
    driver.run(job("a"), f)
    driver.run(job("b"), g)
    driver.run(job("c"), f)
    assert driver.totals.dataset_reads == 2
    assert driver.totals.cached_reads == 1


def test_totals_expose_algorithm_counters():
    runtime, f = build()
    driver = JobChainDriver(runtime)
    driver.run(job(), f)
    assert driver.totals.distance_computations == 0
    assert driver.totals.ad_tests == 0
    assert driver.totals.cluster_tests == 0
    assert driver.totals.shuffle_bytes > 0


def test_run_accepts_file_name():
    runtime, f = build()
    driver = JobChainDriver(runtime, cache_input=True)
    driver.run(job("a"), "data")
    driver.run(job("b"), "data")
    assert driver.totals.cached_reads == 1
