"""Unit tests of the zero-copy shared-memory data plane."""

import pickle

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, DataFormatError
from repro.mapreduce import dataplane
from repro.mapreduce.dataplane import (
    DATA_PLANE_ENV,
    SEGMENT_PREFIX,
    SharedBlock,
    active_segments,
    create_block,
    orphaned_system_segments,
    release_all,
    release_block,
    release_segment,
    resolve_data_plane,
)
from repro.mapreduce.hdfs import InMemoryDFS


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test starts and must end with a clean owner registry."""
    release_all()
    yield
    leaked = active_segments()
    release_all()
    assert leaked == [], f"test leaked segments: {leaked}"


def test_resolve_defaults_to_pickled():
    assert resolve_data_plane(None, environ={}) == "pickled"


def test_resolve_reads_environment():
    assert resolve_data_plane(None, environ={DATA_PLANE_ENV: "shared"}) == "shared"
    assert resolve_data_plane(None, environ={DATA_PLANE_ENV: ""}) == "pickled"


def test_resolve_rejects_unknown_plane():
    with pytest.raises(ConfigurationError):
        resolve_data_plane("mmap")
    with pytest.raises(ConfigurationError):
        resolve_data_plane(None, environ={DATA_PLANE_ENV: "bogus"})


def test_resolve_falls_back_when_shared_memory_unavailable(monkeypatch):
    monkeypatch.setattr(dataplane, "_AVAILABLE", False)
    assert resolve_data_plane("shared") == "pickled"
    assert resolve_data_plane("pickled") == "pickled"


def test_block_roundtrip_bytes_and_array_protocol():
    arr = np.arange(24, dtype=np.float64).reshape(8, 3)
    block = create_block(arr)
    try:
        view = block.resolve()
        assert view.tobytes() == arr.tobytes()
        assert not view.flags.writeable
        assert len(block) == 8
        assert np.array_equal(block[2], arr[2])
        assert np.array_equal(np.asarray(block), arr)
        assert [tuple(r) for r in block] == [tuple(r) for r in arr]
        assert block.nbytes == arr.nbytes
    finally:
        assert release_block(block)


def test_block_pickles_to_a_tiny_handle():
    arr = np.zeros((10_000, 8))
    block = create_block(arr)
    try:
        blob = pickle.dumps(block)
        assert len(blob) < 200  # handle, not data
        clone = pickle.loads(blob)
        assert clone.resolve().tobytes() == arr.tobytes()
    finally:
        release_block(block)


def test_create_copies_blocks_are_independent():
    arr = np.ones((4, 2))
    block = create_block(arr)
    try:
        arr[:] = 7.0  # mutating the source must not reach the segment
        assert np.array_equal(np.asarray(block), np.ones((4, 2)))
    finally:
        release_block(block)


def test_release_is_idempotent_and_typed():
    block = create_block(np.ones(3))
    assert release_block(block)
    assert not release_block(block)  # second release: no-op
    assert not release_block(np.ones(3))  # plain arrays are never owned
    assert not release_segment("no-such-segment")


def test_stale_resolve_raises_data_format_error():
    block = create_block(np.ones(3))
    name = block.segment
    release_block(block)
    stale = SharedBlock(name, (3,), "<f8")
    with pytest.raises(DataFormatError):
        stale.resolve()


def test_release_all_sweeps_everything():
    blocks = [create_block(np.full(4, i)) for i in range(5)]
    assert len(active_segments()) == 5
    assert release_all() == 5
    assert active_segments() == []
    for block in blocks:
        with pytest.raises(DataFormatError):
            SharedBlock(block.segment, block.shape, block.dtype_str).resolve()


def test_segment_names_carry_the_prefix_and_pid():
    import os

    block = create_block(np.ones(2))
    try:
        assert block.segment.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-")
    finally:
        release_block(block)


def test_no_orphaned_system_segments_after_release():
    block = create_block(np.ones(16))
    release_block(block)
    assert orphaned_system_segments() == []


# -- DFS integration -----------------------------------------------------


def _write(dfs, name="data", n=50, overwrite=False):
    pts = np.arange(n * 3, dtype=np.float64).reshape(n, 3)
    return pts, dfs.write(name, pts, bytes_per_record=45, overwrite=overwrite)


def test_dfs_shared_plane_wraps_numpy_splits():
    dfs = InMemoryDFS(split_size_bytes=400, data_plane="shared")
    pts, f = _write(dfs)
    assert dfs.data_plane == "shared"
    assert all(isinstance(s.records, SharedBlock) for s in f.splits)
    assert len(active_segments()) == f.num_splits
    assert np.asarray(f.all_records()).tobytes() == pts.tobytes()
    dfs.release()


def test_dfs_pickled_plane_keeps_plain_arrays():
    dfs = InMemoryDFS(split_size_bytes=400, data_plane="pickled")
    _, f = _write(dfs)
    assert all(isinstance(s.records, np.ndarray) for s in f.splits)
    assert active_segments() == []


def test_dfs_shared_plane_keeps_lists_inline():
    dfs = InMemoryDFS(split_size_bytes=64, data_plane="shared")
    dfs.write("side", [b"a", b"b", b"c"], bytes_per_record=16)
    assert active_segments() == []


def test_dfs_env_selects_the_plane(monkeypatch):
    monkeypatch.setenv(DATA_PLANE_ENV, "shared")
    dfs = InMemoryDFS(split_size_bytes=400)
    assert dfs.data_plane == "shared"
    _write(dfs)
    assert active_segments()
    dfs.release()
    assert active_segments() == []


def test_dfs_delete_and_overwrite_release_segments():
    dfs = InMemoryDFS(split_size_bytes=400, data_plane="shared")
    _, f = _write(dfs)
    first = set(active_segments())
    assert len(first) == f.num_splits
    _, f2 = _write(dfs, overwrite=True)  # overwrite -> old incarnation freed
    second = set(active_segments())
    assert len(second) == f2.num_splits
    assert first.isdisjoint(second)
    dfs.delete("data")
    assert active_segments() == []


def test_total_block_loss_releases_the_segment():
    from repro.common.errors import SplitUnavailableError

    dfs = InMemoryDFS(split_size_bytes=400, data_plane="shared")
    _, f = _write(dfs)
    before = len(active_segments())
    dfs.lose_block("data", 0)
    with pytest.raises(SplitUnavailableError):
        dfs.charge_split_read(f.splits[0], f.replication)
    assert len(active_segments()) == before - 1
    # the healthy splits still read fine
    dfs.charge_split_read(f.splits[1], f.replication)
    assert np.asarray(f.splits[1].records).shape[1] == 3
    dfs.release()


def test_partial_replica_loss_keeps_the_segment():
    dfs = InMemoryDFS(split_size_bytes=400, data_plane="shared")
    _, f = _write(dfs)
    before = len(active_segments())
    dfs.lose_replica("data", 0, count=2)
    dfs.charge_split_read(f.splits[0], f.replication)  # failover + re-replicate
    assert len(active_segments()) == before
    assert dfs.live_replicas("data", 0) == f.replication
    dfs.release()
