"""Job API: contexts, heap accounting, counters, validation."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, JavaHeapSpaceError
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)
from repro.mapreduce.job import (
    Job,
    MapContext,
    Mapper,
    ReduceContext,
    Reducer,
    default_partitioner,
)


def make_ctx(cls=MapContext, heap=1024):
    return cls({}, Counters(), np.random.default_rng(0), heap, "t-0")


def test_emit_collects_and_counts():
    ctx = make_ctx()
    ctx.emit("k", 1)
    ctx.emit("k", 2, records=5)
    assert ctx.emitted == [("k", 1), ("k", 2)]
    assert ctx.counters.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS) == 6


def test_reduce_context_counts_output():
    ctx = make_ctx(ReduceContext)
    ctx.emit("k", "v")
    assert ctx.counters.get(FRAMEWORK_GROUP, MRCounter.REDUCE_OUTPUT_RECORDS) == 1


def test_heap_allocate_and_free():
    ctx = make_ctx(heap=100)
    ctx.allocate(60)
    ctx.free(30)
    ctx.allocate(60)  # 90 in use
    assert ctx.heap_high_water == 90
    with pytest.raises(JavaHeapSpaceError):
        ctx.allocate(20)


def test_heap_free_never_negative():
    ctx = make_ctx(heap=100)
    ctx.free(1000)
    ctx.allocate(100)  # would fail if usage had gone negative oddly
    assert ctx.heap_high_water == 100


def test_count_helpers():
    ctx = make_ctx()
    ctx.count("MY_COUNTER", 3)
    ctx.count_distances(10, 4)
    assert ctx.counters.get(USER_GROUP, "MY_COUNTER") == 3
    assert ctx.counters.get(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS) == 10
    assert ctx.counters.get(USER_GROUP, UserCounter.COORDINATE_OPS) == 40


def test_default_mapper_map_split_iterates_records():
    class Collect(Mapper):
        def map(self, key, value, ctx):
            ctx.emit(key, value)

    from repro.mapreduce.hdfs import Split

    split = Split("f", 0, ["a", "b", "c"], 3)
    ctx = make_ctx()
    Collect().map_split(split, ctx)
    assert ctx.emitted == [(0, "a"), (1, "b"), (2, "c")]


def test_base_classes_require_overrides():
    with pytest.raises(NotImplementedError):
        Mapper().map(None, None, make_ctx())
    with pytest.raises(NotImplementedError):
        Reducer().reduce(None, [], make_ctx())


def test_default_partitioner_in_range_and_stable():
    for key in (0, 7, "word", (3, 4)):
        p = default_partitioner(key, 5)
        assert 0 <= p < 5
        assert p == default_partitioner(key, 5)


def test_job_validation():
    with pytest.raises(ConfigurationError):
        Job(name="", mapper=Mapper)
    job = Job(name="ok", mapper=Mapper)
    assert job.reducer is None
    assert job.num_reduce_tasks == 0
