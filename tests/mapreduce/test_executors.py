"""Executor backends: byte-identical results across serial/threads/processes."""

import os
import pickle

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, JobFailedError
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executors import (
    EXECUTOR_ENV,
    EXECUTOR_KINDS,
    NUM_WORKERS_ENV,
    ProcessPoolTaskExecutor,
    RuntimeConfig,
    SerialExecutor,
    TaskExecutor,
    ThreadPoolTaskExecutor,
    create_executor,
)
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


def _norm(value):
    """Normalise a value so equality means byte equality."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, tuple):
        return tuple(_norm(v) for v in value)
    if isinstance(value, list):
        return [_norm(v) for v in value]
    return value


def fingerprint(result) -> bytes:
    """Everything observable about a job run, as comparable bytes."""
    payload = {
        "output": _norm(result.output),
        "counters": result.counters.as_dict(),
        "timing": (
            result.timing.startup_seconds,
            result.timing.map_seconds,
            result.timing.shuffle_seconds,
            result.timing.reduce_seconds,
        ),
        "map_task_seconds": result.map_task_seconds,
        "reduce_task_seconds": result.reduce_task_seconds,
        "num_map_tasks": result.num_map_tasks,
        "num_reduce_tasks": result.num_reduce_tasks,
        "max_reduce_heap_bytes": result.max_reduce_heap_bytes,
    }
    return pickle.dumps(payload)


def make_points(n=240, d=3, seed=11):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)) + rng.integers(0, 4, size=(n, 1)) * 5.0


def run_kmeans(
    backend: str,
    faults: "FaultModel | None" = None,
    seed=123,
    dispatch="wave",
    data_plane=None,
):
    from repro.data.loader import write_points
    from repro.data.textio import bytes_per_record

    points = make_points()
    per_record = bytes_per_record(points.shape[1])
    dfs = InMemoryDFS(
        split_size_bytes=per_record * 30, data_plane=data_plane
    )  # 8 splits
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=seed,
        faults=faults,
        config=RuntimeConfig(
            executor=backend, num_workers=4, dispatch=dispatch
        ),
    )
    centers = points[:4].copy()
    job = make_kmeans_job(centers, num_reduce_tasks=4)
    result = runtime.run(job, f), centers
    dfs.release()
    return result


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_kmeans_byte_identical_to_serial(backend):
    serial, centers = run_kmeans("serial")
    other, _ = run_kmeans(backend)
    assert fingerprint(other) == fingerprint(serial)
    # and the decoded centers agree exactly, not just approximately
    ours, _ = decode_kmeans_output(other.output, centers)
    ref, _ = decode_kmeans_output(serial.output, centers)
    assert ours.tobytes() == ref.tobytes()


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_wave_and_task_dispatch_byte_identical(backend):
    """Batched per-worker wave dispatch is a pure scheduling change:
    the strided stripes must reassemble into the exact task order."""
    serial, _ = run_kmeans("serial")
    for dispatch in ("wave", "task"):
        other, _ = run_kmeans(backend, dispatch=dispatch)
        assert fingerprint(other) == fingerprint(serial), dispatch


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_shared_plane_byte_identical_across_dispatch(backend):
    """Zero-copy splits × both dispatch modes still match serial."""
    serial, _ = run_kmeans("serial")
    for dispatch in ("wave", "task"):
        other, _ = run_kmeans(
            backend, dispatch=dispatch, data_plane="shared"
        )
        assert fingerprint(other) == fingerprint(serial), dispatch


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_kmeans_byte_identical_under_faults(backend):
    faults = FaultModel(
        task_failure_probability=0.3,
        straggler_probability=0.25,
        speculative_execution=True,
    )
    serial, _ = run_kmeans("serial", faults=faults)
    other, _ = run_kmeans(backend, faults=faults)
    assert fingerprint(other) == fingerprint(serial)


class SeededMapper(Mapper):
    """Output depends on the per-task RNG: catches seed-order bugs."""

    def map(self, key, value, ctx):
        ctx.emit(int(ctx.rng.integers(50)), 1)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def run_seeded(backend: str, seed=7):
    dfs = InMemoryDFS(split_size_bytes=16)
    f = dfs.write("d", list(range(40)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=seed,
        config=RuntimeConfig(executor=backend, num_workers=3),
    )
    job = Job(name="seeded", mapper=SeededMapper, reducer=CountReducer)
    return runtime.run(job, f)


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_per_task_rng_independent_of_schedule(backend):
    assert fingerprint(run_seeded(backend)) == fingerprint(run_seeded("serial"))


class ExplodingMapper(Mapper):
    """Fails on the split whose first record matches config["boom"]."""

    def map(self, key, value, ctx):
        if value in ctx.config["boom"]:
            raise ValueError(f"boom on {value}")
        ctx.emit(value, 1)


@pytest.mark.parametrize("backend", EXECUTOR_KINDS)
def test_lowest_index_failure_wins(backend):
    """Several tasks fail; every backend reports the serial-first one."""
    dfs = InMemoryDFS(split_size_bytes=8)  # 1 record per split
    f = dfs.write("d", list(range(12)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=0,
        config=RuntimeConfig(executor=backend, num_workers=4),
    )
    job = Job(
        name="explode",
        mapper=ExplodingMapper,
        reducer=CountReducer,
        config={"boom": (3, 9, 10)},
    )
    with pytest.raises(ValueError, match="boom on 3"):
        runtime.run(job, f)


# -- configuration ------------------------------------------------------


def test_runtime_config_defaults():
    config = RuntimeConfig()
    assert config.executor == "serial"
    assert config.num_workers is None


def test_runtime_config_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(executor="gpu")


def test_runtime_config_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(num_workers=0)


def test_runtime_config_from_env():
    env = {EXECUTOR_ENV: "threads", NUM_WORKERS_ENV: "5"}
    config = RuntimeConfig.from_env(env)
    assert config == RuntimeConfig(executor="threads", num_workers=5)
    assert RuntimeConfig.from_env({}) == RuntimeConfig()
    with pytest.raises(ConfigurationError):
        RuntimeConfig.from_env({NUM_WORKERS_ENV: "four"})


def test_runtime_config_dispatch_and_data_plane(monkeypatch):
    from repro.mapreduce.executors import DATA_PLANE_ENV, DISPATCH_ENV

    monkeypatch.delenv(DATA_PLANE_ENV, raising=False)
    assert RuntimeConfig().dispatch == "wave"
    assert RuntimeConfig().data_plane is None
    assert RuntimeConfig().effective_data_plane == "pickled"
    config = RuntimeConfig.from_env(
        {DISPATCH_ENV: "task", DATA_PLANE_ENV: "shared"}
    )
    assert config.dispatch == "task"
    assert config.data_plane == "shared"
    with pytest.raises(ConfigurationError):
        RuntimeConfig(dispatch="bulk")
    with pytest.raises(ConfigurationError):
        RuntimeConfig(data_plane="mmap")


def test_create_executor_kinds():
    assert isinstance(create_executor(RuntimeConfig()), SerialExecutor)
    assert isinstance(
        create_executor(RuntimeConfig(executor="threads")),
        ThreadPoolTaskExecutor,
    )
    assert isinstance(
        create_executor(RuntimeConfig(executor="processes")),
        ProcessPoolTaskExecutor,
    )
    for kind in EXECUTOR_KINDS:
        executor = create_executor(RuntimeConfig(executor=kind))
        assert isinstance(executor, TaskExecutor)
        assert executor.name == kind


def test_runtime_accepts_backend_name_string():
    dfs = InMemoryDFS(split_size_bytes=16)
    with MapReduceRuntime(dfs, config="threads") as runtime:
        assert runtime.executor.name == "threads"


def test_runtime_reads_environment(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV, "threads")
    monkeypatch.setenv(NUM_WORKERS_ENV, "2")
    runtime = MapReduceRuntime(InMemoryDFS(split_size_bytes=16))
    assert runtime.executor.name == "threads"
    assert runtime.executor.num_workers == 2


# -- picklability regressions -------------------------------------------
#
# Everything that crosses the worker-process boundary must survive a
# pickle round-trip. Each entry below was once a lambda, a closure or a
# custom-__new__ class that broke the processes backend (an unpicklable
# *result* is especially nasty: it surfaces as BrokenProcessPool in the
# parent, with the workers killed before they can report anything).


def _pickle_roundtrip_cases():
    from repro.common.errors import JavaHeapSpaceError
    from repro.core.test_clusters import ProjectionHeapCost, TestVerdict
    from repro.core.test_few_clusters import MapperVote
    from repro.mapreduce.counters import Counters
    from repro.mapreduce.faults import TaskPermanentlyFailedError
    from repro.mapreduce.partitioners import WeightBalancedPartitioner

    counters = Counters()
    counters.inc("g", "n", 3)
    return [
        MapperVote(1.25, 40, True, False),
        TestVerdict(0.5, 100, True, True),
        ProjectionHeapCost(16),
        WeightBalancedPartitioner({1: 10.0, 2: 3.0}, 4),
        counters,
        JavaHeapSpaceError(100, 10, "t-0"),
        JobFailedError("job died", cause=ValueError("x")),
        TaskPermanentlyFailedError("t-1", 4),
    ]


@pytest.mark.parametrize(
    "obj", _pickle_roundtrip_cases(), ids=lambda o: type(o).__name__
)
def test_boundary_objects_pickle_roundtrip(obj):
    clone = pickle.loads(pickle.dumps(obj))
    assert type(clone) is type(obj)
    if isinstance(obj, tuple):
        assert tuple(clone) == tuple(obj)


def test_mapper_vote_roundtrip_preserves_fields():
    from repro.core.test_few_clusters import MapperVote

    vote = MapperVote(2.5, 31, True, True)
    clone = pickle.loads(pickle.dumps(vote))
    assert (clone.statistic, clone.n, clone.decided, clone.rejected) == (
        2.5,
        31,
        True,
        True,
    )


def test_job_with_kmeans_config_is_picklable():
    job = make_kmeans_job(np.zeros((3, 2)), num_reduce_tasks=2)
    clone = pickle.loads(pickle.dumps(job))
    assert clone.name == job.name
