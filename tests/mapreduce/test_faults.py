"""Fault injection: failures, retries, stragglers, speculation."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, JobFailedError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters
from repro.mapreduce.faults import (
    SPECULATIVE_TASKS,
    TASK_FAILURES,
    FaultModel,
    TaskPermanentlyFailedError,
)
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


class EchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 5, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def run_job(faults=None, seed=3):
    dfs = InMemoryDFS(split_size_bytes=64)
    f = dfs.write("data", list(range(100)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=2), rng=seed, faults=faults
    )
    job = Job(name="j", mapper=EchoMapper, reducer=SumReducer, num_reduce_tasks=3)
    return runtime.run(job, f)


def test_disabled_model_is_identity():
    model = FaultModel()
    assert not model.enabled
    counters = Counters()
    assert model.apply(10.0, "t", np.random.default_rng(0), counters) == 10.0
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) == 0


def test_failures_add_retry_time():
    model = FaultModel(task_failure_probability=0.5, max_attempts=10)
    rng = np.random.default_rng(1)
    counters = Counters()
    durations = [model.apply(10.0, "t", rng, counters) for _ in range(200)]
    # Retries only ever add time, in half-attempt increments.
    assert min(durations) == 10.0
    assert max(durations) > 10.0
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0


def test_certain_failure_exhausts_attempts():
    model = FaultModel(task_failure_probability=1.0, max_attempts=4)
    with pytest.raises(TaskPermanentlyFailedError, match="4 attempts"):
        model.apply(1.0, "t-0", np.random.default_rng(0), Counters())


def test_straggler_slowdown_applied():
    model = FaultModel(straggler_probability=1.0, straggler_slowdown=6.0)
    counters = Counters()
    assert model.apply(10.0, "t", np.random.default_rng(0), counters) == 60.0


def test_speculative_execution_caps_stragglers():
    model = FaultModel(
        straggler_probability=1.0,
        straggler_slowdown=6.0,
        speculative_execution=True,
        speculative_overhead=1.2,
    )
    counters = Counters()
    duration = model.apply(10.0, "t", np.random.default_rng(0), counters)
    assert duration == pytest.approx(12.0)
    assert counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS) == 1


def test_job_results_unchanged_by_faults():
    """Faults perturb time, never output (re-execution is deterministic)."""
    clean = run_job(faults=None)
    faulty = run_job(
        faults=FaultModel(task_failure_probability=0.3, straggler_probability=0.3)
    )
    assert sorted(clean.output) == sorted(faulty.output)
    assert faulty.simulated_seconds >= clean.simulated_seconds
    assert faulty.counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0


def test_job_fails_when_task_exhausts_attempts():
    with pytest.raises(JobFailedError, match="failed after"):
        run_job(faults=FaultModel(task_failure_probability=1.0))


def test_speculation_recovers_most_straggler_time():
    slow = run_job(faults=FaultModel(straggler_probability=0.5))
    raced = run_job(
        faults=FaultModel(straggler_probability=0.5, speculative_execution=True)
    )
    assert raced.simulated_seconds < slow.simulated_seconds


def test_validation():
    with pytest.raises(ConfigurationError):
        FaultModel(task_failure_probability=1.5)
    with pytest.raises(ConfigurationError):
        FaultModel(max_attempts=0)
    with pytest.raises(ConfigurationError):
        FaultModel(straggler_slowdown=0.0)
