"""Fault injection: failures, retries, stragglers, speculation."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, JobFailedError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters
from repro.mapreduce.faults import (
    SPECULATIVE_TASKS,
    TASK_FAILURES,
    FaultModel,
    TaskPermanentlyFailedError,
)
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


class EchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 5, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def run_job(faults=None, seed=3):
    dfs = InMemoryDFS(split_size_bytes=64)
    f = dfs.write("data", list(range(100)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=2), rng=seed, faults=faults
    )
    job = Job(name="j", mapper=EchoMapper, reducer=SumReducer, num_reduce_tasks=3)
    return runtime.run(job, f)


def test_disabled_model_is_identity():
    model = FaultModel()
    assert not model.enabled
    counters = Counters()
    assert model.apply(10.0, "t", np.random.default_rng(0), counters) == 10.0
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) == 0


def test_failures_add_retry_time():
    model = FaultModel(task_failure_probability=0.5, max_attempts=10)
    rng = np.random.default_rng(1)
    counters = Counters()
    durations = [model.apply(10.0, "t", rng, counters) for _ in range(200)]
    # Retries only ever add time, in half-attempt increments.
    assert min(durations) == 10.0
    assert max(durations) > 10.0
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0


def test_certain_failure_exhausts_attempts():
    model = FaultModel(task_failure_probability=1.0, max_attempts=4)
    with pytest.raises(TaskPermanentlyFailedError, match="4 attempts"):
        model.apply(1.0, "t-0", np.random.default_rng(0), Counters())


def test_straggler_slowdown_applied():
    model = FaultModel(straggler_probability=1.0, straggler_slowdown=6.0)
    counters = Counters()
    assert model.apply(10.0, "t", np.random.default_rng(0), counters) == 60.0


def test_speculative_execution_caps_stragglers():
    model = FaultModel(
        straggler_probability=1.0,
        straggler_slowdown=6.0,
        speculative_execution=True,
        speculative_overhead=1.2,
    )
    counters = Counters()
    duration = model.apply(10.0, "t", np.random.default_rng(0), counters)
    assert duration == pytest.approx(12.0)
    assert counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS) == 1


def test_speculation_not_counted_for_attempts_that_die():
    """Regression: a raced attempt that fails anyway rescued nothing.

    ``SPECULATIVE_TASKS`` used to be incremented when the clone was
    launched, before knowing whether the attempt survived — so a task
    whose every attempt both straggled and died inflated the counter.
    """
    model = FaultModel(
        straggler_probability=1.0,
        speculative_execution=True,
        task_failure_probability=1.0,
        max_attempts=3,
    )
    counters = Counters()
    with pytest.raises(TaskPermanentlyFailedError):
        model.apply(10.0, "t", np.random.default_rng(0), counters)
    assert counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS) == 0
    assert counters.get(FRAMEWORK_GROUP, TASK_FAILURES) == 3


def test_speculation_counted_once_for_surviving_attempt():
    """Failed raced attempts don't count; the surviving one does."""
    model = FaultModel(
        straggler_probability=1.0,
        speculative_execution=True,
        task_failure_probability=0.5,
        max_attempts=50,
    )
    counters = Counters()
    model.apply(10.0, "t", np.random.default_rng(3), counters)
    assert counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS) == 1


def test_job_results_unchanged_by_faults():
    """Faults perturb time, never output (re-execution is deterministic)."""
    clean = run_job(faults=None)
    faulty = run_job(
        faults=FaultModel(task_failure_probability=0.3, straggler_probability=0.3)
    )
    assert sorted(clean.output) == sorted(faulty.output)
    assert faulty.simulated_seconds >= clean.simulated_seconds
    assert faulty.counters.get(FRAMEWORK_GROUP, TASK_FAILURES) > 0


def test_job_fails_when_task_exhausts_attempts():
    with pytest.raises(JobFailedError, match="failed after"):
        run_job(faults=FaultModel(task_failure_probability=1.0))


def test_speculation_recovers_most_straggler_time():
    slow = run_job(faults=FaultModel(straggler_probability=0.5))
    raced = run_job(
        faults=FaultModel(straggler_probability=0.5, speculative_execution=True)
    )
    assert raced.simulated_seconds < slow.simulated_seconds


# -- wasted-compute accounting -------------------------------------------
#
# WASTED_COMPUTE_SECONDS is exact bookkeeping, so these tests pin the
# arithmetic with scripted draws instead of sampling distributions.


class ScriptedRNG:
    """Stands in for a Generator; replays a fixed list of uniforms."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)


def wasted(counters):
    from repro.mapreduce.counters import MRCounter

    return counters.get(FRAMEWORK_GROUP, MRCounter.WASTED_COMPUTE_SECONDS)


def test_wasted_seconds_zero_without_faults():
    model = FaultModel(straggler_probability=1.0, straggler_slowdown=6.0)
    counters = Counters()
    # A plain straggler wastes nothing: the slow attempt's output counts.
    model.apply(10.0, "t", np.random.default_rng(0), counters)
    assert wasted(counters) == 0


def test_winning_clone_wastes_the_killed_original():
    model = FaultModel(
        straggler_probability=1.0,
        speculative_execution=True,
        speculative_overhead=1.2,
    )
    counters = Counters()
    duration = model.apply(10.0, "t", ScriptedRNG([0.0, 0.9]), counters)
    # The slow original ran beside the clone for all 12s before dying.
    assert duration == pytest.approx(12.0)
    assert wasted(counters) == pytest.approx(12.0)


def test_each_failed_attempt_wastes_its_half_duration():
    model = FaultModel(task_failure_probability=1.0, max_attempts=3)
    counters = Counters()
    with pytest.raises(TaskPermanentlyFailedError):
        model.apply(10.0, "t", np.random.default_rng(0), counters)
    assert wasted(counters) == pytest.approx(15.0)


def test_retry_then_success_wastes_only_the_dead_attempt():
    model = FaultModel(task_failure_probability=0.4)
    counters = Counters()
    # attempt 1: no straggler (0.9), dies (0.1 < 0.4) — wastes 5s
    # attempt 2: no straggler (0.9), survives (0.9) — clean 10s
    duration = model.apply(
        10.0, "t", ScriptedRNG([0.9, 0.1, 0.9, 0.9]), counters
    )
    assert duration == pytest.approx(15.0)
    assert wasted(counters) == pytest.approx(5.0)


def test_clone_dying_with_its_attempt_doubles_the_waste():
    model = FaultModel(
        straggler_probability=1.0,
        speculative_execution=True,
        speculative_overhead=1.2,
        task_failure_probability=0.5,
        max_attempts=2,
    )
    counters = Counters()
    # attempt 1: straggles + clone, both die at 6s in → wastes 12s
    # attempt 2: straggles + clone, clone wins at 12s → wastes 12s more
    duration = model.apply(
        10.0, "t", ScriptedRNG([0.0, 0.1, 0.0, 0.9]), counters
    )
    assert duration == pytest.approx(18.0)
    assert wasted(counters) == pytest.approx(24.0)
    assert counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS) == 1


def test_wasted_seconds_surface_in_job_counters():
    from repro.mapreduce.counters import MRCounter

    result = run_job(
        faults=FaultModel(
            task_failure_probability=0.3,
            straggler_probability=0.3,
            speculative_execution=True,
        )
    )
    assert (
        result.counters.get(FRAMEWORK_GROUP, MRCounter.WASTED_COMPUTE_SECONDS)
        > 0
    )


def test_from_env_warns_on_orphan_max_attempts():
    with pytest.warns(UserWarning, match="no effect"):
        model = FaultModel.from_env({"REPRO_MAX_TASK_ATTEMPTS": "7"})
    assert model is None


def test_from_env_silent_when_unset():
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        assert FaultModel.from_env({}) is None


def test_validation():
    with pytest.raises(ConfigurationError):
        FaultModel(task_failure_probability=1.5)
    with pytest.raises(ConfigurationError):
        FaultModel(max_attempts=0)
    with pytest.raises(ConfigurationError):
        FaultModel(straggler_slowdown=0.0)


# -- fault behaviour across executor backends ---------------------------
#
# The fault stream lives in the submitting process and is consumed in
# task-index order, so which task dies — and every fault counter — must
# not depend on the executor backend.

BACKENDS = ("serial", "threads", "processes")


def run_job_on_backend(backend, faults, seed=3):
    from repro.mapreduce.executors import RuntimeConfig

    dfs = InMemoryDFS(split_size_bytes=64)
    f = dfs.write("data", list(range(100)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=seed,
        faults=faults,
        config=RuntimeConfig(executor=backend, num_workers=3),
    )
    job = Job(name="j", mapper=EchoMapper, reducer=SumReducer, num_reduce_tasks=3)
    return runtime.run(job, f)


def test_permanent_failure_identical_across_backends():
    """Every backend fails the same job on the same task attempt count."""
    failures = {}
    for backend in BACKENDS:
        with pytest.raises(JobFailedError) as err:
            run_job_on_backend(
                backend, FaultModel(task_failure_probability=1.0)
            )
        assert isinstance(err.value.cause, TaskPermanentlyFailedError)
        failures[backend] = (err.value.cause.task, err.value.cause.attempts)
    assert len(set(failures.values())) == 1, failures


def test_fault_counters_byte_identical_across_backends():
    faults = FaultModel(
        task_failure_probability=0.3,
        straggler_probability=0.3,
        speculative_execution=True,
    )
    reference = run_job_on_backend("serial", faults)
    for backend in BACKENDS[1:]:
        result = run_job_on_backend(backend, faults)
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert sorted(result.output) == sorted(reference.output)
        assert result.simulated_seconds == reference.simulated_seconds
