"""Shuffle: grouping, combiner application, partitioning."""

import numpy as np
import pytest

from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters, MRCounter
from repro.mapreduce.job import Reducer
from repro.mapreduce.shuffle import (
    group_by_key,
    partition_pairs,
    run_combiner,
    sorted_keys,
)


class SumCombiner(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def test_group_by_key_preserves_value_order():
    groups = group_by_key([("a", 1), ("b", 2), ("a", 3)])
    assert groups["a"] == [1, 3]
    assert groups["b"] == [2]


def test_sorted_keys():
    assert sorted_keys({3: [], 1: [], 2: []}) == [1, 2, 3]


def test_run_combiner_combines_per_key():
    counters = Counters()
    pairs = [("a", 1), ("a", 2), ("b", 5)]
    out = run_combiner(
        SumCombiner, pairs, {}, counters, np.random.default_rng(0), 1024, "m-0"
    )
    assert sorted(out) == [("a", 3), ("b", 5)]
    assert counters.get(FRAMEWORK_GROUP, MRCounter.COMBINE_INPUT_RECORDS) == 3
    assert counters.get(FRAMEWORK_GROUP, MRCounter.COMBINE_OUTPUT_RECORDS) == 2


def test_run_combiner_deterministic_key_order():
    counters = Counters()
    pairs = [(2, 1), (1, 1), (3, 1)]
    out = run_combiner(
        SumCombiner, pairs, {}, counters, np.random.default_rng(0), 1024, "m"
    )
    assert [k for k, _ in out] == [1, 2, 3]


def test_partition_pairs_buckets_by_partitioner():
    pairs = [(i, i) for i in range(10)]
    buckets = partition_pairs(pairs, 3, lambda k, n: k % n)
    assert [k for k, _ in buckets[0]] == [0, 3, 6, 9]
    assert [k for k, _ in buckets[1]] == [1, 4, 7]
    assert sum(len(b) for b in buckets) == 10


def test_partition_pairs_rejects_out_of_range():
    with pytest.raises(ValueError):
        partition_pairs([(1, 1)], 2, lambda k, n: 5)
    with pytest.raises(ValueError):
        partition_pairs([(1, 1)], 2, lambda k, n: -1)


def test_partition_empty():
    assert partition_pairs([], 3, lambda k, n: 0) == [[], [], []]
