"""Node failure domains: ClusterState, NodeFaultModel, DFS placement."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SplitUnavailableError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.nodes import (
    BLACKLIST_THRESHOLD_ENV,
    ClusterState,
    HEARTBEAT_TIMEOUT_ENV,
    NODE_ALIVE,
    NODE_BLACKLISTED,
    NODE_DEAD,
    NODE_FAIL,
    NODE_FAILURE_PROB_ENV,
    NODE_FAULT_SEED_ENV,
    NODE_RECOVER,
    NODE_RECOVERY_PROB_ENV,
    NodeFaultModel,
)


def make_state(nodes=4, **kwargs):
    return ClusterState(ClusterConfig(nodes=nodes), **kwargs)


# -- ClusterState capacity ------------------------------------------------


def test_all_alive_matches_config_capacity():
    config = ClusterConfig(nodes=4)
    state = ClusterState(config)
    assert state.all_alive
    assert state.total_map_slots == config.total_map_slots
    assert state.total_reduce_slots == config.total_reduce_slots
    assert state.usable_heap_bytes == config.usable_heap_bytes
    assert state.task_heap_bytes == config.task_heap_bytes
    assert state.schedulable_node_ids == list(range(4))
    assert state.serving_node_ids == list(range(4))


def test_death_shrinks_capacity_and_serving_set():
    config = ClusterConfig(nodes=4)
    state = ClusterState(config)
    state.fail(1)
    assert not state.all_alive
    assert state.schedulable_node_ids == [0, 2, 3]
    assert state.serving_node_ids == [0, 2, 3]
    assert state.total_map_slots == 3 * config.map_slots_per_node
    assert state.total_reduce_slots == 3 * config.reduce_slots_per_node


def test_blacklisted_node_serves_but_does_not_schedule():
    state = make_state()
    state.blacklist(2)
    assert state.schedulable_node_ids == [0, 1, 3]
    assert state.serving_node_ids == [0, 1, 2, 3]


def test_decommissioned_node_neither_schedules_nor_serves():
    state = make_state()
    state.decommission(0)
    assert state.schedulable_node_ids == [1, 2, 3]
    assert state.serving_node_ids == [1, 2, 3]


def test_recover_resets_failure_record():
    state = make_state()
    state.node_states[1].task_failures = 7
    state.fail(1)
    assert state.node_states[1].deaths == 1
    state.recover(1)
    node = state.node_states[1]
    assert node.status == NODE_ALIVE
    assert node.task_failures == 0
    assert node.recoveries == 1
    # Recovering a live node is a no-op.
    state.recover(1)
    assert state.node_states[1].recoveries == 1


def test_executor_concurrency_floors_at_one():
    state = make_state(nodes=2)
    assert state.executor_concurrency("map") == state.total_map_slots
    for node_id in range(2):
        state.fail(node_id)
    assert state.executor_concurrency("map") == 1
    assert state.executor_concurrency("reduce") == 1
    with pytest.raises(ConfigurationError):
        state.executor_concurrency("shuffle")


def test_unknown_node_rejected():
    state = make_state(nodes=2)
    with pytest.raises(ConfigurationError, match="not in cluster"):
        state.fail(5)


# -- blacklisting ---------------------------------------------------------


def test_blacklist_threshold_crossing():
    state = make_state(blacklist_threshold=3)
    assert not state.record_task_failures(0, 2)
    assert state.record_task_failures(0, 1)
    assert state.node_states[0].status == NODE_BLACKLISTED
    # Already blacklisted: further failures accumulate but don't re-fire.
    assert not state.record_task_failures(0, 5)


def test_blacklist_disabled_without_threshold():
    state = make_state()
    assert not state.record_task_failures(0, 100)
    assert state.node_states[0].status == NODE_ALIVE


def test_last_schedulable_node_never_blacklisted():
    state = make_state(nodes=2, blacklist_threshold=1)
    assert state.record_task_failures(0, 1)
    assert not state.record_task_failures(1, 99)
    assert state.node_states[1].status == NODE_ALIVE
    assert state.schedulable_node_ids == [1]


# -- snapshot / restore ---------------------------------------------------


def test_snapshot_restore_round_trip():
    state = make_state(blacklist_threshold=2)
    state.fail(0)
    state.blacklist(2)
    state.node_states[3].task_failures = 1
    snapshots = state.snapshot()

    fresh = make_state(blacklist_threshold=2)
    fresh.restore(snapshots)
    assert fresh.snapshot() == snapshots
    assert fresh.schedulable_node_ids == state.schedulable_node_ids
    assert fresh.serving_node_ids == state.serving_node_ids


# -- NodeFaultModel -------------------------------------------------------


def test_model_validation():
    with pytest.raises(ConfigurationError):
        NodeFaultModel(node_failure_probability=1.5)
    with pytest.raises(ConfigurationError):
        NodeFaultModel(node_recovery_probability=-0.1)
    with pytest.raises(ConfigurationError):
        NodeFaultModel(heartbeat_timeout_seconds=0.0)
    with pytest.raises(ConfigurationError):
        NodeFaultModel(blacklist_threshold=0)
    assert not NodeFaultModel().enabled
    assert NodeFaultModel(node_failure_probability=0.1).enabled
    assert NodeFaultModel(node_recovery_probability=0.1).enabled


def test_from_env_disabled_by_default():
    assert NodeFaultModel.from_env({}) is None


def test_from_env_full_configuration():
    model = NodeFaultModel.from_env(
        {
            NODE_FAILURE_PROB_ENV: "0.05",
            NODE_RECOVERY_PROB_ENV: "0.5",
            HEARTBEAT_TIMEOUT_ENV: "10",
            NODE_FAULT_SEED_ENV: "42",
            BLACKLIST_THRESHOLD_ENV: "4",
        }
    )
    assert model == NodeFaultModel(
        node_failure_probability=0.05,
        node_recovery_probability=0.5,
        heartbeat_timeout_seconds=10.0,
        seed=42,
        blacklist_threshold=4,
    )


def test_from_env_threshold_alone_enables_blacklist_only_mode():
    model = NodeFaultModel.from_env({BLACKLIST_THRESHOLD_ENV: "2"})
    assert model is not None
    assert not model.enabled
    assert model.blacklist_threshold == 2


def test_from_env_rejects_garbage():
    with pytest.raises(ConfigurationError):
        NodeFaultModel.from_env({NODE_FAILURE_PROB_ENV: "lots"})
    with pytest.raises(ConfigurationError):
        NodeFaultModel.from_env(
            {NODE_FAILURE_PROB_ENV: "0.1", NODE_FAULT_SEED_ENV: "x"}
        )


def test_draws_deterministic_for_seed():
    model = NodeFaultModel(
        node_failure_probability=0.4, node_recovery_probability=0.5, seed=7
    )
    histories = []
    for _ in range(2):
        state = make_state(nodes=6)
        rng = np.random.default_rng(model.seed)
        rounds = []
        for _ in range(10):
            events = model.draw(state, rng)
            for kind, node_id in events:
                (state.fail if kind == NODE_FAIL else state.recover)(node_id)
            rounds.append(events)
        histories.append(rounds)
    assert histories[0] == histories[1]


def test_fixed_width_stream_one_draw_per_node_per_round():
    """Lifecycle changes never shift which draw a node sees."""
    model = NodeFaultModel(node_failure_probability=0.3, seed=1)
    healthy = make_state(nodes=5)
    degraded = make_state(nodes=5)
    degraded.fail(1)
    degraded.decommission(3)
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    model.draw(healthy, rng_a)
    model.draw(degraded, rng_b)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_last_serving_node_never_dies():
    model = NodeFaultModel(node_failure_probability=1.0, seed=0)
    state = make_state(nodes=3)
    events = model.draw(state, np.random.default_rng(0))
    # Certain death for everyone — except the final survivor.
    assert events == [(NODE_FAIL, 0), (NODE_FAIL, 1)]


def test_certain_recovery():
    model = NodeFaultModel(node_recovery_probability=1.0, seed=0)
    state = make_state(nodes=3)
    state.fail(2)
    events = model.draw(state, np.random.default_rng(0))
    assert events == [(NODE_RECOVER, 2)]


# -- DFS node-aware placement ---------------------------------------------


def write_cluster_dfs(nodes=3, replication=2, records=60, split_size=64):
    dfs = InMemoryDFS(split_size_bytes=split_size)
    state = make_state(nodes=nodes)
    dfs.attach_topology(state)
    f = dfs.write("data", list(range(records)), bytes_per_record=8,
                  replication=replication)
    return dfs, state, f


def test_placement_deterministic_and_capped():
    dfs, state, f = write_cluster_dfs(nodes=3, replication=2)
    again, _, f2 = write_cluster_dfs(nodes=3, replication=2)
    for split in f.splits:
        placement = dfs.replica_placement(f.name, split.index)
        assert placement == again.replica_placement(f2.name, split.index)
        assert len(placement) == 2
        assert len(set(placement)) == 2
        assert all(0 <= node < 3 for node in placement)


def test_placement_capped_at_serving_count():
    dfs, state, f = write_cluster_dfs(nodes=2, replication=3)
    for split in f.splits:
        assert len(dfs.replica_placement(f.name, split.index)) == 2


def test_fail_node_loses_replicas_in_one_batch_and_heals():
    dfs, state, f = write_cluster_dfs(nodes=3, replication=2)
    victim = dfs.replica_placement(f.name, 0)[0]
    hosted = dfs.node_block_count(victim)
    assert hosted > 0

    state.fail(victim)  # topology first, then the filesystem
    report = dfs.fail_node(victim)
    assert report.blocks_lost == hosted
    assert report.bytes_lost > 0
    # Two survivors remain and replication was 2, so every damaged
    # split heals onto the one survivor not already holding a copy.
    assert report.re_replications == hosted
    assert report.splits_unreadable == 0
    assert dfs.node_block_count(victim) == 0
    for split in f.splits:
        placement = dfs.replica_placement(f.name, split.index)
        assert victim not in placement
        assert len(placement) == 2
    # Healed copies are readable without failover charges.
    report = dfs.charge_read(f)
    assert report.replica_failovers == 0


def test_fail_node_without_survivor_leaves_split_unreadable():
    dfs = InMemoryDFS(split_size_bytes=64)
    state = make_state(nodes=2)
    dfs.attach_topology(state)
    f = dfs.write("data", list(range(30)), bytes_per_record=8, replication=1)
    victims = {
        dfs.replica_placement(f.name, split.index)[0] for split in f.splits
    }
    for victim in sorted(victims):
        state.fail(victim)
        report = dfs.fail_node(victim)
        assert report.splits_unreadable > 0
        assert report.re_replications == 0
    with pytest.raises(SplitUnavailableError):
        dfs.charge_read(f)


def test_fail_node_is_noop_without_topology():
    dfs = InMemoryDFS(split_size_bytes=64)
    dfs.write("data", list(range(30)), bytes_per_record=8)
    assert not dfs.topology_attached
    report = dfs.fail_node(0)
    assert report.blocks_lost == 0


def test_reattach_preserves_evolved_placement():
    """A restarted driver re-attaching must not re-place the blocks."""
    dfs, state, f = write_cluster_dfs(nodes=3, replication=2)
    victim = dfs.replica_placement(f.name, 0)[0]
    state.fail(victim)
    dfs.fail_node(victim)
    before = {
        split.index: dfs.replica_placement(f.name, split.index)
        for split in f.splits
    }
    fresh_state = make_state(nodes=3)
    fresh_state.restore(state.snapshot())
    dfs.attach_topology(fresh_state)
    after = {
        split.index: dfs.replica_placement(f.name, split.index)
        for split in f.splits
    }
    assert after == before
