"""Cost model: task pricing, makespan scheduling, job timing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.cluster import MIB, ClusterConfig
from repro.mapreduce.costmodel import CostModel, CostParameters, JobTiming, makespan
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)


def make_model(**cost_kwargs) -> CostModel:
    return CostModel(CostParameters(**cost_kwargs), ClusterConfig(nodes=2))


def test_makespan_single_slot_is_sum():
    assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)


def test_makespan_ample_slots_is_max():
    assert makespan([1.0, 2.0, 3.0], 10) == pytest.approx(3.0)


def test_makespan_lpt_hand_computed():
    # LPT, 2 slots, tasks sorted desc 5,4,3,3,3:
    # 5 -> slot1(5); 4 -> slot2(4); 3 -> slot2(7); 3 -> slot1(8); 3 -> slot2(10)
    assert makespan([5, 4, 3, 3, 3], 2) == pytest.approx(10.0)


def test_makespan_empty_and_invalid():
    assert makespan([], 4) == 0.0
    with pytest.raises(ConfigurationError):
        makespan([1.0], 0)


def test_map_task_seconds_components():
    model = make_model(
        disk_read_mbps=100.0,
        seconds_per_map_record=1e-6,
        seconds_per_shuffle_record=0.0,
        seconds_per_coordinate_op=1e-9,
        task_startup_seconds=1.0,
    )
    c = Counters()
    c.inc(FRAMEWORK_GROUP, MRCounter.MAP_INPUT_RECORDS, 1000)
    c.inc(USER_GROUP, UserCounter.COORDINATE_OPS, 10**9)
    seconds = model.map_task_seconds(c, input_bytes=100 * MIB)
    # startup 1 + read 1 + records 0.001 + coord ops 1
    assert seconds == pytest.approx(3.001, rel=1e-6)


def test_cached_input_skips_disk():
    model = make_model(disk_read_mbps=100.0, task_startup_seconds=0.0)
    c = Counters()
    hot = model.map_task_seconds(c, input_bytes=100 * MIB, cached=False)
    cold = model.map_task_seconds(c, input_bytes=100 * MIB, cached=True)
    assert hot == pytest.approx(1.0)
    assert cold == pytest.approx(0.0)


def test_reduce_task_seconds():
    model = make_model(
        seconds_per_reduce_record=1e-3,
        seconds_per_ad_point=1e-6,
        task_startup_seconds=0.5,
    )
    c = Counters()
    c.inc(FRAMEWORK_GROUP, MRCounter.REDUCE_INPUT_RECORDS, 100)
    c.inc(USER_GROUP, UserCounter.AD_SAMPLE_POINTS, 10**6)
    assert model.reduce_task_seconds(c) == pytest.approx(0.5 + 0.1 + 1.0)


def test_shuffle_seconds_scales_with_nodes():
    params = CostParameters(network_mbps_per_node=100.0)
    two = CostModel(params, ClusterConfig(nodes=2))
    four = CostModel(params, ClusterConfig(nodes=4))
    nbytes = 400 * MIB
    assert two.shuffle_seconds(nbytes) == pytest.approx(2.0)
    assert four.shuffle_seconds(nbytes) == pytest.approx(1.0)


def test_job_timing_total():
    timing = JobTiming(
        startup_seconds=5.0,
        map_seconds=10.0,
        shuffle_seconds=2.0,
        reduce_seconds=3.0,
    )
    assert timing.total_seconds == pytest.approx(20.0)


def test_job_timing_assembly_uses_slots():
    model = make_model(job_startup_seconds=1.0)
    cluster_slots = model.cluster.total_map_slots
    tasks = [1.0] * (2 * cluster_slots)  # exactly two waves
    timing = model.job_timing(tasks, [], 0)
    assert timing.map_seconds == pytest.approx(2.0)
    assert timing.startup_seconds == 1.0


def test_invalid_cost_parameters_rejected():
    with pytest.raises(ConfigurationError):
        CostParameters(disk_read_mbps=0.0)
    with pytest.raises(ConfigurationError):
        CostParameters(seconds_per_coordinate_op=-1.0)
