"""Data-locality-aware map scheduling."""

import pytest

from repro.mapreduce.cluster import MIB, ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.hdfs import InMemoryDFS, Split
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.locality import (
    DATA_LOCAL_TASKS,
    REMOTE_TASKS,
    LocalitySchedule,
    MapTaskSpec,
    fetch_seconds,
    replica_nodes,
    schedule_map_tasks,
)
from repro.mapreduce.runtime import MapReduceRuntime


def split(index, name="f", size=64):
    return Split(name, index, [0] * 4, size)


def test_replica_nodes_deterministic_and_consecutive():
    nodes = replica_nodes(split(0), nodes=8, replication=3)
    assert nodes == replica_nodes(split(0), nodes=8, replication=3)
    assert len(nodes) == 3
    assert len(set(nodes)) == 3
    # HDFS-style: consecutive modulo the cluster size.
    assert nodes[1] == (nodes[0] + 1) % 8


def test_replica_count_capped_by_cluster():
    assert len(replica_nodes(split(1), nodes=2, replication=3)) == 2
    assert len(replica_nodes(split(1), nodes=1, replication=3)) == 1


def test_different_splits_spread_over_nodes():
    placements = {replica_nodes(split(i), nodes=16)[0] for i in range(64)}
    assert len(placements) > 8


def test_schedule_all_local_when_replicas_everywhere():
    cluster = ClusterConfig(nodes=2, map_slots_per_node=2)
    tasks = [
        MapTaskSpec(seconds=1.0, fetch_seconds=10.0, replicas=(0, 1))
        for _ in range(8)
    ]
    schedule = schedule_map_tasks(tasks, cluster)
    assert schedule.remote_tasks == 0
    assert schedule.locality_fraction == 1.0
    assert schedule.makespan == pytest.approx(2.0)  # 8 tasks over 4 slots


def test_schedule_prefers_local_but_accepts_remote_to_balance():
    """All replicas on node 0: with a big fetch cost tasks pile up
    locally, with a tiny one they spill to node 1."""
    cluster = ClusterConfig(nodes=2, map_slots_per_node=1)
    sticky = [
        MapTaskSpec(seconds=1.0, fetch_seconds=100.0, replicas=(0,))
        for _ in range(4)
    ]
    schedule = schedule_map_tasks(sticky, cluster)
    assert schedule.remote_tasks == 0
    assert schedule.makespan == pytest.approx(4.0)

    cheap_fetch = [
        MapTaskSpec(seconds=1.0, fetch_seconds=0.1, replicas=(0,))
        for _ in range(4)
    ]
    schedule = schedule_map_tasks(cheap_fetch, cluster)
    assert schedule.remote_tasks == 2
    assert schedule.makespan == pytest.approx(2.2)


def test_schedule_empty():
    cluster = ClusterConfig(nodes=2)
    schedule = schedule_map_tasks([], cluster)
    assert schedule.makespan == 0.0
    assert schedule.locality_fraction == 1.0


def test_fetch_seconds():
    assert fetch_seconds(120 * MIB, 120.0) == pytest.approx(1.0)


class CountMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("n", 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def run_with_locality(nodes=4, locality=True, cached=False):
    dfs = InMemoryDFS(split_size_bytes=64)
    f = dfs.write("data", list(range(64)), bytes_per_record=8)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=nodes), rng=1, locality=locality
    )
    job = Job(name="j", mapper=CountMapper, reducer=SumReducer, num_reduce_tasks=1)
    return runtime.run(job, f, cached=cached)


def test_runtime_counts_locality():
    result = run_with_locality()
    c = result.counters
    total = c.get(FRAMEWORK_GROUP, DATA_LOCAL_TASKS) + c.get(
        FRAMEWORK_GROUP, REMOTE_TASKS
    )
    assert total == result.num_map_tasks
    # Replication 3 over 4 nodes: the vast majority of tasks run local.
    assert c.get(FRAMEWORK_GROUP, DATA_LOCAL_TASKS) >= total * 0.7


def test_runtime_without_locality_has_no_counters():
    result = run_with_locality(locality=False)
    assert result.counters.get(FRAMEWORK_GROUP, DATA_LOCAL_TASKS) == 0
    assert result.counters.get(FRAMEWORK_GROUP, REMOTE_TASKS) == 0


def test_cached_input_is_always_local():
    result = run_with_locality(cached=True)
    assert result.counters.get(FRAMEWORK_GROUP, REMOTE_TASKS) == 0


def test_locality_does_not_change_results():
    with_loc = run_with_locality(locality=True)
    without = run_with_locality(locality=False)
    assert sorted(with_loc.output) == sorted(without.output)
