"""Weight-balanced partitioning (the paper's skew future work)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.partitioners import (
    make_weight_balanced_partitioner,
    reduce_load_imbalance,
)
from repro.mapreduce.runtime import MapReduceRuntime


def test_balances_known_weights():
    weights = {0: 100, 1: 50, 2: 50}
    p = make_weight_balanced_partitioner(weights, 2)
    buckets = {0: 0.0, 1: 0.0}
    for key, w in weights.items():
        buckets[p(key, 2)] += w
    assert buckets[0] == buckets[1] == 100


def test_heaviest_keys_spread_first():
    weights = {i: 10 - i for i in range(10)}
    p = make_weight_balanced_partitioner(weights, 5)
    loads = [0] * 5
    for key, w in weights.items():
        loads[p(key, 5)] += w
    assert max(loads) - min(loads) <= 2


def test_unknown_keys_fall_back_to_hash():
    p = make_weight_balanced_partitioner({0: 10}, 4)
    for key in (99, "other", (1, 2)):
        index = p(key, 4)
        assert 0 <= index < 4
        assert index == p(key, 4)


def test_reducer_count_pinned():
    p = make_weight_balanced_partitioner({0: 1}, 4)
    with pytest.raises(ConfigurationError):
        p(0, 8)


def test_invalid_reducer_count():
    with pytest.raises(ConfigurationError):
        make_weight_balanced_partitioner({}, 0)


class SkewMapper(Mapper):
    """Emits one heavy key and several light ones."""

    def map(self, key, value, ctx):
        ctx.emit(value, np.zeros(100))


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(values))


def run_skewed_job(partitioner=None):
    dfs = InMemoryDFS(split_size_bytes=64)
    # Key 0 carries 80% of the records; keys 1..4 share the rest.
    records = [0] * 160 + [1, 2, 3, 4] * 10
    f = dfs.write("data", records, bytes_per_record=8)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=1), rng=0)
    job = Job(
        name="skew",
        mapper=SkewMapper,
        reducer=CountReducer,
        num_reduce_tasks=4,
    )
    if partitioner is not None:
        job.partitioner = partitioner
    return runtime.run(job, f)


def test_reduce_load_imbalance_measures_skew():
    hashed = run_skewed_job()
    assert reduce_load_imbalance(hashed) > 1.0


def test_balanced_beats_hash_on_skew():
    weights = {0: 160, 1: 10, 2: 10, 3: 10, 4: 10}
    balanced = run_skewed_job(make_weight_balanced_partitioner(weights, 4))
    hashed = run_skewed_job()
    assert sorted(balanced.output) == sorted(hashed.output)
    assert (
        reduce_load_imbalance(balanced) <= reduce_load_imbalance(hashed) + 1e-9
    )


def test_imbalance_of_empty_job():
    from repro.mapreduce.runtime import JobResult
    from repro.mapreduce.costmodel import JobTiming
    from repro.mapreduce.counters import Counters

    result = JobResult(
        job_name="x",
        output=[],
        counters=Counters(),
        timing=JobTiming(0, 0, 0, 0),
        num_map_tasks=0,
        num_reduce_tasks=0,
    )
    assert reduce_load_imbalance(result) == 1.0
