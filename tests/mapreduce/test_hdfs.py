"""In-memory DFS: splitting, byte accounting, namespace semantics."""

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    DataFormatError,
    SplitUnavailableError,
)
from repro.mapreduce.hdfs import (
    BLOCK_FAULT_SEED_ENV,
    BLOCK_LOSS_PROB_ENV,
    BlockFaultModel,
    DEFAULT_SPLIT_SIZE,
    InMemoryDFS,
    ReadReport,
)


def test_default_split_size_is_64mb():
    assert DEFAULT_SPLIT_SIZE == 64 * 1024 * 1024
    assert InMemoryDFS().split_size_bytes == DEFAULT_SPLIT_SIZE


def test_write_chunks_into_splits():
    dfs = InMemoryDFS(split_size_bytes=100)
    records = np.arange(50, dtype=np.float64).reshape(25, 2)
    f = dfs.write("f", records, bytes_per_record=10)
    # 10 records per split -> 3 splits of 10/10/5
    assert f.num_splits == 3
    assert [s.num_records for s in f.splits] == [10, 10, 5]
    assert f.num_records == 25
    assert f.size_bytes == 250
    assert [s.size_bytes for s in f.splits] == [100, 100, 50]


def test_split_indices_and_file_name():
    dfs = InMemoryDFS(split_size_bytes=40)
    f = dfs.write("name", np.ones((9, 1)), bytes_per_record=10)
    assert [s.index for s in f.splits] == [0, 1, 2]
    assert all(s.file_name == "name" for s in f.splits)


def test_all_records_roundtrip_numpy():
    dfs = InMemoryDFS(split_size_bytes=64)
    records = np.random.default_rng(0).random((37, 3))
    dfs.write("f", records, bytes_per_record=16)
    assert np.array_equal(dfs.open("f").all_records(), records)


def test_all_records_roundtrip_list():
    dfs = InMemoryDFS(split_size_bytes=8)
    lines = [f"line{i}" for i in range(10)]
    dfs.write("f", lines, bytes_per_record=6)
    assert dfs.open("f").all_records() == lines


def test_record_larger_than_split_still_stored():
    dfs = InMemoryDFS(split_size_bytes=4)
    f = dfs.write("f", np.ones((3, 1)), bytes_per_record=100)
    assert f.num_splits == 3  # one record per split minimum


def test_write_counts_replicated_bytes():
    dfs = InMemoryDFS(split_size_bytes=1000)
    dfs.write("f", np.ones((10, 1)), bytes_per_record=10, replication=3)
    assert dfs.bytes_written == 300
    assert dfs.total_stored_bytes == 300


def test_read_all_charges_bytes():
    dfs = InMemoryDFS(split_size_bytes=1000)
    dfs.write("f", np.ones((10, 1)), bytes_per_record=10)
    dfs.read_all("f")
    dfs.read_all("f")
    assert dfs.bytes_read == 200


def test_write_existing_requires_overwrite():
    dfs = InMemoryDFS()
    dfs.write("f", np.ones((2, 1)), bytes_per_record=8)
    with pytest.raises(ConfigurationError):
        dfs.write("f", np.ones((2, 1)), bytes_per_record=8)
    dfs.write("f", np.zeros((3, 1)), bytes_per_record=8, overwrite=True)
    assert dfs.open("f").num_records == 3


def test_write_empty_rejected():
    dfs = InMemoryDFS()
    with pytest.raises(DataFormatError):
        dfs.write("f", np.empty((0, 2)), bytes_per_record=8)


def test_open_missing_raises():
    with pytest.raises(DataFormatError):
        InMemoryDFS().open("ghost")


def test_delete_and_listdir():
    dfs = InMemoryDFS()
    dfs.write("b", np.ones((1, 1)), bytes_per_record=8)
    dfs.write("a", np.ones((1, 1)), bytes_per_record=8)
    assert dfs.listdir() == ["a", "b"]
    assert dfs.exists("a")
    dfs.delete("a")
    assert not dfs.exists("a")
    with pytest.raises(DataFormatError):
        dfs.delete("a")


def test_invalid_split_size():
    with pytest.raises(ConfigurationError):
        InMemoryDFS(split_size_bytes=0)


# -- replica health and recovery ----------------------------------------


def one_split_file(dfs, name="f", records=10, per_record=10, replication=3):
    return dfs.write(
        name,
        np.ones((records, 1)),
        bytes_per_record=per_record,
        replication=replication,
    )


def test_overwrite_releases_old_splits():
    """Overwriting must delete the old incarnation's splits first."""
    dfs = InMemoryDFS(split_size_bytes=100)
    one_split_file(dfs, records=10)  # 100 bytes of data, 300 stored
    dfs.lose_replica("f", 0)
    dfs.write("f", np.ones((3, 1)), bytes_per_record=10, overwrite=True)
    assert dfs.total_stored_bytes == 3 * 10 * 3
    # Replica damage to the old incarnation does not haunt the new one.
    assert dfs.live_replicas("f", 0) == 3
    report = dfs.charge_read(dfs.open("f"))
    assert report.replica_failovers == 0


def test_read_fails_over_past_lost_replica_and_re_replicates():
    dfs = InMemoryDFS(split_size_bytes=100)
    f = one_split_file(dfs, records=10)  # one 100-byte split
    dfs.lose_replica("f", 0)
    assert dfs.live_replicas("f", 0) == 2
    read0 = dfs.bytes_read
    written0 = dfs.bytes_written
    report = dfs.charge_read(f)
    assert report.replica_failovers == 1
    assert report.extra_bytes_read == 100  # one wasted dead-copy read
    assert report.re_replications == 1
    assert report.bytes_re_replicated == 100
    assert dfs.bytes_read - read0 == 200  # wasted copy + real read
    assert dfs.bytes_written - written0 == 100  # healing transfer
    assert dfs.live_replicas("f", 0) == 3  # healed back to full strength
    # A later read is clean again.
    assert dfs.charge_read(f).replica_failovers == 0


def test_corrupt_replica_behaves_like_loss():
    dfs = InMemoryDFS(split_size_bytes=100)
    f = one_split_file(dfs)
    dfs.corrupt_replica("f", 0, count=2)
    report = dfs.charge_read(f)
    assert report.replica_failovers == 2
    assert dfs.live_replicas("f", 0) == 3


def test_no_auto_re_replication_keeps_file_degraded():
    dfs = InMemoryDFS(split_size_bytes=100, auto_re_replicate=False)
    f = one_split_file(dfs)
    dfs.lose_replica("f", 0)
    report = dfs.charge_read(f)
    assert report.re_replications == 0
    assert dfs.live_replicas("f", 0) == 2
    # Every read keeps stumbling over the same dead copy.
    assert dfs.charge_read(f).replica_failovers == 1


def test_losing_every_replica_makes_split_unavailable():
    dfs = InMemoryDFS(split_size_bytes=100)
    f = one_split_file(dfs)
    dfs.lose_block("f", 0)
    assert dfs.live_replicas("f", 0) == 0
    with pytest.raises(SplitUnavailableError, match=r"split f:0"):
        dfs.charge_read(f)
    # The doomed read still charged its wasted failover attempts.
    assert dfs.bytes_read == 300


def test_lose_replica_caps_at_live_count():
    dfs = InMemoryDFS(split_size_bytes=100)
    one_split_file(dfs)
    dfs.lose_replica("f", 0, count=99)
    assert dfs.live_replicas("f", 0) == 0


def test_replica_ops_on_unknown_split_raise():
    dfs = InMemoryDFS()
    with pytest.raises(DataFormatError):
        dfs.lose_replica("ghost", 0)
    with pytest.raises(DataFormatError):
        dfs.live_replicas("ghost", 0)


def test_delete_forgets_replica_state():
    dfs = InMemoryDFS(split_size_bytes=100)
    one_split_file(dfs)
    dfs.lose_replica("f", 0)
    dfs.delete("f")
    with pytest.raises(DataFormatError):
        dfs.live_replicas("f", 0)


# -- stochastic block faults --------------------------------------------


def chaos_dfs(probability=0.2, seed=5):
    return InMemoryDFS(
        split_size_bytes=100,
        fault_model=BlockFaultModel(
            replica_loss_probability=probability, seed=seed
        ),
    )


def test_block_fault_model_loses_and_heals_replicas():
    dfs = chaos_dfs()
    f = one_split_file(dfs, records=50)  # 5 splits
    report = ReadReport()
    for _ in range(5):
        report.merge(dfs.charge_read(f))
    # Healing after every read keeps total block loss vanishingly rare;
    # the invariants matter more than the exact draw count.
    assert report.replicas_lost > 0
    assert report.replica_failovers == report.replicas_lost
    assert report.re_replications == report.replicas_lost
    for split in f.splits:
        assert dfs.live_replicas("f", split.index) == 3


def test_block_faults_are_deterministic_per_seed():
    def totals(seed):
        dfs = chaos_dfs(seed=seed)
        f = one_split_file(dfs, records=80)
        for _ in range(5):
            dfs.charge_read(f)
        return (dfs.replicas_lost, dfs.bytes_read, dfs.bytes_written)

    assert totals(7) == totals(7)
    assert totals(7) != totals(8)


def test_block_faults_never_change_data():
    dfs = chaos_dfs()
    records = np.random.default_rng(0).random((40, 2))
    dfs.write("f", records, bytes_per_record=10)
    for _ in range(10):
        assert np.array_equal(dfs.read_all("f"), records)


def test_certain_loss_exhausts_block():
    dfs = InMemoryDFS(
        split_size_bytes=100,
        fault_model=BlockFaultModel(replica_loss_probability=1.0),
    )
    f = one_split_file(dfs)
    with pytest.raises(SplitUnavailableError):
        dfs.charge_read(f)


def test_block_fault_model_validation_and_env():
    with pytest.raises(ConfigurationError):
        BlockFaultModel(replica_loss_probability=1.5)
    assert BlockFaultModel.from_env({}) is None
    assert BlockFaultModel.from_env({BLOCK_LOSS_PROB_ENV: "0"}) is None
    model = BlockFaultModel.from_env(
        {BLOCK_LOSS_PROB_ENV: "0.25", BLOCK_FAULT_SEED_ENV: "9"}
    )
    assert model == BlockFaultModel(replica_loss_probability=0.25, seed=9)
    with pytest.raises(ConfigurationError):
        BlockFaultModel.from_env({BLOCK_LOSS_PROB_ENV: "lots"})
