"""In-memory DFS: splitting, byte accounting, namespace semantics."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, DataFormatError
from repro.mapreduce.hdfs import DEFAULT_SPLIT_SIZE, InMemoryDFS


def test_default_split_size_is_64mb():
    assert DEFAULT_SPLIT_SIZE == 64 * 1024 * 1024
    assert InMemoryDFS().split_size_bytes == DEFAULT_SPLIT_SIZE


def test_write_chunks_into_splits():
    dfs = InMemoryDFS(split_size_bytes=100)
    records = np.arange(50, dtype=np.float64).reshape(25, 2)
    f = dfs.write("f", records, bytes_per_record=10)
    # 10 records per split -> 3 splits of 10/10/5
    assert f.num_splits == 3
    assert [s.num_records for s in f.splits] == [10, 10, 5]
    assert f.num_records == 25
    assert f.size_bytes == 250
    assert [s.size_bytes for s in f.splits] == [100, 100, 50]


def test_split_indices_and_file_name():
    dfs = InMemoryDFS(split_size_bytes=40)
    f = dfs.write("name", np.ones((9, 1)), bytes_per_record=10)
    assert [s.index for s in f.splits] == [0, 1, 2]
    assert all(s.file_name == "name" for s in f.splits)


def test_all_records_roundtrip_numpy():
    dfs = InMemoryDFS(split_size_bytes=64)
    records = np.random.default_rng(0).random((37, 3))
    dfs.write("f", records, bytes_per_record=16)
    assert np.array_equal(dfs.open("f").all_records(), records)


def test_all_records_roundtrip_list():
    dfs = InMemoryDFS(split_size_bytes=8)
    lines = [f"line{i}" for i in range(10)]
    dfs.write("f", lines, bytes_per_record=6)
    assert dfs.open("f").all_records() == lines


def test_record_larger_than_split_still_stored():
    dfs = InMemoryDFS(split_size_bytes=4)
    f = dfs.write("f", np.ones((3, 1)), bytes_per_record=100)
    assert f.num_splits == 3  # one record per split minimum


def test_write_counts_replicated_bytes():
    dfs = InMemoryDFS(split_size_bytes=1000)
    dfs.write("f", np.ones((10, 1)), bytes_per_record=10, replication=3)
    assert dfs.bytes_written == 300
    assert dfs.total_stored_bytes == 300


def test_read_all_charges_bytes():
    dfs = InMemoryDFS(split_size_bytes=1000)
    dfs.write("f", np.ones((10, 1)), bytes_per_record=10)
    dfs.read_all("f")
    dfs.read_all("f")
    assert dfs.bytes_read == 200


def test_write_existing_requires_overwrite():
    dfs = InMemoryDFS()
    dfs.write("f", np.ones((2, 1)), bytes_per_record=8)
    with pytest.raises(ConfigurationError):
        dfs.write("f", np.ones((2, 1)), bytes_per_record=8)
    dfs.write("f", np.zeros((3, 1)), bytes_per_record=8, overwrite=True)
    assert dfs.open("f").num_records == 3


def test_write_empty_rejected():
    dfs = InMemoryDFS()
    with pytest.raises(DataFormatError):
        dfs.write("f", np.empty((0, 2)), bytes_per_record=8)


def test_open_missing_raises():
    with pytest.raises(DataFormatError):
        InMemoryDFS().open("ghost")


def test_delete_and_listdir():
    dfs = InMemoryDFS()
    dfs.write("b", np.ones((1, 1)), bytes_per_record=8)
    dfs.write("a", np.ones((1, 1)), bytes_per_record=8)
    assert dfs.listdir() == ["a", "b"]
    assert dfs.exists("a")
    dfs.delete("a")
    assert not dfs.exists("a")
    with pytest.raises(DataFormatError):
        dfs.delete("a")


def test_invalid_split_size():
    with pytest.raises(ConfigurationError):
        InMemoryDFS(split_size_bytes=0)
