"""Counter semantics: increments, max-merge, snapshots."""

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
    framework,
)


def test_get_unset_counter_is_zero():
    assert Counters().get("g", "n") == 0


def test_inc_accumulates():
    c = Counters()
    c.inc("g", "n", 3)
    c.inc("g", "n")
    assert c.get("g", "n") == 4


def test_groups_are_independent():
    c = Counters()
    c.inc("a", "n", 1)
    c.inc("b", "n", 2)
    assert c.get("a", "n") == 1
    assert c.get("b", "n") == 2


def test_set_max_only_raises():
    c = Counters()
    c.set_max("g", "HIGH_MAX", 10)
    c.set_max("g", "HIGH_MAX", 5)
    assert c.get("g", "HIGH_MAX") == 10
    c.set_max("g", "HIGH_MAX", 20)
    assert c.get("g", "HIGH_MAX") == 20


def test_merge_sums_regular_counters():
    a, b = Counters(), Counters()
    a.inc("g", "n", 2)
    b.inc("g", "n", 5)
    a.merge(b)
    assert a.get("g", "n") == 7


def test_merge_maxes_counters_with_max_suffix():
    a, b = Counters(), Counters()
    a.set_max(USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX, 100)
    b.set_max(USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX, 40)
    a.merge(b)
    assert a.get(USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX) == 100
    b.merge(a)
    assert b.get(USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX) == 100


def test_merge_max_helper():
    a, b = Counters(), Counters()
    b.inc("g", "n", 9)
    a.merge_max(b, "g", "n")
    assert a.get("g", "n") == 9


def test_snapshot_and_as_dict():
    c = Counters()
    c.inc("g", "x", 1)
    c.inc("h", "y", 2)
    assert c.snapshot() == {("g", "x"): 1, ("h", "y"): 2}
    assert c.as_dict() == {"g": {"x": 1}, "h": {"y": 2}}


def test_iteration_yields_all():
    c = Counters()
    c.inc("g", "x", 1)
    c.inc("g", "y", 2)
    assert sorted(c) == [("g", "x", 1), ("g", "y", 2)]


def test_framework_helper_targets_framework_group():
    c = Counters()
    framework(c, MRCounter.MAP_TASKS, 2)
    assert c.get(FRAMEWORK_GROUP, MRCounter.MAP_TASKS) == 2


def test_copy_is_independent():
    c = Counters()
    c.inc("g", "n", 3)
    clone = c.copy()
    c.inc("g", "n", 4)
    assert clone.get("g", "n") == 3
    assert c.get("g", "n") == 7


def test_from_dict_round_trips_as_dict():
    c = Counters()
    c.inc("g", "x", 1)
    c.set_max("g", "HIGH_MAX", 9)
    assert Counters.from_dict(c.as_dict()).as_dict() == c.as_dict()


def test_diff_additive_counters():
    before = Counters()
    before.inc("g", "n", 2)
    after = before.copy()
    after.inc("g", "n", 5)
    after.inc("g", "new", 1)
    delta = after.diff(before)
    assert delta.get("g", "n") == 5
    assert delta.get("g", "new") == 1


def test_diff_omits_unchanged():
    before = Counters()
    before.inc("g", "same", 4)
    after = before.copy()
    after.inc("g", "moved", 1)
    assert after.diff(before).as_dict() == {"g": {"moved": 1}}


def test_diff_max_counters_keep_high_water_semantics():
    before = Counters()
    before.set_max("g", "HIGH_MAX", 10)
    after = before.copy()
    after.set_max("g", "HIGH_MAX", 7)  # below the high water: unchanged
    assert after.diff(before).as_dict() == {}
    after.set_max("g", "HIGH_MAX", 25)
    assert after.diff(before).get("g", "HIGH_MAX") == 25


def test_merge_of_diff_reconstructs_current():
    before = Counters()
    before.inc("g", "n", 2)
    before.set_max("g", "HIGH_MAX", 10)
    after = before.copy()
    after.inc("g", "n", 3)
    after.inc("h", "m", 1)
    after.set_max("g", "HIGH_MAX", 30)
    rebuilt = before.copy()
    rebuilt.merge(after.diff(before))
    assert rebuilt.as_dict() == after.as_dict()
