"""Stable hashing, value sizing, and the OFFSET constant."""

import numpy as np
import pytest

from repro.mapreduce.types import OFFSET, sizeof_value, stable_hash


def test_offset_is_2_to_62():
    assert OFFSET == 2**62


def test_stable_hash_int_is_nonnegative_and_stable():
    assert stable_hash(42) == stable_hash(42)
    assert stable_hash(-5) >= 0
    assert stable_hash(2**63 - 1) >= 0


def test_stable_hash_numpy_int():
    assert stable_hash(np.int64(7)) == stable_hash(7)


def test_stable_hash_string_is_crc_based():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") != stable_hash("abd")


def test_stable_hash_tuple_order_sensitive():
    assert stable_hash((1, 2)) != stable_hash((2, 1))
    assert stable_hash((1, "x")) == stable_hash((1, "x"))


def test_stable_hash_bool():
    assert stable_hash(True) == 1
    assert stable_hash(False) == 0


def test_stable_hash_rejects_unhashable_types():
    with pytest.raises(TypeError):
        stable_hash([1, 2])


def test_sizeof_scalars():
    assert sizeof_value(None) == 0
    assert sizeof_value(1) == 8
    assert sizeof_value(1.5) == 8
    assert sizeof_value(True) == 1
    assert sizeof_value(np.float64(2.0)) == 8


def test_sizeof_ndarray_is_buffer_size():
    arr = np.zeros(10, dtype=np.float64)
    assert sizeof_value(arr) == 80
    assert sizeof_value(np.zeros((3, 4))) == 96


def test_sizeof_string_utf8():
    assert sizeof_value("abc") == 3
    assert sizeof_value("é") == 2
    assert sizeof_value(b"abcd") == 4


def test_sizeof_containers_recursive():
    assert sizeof_value((np.zeros(2), 1)) == 24
    assert sizeof_value([1, 2, 3]) == 24
    assert sizeof_value({"a": 1}) == 9


def test_sizeof_rejects_unknown():
    with pytest.raises(TypeError):
        sizeof_value(object())
