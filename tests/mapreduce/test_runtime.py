"""The job executor: semantics, counters, heap failures, determinism."""

import numpy as np
import pytest

from repro.common.errors import JavaHeapSpaceError, JobFailedError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
)
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime


class WordMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


# Jobs must be built from module-level (picklable) callables so the
# whole suite can also run under REPRO_EXECUTOR=processes.


class TaskTagReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, (ctx.task_id, len(values)))


class IdentityMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value)


class HookCountingMapper(Mapper):
    """Reports lifecycle hooks through counters (worker-process safe)."""

    def setup(self, ctx):
        ctx.count("SETUP_CALLS")

    def map(self, key, value, ctx):
        pass

    def close(self, ctx):
        ctx.count("CLOSE_CALLS")


class BigValueMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("big", np.zeros(1000))


class SpreadMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value, np.zeros(1000))


class RandomishMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(int(ctx.rng.integers(100)), 1)


def ten_times_nbytes(value) -> int:
    return value.nbytes * 10


def half_heap_per_value(value) -> int:
    return 500 * 1024


def build(split_size=32, nodes=2, heap_mb=64, seed=7):
    dfs = InMemoryDFS(split_size_bytes=split_size)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=nodes, task_heap_mb=heap_mb), rng=seed
    )
    return dfs, runtime


def write_lines(dfs, lines, per_record=16):
    return dfs.write("text", lines, bytes_per_record=per_record)


def wordcount_job(**kwargs) -> Job:
    defaults = dict(
        name="wc",
        mapper=WordMapper,
        reducer=SumReducer,
        combiner=SumReducer,
        num_reduce_tasks=3,
    )
    defaults.update(kwargs)
    return Job(**defaults)


def test_wordcount_correctness():
    dfs, runtime = build()
    f = write_lines(dfs, ["a b a", "c a b", "b b"])
    result = runtime.run(wordcount_job(), f)
    assert sorted(result.output) == [("a", 3), ("b", 4), ("c", 1)]


def test_output_dict_groups_values():
    dfs, runtime = build()
    f = write_lines(dfs, ["x y", "x"])
    result = runtime.run(wordcount_job(), f)
    assert result.output_dict() == {"x": [2], "y": [1]}


def test_run_by_file_name():
    dfs, runtime = build()
    write_lines(dfs, ["a"])
    result = runtime.run(wordcount_job(), "text")
    assert result.output == [("a", 1)]


def test_framework_counters_exact():
    dfs, runtime = build(split_size=32)  # 2 records per split
    f = write_lines(dfs, ["a b", "a c", "b b"])
    assert f.num_splits == 2
    result = runtime.run(wordcount_job(), f)
    c = result.counters
    assert c.get(FRAMEWORK_GROUP, MRCounter.MAP_TASKS) == 2
    assert c.get(FRAMEWORK_GROUP, MRCounter.MAP_INPUT_RECORDS) == 3
    assert c.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS) == 6
    assert c.get(FRAMEWORK_GROUP, MRCounter.REDUCE_TASKS) == 3
    assert c.get(FRAMEWORK_GROUP, MRCounter.DATASET_READS) == 1
    assert c.get(FRAMEWORK_GROUP, MRCounter.HDFS_BYTES_READ) == f.size_bytes
    # combiner output feeds reducers
    assert (
        c.get(FRAMEWORK_GROUP, MRCounter.REDUCE_INPUT_RECORDS)
        == c.get(FRAMEWORK_GROUP, MRCounter.COMBINE_OUTPUT_RECORDS)
    )


def test_combiner_reduces_shuffle_bytes():
    dfs, runtime = build(split_size=1024)
    lines = ["a a a a a a a a"] * 4
    f = write_lines(dfs, lines)
    with_combiner = runtime.run(wordcount_job(name="with"), f)
    without_combiner = runtime.run(wordcount_job(name="without", combiner=None), f)
    assert sorted(with_combiner.output) == sorted(without_combiner.output)
    assert with_combiner.counters.get(
        FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES
    ) < without_combiner.counters.get(FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)


def test_same_key_lands_in_one_reduce_task():
    dfs, runtime = build(split_size=16)  # 1 record per split
    f = write_lines(dfs, ["k v", "k w", "k x"])
    job = Job(name="tag", mapper=WordMapper, reducer=TaskTagReducer, num_reduce_tasks=4)
    result = runtime.run(job, f)
    groups = result.output_dict()
    # "k" appears in all three splits but is reduced exactly once.
    assert len(groups["k"]) == 1
    assert groups["k"][0][1] == 3


def test_map_only_job():
    dfs, runtime = build()
    f = write_lines(dfs, ["a b"])
    result = runtime.run(Job(name="id", mapper=IdentityMapper), f)
    assert result.num_reduce_tasks == 0
    assert result.output == [(0, "a b")]


def test_mapper_lifecycle_hooks_called_per_task():
    dfs, runtime = build(split_size=16)
    f = write_lines(dfs, ["a", "b", "c"])
    result = runtime.run(
        Job(name="hooks", mapper=HookCountingMapper, reducer=SumReducer), f
    )
    assert result.counters.get(USER_GROUP, "SETUP_CALLS") == f.num_splits
    assert result.counters.get(USER_GROUP, "CLOSE_CALLS") == f.num_splits


def test_reduce_heap_failure_wrapped_as_job_failure():
    dfs, runtime = build(heap_mb=1)  # 1 MiB heap
    f = write_lines(dfs, ["x"] * 200)
    job = Job(
        name="heap",
        mapper=BigValueMapper,
        reducer=SumReducer,
        num_reduce_tasks=1,
        heap_bytes_per_value=ten_times_nbytes,  # 80 KB per value
    )
    with pytest.raises(JobFailedError) as exc_info:
        runtime.run(job, f)
    assert isinstance(exc_info.value.cause, JavaHeapSpaceError)


def test_reduce_heap_freed_between_groups():
    """Each key group is charged separately; many small groups fit."""
    dfs, runtime = build(heap_mb=1)
    f = write_lines(dfs, [f"k{i}" for i in range(100)])
    job = Job(
        name="groups",
        mapper=SpreadMapper,
        reducer=SumReducer,
        num_reduce_tasks=1,
        heap_bytes_per_value=half_heap_per_value,  # half the heap per group
    )
    result = runtime.run(job, f)  # must not raise
    assert result.max_reduce_heap_bytes == 500 * 1024


def test_determinism_same_seed_same_output():
    outputs = []
    for _ in range(2):
        dfs, runtime = build(seed=42)
        f = write_lines(dfs, [f"r{i}" for i in range(20)])
        job = Job(name="rand", mapper=RandomishMapper, reducer=SumReducer)
        outputs.append(sorted(runtime.run(job, f).output))
    assert outputs[0] == outputs[1]


def test_cached_run_counts_cached_read():
    dfs, runtime = build()
    f = write_lines(dfs, ["a"])
    result = runtime.run(wordcount_job(), f, cached=True)
    c = result.counters
    assert c.get(FRAMEWORK_GROUP, MRCounter.CACHED_READS) == 1
    assert c.get(FRAMEWORK_GROUP, MRCounter.DATASET_READS) == 0
    assert c.get(FRAMEWORK_GROUP, MRCounter.HDFS_BYTES_READ) == 0


def test_simulated_time_positive_and_composed():
    dfs, runtime = build()
    f = write_lines(dfs, ["a b c"] * 10)
    result = runtime.run(wordcount_job(), f)
    t = result.timing
    assert result.simulated_seconds == pytest.approx(
        t.startup_seconds + t.map_seconds + t.shuffle_seconds + t.reduce_seconds
    )
    assert result.simulated_seconds > 0


def test_num_reduce_defaults_to_cluster_capacity():
    dfs, runtime = build(nodes=2)
    f = write_lines(dfs, ["a"])
    job = wordcount_job(num_reduce_tasks=0)
    result = runtime.run(job, f)
    assert result.num_reduce_tasks == runtime.cluster.total_reduce_slots


# -- job-level retry with backoff ---------------------------------------


def flaky_runtime(max_job_retries, seed=11, failure_probability=0.3):
    from repro.mapreduce.executors import RuntimeConfig
    from repro.mapreduce.faults import FaultModel

    dfs = InMemoryDFS(split_size_bytes=32)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=seed,
        faults=FaultModel(
            task_failure_probability=failure_probability, max_attempts=1
        ),
        config=RuntimeConfig(
            max_job_retries=max_job_retries, retry_backoff_seconds=30.0
        ),
    )
    f = write_lines(dfs, ["a b", "a c", "b b", "c a"])
    return runtime, f


def test_no_retries_by_default_job_fails():
    runtime, f = flaky_runtime(max_job_retries=0)
    with pytest.raises(JobFailedError):
        runtime.run(wordcount_job(), f)


def test_job_retry_recovers_and_charges_backoff():
    runtime, f = flaky_runtime(max_job_retries=25)
    result = runtime.run(wordcount_job(), f)
    # Retried jobs produce the same answer a fault-free run would.
    assert sorted(result.output) == [("a", 3), ("b", 3), ("c", 2)]
    assert result.job_retries > 0
    assert result.counters.get(FRAMEWORK_GROUP, MRCounter.JOB_RETRIES) == (
        result.job_retries
    )
    # The wait between submissions is charged on top of execution time.
    assert result.overhead_seconds >= 30.0
    assert result.simulated_seconds == pytest.approx(
        result.timing.total_seconds + result.overhead_seconds
    )


def test_job_retry_results_match_fault_free_run():
    clean_runtime, clean_f = flaky_runtime(
        max_job_retries=0, failure_probability=0.0
    )
    clean = clean_runtime.run(wordcount_job(), clean_f)
    runtime, f = flaky_runtime(max_job_retries=25)
    retried = runtime.run(wordcount_job(), f)
    assert sorted(retried.output) == sorted(clean.output)


def test_retries_exhausted_reraises():
    runtime, f = flaky_runtime(max_job_retries=2, failure_probability=1.0)
    with pytest.raises(JobFailedError):
        runtime.run(wordcount_job(), f)


def test_backoff_grows_exponentially():
    from repro.mapreduce.executors import RuntimeConfig

    dfs = InMemoryDFS(split_size_bytes=32)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=2),
        rng=0,
        config=RuntimeConfig(
            max_job_retries=4,
            retry_backoff_seconds=10.0,
            retry_backoff_factor=2.0,
            retry_jitter=0.1,
        ),
    )
    delays = [runtime._retry_backoff_seconds(retry) for retry in (1, 2, 3)]
    for retry, delay in enumerate(delays, start=1):
        base = 10.0 * 2.0 ** (retry - 1)
        assert base <= delay <= base * 1.1
    assert delays[0] < delays[1] < delays[2]


# -- DFS block faults surfacing through jobs ----------------------------


def test_replica_failover_charged_to_job_counters():
    dfs = InMemoryDFS(split_size_bytes=32)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=3)
    f = write_lines(dfs, ["a b", "c d", "e f", "g h"])
    dfs.lose_replica("text", 0)
    dfs.lose_replica("text", 1)
    result = runtime.run(wordcount_job(), f)
    c = result.counters
    assert c.get(FRAMEWORK_GROUP, MRCounter.REPLICA_READS) == 2
    assert c.get(FRAMEWORK_GROUP, MRCounter.BLOCKS_LOST) == 0
    # Wasted failover reads and healing writes land in the byte counters.
    split = f.splits[0].size_bytes
    assert (
        c.get(FRAMEWORK_GROUP, MRCounter.HDFS_BYTES_READ)
        == f.size_bytes + 2 * split
    )
    assert c.get(FRAMEWORK_GROUP, MRCounter.HDFS_BYTES_WRITTEN) >= 2 * split
    assert result.overhead_seconds > 0


def test_unrecoverable_block_loss_fails_job():
    from repro.common.errors import SplitUnavailableError

    dfs = InMemoryDFS(split_size_bytes=32)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=3)
    f = write_lines(dfs, ["a b", "c d"])
    dfs.lose_block("text", 0)
    with pytest.raises(JobFailedError) as err:
        runtime.run(wordcount_job(), f)
    assert isinstance(err.value.cause, SplitUnavailableError)
