"""Execution tracing and Gantt rendering."""

import pytest

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.costmodel import makespan
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.trace import build_schedule, render_gantt, render_job_trace


def test_schedule_matches_makespan():
    tasks = [5.0, 4.0, 3.0, 3.0, 3.0]
    schedule = build_schedule(tasks, slots=2)
    assert max(t.end for t in schedule) == pytest.approx(makespan(tasks, 2))


def test_schedule_no_overlap_within_slot():
    tasks = [2.0, 1.0, 4.0, 3.0, 2.5]
    schedule = build_schedule(tasks, slots=2)
    by_slot: dict[int, list] = {}
    for t in schedule:
        by_slot.setdefault(t.slot, []).append(t)
    for slot_tasks in by_slot.values():
        slot_tasks.sort(key=lambda t: t.start)
        for a, b in zip(slot_tasks, slot_tasks[1:]):
            assert a.end <= b.start + 1e-12


def test_schedule_every_task_placed_once():
    tasks = [1.0] * 7
    schedule = build_schedule(tasks, slots=3)
    assert sorted(t.task_index for t in schedule) == list(range(7))


def test_schedule_empty():
    assert build_schedule([], slots=4) == []


def test_gantt_renders_rows_per_slot():
    schedule = build_schedule([3.0, 2.0, 1.0], slots=2)
    out = render_gantt(schedule, width=30, title="demo")
    lines = out.split("\n")
    assert lines[0] == "demo"
    assert sum(1 for line in lines if line.startswith("slot")) == 2
    assert "3.00s" in lines[-1]


def test_gantt_empty():
    assert "(no tasks)" in render_gantt([], title="t")


@pytest.mark.parametrize("width", [1, 2, 4, 7])
def test_gantt_narrow_width_keeps_footer_and_rows_intact(width):
    """Widths below the footer's length used to garble the axis line."""
    schedule = build_schedule([3.0, 2.0, 1.0], slots=2)
    out = render_gantt(schedule, width=width)
    lines = out.split("\n")
    assert lines[-1].startswith("0")
    assert "3.00s" in lines[-1]
    for line in lines[:-1]:
        between_bars = line.split("|")[1]
        assert len(between_bars) == width


def test_gantt_rejects_nonpositive_width():
    schedule = build_schedule([1.0], slots=1)
    with pytest.raises(Exception):
        render_gantt(schedule, width=0)


def test_gantt_zero_makespan_renders_every_task():
    """All-zero task times collapse the scale to 0; every task must
    still paint its minimum one character instead of being overwritten
    by idle dots."""
    from repro.mapreduce.trace import ScheduledTask

    schedule = [
        ScheduledTask(task_index=0, slot=0, start=0.0, end=0.0),
        ScheduledTask(task_index=1, slot=1, start=0.0, end=0.0),
    ]
    out = render_gantt(schedule, width=10)
    lines = out.split("\n")
    rows = [line for line in lines if line.startswith("slot")]
    assert len(rows) == 2
    for expected, row in zip("01", rows):
        cells = row.split("|")[1]
        assert cells[0] == expected  # the task's label, not an idle dot
    assert "0.00s" in lines[-1]


class ModuloMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 3, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def test_render_job_trace_end_to_end():
    dfs = InMemoryDFS(split_size_bytes=64)
    f = dfs.write("d", list(range(40)), bytes_per_record=8)
    cluster = ClusterConfig(nodes=2)
    runtime = MapReduceRuntime(dfs, cluster=cluster, rng=0)
    result = runtime.run(
        Job(name="traced", mapper=ModuloMapper, reducer=SumReducer, num_reduce_tasks=3), f
    )
    trace = render_job_trace(result, cluster)
    assert "job 'traced'" in trace
    assert "map phase" in trace
    assert "reduce phase" in trace
    assert "simulated" in trace
