"""Dataset generators."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.data.generator import (
    demo_r2_dataset,
    generate_gaussian_mixture,
    paper_family_dataset,
)


def test_shapes_and_ground_truth():
    mix = generate_gaussian_mixture(500, 4, 3, rng=0)
    assert mix.points.shape == (500, 3)
    assert mix.labels.shape == (500,)
    assert mix.centers.shape == (4, 3)
    assert mix.n_points == 500
    assert mix.n_clusters == 4
    assert mix.dimensions == 3


def test_every_cluster_represented():
    mix = generate_gaussian_mixture(10, 10, 2, rng=1)
    assert set(mix.labels.tolist()) == set(range(10))


def test_points_scatter_around_their_centers():
    mix = generate_gaussian_mixture(2000, 3, 5, rng=2, cluster_std=0.5)
    for c in range(3):
        member = mix.points[mix.labels == c]
        assert np.linalg.norm(member.mean(axis=0) - mix.centers[c]) < 0.5
        assert member.std(axis=0).mean() == pytest.approx(0.5, rel=0.25)


def test_min_separation_respected():
    mix = generate_gaussian_mixture(
        100, 8, 2, rng=3, min_separation=10.0, center_low=0, center_high=100
    )
    d = np.linalg.norm(
        mix.centers[:, None, :] - mix.centers[None, :, :], axis=2
    )
    np.fill_diagonal(d, np.inf)
    assert d.min() >= 10.0


def test_impossible_separation_raises():
    with pytest.raises(ConfigurationError, match="min_separation"):
        generate_gaussian_mixture(
            100, 50, 1, rng=4, min_separation=10.0, center_low=0, center_high=20
        )


def test_weights_shift_cluster_sizes():
    mix = generate_gaussian_mixture(
        3000, 2, 2, rng=5, weights=np.array([0.9, 0.1])
    )
    sizes = np.bincount(mix.labels)
    assert sizes[0] > 4 * sizes[1]


def test_invalid_weights():
    with pytest.raises(ConfigurationError):
        generate_gaussian_mixture(100, 2, 2, rng=6, weights=np.array([1.0]))
    with pytest.raises(ConfigurationError):
        generate_gaussian_mixture(100, 2, 2, rng=6, weights=np.array([-1.0, 2.0]))


def test_more_clusters_than_points_rejected():
    with pytest.raises(ConfigurationError):
        generate_gaussian_mixture(3, 5, 2, rng=7)


def test_determinism():
    a = generate_gaussian_mixture(100, 3, 2, rng=42)
    b = generate_gaussian_mixture(100, 3, 2, rng=42)
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.centers, b.centers)


def test_demo_r2_matches_paper_figure():
    mix = demo_r2_dataset(rng=8)
    assert mix.n_clusters == 10
    assert mix.dimensions == 2
    assert mix.points.min() > -20 and mix.points.max() < 120


def test_paper_family_heterogeneous_stds():
    mix = paper_family_dataset(12, 6000, rng=9)
    stds = [mix.points[mix.labels == c].std(axis=0).mean() for c in range(12)]
    assert max(stds) > 1.5 * min(stds)  # drawn from (0.5, 2.0)


def test_paper_family_group_structure():
    """Clusters come in close neighbourhoods: every cluster has a
    neighbour within ~separation_factor * combined stds."""
    mix = paper_family_dataset(12, 1200, rng=10, separation_factor=4.0)
    d = np.linalg.norm(
        mix.centers[:, None, :] - mix.centers[None, :, :], axis=2
    )
    np.fill_diagonal(d, np.inf)
    nn = d.min(axis=1)
    assert np.median(nn) < 4.0 * 2.0 * 1.4 * 2  # loose upper bound


def test_paper_family_single_cluster():
    mix = paper_family_dataset(1, 100, rng=11)
    assert mix.n_clusters == 1


def test_paper_family_validation():
    with pytest.raises(ConfigurationError):
        paper_family_dataset(4, 100, rng=0, std_range=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        paper_family_dataset(4, 100, rng=0, separation_factor=0.0)
