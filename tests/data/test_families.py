"""Stress-test dataset families."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.data.families import (
    anisotropic_mixture,
    noisy_mixture,
    uniform_ball_mixture,
)


def test_noisy_mixture_labels_and_counts():
    mix = noisy_mixture(2000, 4, 3, noise_fraction=0.2, rng=1)
    assert mix.points.shape == (2000, 3)
    noise = mix.labels == -1
    assert noise.sum() == 400
    assert set(mix.labels[~noise].tolist()) == {0, 1, 2, 3}


def test_noisy_mixture_zero_noise_is_plain_mixture():
    mix = noisy_mixture(500, 3, 2, noise_fraction=0.0, rng=2)
    assert (mix.labels >= 0).all()


def test_noisy_mixture_noise_spans_beyond_clusters():
    mix = noisy_mixture(3000, 3, 2, noise_fraction=0.3, rng=3)
    clustered = mix.points[mix.labels >= 0]
    noise = mix.points[mix.labels == -1]
    assert noise.min() < clustered.min()
    assert noise.max() > clustered.max()


def test_noisy_mixture_validation():
    with pytest.raises(ConfigurationError):
        noisy_mixture(100, 2, 2, noise_fraction=0.95, rng=0)
    with pytest.raises(ConfigurationError):
        noisy_mixture(10, 9, 2, noise_fraction=0.5, rng=0)


def test_anisotropic_clusters_are_elongated():
    mix = anisotropic_mixture(4000, 2, 4, condition_number=10.0, rng=4)
    for c in range(2):
        member = mix.points[mix.labels == c] - mix.centers[c]
        cov = member.T @ member / member.shape[0]
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues[-1] / eigenvalues[0] > 20.0  # (10x std)^2 = 100x var


def test_anisotropic_condition_one_is_isotropic():
    mix = anisotropic_mixture(4000, 1, 3, condition_number=1.0, rng=5)
    member = mix.points - mix.centers[0]
    stds = member.std(axis=0)
    assert stds.max() / stds.min() < 1.2


def test_anisotropic_validation():
    with pytest.raises(ConfigurationError):
        anisotropic_mixture(100, 2, 2, condition_number=0.5, rng=0)


def test_uniform_ball_radius_respected():
    mix = uniform_ball_mixture(3000, 3, 3, radius=2.0, rng=6)
    for c in range(3):
        member = mix.points[mix.labels == c]
        distances = np.linalg.norm(member - mix.centers[c], axis=1)
        assert distances.max() <= 2.0 + 1e-9
        # Uniform in the ball, not concentrated at the center.
        assert np.median(distances) > 1.2


def test_uniform_ball_projections_rejected_by_ad():
    """The reason G-means over-splits these: the projection of a
    uniform ball is visibly non-Gaussian at scale."""
    from repro.stats.anderson import anderson_darling_normality

    mix = uniform_ball_mixture(20000, 1, 3, radius=3.0, rng=7)
    projections = mix.points[:, 0]
    assert not anderson_darling_normality(projections, alpha=0.01).is_normal


def test_gmeans_oversplits_uniform_balls():
    """Documented G-means property: it counts Gaussians, not blobs."""
    from repro.clustering import gmeans, GMeansOptions

    mix = uniform_ball_mixture(12000, 3, 3, radius=3.0, rng=8)
    result = gmeans(mix.points, GMeansOptions(alpha=0.01), rng=8)
    assert result.k > 3


def test_gmeans_under_background_noise():
    """Documented weakness + the fix: uniform background noise is
    never Gaussian, so G-means keeps splitting it and k explodes — but
    the *real* clusters are shattered, never mixed (purity 1), and the
    center-merge post-processing recovers them exactly."""
    from repro.clustering import gmeans, merge_gmeans_centers
    from repro.clustering.external import adjusted_rand_index, purity
    from repro.clustering.metrics import assign_nearest

    mix = noisy_mixture(6000, 4, 3, noise_fraction=0.05, rng=9, cluster_std=1.0)
    result = gmeans(mix.points, rng=9)
    clustered = mix.labels >= 0
    assert result.k > 4 * 5  # k explodes on the noise
    assert purity(mix.labels[clustered], result.labels[clustered]) > 0.99

    merged = merge_gmeans_centers(mix.points, result.centers, rng=9)
    labels, _ = assign_nearest(mix.points, merged)
    ari = adjusted_rand_index(mix.labels[clustered], labels[clustered])
    assert ari > 0.95  # true clusters recovered exactly on real points
