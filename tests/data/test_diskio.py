"""Local-disk dataset I/O."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.data.diskio import (
    import_points_file,
    load_points_file,
    save_points_file,
)
from repro.mapreduce.hdfs import InMemoryDFS


def test_roundtrip_plain_text(tmp_path, small_mixture):
    path = save_points_file(tmp_path / "pts.txt", small_mixture.points)
    back = load_points_file(path)
    assert np.array_equal(back, small_mixture.points)


def test_roundtrip_gzip(tmp_path, small_mixture):
    path = save_points_file(tmp_path / "pts.txt.gz", small_mixture.points)
    assert path.suffix == ".gz"
    back = load_points_file(path)
    assert np.array_equal(back, small_mixture.points)


def test_header_written_and_skipped(tmp_path):
    points = np.array([[1.0, 2.0], [3.0, 4.0]])
    path = save_points_file(
        tmp_path / "pts.txt", points, header="demo dataset\nk=2"
    )
    text = path.read_text()
    assert text.startswith("# demo dataset\n# k=2\n")
    assert np.array_equal(load_points_file(path), points)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "pts.txt"
    path.write_text("1,2\n\n3,4\n")
    assert load_points_file(path).shape == (2, 2)


def test_malformed_line_reports_location(tmp_path):
    path = tmp_path / "pts.txt"
    path.write_text("1,2\nbad,line\n")
    with pytest.raises(DataFormatError, match="pts.txt:2"):
        load_points_file(path)


def test_inconsistent_widths_rejected(tmp_path):
    path = tmp_path / "pts.txt"
    path.write_text("1,2\n1,2,3\n")
    with pytest.raises(DataFormatError, match="inconsistent"):
        load_points_file(path)


def test_missing_and_empty_files(tmp_path):
    with pytest.raises(DataFormatError, match="no such points file"):
        load_points_file(tmp_path / "ghost.txt")
    empty = tmp_path / "empty.txt"
    empty.write_text("# only comments\n")
    with pytest.raises(DataFormatError, match="no data lines"):
        load_points_file(empty)


def test_import_into_dfs(tmp_path, small_mixture):
    path = save_points_file(tmp_path / "pts.txt", small_mixture.points)
    dfs = InMemoryDFS(split_size_bytes=4096)
    f = import_points_file(dfs, "imported", path)
    assert f.num_records == small_mixture.n_points
    assert np.array_equal(f.all_records(), small_mixture.points)


def test_creates_parent_directories(tmp_path):
    path = save_points_file(
        tmp_path / "a" / "b" / "pts.txt", np.ones((2, 2))
    )
    assert path.exists()
