"""DFS loaders (fast numpy mode and full-fidelity text mode)."""

import numpy as np
import pytest

from repro.data.loader import read_points, write_points, write_points_as_text
from repro.data.textio import bytes_per_record
from repro.mapreduce.hdfs import InMemoryDFS


def test_write_points_uses_text_size_model(small_mixture):
    dfs = InMemoryDFS(split_size_bytes=1 << 20)
    f = write_points(dfs, "pts", small_mixture.points)
    assert f.bytes_per_record == bytes_per_record(small_mixture.dimensions)
    assert f.size_bytes == small_mixture.n_points * f.bytes_per_record


def test_write_read_roundtrip_numpy(small_mixture):
    dfs = InMemoryDFS(split_size_bytes=4096)
    write_points(dfs, "pts", small_mixture.points)
    back = read_points(dfs, "pts")
    assert np.array_equal(back, small_mixture.points)


def test_write_read_roundtrip_text(small_mixture):
    dfs = InMemoryDFS(split_size_bytes=4096)
    f = write_points_as_text(dfs, "pts", small_mixture.points)
    assert isinstance(f.splits[0].records[0], str)
    back = read_points(dfs, "pts")
    assert np.array_equal(back, small_mixture.points)


def test_text_mode_sizes_reflect_actual_lines(small_mixture):
    dfs = InMemoryDFS(split_size_bytes=1 << 20)
    f = write_points_as_text(dfs, "pts", small_mixture.points)
    longest = max(len(line) + 1 for line in f.splits[0].records)
    assert f.bytes_per_record >= longest


def test_write_points_validates(small_mixture):
    dfs = InMemoryDFS()
    with pytest.raises(Exception):
        write_points(dfs, "bad", np.array([[np.nan, 1.0]]))


def test_overwrite_flag(small_mixture):
    dfs = InMemoryDFS()
    write_points(dfs, "pts", small_mixture.points)
    write_points(dfs, "pts", small_mixture.points[:10], overwrite=True)
    assert read_points(dfs, "pts").shape[0] == 10
