"""The point text codec."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.data.textio import (
    BYTES_PER_COORDINATE,
    bytes_per_record,
    decode_point,
    decode_points,
    encode_point,
    encode_points,
)


def test_bytes_per_record_is_papers_model():
    assert BYTES_PER_COORDINATE == 16  # ~15 significant chars + separator
    assert bytes_per_record(10) == 160
    with pytest.raises(Exception):
        bytes_per_record(0)


def test_roundtrip_exact_at_default_precision(rng):
    pts = rng.normal(size=(50, 7)) * 10.0 ** rng.integers(-8, 8, size=(50, 7))
    lines = encode_points(pts)
    back = decode_points(lines)
    assert np.array_equal(back, pts)  # bit-exact with 17 digits


def test_encode_single_point():
    line = encode_point(np.array([1.5, -2.25]))
    assert line == "1.5,-2.25"


def test_decode_validates_dimensions():
    assert decode_point("1,2,3", dimensions=3).tolist() == [1.0, 2.0, 3.0]
    with pytest.raises(DataFormatError):
        decode_point("1,2", dimensions=3)


def test_decode_rejects_garbage():
    with pytest.raises(DataFormatError):
        decode_point("1,banana")
    with pytest.raises(DataFormatError):
        decode_point("")
    with pytest.raises(DataFormatError):
        decode_point("nan,1")
    with pytest.raises(DataFormatError):
        decode_point("inf,1")


def test_decode_strips_whitespace():
    assert decode_point("  1.0,2.0\n").tolist() == [1.0, 2.0]


def test_decode_points_consistent_width():
    with pytest.raises(DataFormatError):
        decode_points(["1,2", "1,2,3"])
    with pytest.raises(DataFormatError):
        decode_points([])


def test_encode_rejects_bad_shapes():
    with pytest.raises(DataFormatError):
        encode_point(np.array([]))
    with pytest.raises(DataFormatError):
        encode_points(np.ones((2, 2, 2)))


def test_lower_precision_shortens_lines():
    pts = np.array([[1.0 / 3.0]])
    long_line = encode_points(pts, precision=17)[0]
    short_line = encode_points(pts, precision=6)[0]
    assert len(short_line) < len(long_line)
    assert decode_point(short_line)[0] == pytest.approx(1 / 3, rel=1e-5)
