"""Streaming moments: correctness and merge exactness."""

import numpy as np
import pytest

from repro.stats.descriptive import StreamingMoments


def test_empty_moments():
    m = StreamingMoments()
    assert m.count == 0
    assert m.variance == 0.0
    assert m.sample_variance == 0.0
    assert m.stddev == 0.0


def test_single_value():
    m = StreamingMoments()
    m.add(5.0)
    assert m.count == 1
    assert m.mean == 5.0
    assert m.variance == 0.0


def test_matches_numpy():
    data = np.random.default_rng(3).normal(10, 3, size=500)
    m = StreamingMoments()
    for x in data:
        m.add(float(x))
    assert m.mean == pytest.approx(data.mean(), rel=1e-12)
    assert m.variance == pytest.approx(data.var(), rel=1e-10)
    assert m.sample_variance == pytest.approx(data.var(ddof=1), rel=1e-10)


def test_add_many_equals_add_loop():
    data = np.random.default_rng(4).random(100)
    a = StreamingMoments()
    a.add_many(data)
    b = StreamingMoments()
    for x in data:
        b.add(float(x))
    assert a.count == b.count
    assert a.mean == pytest.approx(b.mean, rel=1e-12)
    assert a.m2 == pytest.approx(b.m2, rel=1e-9)


def test_add_many_empty_noop():
    m = StreamingMoments()
    m.add_many(np.array([]))
    assert m.count == 0


def test_merge_is_partition_independent():
    data = np.random.default_rng(5).normal(size=300)
    whole = StreamingMoments()
    whole.add_many(data)
    for split_at in (1, 7, 150, 299):
        left = StreamingMoments()
        left.add_many(data[:split_at])
        right = StreamingMoments()
        right.add_many(data[split_at:])
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.m2 == pytest.approx(whole.m2, rel=1e-9)


def test_merge_with_empty_sides():
    m = StreamingMoments()
    other = StreamingMoments()
    other.add(3.0)
    m.merge(other)
    assert (m.count, m.mean) == (1, 3.0)
    m.merge(StreamingMoments())
    assert (m.count, m.mean) == (1, 3.0)
