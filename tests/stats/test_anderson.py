"""Anderson-Darling test: statistic vs scipy, decisions, edge cases."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.common.errors import ConfigurationError, DataFormatError
# scipy's anderson() warns about its future p-value API; we only use
# the statistic as an oracle.
pytestmark = pytest.mark.filterwarnings("ignore::FutureWarning")

from repro.stats.anderson import (
    GMEANS_ALPHA,
    MIN_RELIABLE_SAMPLE,
    anderson_darling_normality,
    anderson_darling_statistic,
    critical_value,
)


@pytest.mark.parametrize("n", [10, 50, 500, 3000])
def test_statistic_matches_scipy(n):
    x = np.random.default_rng(n).normal(size=n)
    mine = anderson_darling_statistic(x)
    correction = 1 + 4.0 / n - 25.0 / n**2
    ref = sps.anderson(x, "norm").statistic * correction
    assert mine == pytest.approx(ref, rel=1e-10)


def test_statistic_location_scale_invariant():
    x = np.random.default_rng(1).normal(size=300)
    a = anderson_darling_statistic(x)
    b = anderson_darling_statistic(7.0 + 3.0 * x)
    assert a == pytest.approx(b, rel=1e-9)


def test_gaussian_sample_accepted():
    x = np.random.default_rng(2).normal(size=2000)
    assert anderson_darling_normality(x).is_normal


def test_bimodal_sample_rejected():
    rng = np.random.default_rng(3)
    x = np.concatenate([rng.normal(-4, 1, 500), rng.normal(4, 1, 500)])
    assert not anderson_darling_normality(x).is_normal


def test_uniform_sample_rejected_at_large_n():
    x = np.random.default_rng(4).uniform(size=5000)
    assert not anderson_darling_normality(x).is_normal


def test_false_rejection_rate_near_alpha():
    """At alpha=0.05 roughly 5% of true-Gaussian samples get rejected."""
    rng = np.random.default_rng(5)
    rejections = sum(
        not anderson_darling_normality(rng.normal(size=200), alpha=0.05).is_normal
        for _ in range(400)
    )
    assert 4 <= rejections <= 42  # ~20 expected, generous binomial bounds


def test_constant_sample_is_normal_verdict():
    result = anderson_darling_normality(np.full(100, 2.0))
    assert result.is_normal
    assert result.statistic == 0.0


def test_statistic_rejects_tiny_and_constant():
    with pytest.raises(DataFormatError):
        anderson_darling_statistic(np.array([1.0]))
    with pytest.raises(DataFormatError):
        anderson_darling_statistic(np.full(10, 1.0))


def test_reliability_flag():
    x = np.random.default_rng(6).normal(size=MIN_RELIABLE_SAMPLE - 1)
    assert not anderson_darling_normality(x).reliable
    y = np.random.default_rng(6).normal(size=MIN_RELIABLE_SAMPLE)
    assert anderson_darling_normality(y).reliable


def test_critical_values_table_anchors():
    assert critical_value(0.10) == pytest.approx(0.631)
    assert critical_value(0.05) == pytest.approx(0.752)
    assert critical_value(0.01) == pytest.approx(1.035)
    assert critical_value(GMEANS_ALPHA) == pytest.approx(1.8692)


def test_critical_value_monotone_in_alpha():
    alphas = [0.25, 0.1, 0.05, 0.01, 0.003, 0.001, 0.0002, 0.0001]
    values = [critical_value(a) for a in alphas]
    assert values == sorted(values)


def test_critical_value_interpolation_between_anchors():
    v = critical_value(0.02)
    assert 0.873 < v < 1.035


def test_critical_value_clamps_extremes():
    assert critical_value(0.9) == pytest.approx(0.470)
    assert critical_value(1e-9) == pytest.approx(1.8692)


@pytest.mark.parametrize("alpha", [0.0, 1.0, -1.0, 2.0])
def test_critical_value_rejects_invalid_alpha(alpha):
    with pytest.raises(ConfigurationError):
        critical_value(alpha)


def test_result_records_inputs():
    x = np.random.default_rng(7).normal(size=64)
    r = anderson_darling_normality(x, alpha=0.05)
    assert r.n == 64
    assert r.alpha == 0.05
    assert r.critical == pytest.approx(0.752)


def test_pvalue_matches_critical_table():
    """p(critical(alpha)) ~ alpha at every tabulated level."""
    from repro.stats.anderson import anderson_darling_pvalue

    for alpha in (0.10, 0.05, 0.025, 0.01, 0.005):
        assert anderson_darling_pvalue(critical_value(alpha)) == pytest.approx(
            alpha, rel=0.05
        )


def test_pvalue_monotone_decreasing():
    from repro.stats.anderson import anderson_darling_pvalue

    stats_grid = [0.05, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 5.0]
    ps = [anderson_darling_pvalue(s) for s in stats_grid]
    assert all(a >= b for a, b in zip(ps, ps[1:]))
    assert 0.0 <= min(ps) and max(ps) <= 1.0


def test_pvalue_invalid_statistic():
    from repro.common.errors import ConfigurationError
    from repro.stats.anderson import anderson_darling_pvalue

    with pytest.raises(ConfigurationError):
        anderson_darling_pvalue(-0.1)


def test_result_exposes_pvalue():
    x = np.random.default_rng(8).normal(size=500)
    result = anderson_darling_normality(x)
    assert 0.0 < result.pvalue <= 1.0
