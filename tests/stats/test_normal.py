"""Normal distribution functions vs closed-form values and scipy."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.normal import normal_cdf, normal_pdf, normal_quantile


def test_cdf_at_zero():
    assert normal_cdf(0.0) == pytest.approx(0.5)


def test_cdf_symmetry():
    for x in (0.3, 1.0, 2.5, 4.0):
        assert normal_cdf(-x) == pytest.approx(1.0 - normal_cdf(x), abs=1e-15)


def test_cdf_known_value():
    assert normal_cdf(1.959963984540054) == pytest.approx(0.975, abs=1e-12)


def test_cdf_matches_scipy_on_grid():
    xs = np.linspace(-8, 8, 201)
    mine = normal_cdf(xs)
    ref = sps.norm.cdf(xs)
    assert np.allclose(mine, ref, atol=1e-14)


def test_cdf_scalar_vs_array_consistency():
    xs = np.array([-1.5, 0.0, 2.2])
    arr = normal_cdf(xs)
    for x, v in zip(xs, arr):
        assert normal_cdf(float(x)) == pytest.approx(v, abs=1e-15)


def test_pdf_peak_and_symmetry():
    assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))
    assert normal_pdf(1.3) == pytest.approx(normal_pdf(-1.3))


def test_pdf_matches_scipy():
    xs = np.linspace(-5, 5, 101)
    assert np.allclose(normal_pdf(xs), sps.norm.pdf(xs), atol=1e-14)


def test_quantile_inverts_cdf():
    for p in (1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-6):
        assert normal_cdf(normal_quantile(p)) == pytest.approx(p, rel=1e-10)


def test_quantile_known_values():
    assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
    assert normal_quantile(0.975) == pytest.approx(1.959963984540054, abs=1e-9)
    assert normal_quantile(0.0013498980316300933) == pytest.approx(-3.0, abs=1e-9)


def test_quantile_matches_scipy_deep_tail():
    for p in (1e-10, 1e-4, 0.9999, 1 - 1e-10):
        assert normal_quantile(p) == pytest.approx(sps.norm.ppf(p), abs=1e-8)


@pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
def test_quantile_rejects_out_of_range(p):
    with pytest.raises(ValueError):
        normal_quantile(p)
