"""Point projection and z-normalisation."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.stats.projection import normalize, project_onto


def test_projection_onto_axis():
    pts = np.array([[1.0, 2.0], [3.0, 4.0]])
    proj = project_onto(pts, np.array([1.0, 0.0]))
    assert np.allclose(proj, [1.0, 3.0])


def test_projection_scaling_law():
    """<x, s v> / ||s v||^2 = (1/s) <x, v> / ||v||^2: scaling the
    direction rescales projections but preserves their order (and the
    z-normalised values the AD test sees are identical)."""
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(50, 4))
    v = rng.normal(size=4)
    a = project_onto(pts, v)
    b = project_onto(pts, 3.0 * v)
    assert np.allclose(b, a / 3.0, atol=1e-12)
    assert np.array_equal(np.argsort(a), np.argsort(b))


def test_projection_gmeans_formula():
    """x' = <x, v> / ||v||^2 exactly."""
    pts = np.array([[2.0, 2.0]])
    v = np.array([2.0, 0.0])
    assert project_onto(pts, v)[0] == pytest.approx(1.0)


def test_projection_single_point():
    assert project_onto(np.array([1.0, 1.0]), np.array([1.0, 1.0]))[0] == pytest.approx(1.0)


def test_projection_zero_vector_raises():
    with pytest.raises(DataFormatError):
        project_onto(np.ones((3, 2)), np.zeros(2))


def test_projection_dimension_mismatch_raises():
    with pytest.raises(DataFormatError):
        project_onto(np.ones((3, 2)), np.ones(3))


def test_normalize_zero_mean_unit_variance():
    data = np.random.default_rng(1).normal(5, 3, size=200)
    z = normalize(data)
    assert z.mean() == pytest.approx(0.0, abs=1e-12)
    assert z.std() == pytest.approx(1.0, rel=1e-12)


def test_normalize_ddof1():
    data = np.random.default_rng(2).normal(size=50)
    z = normalize(data, ddof=1)
    assert z.std(ddof=1) == pytest.approx(1.0, rel=1e-12)


def test_normalize_constant_vector_is_zeros():
    z = normalize(np.full(10, 3.5))
    assert np.array_equal(z, np.zeros(10))


def test_normalize_empty():
    assert normalize(np.array([])).size == 0


def test_normalize_ddof_exceeding_size():
    assert np.array_equal(normalize(np.array([1.0]), ddof=1), np.zeros(1))
