"""Pluggable normality tests: Jarque-Bera and Lilliefors vs scipy,
plus the registry interface."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.common.errors import ConfigurationError, DataFormatError
from repro.stats.normality import (
    NORMALITY_TESTS,
    jarque_bera_normality,
    lilliefors_normality,
    normality_test,
)


def test_registry_contents():
    assert set(NORMALITY_TESTS) == {"anderson", "jarque_bera", "lilliefors"}


def test_dispatch_and_unknown_method(rng):
    x = rng.normal(size=100)
    for method in NORMALITY_TESTS:
        verdict = normality_test(x, 0.05, method)
        assert verdict.method == method
        assert verdict.n == 100
    with pytest.raises(ConfigurationError):
        normality_test(x, 0.05, "shapiro")


@pytest.mark.parametrize("n", [50, 500, 5000])
def test_jarque_bera_statistic_matches_scipy(n):
    x = np.random.default_rng(n).normal(size=n)
    mine = jarque_bera_normality(x, 0.05).statistic
    ref = sps.jarque_bera(x).statistic
    assert mine == pytest.approx(ref, rel=1e-9)


def test_jarque_bera_critical_is_chi2_quantile():
    # chi^2(2) survival: exp(-x/2) -> cv(0.05) = -2 ln 0.05 = 5.9915
    verdict = jarque_bera_normality(np.random.default_rng(0).normal(size=50), 0.05)
    assert verdict.critical == pytest.approx(5.991464547, rel=1e-6)


def test_jarque_bera_decisions(rng):
    gaussian = rng.normal(size=3000)
    assert jarque_bera_normality(gaussian, 0.01).is_normal
    heavy_tailed = rng.standard_t(df=2, size=3000)
    assert not jarque_bera_normality(heavy_tailed, 0.01).is_normal


def test_jarque_bera_weak_against_symmetric_bimodal(rng):
    """The documented weakness: two symmetric modes at modest
    separation have near-normal skewness/kurtosis."""
    bimodal = np.concatenate([rng.normal(-1.58, 0.2, 1000), rng.normal(1.58, 0.2, 1000)])
    from repro.stats.normality import anderson_normality

    assert not anderson_normality(bimodal, 0.01).is_normal
    # JB sees symmetric light tails as mild kurtosis only; with the
    # modes at ~kurtosis-neutral spacing it can accept.
    jb = jarque_bera_normality(bimodal, 0.01)
    ad = anderson_normality(bimodal, 0.01)
    assert jb.statistic / jb.critical < ad.statistic / ad.critical


def test_lilliefors_statistic_is_ks_with_fitted_params(rng):
    x = rng.normal(3.0, 2.0, size=400)
    mine = lilliefors_normality(x, 0.05).statistic
    z = (x - x.mean()) / x.std(ddof=1)
    ref = sps.kstest(z, "norm").statistic
    assert mine == pytest.approx(ref, rel=1e-9)


def test_lilliefors_decisions(rng):
    gaussian = rng.normal(size=2000)
    assert lilliefors_normality(gaussian, 0.01).is_normal
    uniform = rng.uniform(size=2000)
    assert not lilliefors_normality(uniform, 0.01).is_normal


def test_lilliefors_critical_shrinks_with_n(rng):
    small = lilliefors_normality(rng.normal(size=30), 0.05)
    large = lilliefors_normality(rng.normal(size=3000), 0.05)
    assert large.critical < small.critical


def test_constant_samples_accepted():
    constant = np.full(50, 7.0)
    for method in NORMALITY_TESTS:
        assert normality_test(constant, 0.05, method).is_normal


def test_tiny_samples_rejected():
    for method in ("jarque_bera", "lilliefors"):
        with pytest.raises(DataFormatError):
            normality_test(np.array([1.0]), 0.05, method)


def test_invalid_alpha():
    x = np.random.default_rng(0).normal(size=50)
    with pytest.raises(ConfigurationError):
        jarque_bera_normality(x, 0.0)
    with pytest.raises(ConfigurationError):
        lilliefors_normality(x, 1.0)


def test_false_rejection_rates_reasonable(rng):
    """All three tests hold their level approximately at alpha=0.05."""
    for method in NORMALITY_TESTS:
        rejections = sum(
            not normality_test(rng.normal(size=300), 0.05, method).is_normal
            for _ in range(200)
        )
        assert rejections <= 30, method  # ~10 expected
