"""RNG normalisation and spawning."""

import numpy as np
import pytest

from repro.common.rng import ensure_rng, spawn_rng


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.array_equal(a, b)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_accepts_numpy_integer():
    gen = ensure_rng(np.int64(7))
    assert isinstance(gen, np.random.Generator)


def test_ensure_rng_rejects_bad_type():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_rng_children_differ():
    parent = ensure_rng(1)
    children = spawn_rng(parent, 4)
    assert len(children) == 4
    draws = [c.random() for c in children]
    assert len(set(draws)) == 4


def test_spawn_rng_deterministic_given_parent_state():
    a = spawn_rng(ensure_rng(5), 3)
    b = spawn_rng(ensure_rng(5), 3)
    for x, y in zip(a, b):
        assert x.random() == y.random()


def test_spawn_rng_zero():
    assert spawn_rng(ensure_rng(0), 0) == []


def test_spawn_rng_negative_raises():
    with pytest.raises(ValueError):
        spawn_rng(ensure_rng(0), -1)
