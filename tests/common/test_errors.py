"""Error hierarchy behaviour."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DataFormatError,
    JavaHeapSpaceError,
    JobFailedError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for cls in (
        ConfigurationError,
        DataFormatError,
        JavaHeapSpaceError,
        JobFailedError,
    ):
        assert issubclass(cls, ReproError)


def test_heap_error_carries_sizes():
    err = JavaHeapSpaceError(required_bytes=2 * 1024**2, heap_bytes=1024**2, task="r-0")
    assert err.required_bytes == 2 * 1024**2
    assert err.heap_bytes == 1024**2
    assert err.task == "r-0"
    assert "Java heap space" in str(err)
    assert "2.0 MiB" in str(err)


def test_heap_error_unknown_task_message():
    err = JavaHeapSpaceError(100, 50)
    assert "<unknown>" in str(err)


def test_job_failed_error_wraps_cause():
    cause = JavaHeapSpaceError(100, 50)
    err = JobFailedError("job x failed", cause=cause)
    assert err.cause is cause
    assert "job x failed" in str(err)


def test_job_failed_error_without_cause():
    assert JobFailedError("boom").cause is None


def test_errors_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise JavaHeapSpaceError(1, 0)
