"""Argument-validation helpers."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, DataFormatError
from repro.common.validation import (
    check_in_range,
    check_non_negative,
    check_points,
    check_positive,
)


def test_check_positive_accepts_positive():
    check_positive("x", 1)
    check_positive("x", 0.001)


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_check_positive_rejects(value):
    with pytest.raises(ConfigurationError, match="x must be > 0"):
        check_positive("x", value)


def test_check_non_negative():
    check_non_negative("x", 0)
    with pytest.raises(ConfigurationError):
        check_non_negative("x", -1e-9)


def test_check_in_range_bounds_inclusive():
    check_in_range("x", 0.0, 0.0, 1.0)
    check_in_range("x", 1.0, 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        check_in_range("x", 1.0001, 0.0, 1.0)


def test_check_points_canonicalises_1d():
    out = check_points(np.array([1.0, 2.0, 3.0]))
    assert out.shape == (3, 1)
    assert out.dtype == np.float64


def test_check_points_preserves_2d_and_contiguity():
    arr = np.asfortranarray(np.ones((4, 3)))
    out = check_points(arr)
    assert out.shape == (4, 3)
    assert out.flags["C_CONTIGUOUS"]


def test_check_points_rejects_empty():
    with pytest.raises(DataFormatError):
        check_points(np.empty((0, 2)))


def test_check_points_rejects_3d():
    with pytest.raises(DataFormatError):
        check_points(np.ones((2, 2, 2)))


def test_check_points_rejects_nan_and_inf():
    with pytest.raises(DataFormatError):
        check_points(np.array([[1.0, np.nan]]))
    with pytest.raises(DataFormatError):
        check_points(np.array([[np.inf, 1.0]]))


def test_check_points_names_argument_in_message():
    with pytest.raises(DataFormatError, match="centers"):
        check_points(np.ones((2, 2, 2)), "centers")
