"""The hybrid switching rule (paper, Section 3.2)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.strategy import MAPPER_SIDE, REDUCER_SIDE, choose_test_strategy
from repro.mapreduce.cluster import MIB, ClusterConfig


CLUSTER = ClusterConfig(
    nodes=4, reduce_slots_per_node=8, task_heap_mb=100, max_heap_usage=0.66
)
# total reduce capacity = 32; usable heap = 66 MB.


def test_few_clusters_stays_mapper_side():
    assert choose_test_strategy(10, 1000, CLUSTER) == MAPPER_SIDE
    assert choose_test_strategy(32, 1000, CLUSTER) == MAPPER_SIDE  # not >


def test_many_small_clusters_switch_to_reducer():
    assert choose_test_strategy(33, 1000, CLUSTER) == REDUCER_SIDE


def test_huge_cluster_blocks_switch():
    # 2M points x 64 B = 128 MB > 66 MB usable -> stay mapper-side even
    # though parallelism would justify switching.
    assert choose_test_strategy(100, 2_000_000, CLUSTER) == MAPPER_SIDE


def test_boundary_heap_exactly_usable():
    usable_points = CLUSTER.usable_heap_bytes // 64
    assert choose_test_strategy(100, usable_points, CLUSTER) == REDUCER_SIDE
    assert choose_test_strategy(100, usable_points + 1, CLUSTER) == MAPPER_SIDE


def test_custom_bytes_per_projection():
    # Halving the per-projection cost doubles the switchable size.
    big = CLUSTER.usable_heap_bytes // 32
    assert (
        choose_test_strategy(100, big, CLUSTER, heap_bytes_per_projection=32)
        == REDUCER_SIDE
    )
    assert choose_test_strategy(100, big, CLUSTER) == MAPPER_SIDE


def test_capacity_scales_with_cluster():
    small = ClusterConfig(nodes=1, reduce_slots_per_node=4, task_heap_mb=100)
    assert choose_test_strategy(5, 1000, small) == REDUCER_SIDE
    big = ClusterConfig(nodes=8, reduce_slots_per_node=8, task_heap_mb=100)
    assert choose_test_strategy(5, 1000, big) == MAPPER_SIDE


def test_validation():
    with pytest.raises(ConfigurationError):
        choose_test_strategy(0, 100, CLUSTER)
    with pytest.raises(ConfigurationError):
        choose_test_strategy(1, -1, CLUSTER)
