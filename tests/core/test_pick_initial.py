"""PickInitialCenters seeding."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.pick_initial import pick_initial_pairs
from repro.data.loader import write_points
from repro.mapreduce.hdfs import InMemoryDFS


def make_dataset(points, split_bytes=10**6):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    return write_points(dfs, "pts", points)


def test_pick_single_pair(small_mixture):
    f = make_dataset(small_mixture.points)
    seeds = pick_initial_pairs(f, 1, rng=0)
    assert len(seeds) == 1
    parent, pair = seeds[0]
    assert pair.shape == (2, small_mixture.dimensions)
    assert np.allclose(parent, pair.mean(axis=0))
    # Picked points are actual dataset points.
    for row in pair:
        assert np.any(np.all(small_mixture.points == row, axis=1))


def test_pick_multiple_pairs_distinct(small_mixture):
    f = make_dataset(small_mixture.points)
    seeds = pick_initial_pairs(f, 3, rng=1)
    assert len(seeds) == 3
    all_rows = np.vstack([pair for _, pair in seeds])
    assert len(np.unique(all_rows, axis=0)) == 6


def test_kmeans_pp_method(small_mixture):
    f = make_dataset(small_mixture.points)
    seeds = pick_initial_pairs(f, 2, rng=2, method="kmeans++")
    assert len(seeds) == 2


def test_samples_only_first_split(small_mixture):
    """The paper's serial step reads a driver-side sample, not the
    whole dataset."""
    f = make_dataset(small_mixture.points, split_bytes=1024)  # many splits
    first_split_points = np.asarray(f.splits[0].records)
    seeds = pick_initial_pairs(f, 1, rng=3)
    for row in seeds[0][1]:
        assert np.any(np.all(first_split_points == row, axis=1))


def test_too_few_points_raises():
    f = make_dataset(np.ones((3, 2)) * np.arange(3)[:, None])
    with pytest.raises(ConfigurationError):
        pick_initial_pairs(f, 2, rng=0)  # needs 4 points


def test_invalid_inputs(small_mixture):
    f = make_dataset(small_mixture.points)
    with pytest.raises(ConfigurationError):
        pick_initial_pairs(f, 0, rng=0)
    with pytest.raises(ConfigurationError):
        pick_initial_pairs(f, 1, rng=0, method="sorcery")


def test_deterministic_with_seed(small_mixture):
    f = make_dataset(small_mixture.points)
    a = pick_initial_pairs(f, 2, rng=7)
    b = pick_initial_pairs(f, 2, rng=7)
    for (pa, ca), (pb, cb) in zip(a, b):
        assert np.array_equal(pa, pb)
        assert np.array_equal(ca, cb)
