"""TestFewClusters: mapper-side testing with vote combination."""

import numpy as np
import pytest

from repro.core.test_clusters import decode_test_output
from repro.core.test_few_clusters import MapperVote, make_test_few_clusters_job
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def run_job(
    points,
    prev_centers,
    pairs,
    split_bytes=4096,
    min_sample=20,
    vote_rule="weighted_majority",
    alpha=1e-4,
    heap_mb=256,
    seed=0,
):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=2, task_heap_mb=heap_mb), rng=seed
    )
    job = make_test_few_clusters_job(
        prev_centers,
        pairs,
        alpha,
        num_reduce_tasks=4,
        min_sample=min_sample,
        vote_rule=vote_rule,
    )
    result = runtime.run(job, f)
    return decode_test_output(result.output), result


def blob_setup(rng, gap=12.0, n=1000):
    points = np.vstack(
        [rng.normal(-gap / 2, 1, (n // 2, 2)), rng.normal(gap / 2, 1, (n // 2, 2))]
    )
    # Shuffle so every input split holds a sample of both modes — with
    # mode-sorted input each mapper would see a clean Gaussian and the
    # mapper-side strategy could not detect the bimodality at all.
    rng.shuffle(points)
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[-gap / 2, -gap / 2], [gap / 2, gap / 2]])}
    return points, prev, pairs


def test_bimodal_rejected_by_mapper_votes(rng):
    points, prev, pairs = blob_setup(rng)
    verdicts, result = run_job(points, prev, pairs)
    assert not verdicts[0].is_normal
    assert verdicts[0].decided
    # One AD test per map task (the mapper-side strategy), one verdict.
    splits = result.num_map_tasks
    assert result.counters.get(USER_GROUP, UserCounter.AD_TESTS) == splits
    assert result.counters.get(USER_GROUP, UserCounter.CLUSTER_TESTS) == 1


def test_gaussian_accepted(rng):
    points = rng.normal(3.0, 1.0, size=(1000, 2))
    prev = np.array([[3.0, 3.0]])
    pairs = {0: np.array([[2.0, 3.0], [4.0, 3.0]])}
    verdicts, _ = run_job(points, prev, pairs)
    assert verdicts[0].is_normal


def test_undecided_when_samples_below_threshold(rng):
    points = rng.normal(size=(30, 2))
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[-1.0, 0.0], [1.0, 0.0]])}
    # split_bytes 4096 / 32 B per record = 128 records/split -> 1 split of
    # 30 points; force min_sample above it.
    verdicts, _ = run_job(points, prev, pairs, min_sample=100)
    assert not verdicts[0].decided
    assert verdicts[0].is_normal  # undecided defaults to "keep"


def test_vote_rules_differ_on_split_votes(rng):
    """Construct a cluster where different mappers see different shapes:
    two splits of pure Gaussian, one split of strongly bimodal data."""
    gaussian = rng.normal(0, 1.0, size=(256, 2))
    bimodal = np.vstack(
        [rng.normal(-8, 0.5, (64, 2)), rng.normal(8, 0.5, (64, 2))]
    )
    points = np.vstack([gaussian, bimodal])  # split size picked to isolate
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[-8.0, -8.0], [8.0, 8.0]])}
    # 32 bytes/record, split 4096 B = 128 records: splits are
    # [gauss 128][gauss 128][bimodal 128].
    any_reject, _ = run_job(points, prev, pairs, vote_rule="any_reject")
    majority, _ = run_job(points, prev, pairs, vote_rule="weighted_majority")
    all_reject, _ = run_job(points, prev, pairs, vote_rule="all_reject")
    assert not any_reject[0].is_normal  # one rejecting mapper suffices
    assert majority[0].is_normal  # 256 accepting points vs 128 rejecting
    assert all_reject[0].is_normal  # not all mappers rejected


def test_mapper_heap_accounted(rng):
    """Buffered projections charge the mapper's heap (bounded by split
    size, as the paper argues)."""
    points, prev, pairs = blob_setup(rng, n=2000)
    _, result = run_job(points, prev, pairs, split_bytes=1 << 20, heap_mb=256)
    assert result.counters.get(USER_GROUP, UserCounter.PROJECTIONS) == 2000


def test_mapper_vote_tuple():
    v = MapperVote(0.5, 42, True)
    assert v.statistic == 0.5
    assert v.n == 42
    assert v.decided
    undecided = MapperVote(float("nan"), 3, False)
    assert not undecided.decided


def test_reducer_rejects_unknown_vote_rule(rng):
    points, prev, pairs = blob_setup(rng)
    from repro.common.errors import ConfigurationError

    job_verdicts = None
    with pytest.raises(ConfigurationError):
        # Bypass the factory validation by injecting a bad config value.
        from repro.core import test_few_clusters as tfc

        job = make_test_few_clusters_job(prev, pairs, 1e-4, 4)
        job.config[tfc.VOTE_RULE_KEY] = "bogus"
        dfs = InMemoryDFS(split_size_bytes=4096)
        f = write_points(dfs, "pts", points)
        MapReduceRuntime(dfs, rng=0).run(job, f)
