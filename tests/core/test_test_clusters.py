"""TestClusters: reducer-side Anderson-Darling with heap accounting."""

import numpy as np
import pytest

from repro.common.errors import JavaHeapSpaceError, JobFailedError
from repro.core.test_clusters import (
    TestVerdict,
    decode_test_output,
    estimate_reducer_heap_bytes,
    make_test_clusters_job,
)
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def run_test_job(points, prev_centers, pairs, heap_mb=256, alpha=1e-4, seed=0):
    dfs = InMemoryDFS(split_size_bytes=4096)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=2, task_heap_mb=heap_mb), rng=seed
    )
    job = make_test_clusters_job(prev_centers, pairs, alpha, num_reduce_tasks=4)
    result = runtime.run(job, f)
    return decode_test_output(result.output), result


def two_blob_setup(rng, gap=12.0):
    points = np.vstack(
        [rng.normal(-gap / 2, 1, (500, 2)), rng.normal(gap / 2, 1, (500, 2))]
    )
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[-gap / 2, -gap / 2], [gap / 2, gap / 2]])}
    return points, prev, pairs


def test_bimodal_cluster_rejected(rng):
    points, prev, pairs = two_blob_setup(rng)
    verdicts, _ = run_test_job(points, prev, pairs)
    assert not verdicts[0].is_normal
    assert verdicts[0].decided
    assert verdicts[0].n == 1000


def test_gaussian_cluster_accepted(rng):
    points = rng.normal(5.0, 1.0, size=(1000, 2))
    prev = np.array([[5.0, 5.0]])
    pairs = {0: np.array([[4.0, 5.0], [6.0, 5.0]])}
    verdicts, _ = run_test_job(points, prev, pairs)
    assert verdicts[0].is_normal


def test_only_paired_clusters_tested(rng):
    points = np.vstack(
        [rng.normal(-10, 1, (300, 2)), rng.normal(10, 1, (300, 2))]
    )
    prev = np.array([[-10.0, -10.0], [10.0, 10.0]])
    pairs = {1: np.array([[9.0, 10.0], [11.0, 10.0]])}  # only cluster 1
    verdicts, result = run_test_job(points, prev, pairs)
    assert set(verdicts) == {1}
    assert result.counters.get(USER_GROUP, UserCounter.AD_TESTS) == 1
    assert result.counters.get(USER_GROUP, UserCounter.CLUSTER_TESTS) == 1


def test_projection_counters(rng):
    points, prev, pairs = two_blob_setup(rng)
    _, result = run_test_job(points, prev, pairs)
    assert result.counters.get(USER_GROUP, UserCounter.PROJECTIONS) == 1000
    assert result.counters.get(USER_GROUP, UserCounter.AD_SAMPLE_POINTS) == 1000


def test_heap_failure_at_64_bytes_per_point(rng):
    """The Figure-2 failure: projections exceed the task JVM heap."""
    points, prev, pairs = two_blob_setup(rng)
    # 1000 points x 64 B = 64000 B > a 0.05 MB heap... heap is in MB (int),
    # so give 1000 points a heap far smaller than needed via many points.
    many = np.tile(points, (40, 1))  # 40k points -> 2.56 MB needed
    with pytest.raises(JobFailedError) as err:
        run_test_job(many, prev, pairs, heap_mb=1)
    assert isinstance(err.value.cause, JavaHeapSpaceError)


def test_heap_success_when_it_fits(rng):
    points, prev, pairs = two_blob_setup(rng)
    verdicts, result = run_test_job(points, prev, pairs, heap_mb=1)
    assert 0 in verdicts
    assert result.max_reduce_heap_bytes == 1000 * 64


def test_degenerate_pair_vector_not_projected(rng):
    points = rng.normal(size=(100, 2))
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[1.0, 1.0], [1.0, 1.0]])}  # zero direction
    verdicts, _ = run_test_job(points, prev, pairs)
    assert verdicts == {}


def test_tiny_cluster_verdict_is_normal(rng):
    points = np.array([[0.0, 0.0]])
    prev = np.zeros((1, 2))
    pairs = {0: np.array([[-1.0, 0.0], [1.0, 0.0]])}
    verdicts, _ = run_test_job(points, prev, pairs)
    assert verdicts[0].is_normal
    assert verdicts[0].n == 1


def test_verdict_tuple_protocol():
    v = TestVerdict(1.5, 100, False, True)
    assert v.statistic == 1.5
    assert v.n == 100
    assert not v.is_normal
    assert v.decided
    assert tuple(v) == (1.5, 100, False, True)


def test_estimate_reducer_heap_bytes():
    assert estimate_reducer_heap_bytes(10**6) == 64 * 10**6
    assert estimate_reducer_heap_bytes(0) == 0
    assert estimate_reducer_heap_bytes(100, heap_bytes_per_projection=8) == 800
    with pytest.raises(ValueError):
        estimate_reducer_heap_bytes(-1)
