"""The MR k-means job: equivalence with serial Lloyd, both code paths."""

import numpy as np
import pytest

from repro.clustering.lloyd import lloyd_step
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.data.loader import write_points
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def run_one_iteration(points, centers, vectorized=True, num_reduce=4, split_bytes=2048):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(dfs, rng=0)
    job = make_kmeans_job(centers, num_reduce, vectorized=vectorized)
    result = runtime.run(job, f)
    new_centers, sizes = decode_kmeans_output(result.output, centers)
    return new_centers, sizes, result


def test_one_mr_iteration_equals_one_lloyd_step(small_mixture):
    centers = small_mixture.points[[0, 100, 400]]
    mr_centers, sizes, _ = run_one_iteration(small_mixture.points, centers)
    serial_centers, labels, _ = lloyd_step(small_mixture.points, centers)
    assert np.allclose(mr_centers, serial_centers, atol=1e-9)
    assert sizes.sum() == small_mixture.n_points
    assert np.array_equal(sizes, np.bincount(labels, minlength=3))


def test_vectorized_and_per_record_paths_agree(small_mixture):
    centers = small_mixture.points[[5, 50, 500]]
    fast, fast_sizes, fast_res = run_one_iteration(
        small_mixture.points, centers, vectorized=True
    )
    slow, slow_sizes, slow_res = run_one_iteration(
        small_mixture.points, centers, vectorized=False
    )
    assert np.allclose(fast, slow, atol=1e-9)
    assert np.array_equal(fast_sizes, slow_sizes)
    # Identical framework accounting: one logical map-output per point.
    for name in (UserCounter.DISTANCE_COMPUTATIONS, UserCounter.COORDINATE_OPS):
        assert fast_res.counters.get(USER_GROUP, name) == slow_res.counters.get(
            USER_GROUP, name
        )


def test_distance_counter_is_n_times_k(small_mixture):
    centers = small_mixture.points[:4]
    _, _, result = run_one_iteration(small_mixture.points, centers)
    assert (
        result.counters.get(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS)
        == small_mixture.n_points * 4
    )


def test_empty_cluster_keeps_position(small_mixture):
    centers = np.vstack(
        [small_mixture.points[:2], np.full((1, 2), 1e6)]
    )
    new_centers, sizes, _ = run_one_iteration(small_mixture.points, centers)
    assert sizes[2] == 0
    assert np.array_equal(new_centers[2], centers[2])


def test_max_cluster_counter_reported(small_mixture):
    centers = small_mixture.points[[0, 1]]
    _, sizes, result = run_one_iteration(small_mixture.points, centers)
    assert result.counters.get(
        USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX
    ) == sizes.max()


def test_single_split_single_reducer(small_mixture):
    centers = small_mixture.points[[0, 300]]
    mr_centers, _, _ = run_one_iteration(
        small_mixture.points, centers, num_reduce=1, split_bytes=10**7
    )
    serial_centers, _, _ = lloyd_step(small_mixture.points, centers)
    assert np.allclose(mr_centers, serial_centers, atol=1e-9)
