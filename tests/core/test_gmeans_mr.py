"""The MR G-means driver end to end (small scale)."""

import numpy as np
import pytest

from repro.clustering.metrics import assign_nearest
from repro.core import MRGMeans, MRGMeansConfig
from repro.data.generator import demo_r2_dataset, generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def fit(points, config=None, nodes=2, split_bytes=8192, seed=5, cache=False):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=nodes), rng=seed)
    driver = MRGMeans(runtime, config or MRGMeansConfig(seed=seed), cache_input=cache)
    return driver.fit(f)


@pytest.fixture(scope="module")
def demo():
    return demo_r2_dataset(n_points=2500, rng=31)


def test_recovers_k_on_demo(demo):
    result = fit(demo.points)
    assert result.completed
    assert 9 <= result.k_found <= 15
    # Every true cluster is covered by at least one found center.
    labels, _ = assign_nearest(result.centers, demo.centers)
    assert set(labels.tolist()) == set(range(demo.n_clusters))


def test_single_gaussian_found_immediately(rng):
    pts = rng.normal(size=(1200, 3))
    result = fit(pts)
    assert result.k_found == 1
    assert result.iterations <= 2


def test_three_jobs_per_iteration(demo):
    """kmeans_iterations=2 -> KMeans + KMeansAndFindNewCenters + Test."""
    result = fit(demo.points)
    assert result.totals.dataset_reads == 3 * result.iterations


def test_extra_kmeans_iterations_add_reads(demo):
    cfg = MRGMeansConfig(seed=5, kmeans_iterations=4)
    result = fit(demo.points, cfg)
    assert result.totals.dataset_reads == 5 * result.iterations


def test_iterations_near_log2_k(demo):
    result = fit(demo.points)
    assert result.iterations >= int(np.ceil(np.log2(result.k_found)))
    assert result.iterations <= int(np.ceil(np.log2(result.k_found))) + 4


def test_k_history_doubles_early(demo):
    result = fit(demo.points)
    ks = [h.k_before for h in result.history]
    assert ks[0] == 1
    assert ks[1] == 2
    assert ks[2] == 4


def test_k_max_respected(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, k_max=4))
    assert result.k_found <= 4


def test_max_iterations_bounds_run(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, max_iterations=2))
    assert result.iterations == 2
    assert not result.completed


def test_forced_strategies_agree_on_easy_data(demo):
    mapper = fit(demo.points, MRGMeansConfig(seed=5, strategy="mapper"))
    reducer = fit(demo.points, MRGMeansConfig(seed=5, strategy="reducer"))
    assert abs(mapper.k_found - reducer.k_found) <= 3
    assert {h.strategy for h in mapper.history if h.strategy != "none"} == {"mapper"}
    assert {h.strategy for h in reducer.history if h.strategy != "none"} == {"reducer"}


def test_auto_strategy_starts_mapper_side(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, strategy="auto"))
    assert result.history[0].strategy == "mapper"


def test_determinism(demo):
    a = fit(demo.points)
    b = fit(demo.points)
    assert a.k_found == b.k_found
    assert np.allclose(np.sort(a.centers, axis=0), np.sort(b.centers, axis=0))


def test_cache_input_reduces_reads(demo):
    cold = fit(demo.points, cache=False)
    warm = fit(demo.points, cache=True)
    assert warm.totals.dataset_reads == 1
    assert warm.totals.cached_reads == cold.totals.dataset_reads - 1
    assert warm.k_found == cold.k_found
    assert warm.totals.simulated_seconds < cold.totals.simulated_seconds


def test_post_merge_shrinks_overestimate(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, post_merge=True, alpha=0.01))
    assert result.merged_centers is not None
    assert result.merged_centers.shape[0] <= result.k_found


def test_history_records_timing_and_centers(demo):
    result = fit(demo.points)
    assert len(result.history) == result.iterations
    for h in result.history:
        assert h.simulated_seconds > 0
        assert h.centers.ndim == 2
    assert result.simulated_seconds == pytest.approx(
        sum(h.simulated_seconds for h in result.history)
    )


def test_k_init_seeds_multiple_clusters(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, k_init=4))
    assert result.history[0].k_before == 4
    assert result.k_found >= 4


def test_previous_anchor_mode_runs(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, anchor="previous"))
    assert result.completed
    assert result.k_found >= 8


def test_vectorized_off_agrees_with_on(demo):
    """The per-record path (slow; reduced sample) must find essentially
    the same clustering. Exact equality is not required: candidate
    sampling consumes randomness differently on the two paths."""
    sample = demo.points[::5]
    fast = fit(sample, MRGMeansConfig(seed=5, vectorized=True))
    slow = fit(sample, MRGMeansConfig(seed=5, vectorized=False))
    assert fast.completed and slow.completed
    assert abs(fast.k_found - slow.k_found) <= 2


def test_min_split_size_stops_early(demo):
    result = fit(demo.points, MRGMeansConfig(seed=5, min_split_size=10**6))
    assert result.k_found == 1


def test_balanced_partitioning_reducer_path(demo):
    """Reducer-side testing with weight-balanced partitioning finds the
    same clustering; only the key->reducer assignment differs."""
    balanced = fit(
        demo.points,
        MRGMeansConfig(seed=5, strategy="reducer", balanced_partitioning=True),
    )
    hashed = fit(
        demo.points,
        MRGMeansConfig(seed=5, strategy="reducer", balanced_partitioning=False),
    )
    assert balanced.k_found == hashed.k_found
    assert np.allclose(
        np.sort(balanced.centers, axis=0), np.sort(hashed.centers, axis=0)
    )


def test_alternative_normality_tests_run(demo):
    """All three pluggable tests drive the driver to a sensible k."""
    for method in ("anderson", "jarque_bera", "lilliefors"):
        result = fit(
            demo.points, MRGMeansConfig(seed=5, normality_test=method)
        )
        assert result.completed, method
        assert 6 <= result.k_found <= 18, method


def test_invalid_normality_test_rejected():
    import pytest as _pytest

    from repro.common.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        MRGMeansConfig(normality_test="shapiro")
