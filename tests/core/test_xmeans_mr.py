"""MapReduce X-means."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.xmeans_mr import MRXMeans, _bic
from repro.clustering.xmeans import spherical_bic
from repro.data.generator import demo_r2_dataset, generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def fit(points, seed=7, **kwargs):
    dfs = InMemoryDFS(split_size_bytes=16384)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=seed)
    return MRXMeans(runtime, seed=seed, **kwargs).fit(f)


@pytest.fixture(scope="module")
def mixture():
    return generate_gaussian_mixture(6000, 8, 10, rng=5)


def test_recovers_k_high_dim(mixture):
    result = fit(mixture.points)
    assert result.completed
    assert 7 <= result.k_found <= 10
    for true_center in mixture.centers:
        d = np.linalg.norm(result.centers - true_center, axis=1)
        assert d.min() < 2.0


def test_single_gaussian_keeps_one_cluster(rng):
    points = rng.normal(size=(2000, 6))
    result = fit(points)
    assert result.k_found == 1


def test_low_dim_needs_k_init_like_serial():
    """The documented BIC caveat holds for the MR port too."""
    demo = demo_r2_dataset(3000, rng=1)
    from_one = fit(demo.points, k_init=1)
    from_two = fit(demo.points, k_init=2)
    assert from_one.k_found == 1
    assert from_two.k_found >= 8


def test_k_max_respected(mixture):
    result = fit(mixture.points, k_max=4)
    assert result.k_found <= 4


def test_max_iterations_bounds(mixture):
    result = fit(mixture.points, max_iterations=2)
    assert result.iterations <= 2


def test_accounting_accumulates(mixture):
    result = fit(mixture.points)
    # refine + pick + children*2 + bic per productive iteration.
    assert result.totals.jobs >= 4 * (result.iterations - 1)
    assert result.totals.distance_computations > 0


def test_bic_aggregate_matches_serial_formula(rng):
    """The streaming _bic from (rss, n, sizes) equals spherical_bic
    computed from full data."""
    points = np.vstack([rng.normal(-5, 1, (300, 4)), rng.normal(5, 1, (300, 4))])
    centers = np.array([[-5.0] * 4, [5.0] * 4])
    from repro.clustering.metrics import assign_nearest, cluster_sizes

    labels, sq = assign_nearest(points, centers)
    sizes = cluster_sizes(labels, 2)
    serial = spherical_bic(points, centers, labels)
    streamed = _bic(float(sq.sum()), 600, 4, 2, list(sizes))
    assert streamed == pytest.approx(serial, rel=1e-12)


def test_validation(mixture):
    dfs = InMemoryDFS()
    f = write_points(dfs, "pts", mixture.points)
    runtime = MapReduceRuntime(dfs, rng=0)
    with pytest.raises(ConfigurationError):
        MRXMeans(runtime, k_init=0)
    with pytest.raises(ConfigurationError):
        MRXMeans(runtime, k_init=5, k_max=3)
    with pytest.raises(ConfigurationError):
        MRXMeans(runtime, max_iterations=0)


def test_determinism(mixture):
    a = fit(mixture.points)
    b = fit(mixture.points)
    assert a.k_found == b.k_found
    assert np.allclose(np.sort(a.centers, axis=0), np.sort(b.centers, axis=0))
