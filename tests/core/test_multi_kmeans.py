"""Multi-k-means baseline (Algorithm 6)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.multi_kmeans import MultiKMeans, make_multi_kmeans_job
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import FRAMEWORK_GROUP, USER_GROUP, MRCounter, UserCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def make_runtime(points, split_bytes=4096, seed=4):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    return MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=seed), f


def test_refines_all_candidate_ks(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    driver = MultiKMeans(runtime, k_min=1, k_max=5, iterations=4, seed=0)
    result = driver.fit(f)
    assert set(result.centers_by_k) == {1, 2, 3, 4, 5}
    for k, centers in result.centers_by_k.items():
        assert centers.shape == (k, small_mixture.dimensions)
    assert set(result.wcss_by_k) == {1, 2, 3, 4, 5}


def test_wcss_decreases_with_k(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(runtime, k_min=1, k_max=6, iterations=5, seed=1).fit(f)
    values = [result.wcss_by_k[k] for k in sorted(result.wcss_by_k)]
    # Generally decreasing (random init may wobble slightly at one step).
    assert values[0] > values[-1]
    assert sum(a < b for a, b in zip(values, values[1:])) <= 1


def test_elbow_picks_true_k(small_mixture):
    # Start the scan at k=2: including the trivial k=1 lets its huge
    # variance drop mask the real knee (a standard elbow-method caveat).
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(
        runtime, k_min=2, k_max=8, iterations=6, criterion="elbow",
        init="kmeans++", seed=2,
    ).fit(f)
    assert result.best_k == small_mixture.n_clusters
    assert result.best_centers.shape[0] == result.best_k


def test_distance_computations_scale_with_sum_k(small_mixture):
    n = small_mixture.n_points
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(runtime, k_min=1, k_max=4, iterations=1, seed=3).fit(f)
    # 1 refinement iteration + 1 scoring job, each n * sum(1..4) distances.
    assert result.totals.distance_computations == 2 * n * 10


def test_reads_one_per_iteration_plus_scoring(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(runtime, k_min=1, k_max=3, iterations=5, seed=4).fit(f)
    assert result.totals.dataset_reads == 6
    assert len(result.iteration_seconds) == 5
    assert result.average_iteration_seconds == pytest.approx(
        float(np.mean(result.iteration_seconds))
    )


def test_k_step_skips_candidates(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(runtime, k_min=2, k_max=8, k_step=3, iterations=2, seed=5).fit(f)
    assert set(result.centers_by_k) == {2, 5, 8}


def test_jump_criterion(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MultiKMeans(
        runtime, k_min=1, k_max=8, iterations=6, criterion="jump",
        init="kmeans++", seed=6,
    ).fit(f)
    assert 2 <= result.best_k <= 5


def test_mapper_emits_per_candidate_k(small_mixture):
    runtime, f = make_runtime(small_mixture.points, split_bytes=10**7)
    centers_by_k = {
        1: small_mixture.points[:1].copy(),
        2: small_mixture.points[:2].copy(),
    }
    job = make_multi_kmeans_job(centers_by_k, 2)
    result = runtime.run(job, f)
    n = small_mixture.n_points
    c = result.counters
    assert c.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS) == 2 * n
    assert c.get(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS) == 3 * n


def test_vectorized_matches_per_record(small_mixture):
    sample = small_mixture.points[::3]
    outs = []
    for vectorized in (True, False):
        runtime, f = make_runtime(sample)
        result = MultiKMeans(
            runtime, k_min=1, k_max=3, iterations=3, seed=7, vectorized=vectorized
        ).fit(f)
        outs.append(result)
    for k in (1, 2, 3):
        assert np.allclose(outs[0].centers_by_k[k], outs[1].centers_by_k[k])


def test_validation():
    runtime, _ = make_runtime(np.ones((5, 2)))
    with pytest.raises(ConfigurationError):
        MultiKMeans(runtime, k_min=0, k_max=3)
    with pytest.raises(ConfigurationError):
        MultiKMeans(runtime, k_min=5, k_max=3)
    with pytest.raises(ConfigurationError):
        MultiKMeans(runtime, k_min=1, k_max=3, k_step=0)
    with pytest.raises(ConfigurationError):
        MultiKMeans(runtime, k_min=1, k_max=3, iterations=0)
    with pytest.raises(ConfigurationError):
        MultiKMeans(runtime, k_min=1, k_max=3, criterion="gap")
