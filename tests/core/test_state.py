"""GMeansState bookkeeping across generations."""

import numpy as np
import pytest

from repro.core.state import (
    ClusterNode,
    GMeansState,
    ROLE_CHILD_A,
    ROLE_CHILD_B,
    ROLE_FOUND,
)


def make_state():
    state = GMeansState()
    pair = np.array([[0.0, 0.0], [1.0, 1.0]])
    state.new_cluster(np.array([0.5, 0.5]), pair)  # active
    state.new_cluster(np.array([9.0, 9.0]), None, found=True)  # found
    return state


def test_new_cluster_assigns_unique_ids():
    state = make_state()
    ids = [c.cluster_id for c in state.clusters]
    assert ids == [0, 1]
    third = state.new_cluster(np.zeros(2), None)
    assert third.cluster_id == 2


def test_active_and_all_found():
    state = make_state()
    assert [c.cluster_id for c in state.active] == [0]
    assert not state.all_found
    state.clusters[0].found = True
    assert state.all_found


def test_parent_centers_stacks_all():
    state = make_state()
    centers = state.parent_centers()
    assert centers.shape == (2, 2)
    assert np.array_equal(centers[1], [9.0, 9.0])


def test_flatten_with_refine_found():
    state = make_state()
    flat = state.flatten_current(refine_found=True)
    assert flat.k == 3
    assert flat.slots == [(0, ROLE_CHILD_A), (0, ROLE_CHILD_B), (1, ROLE_FOUND)]


def test_flatten_without_refine_found():
    state = make_state()
    flat = state.flatten_current(refine_found=False)
    assert flat.k == 2
    assert all(role != ROLE_FOUND for _, role in flat.slots)


def test_apply_refined_writes_back():
    state = make_state()
    flat = state.flatten_current(refine_found=True)
    refined = np.array([[0.1, 0.1], [1.1, 1.1], [8.0, 8.0]])
    state.apply_refined(flat, refined)
    assert np.array_equal(state.clusters[0].children[0], [0.1, 0.1])
    assert np.array_equal(state.clusters[0].children[1], [1.1, 1.1])
    assert np.array_equal(state.clusters[1].center, [8.0, 8.0])


def test_record_sizes_sums_children():
    state = make_state()
    flat = state.flatten_current(refine_found=True)
    state.record_sizes(flat, np.array([30, 20, 7]))
    assert state.clusters[0].size == 50
    assert state.clusters[0].child_sizes == (30, 20)
    assert state.clusters[1].size == 7


def test_children_centroid_weighted():
    node = ClusterNode(
        cluster_id=0,
        center=np.array([5.0, 5.0]),
        children=np.array([[0.0, 0.0], [4.0, 0.0]]),
        child_sizes=(3, 1),
    )
    assert np.allclose(node.children_centroid(), [1.0, 0.0])


def test_children_centroid_falls_back_to_center():
    node = ClusterNode(cluster_id=0, center=np.array([5.0, 5.0]))
    assert np.array_equal(node.children_centroid(), [5.0, 5.0])
    node2 = ClusterNode(
        cluster_id=1,
        center=np.array([2.0, 2.0]),
        children=np.zeros((2, 2)),
        child_sizes=(0, 0),
    )
    assert np.array_equal(node2.children_centroid(), [2.0, 2.0])


def test_has_usable_children():
    good = ClusterNode(0, np.zeros(2), children=np.array([[0.0, 0.0], [1.0, 1.0]]))
    assert good.has_usable_children()
    none = ClusterNode(1, np.zeros(2), children=None)
    assert not none.has_usable_children()
    equal = ClusterNode(2, np.zeros(2), children=np.ones((2, 2)))
    assert not equal.has_usable_children()


def test_new_cluster_copies_inputs():
    state = GMeansState()
    center = np.zeros(2)
    pair = np.ones((2, 2))
    node = state.new_cluster(center, pair)
    center[0] = 99.0
    pair[0, 0] = 99.0
    assert node.center[0] == 0.0
    assert node.children[0, 0] == 1.0
