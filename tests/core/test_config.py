"""MRGMeansConfig validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import (
    HEAP_BYTES_PER_PROJECTION,
    MIN_MAPPER_SAMPLE,
    MRGMeansConfig,
)


def test_defaults_follow_the_paper():
    cfg = MRGMeansConfig()
    assert cfg.kmeans_iterations == 2  # "two k-means iterations are sufficient"
    assert cfg.min_mapper_sample == MIN_MAPPER_SAMPLE == 20
    assert cfg.heap_bytes_per_projection == HEAP_BYTES_PER_PROJECTION == 64
    assert cfg.strategy == "auto"
    # The MR default compensates mapper-vote power loss; the canonical
    # serial strictness (1e-4) remains available via config.
    assert cfg.alpha == pytest.approx(0.01)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"alpha": 0.0},
        {"alpha": 0.9},
        {"k_init": 0},
        {"k_max": 0},
        {"k_init": 10, "k_max": 5},
        {"kmeans_iterations": 0},
        {"max_iterations": 0},
        {"min_split_size": 0},
        {"min_mapper_sample": -1},
        {"heap_bytes_per_projection": 0},
        {"vote_rule": "coin_flip"},
        {"strategy": "both"},
        {"undecided_policy": "panic"},
        {"anchor": "nowhere"},
        {"num_reduce_tasks": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        MRGMeansConfig(**kwargs)


def test_valid_variants_accepted():
    MRGMeansConfig(strategy="mapper", vote_rule="any_reject", anchor="previous")
    MRGMeansConfig(strategy="reducer", undecided_policy="defer")
    MRGMeansConfig(kmeans_iterations=5, num_reduce_tasks=8)
