"""KMeansAndFindNewCenters: OFFSET multiplexing + candidate sampling."""

import numpy as np
import pytest

from repro.clustering.lloyd import lloyd_step
from repro.core.kmeans_find_new import (
    decode_find_new_centers_output,
    make_find_new_centers_job,
    merge_candidate_samples,
)
from repro.data.loader import write_points
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import OFFSET


def run_job(points, centers, vectorized=True, split_bytes=2048, seed=0):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(dfs, rng=seed)
    job = make_find_new_centers_job(centers, 4, vectorized=vectorized)
    result = runtime.run(job, f)
    return decode_find_new_centers_output(result.output, centers), result


def test_kmeans_part_matches_lloyd(small_mixture):
    centers = small_mixture.points[[0, 100, 400]]
    (new_centers, sizes, _), _ = run_job(small_mixture.points, centers)
    serial_centers, labels, _ = lloyd_step(small_mixture.points, centers)
    assert np.allclose(new_centers, serial_centers, atol=1e-9)
    assert np.array_equal(sizes, np.bincount(labels, minlength=3))


def test_candidates_are_two_members_of_the_cluster(small_mixture):
    centers = small_mixture.points[[0, 100, 400]]
    (_, _, candidates), _ = run_job(small_mixture.points, centers)
    _, labels, _ = lloyd_step(small_mixture.points, centers)
    assert set(candidates) == {0, 1, 2}
    for cid, sample in candidates.items():
        assert sample.shape == (2, small_mixture.dimensions)
        member = small_mixture.points[labels == cid]
        for row in sample:
            assert np.any(np.all(np.isclose(member, row), axis=1))
        assert not np.array_equal(sample[0], sample[1])


def test_map_output_doubled(small_mixture):
    """The mapper emits every point twice (paper, Algorithm 2)."""
    centers = small_mixture.points[[0, 200]]
    _, result = run_job(small_mixture.points, centers)
    assert (
        result.counters.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS)
        == 2 * small_mixture.n_points
    )


def test_vectorized_matches_per_record_kmeans_part(small_mixture):
    centers = small_mixture.points[[3, 333]]
    (fast, fast_sizes, _), _ = run_job(small_mixture.points, centers, vectorized=True)
    (slow, slow_sizes, _), _ = run_job(small_mixture.points, centers, vectorized=False)
    assert np.allclose(fast, slow, atol=1e-9)
    assert np.array_equal(fast_sizes, slow_sizes)


def test_single_point_cluster_yields_one_candidate():
    pts = np.vstack([np.zeros((40, 2)) + np.random.default_rng(0).normal(0, 0.1, (40, 2)), [[100.0, 100.0]]])
    centers = np.array([[0.0, 0.0], [100.0, 100.0]])
    (_, sizes, candidates), _ = run_job(pts, centers)
    assert sizes[1] == 1
    assert candidates[1].shape[0] == 1  # cannot sample 2 from 1 point


def test_merge_candidate_samples_weight_sums():
    rng = np.random.default_rng(0)
    a = (np.array([[0.0, 0.0], [1.0, 1.0]]), 10)
    b = (np.array([[5.0, 5.0], [6.0, 6.0]]), 30)
    points, weight = merge_candidate_samples([a, b], rng)
    assert weight == 40
    assert 1 <= points.shape[0] <= 2


def test_merge_candidate_samples_weighted_preference():
    """A sample backed by 100x more points wins most merges."""
    rng = np.random.default_rng(1)
    heavy_wins = 0
    for _ in range(200):
        heavy = (np.array([[1.0]]), 1000)
        light = (np.array([[2.0]]), 10)
        points, _ = merge_candidate_samples([heavy, light], rng)
        heavy_wins += points[0, 0] == 1.0
    assert heavy_wins > 150


def test_merge_single_sample_identity():
    rng = np.random.default_rng(2)
    sample = (np.array([[1.0, 2.0], [3.0, 4.0]]), 7)
    points, weight = merge_candidate_samples([sample], rng)
    assert np.array_equal(points, sample[0])
    assert weight == 7


def test_offset_keys_separate_populations(small_mixture):
    centers = small_mixture.points[[0, 100]]
    dfs = InMemoryDFS(split_size_bytes=4096)
    f = write_points(dfs, "pts", small_mixture.points)
    runtime = MapReduceRuntime(dfs, rng=3)
    job = make_find_new_centers_job(centers, 4)
    result = runtime.run(job, f)
    keys = [k for k, _ in result.output]
    low = [k for k in keys if k < OFFSET]
    high = [k for k in keys if k >= OFFSET]
    assert sorted(low) == [0, 1]
    assert sorted(high) == [OFFSET, OFFSET + 1]
