"""k-means|| initialisation (Bahmani et al.), run as MR jobs."""

import numpy as np
import pytest

from repro.clustering.metrics import average_distance, wcss
from repro.common.errors import ConfigurationError
from repro.core.kmeans_mr import MRKMeans
from repro.core.kmeans_parallel import kmeans_parallel_init
from repro.data.generator import generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.driver import JobChainDriver
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def world():
    mixture = generate_gaussian_mixture(
        n_points=4000, n_clusters=8, dimensions=3, rng=101, cluster_std=1.0
    )
    dfs = InMemoryDFS(split_size_bytes=16384)
    dataset = write_points(dfs, "pts", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=103)
    return mixture, runtime, dataset


def test_returns_k_centers(world):
    mixture, runtime, dataset = world
    centers = kmeans_parallel_init(runtime, dataset, k=8, seed=1)
    assert centers.shape == (8, mixture.dimensions)
    assert np.all(np.isfinite(centers))


def test_covers_every_true_cluster(world):
    """The whole point of k-means||: no true cluster is left seedless."""
    mixture, runtime, dataset = world
    centers = kmeans_parallel_init(runtime, dataset, k=8, seed=2)
    for true_center in mixture.centers:
        d = np.linalg.norm(centers - true_center, axis=1)
        assert d.min() < 3.0


def test_better_than_random_init(world):
    """Seeding cost beats a uniform random pick (the k-means++ family
    guarantee, checked empirically across seeds)."""
    mixture, runtime, dataset = world
    rng = np.random.default_rng(3)
    wins = 0
    for seed in range(5):
        parallel = kmeans_parallel_init(runtime, dataset, k=8, seed=seed)
        idx = rng.choice(mixture.n_points, size=8, replace=False)
        random_centers = mixture.points[idx]
        if wcss(mixture.points, parallel) < wcss(mixture.points, random_centers):
            wins += 1
    assert wins >= 4


def test_job_accounting_folds_into_driver(world):
    mixture, runtime, dataset = world
    driver = JobChainDriver(runtime)
    kmeans_parallel_init(runtime, dataset, k=4, rounds=3, seed=4, driver=driver)
    # rounds+1 sampling/cost jobs + 1 weighting job
    assert driver.totals.jobs == 5
    assert driver.totals.dataset_reads == 5
    assert driver.totals.distance_computations > 0


def test_small_data_pads_candidates(world):
    """With a tiny oversampling rate the candidate set may come up
    short of k; the driver pads from the sample instead of failing."""
    mixture, runtime, dataset = world
    centers = kmeans_parallel_init(
        runtime, dataset, k=10, rounds=1, oversampling=0.5, seed=5
    )
    assert centers.shape[0] == 10


def test_validation(world):
    _, runtime, dataset = world
    with pytest.raises(ConfigurationError):
        kmeans_parallel_init(runtime, dataset, k=0)
    with pytest.raises(ConfigurationError):
        kmeans_parallel_init(runtime, dataset, k=2, rounds=0)


def test_mrkmeans_accepts_kmeans_parallel_init(world):
    mixture, runtime, dataset = world
    result = MRKMeans(
        runtime, k=8, init="kmeans||", max_iterations=10, seed=6
    ).fit(dataset)
    assert result.k == 8
    # Quality close to ideal (every cluster seeded -> ~cluster_std).
    assert average_distance(mixture.points, result.centers) < 2.5
