"""Plain MR k-means driver."""

import numpy as np
import pytest

from repro.clustering.lloyd import lloyd_kmeans
from repro.common.errors import ConfigurationError
from repro.core.kmeans_mr import MRKMeans
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


def make_runtime(points, split_bytes=4096, seed=9):
    dfs = InMemoryDFS(split_size_bytes=split_bytes)
    f = write_points(dfs, "pts", points)
    return MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=seed), f


def test_matches_serial_lloyd_from_same_init(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    init = small_mixture.points[[0, 200, 500]]
    mr = MRKMeans(runtime, k=3, max_iterations=20, tolerance=1e-9).fit(
        f, initial_centers=init
    )
    serial = lloyd_kmeans(
        small_mixture.points, init=init, max_iterations=20, tolerance=1e-9
    )
    assert np.allclose(mr.centers, serial.centers, atol=1e-8)
    assert mr.converged == serial.converged


def test_converges_and_reports_sizes(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MRKMeans(runtime, k=3, init="kmeans++", seed=1).fit(f)
    assert result.converged
    assert result.sizes.sum() == small_mixture.n_points
    assert result.k == 3


def test_iteration_budget(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MRKMeans(runtime, k=10, max_iterations=2, seed=2).fit(f)
    assert result.iterations <= 2
    assert result.totals.dataset_reads <= 2


def test_one_read_per_iteration(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    result = MRKMeans(runtime, k=3, init="kmeans++", seed=3).fit(f)
    assert result.totals.dataset_reads == result.iterations


def test_validation_errors(small_mixture):
    runtime, f = make_runtime(small_mixture.points)
    with pytest.raises(ConfigurationError):
        MRKMeans(runtime, k=0)
    with pytest.raises(ConfigurationError):
        MRKMeans(runtime, k=2, max_iterations=0)
    with pytest.raises(ConfigurationError):
        MRKMeans(runtime, k=2, init="nope", seed=0).fit(f)
    with pytest.raises(ConfigurationError):
        MRKMeans(runtime, k=2, seed=0).fit(f, initial_centers=np.ones((3, 2)))


def test_seed_determinism(small_mixture):
    results = []
    for _ in range(2):
        runtime, f = make_runtime(small_mixture.points)
        results.append(MRKMeans(runtime, k=3, seed=11).fit(f))
    assert np.allclose(results[0].centers, results[1].centers)
