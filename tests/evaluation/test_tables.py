"""Table rendering."""

import pytest

from repro.evaluation.tables import format_cell, render_comparison, render_table


def test_format_cell_variants():
    assert format_cell(3) == "3"
    assert format_cell(None) == "-"
    assert format_cell(float("nan")) == "-"
    assert format_cell(3.14159) == "3.142"
    assert format_cell(42.123) == "42.1"
    assert format_cell(12345.6) == "12,346"
    assert format_cell("text") == "text"


def test_render_table_alignment():
    out = render_table(["a", "long_header"], [[1, 2], [333, 4]], title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned to equal width


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_comparison_relative_columns():
    out = render_comparison(
        "cmp", [1, 2], [10.0, 20.0], [5.0, 15.0], paper_name="p", measured_name="m"
    )
    assert "p (rel)" in out
    assert "2.000" in out  # 20/10
    assert "3.000" in out  # 15/5


def test_render_comparison_validates_lengths():
    with pytest.raises(ValueError):
        render_comparison("x", [1], [1.0, 2.0], [1.0])
