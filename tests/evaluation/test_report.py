"""Markdown report generation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.report import generate_report, write_report


def stub(name: str, text: str):
    return lambda: ExperimentResult(name=name, text=text)


def test_report_contains_sections_in_order():
    runners = {"table1": stub("table1", "T1"), "fig2": stub("fig2", "F2")}
    md = generate_report(runners=runners)
    assert md.index("## table1") < md.index("## fig2")
    assert "```text\nT1\n```" in md
    assert "```text\nF2\n```" in md


def test_report_respects_names_subset_and_order():
    runners = {"a": stub("a", "A"), "b": stub("b", "B")}
    md = generate_report(names=["b"], runners=runners)
    assert "## b" in md
    assert "## a" not in md


def test_report_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown experiment names"):
        generate_report(names=["ghost"], runners={"a": stub("a", "A")})


def test_report_progress_callback():
    seen = []
    runners = {"x": stub("x", "X"), "y": stub("y", "Y")}
    generate_report(runners=runners, progress=seen.append)
    assert seen == ["x", "y"]


def test_write_report_creates_directories(tmp_path):
    out = tmp_path / "deep" / "nested" / "report.md"
    path = write_report(out, runners={"x": stub("x", "X")})
    assert path == out
    assert out.read_text().startswith("# Reproduction report")


def test_cli_report_command(tmp_path, capsys, monkeypatch):
    from repro import cli
    from repro.evaluation import report as report_module

    monkeypatch.setattr(
        report_module,
        "EXPERIMENTS",
        {"table1": stub("table1", "CLI")},
    )
    monkeypatch.setattr(report_module, "ABLATIONS", {})
    out = tmp_path / "r.md"
    assert cli.main(["report", "--out", str(out)]) == 0
    assert "CLI" in out.read_text()
    assert "report written" in capsys.readouterr().out
