"""The unified BENCH_*.json schema writer/loader."""

import json
import pathlib

import pytest

from repro.common.errors import DataFormatError
from repro.evaluation.benchjson import (
    REQUIRED_FIELDS,
    SCHEMA_VERSION,
    bench_entry,
    load_bench_json,
    platform_info,
    write_bench_json,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_round_trip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    written = write_bench_json(
        path,
        "unit_test_bench",
        workload={"n_points": 10, "seed": 1},
        metrics={"wall_seconds": 0.5, "ok": True},
    )
    loaded = load_bench_json(path)
    assert loaded == written
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["metrics"]["wall_seconds"] == 0.5
    assert loaded["workload"]["seed"] == 1
    assert path.read_text().endswith("\n")


def test_platform_info_recorded():
    entry = bench_entry("b", workload={}, metrics={})
    for key in ("platform", "python", "cpu_count"):
        assert key in entry["platform"]
    assert entry["platform"] == platform_info()


def test_empty_benchmark_name_rejected():
    with pytest.raises(DataFormatError):
        bench_entry("", workload={}, metrics={})


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(DataFormatError, match="not valid JSON"):
        load_bench_json(path)


def test_load_rejects_non_object(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2]")
    with pytest.raises(DataFormatError, match="expected a JSON object"):
        load_bench_json(path)


def test_load_rejects_missing_fields(tmp_path):
    path = tmp_path / "partial.json"
    path.write_text(json.dumps({"benchmark": "b", "metrics": {}}))
    with pytest.raises(DataFormatError, match="missing required fields"):
        load_bench_json(path)


def test_load_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "future.json"
    entry = bench_entry("b", workload={}, metrics={})
    entry["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    with pytest.raises(DataFormatError, match="schema_version"):
        load_bench_json(path)


def test_load_rejects_non_object_sections(tmp_path):
    path = tmp_path / "flat.json"
    entry = bench_entry("b", workload={}, metrics={})
    entry["metrics"] = 3
    path.write_text(json.dumps(entry))
    with pytest.raises(DataFormatError, match="'metrics' must be an object"):
        load_bench_json(path)


@pytest.mark.parametrize(
    "name", ["BENCH_executors.json", "BENCH_observability.json"]
)
def test_committed_bench_files_conform(name):
    """The archived measurements at the repo root follow the schema."""
    entry = load_bench_json(REPO_ROOT / name)
    assert set(REQUIRED_FIELDS) <= set(entry)
    assert entry["workload"]
    assert entry["metrics"]


def test_merge_creates_then_nests_additional_benchmarks(tmp_path):
    from repro.evaluation.benchjson import merge_bench_json

    path = tmp_path / "BENCH_shared.json"
    first = merge_bench_json(path, "alpha", workload={"n": 1}, metrics={"x": 1})
    assert first == load_bench_json(path)
    assert first["benchmark"] == "alpha"
    assert "benchmarks" not in first

    merged = merge_bench_json(path, "beta", workload={"n": 2}, metrics={"y": 2})
    assert merged["benchmark"] == "alpha"  # first measurement keeps the top level
    assert merged["benchmarks"]["beta"]["metrics"] == {"y": 2}
    assert merged["benchmarks"]["beta"]["workload"] == {"n": 2}
    assert "platform" in merged["benchmarks"]["beta"]
    assert load_bench_json(path) == merged


def test_merge_updates_in_place(tmp_path):
    from repro.evaluation.benchjson import merge_bench_json

    path = tmp_path / "BENCH_shared.json"
    merge_bench_json(path, "alpha", workload={}, metrics={"x": 1})
    merge_bench_json(path, "beta", workload={}, metrics={"y": 1})
    # Re-recording the nested bench replaces its sub-entry.
    updated = merge_bench_json(path, "beta", workload={}, metrics={"y": 9})
    assert updated["benchmarks"]["beta"]["metrics"] == {"y": 9}
    # Re-recording the top-level bench keeps the nested ones.
    topped = merge_bench_json(path, "alpha", workload={}, metrics={"x": 7})
    assert topped["metrics"] == {"x": 7}
    assert topped["benchmarks"]["beta"]["metrics"] == {"y": 9}


def test_load_rejects_malformed_nested_benchmarks(tmp_path):
    path = tmp_path / "bad-nested.json"
    entry = bench_entry("b", workload={}, metrics={})
    entry["benchmarks"] = {"sub": {"metrics": {}}}  # missing workload/platform
    path.write_text(json.dumps(entry))
    with pytest.raises(DataFormatError, match="benchmarks\\['sub'\\] missing"):
        load_bench_json(path)
