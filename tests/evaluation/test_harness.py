"""World building for experiments."""

import pytest

from repro.data.generator import generate_gaussian_mixture
from repro.data.textio import bytes_per_record
from repro.evaluation.harness import BENCH_COST, build_world, target_split_bytes


def test_target_split_bytes_yields_requested_splits():
    n, d, target = 10_000, 5, 16
    split = target_split_bytes(n, d, target)
    records_per_split = split // bytes_per_record(d)
    import math

    splits = math.ceil(n / records_per_split)
    assert target <= splits <= target + 1


def test_target_split_bytes_minimum_one_record():
    assert target_split_bytes(1, 3, 100) >= bytes_per_record(3)


def test_build_world_wires_everything():
    mixture = generate_gaussian_mixture(1000, 3, 4, rng=0)
    world = build_world(mixture, nodes=3, target_splits=8, task_heap_mb=128, seed=1)
    assert world.runtime.cluster.nodes == 3
    assert world.runtime.cluster.task_heap_mb == 128
    assert world.dataset.num_records == 1000
    assert 8 <= world.dataset.num_splits <= 9
    assert world.points is mixture.points


def test_build_world_uses_bench_cost_by_default():
    mixture = generate_gaussian_mixture(100, 2, 2, rng=0)
    world = build_world(mixture)
    assert world.runtime.cost_model.params is BENCH_COST


def test_build_world_custom_cost():
    from repro.mapreduce.costmodel import CostParameters

    mixture = generate_gaussian_mixture(100, 2, 2, rng=0)
    custom = CostParameters(task_startup_seconds=9.0)
    world = build_world(mixture, cost=custom)
    assert world.runtime.cost_model.params.task_startup_seconds == 9.0
