"""The experiment CLI."""

import pytest

from repro.cli import ABLATIONS, DESCRIPTIONS, EXPERIMENTS, build_parser, main


def test_every_entry_has_a_description():
    for name in list(EXPERIMENTS) + list(ABLATIONS):
        assert name in DESCRIPTIONS


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    for name in ABLATIONS:
        assert name in out


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "table99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_command_runs_and_writes(tmp_path, capsys, monkeypatch):
    # Patch in a tiny experiment so the CLI test stays fast.
    from repro.evaluation.experiments import ExperimentResult

    monkeypatch.setitem(
        EXPERIMENTS, "table1", lambda: ExperimentResult(name="t", text="TINY")
    )
    out_file = tmp_path / "report.txt"
    assert main(["experiment", "table1", "--out", str(out_file)]) == 0
    assert "TINY" in capsys.readouterr().out
    assert out_file.read_text() == "TINY\n"


def test_ablation_command_runs(capsys, monkeypatch):
    from repro.evaluation.experiments import ExperimentResult

    monkeypatch.setitem(
        ABLATIONS, "vote_rules", lambda: ExperimentResult(name="a", text="ABL")
    )
    assert main(["ablation", "vote_rules"]) == 0
    assert "ABL" in capsys.readouterr().out


def test_all_command_writes_directory(tmp_path, capsys, monkeypatch):
    from repro.evaluation.experiments import ExperimentResult

    tiny = lambda: ExperimentResult(name="x", text="X")
    for name in list(EXPERIMENTS):
        monkeypatch.setitem(EXPERIMENTS, name, tiny)
    for name in list(ABLATIONS):
        monkeypatch.setitem(ABLATIONS, name, tiny)
    assert main(["all", "--out-dir", str(tmp_path)]) == 0
    written = {p.name for p in tmp_path.iterdir()}
    assert "table1.txt" in written
    assert "vote_rules.txt" in written


def test_fault_tolerance_flags_set_environment(monkeypatch):
    from repro.core.config import CHECKPOINT_DIR_ENV, RESUME_ENV
    from repro.mapreduce.executors import MAX_JOB_RETRIES_ENV

    # setenv-then-delenv registers teardown that *removes* each var, so
    # the values main() writes cannot leak into later tests.
    for name in (CHECKPOINT_DIR_ENV, RESUME_ENV, MAX_JOB_RETRIES_ENV):
        monkeypatch.setenv(name, "scratch")
        monkeypatch.delenv(name)
    assert (
        main(
            [
                "--checkpoint-dir",
                "ck/gmeans",
                "list",
                "--resume",
                "--max-job-retries",
                "2",
            ]
        )
        == 0
    )
    import os

    assert os.environ[CHECKPOINT_DIR_ENV] == "ck/gmeans"
    assert os.environ[RESUME_ENV] == "latest"  # bare flag means newest
    assert os.environ[MAX_JOB_RETRIES_ENV] == "2"


def test_resume_accepts_explicit_checkpoint_after_command():
    args = build_parser().parse_args(["list", "--resume", "ck/iter-00007"])
    assert args.resume == "ck/iter-00007"
    # Flags in front of the subcommand survive the subparser pass.
    args = build_parser().parse_args(["--executor", "threads", "list"])
    assert args.executor == "threads"
