"""Ablation entry points at tiny scale (full runs live in benchmarks/)."""

import pytest

from repro.evaluation import ablations


def test_kmeans_iterations_tiny():
    result = ablations.ablation_kmeans_iterations(
        iterations_list=[1, 2], k_real=4, n_points=4000, seed=13
    )
    assert [r["kmeans_iterations"] for r in result.rows] == [1, 2]
    assert result.rows[1]["dataset_reads"] > result.rows[0]["dataset_reads"]
    assert "Ablation" in result.text


def test_test_strategy_tiny():
    result = ablations.ablation_test_strategy(k_real=4, n_points=4000, seed=17)
    modes = {r["strategy"] for r in result.rows}
    assert modes == {"mapper", "reducer", "auto"}
    for r in result.rows:
        assert r["k_found"] >= 2


def test_vote_rules_tiny():
    result = ablations.ablation_vote_rules(k_real=4, n_points=4000, seed=19)
    by_rule = {r["vote_rule"]: r for r in result.rows}
    assert (
        by_rule["any_reject"]["k_found"] >= by_rule["all_reject"]["k_found"]
    )


def test_anchor_modes_tiny():
    result = ablations.ablation_anchor_modes(k_real=8, n_points=6000, seed=2)
    assert len(result.rows) == 2
    for r in result.rows:
        assert 0 <= r["coverage_holes"] <= r["seeds"]


def test_balanced_partitioning_tiny():
    result = ablations.ablation_balanced_partitioning(n_points=8000, seed=23)
    by_mode = {r["partitioner"]: r for r in result.rows}
    assert by_mode["balanced"]["reduce_imbalance"] <= by_mode["hash"][
        "reduce_imbalance"
    ] + 1e-9


def test_init_methods_tiny():
    result = ablations.ablation_init_methods(k=6, n_points=5000, seed=29)
    by_init = {r["init"]: r for r in result.rows}
    assert set(by_init) == {"random", "kmeans++", "kmeans||"}
    assert by_init["kmeans++"]["avg_distance"] <= by_init["random"]["avg_distance"]


def test_cache_input_tiny():
    result = ablations.ablation_cache_input(k_real=4, n_points=4000, seed=31)
    cold, warm = result.rows
    assert warm["disk_reads"] == 1
    assert warm["time_seconds"] <= cold["time_seconds"]


def test_normality_tests_tiny():
    result = ablations.ablation_normality_tests(k_real=4, n_points=4000, seed=37)
    methods = {r["normality_test"] for r in result.rows}
    assert methods == {"anderson", "jarque_bera", "lilliefors"}
    for r in result.rows:
        assert -1.0 <= r["ari"] <= 1.0


def test_cluster_shapes_tiny():
    result = ablations.ablation_cluster_shapes(k_real=3, n_points=5000, seed=41)
    assert len(result.rows) == 4
    for r in result.rows:
        assert r["k_found"] >= 2
        assert 0.0 <= r["purity"] <= 1.0


def test_algorithms_tiny():
    result = ablations.ablation_algorithms(k_real=4, n_points=5000, seed=43)
    algorithms = {r["algorithm"] for r in result.rows}
    assert len(algorithms) == 3
    for r in result.rows:
        assert r["k_found"] >= 1
        assert r["time_seconds"] > 0
