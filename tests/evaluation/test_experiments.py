"""Experiment entry points at tiny scale (fast smoke of every
table/figure; the real runs live in benchmarks/)."""

import pytest

from repro.evaluation import experiments as E


def test_fig1_snapshots_and_plots():
    result = E.fig1_center_evolution(n_points=800, seed=1)
    assert result.name == "fig1"
    assert len(result.rows) >= 3
    assert result.rows[0]["k_before"] == 1
    assert "Iteration 1" in result.text


def test_fig2_heap_frontier_small():
    result = E.fig2_heap_memory(
        points_counts=[40_000, 80_000], heap_mb_values=[1, 2, 3, 4, 5, 6]
    )
    slope = result.data["slope_bytes_per_point"]
    assert 40 <= slope <= 90  # 64 B/point up to 1-MB heap granularity
    assert result.data["min_heap_by_n"][80_000] > result.data["min_heap_by_n"][40_000]
    statuses = {(r["points"], r["heap_mb"]): r["succeeded"] for r in result.rows}
    assert statuses[(80_000, 1)] is False
    assert statuses[(80_000, 6)] is True


def test_table1_tiny():
    result = E.table1_gmeans_scaling(ks=[4, 8], n_points=4000, seed=3)
    assert [r["clusters"] for r in result.rows] == [4, 8]
    for r in result.rows:
        assert r["discovered"] >= 2
        assert r["time_seconds"] > 0
    assert result.rows[1]["time_seconds"] > result.rows[0]["time_seconds"] * 0.8


def test_table2_tiny_quadratic():
    result = E.table2_multi_kmeans(ks=[4, 8, 16], n_points=4000, iterations=1, seed=4)
    times = [r["time_seconds"] for r in result.rows]
    assert times[-1] > times[0]
    assert result.data["correlation_k2"] > 0.95


def test_fig3_tiny():
    result = E.fig3_crossover(ks=[4, 8], n_points=3000, seed=5)
    assert len(result.rows) == 2
    assert "crossover_k" in result.data


def test_table3_tiny():
    result = E.table3_quality(ks=[4], n_points=6000, seed=3)
    row = result.rows[0]
    assert row["k_found"] >= 3
    assert row["gmeans"] > 0
    assert row["multi_kmeans"] > 0


def test_fig4_tiny():
    result = E.fig4_local_minimum(n_points=1200, seed=1, baseline_seeds=[0, 1, 2])
    assert result.data["total_runs"] == 3
    assert result.data["gmeans_k"] >= 8
    assert result.data["gmeans_distance"] < result.data["baseline_mean_distance"] * 1.5


def test_table4_tiny():
    result = E.table4_node_scaling(
        nodes_list=[2, 4], n_points=20_000, k_real=8, seed=7
    )
    assert len(result.rows) == 2
    # Identical work on both topologies.
    assert result.rows[0]["k_found"] == result.rows[1]["k_found"]
    assert result.rows[0]["iterations"] == result.rows[1]["iterations"]
    # More nodes -> faster.
    assert result.rows[1]["time_seconds"] < result.rows[0]["time_seconds"]
    assert result.rows[1]["speedup"] > 1.2


def test_costmodel_validation_tiny():
    result = E.costmodel_validation(k_real=8, n_points=5000, seed=8)
    by_name = {r["quantity"]: r for r in result.rows}
    assert by_name["G-means dataset reads"]["ratio"] == pytest.approx(1.0)
    assert by_name["multi-k-means distance computations"]["ratio"] == pytest.approx(1.0)
    assert 0.2 <= by_name["G-means distance computations"]["ratio"] <= 3.0
