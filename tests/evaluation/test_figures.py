"""ASCII figure rendering and fit helpers."""

import numpy as np
import pytest

from repro.evaluation.figures import (
    ascii_scatter,
    ascii_series,
    correlation,
    linear_fit,
)


def test_scatter_contains_markers_and_bounds():
    pts = np.array([[0.0, 0.0], [10.0, 10.0]])
    out = ascii_scatter([(pts, "*")], width=20, height=10, title="plot")
    assert out.startswith("plot")
    assert out.count("*") == 2
    assert "x: [0.0, 10.0]" in out


def test_scatter_layering_order():
    pts = np.array([[0.0, 0.0], [1.0, 1.0]])
    out = ascii_scatter([(pts, "."), (pts, "#")], width=10, height=5)
    assert "#" in out
    assert "." not in out.split("\n", 1)[1].replace("x: [0.0, 1.0]  y: [0.0, 1.0]", "")


def test_scatter_degenerate_single_point():
    out = ascii_scatter([(np.array([[5.0, 5.0]]), "o")], width=8, height=4)
    assert out.count("o") == 1


def test_series_renders_each_marker():
    out = ascii_series(
        [([1, 2, 3], [1.0, 2.0, 3.0], "G"), ([1, 2, 3], [3.0, 2.0, 1.0], "M")],
        title="fig",
    )
    assert "G" in out and "M" in out


def test_linear_fit_recovers_line():
    xs = [1.0, 2.0, 3.0, 4.0]
    ys = [64.0 * x - 42.67 for x in xs]
    slope, intercept = linear_fit(xs, ys)
    assert slope == pytest.approx(64.0)
    assert intercept == pytest.approx(-42.67)


def test_linear_fit_needs_two_points():
    with pytest.raises(ValueError):
        linear_fit([1.0], [2.0])


def test_correlation_perfect_and_none():
    assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
    assert correlation([1, 2, 3], [5, 5, 5]) == 0.0


def test_histogram_bimodal_shows_two_humps():
    from repro.evaluation.figures import ascii_histogram

    rng = np.random.default_rng(0)
    values = np.concatenate([rng.normal(-5, 0.5, 500), rng.normal(5, 0.5, 500)])
    out = ascii_histogram(values, bins=30, height=6, title="bimodal")
    # The lowest level (last bar row) shows two separated mark regions
    # with an empty valley between the modes.
    bottom_row = out.split("\n")[-3]
    interior = bottom_row.strip("|")
    segments = [s for s in interior.split(" ") if "#" in s]
    assert len(segments) >= 2


def test_histogram_empty_and_constant():
    from repro.evaluation.figures import ascii_histogram

    assert "(no data)" in ascii_histogram(np.array([]), title="t")
    out = ascii_histogram(np.full(10, 3.0), bins=5, height=3)
    assert "#" in out
