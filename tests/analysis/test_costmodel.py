"""Closed-form Section-4 cost model."""

import pytest

from repro.analysis.costmodel import (
    crossover_k,
    gmeans_cost,
    gmeans_iterations,
    multi_kmeans_cost,
    paper_gmeans_cost,
)
from repro.common.errors import ConfigurationError


def test_iterations_log2_plus_extra():
    assert gmeans_iterations(1) == 1 + 1
    assert gmeans_iterations(100) == 7 + 1  # ceil(log2 100) = 7
    assert gmeans_iterations(1024, extra_iterations=2) == 12
    assert gmeans_iterations(100, extra_iterations=0) == 7


def test_gmeans_linear_in_k():
    """Doubling k roughly doubles distance computations (linear), with
    only a log factor on reads."""
    a = gmeans_cost(10**6, 100)
    b = gmeans_cost(10**6, 200)
    assert 1.8 <= b.distance_computations / a.distance_computations <= 2.4
    assert b.dataset_reads - a.dataset_reads == 3  # one extra iteration


def test_gmeans_reads_per_iteration():
    cost = gmeans_cost(1000, 16, kmeans_iterations=2)
    assert cost.dataset_reads == 3 * cost.iterations
    cost4 = gmeans_cost(1000, 16, kmeans_iterations=3)
    assert cost4.dataset_reads == 4 * cost4.iterations


def test_gmeans_ad_tests_about_2k():
    cost = gmeans_cost(1000, 128)
    assert cost.ad_tests == 2 * 128


def test_paper_constants():
    """The paper's example: k=100 -> 7 iterations, 28 reads, O(800n)
    distances, O(200) AD tests."""
    cost = paper_gmeans_cost(10**6, 100)
    assert cost.iterations == 7
    assert cost.dataset_reads == 28
    assert cost.distance_computations == 8 * 10**6 * 100
    assert cost.ad_tests == 200


def test_multi_kmeans_quadratic_in_k():
    a = multi_kmeans_cost(10**6, 100, iterations=1)
    b = multi_kmeans_cost(10**6, 200, iterations=1)
    ratio = (
        b.distance_computations_per_iteration
        / a.distance_computations_per_iteration
    )
    assert 3.5 <= ratio <= 4.5  # sum(1..k) ~ k^2/2


def test_multi_kmeans_paper_example():
    """k=100: 'already requires O(10000n) distance computations at each
    iteration' — sum(1..100) = 5050 ~ k^2/2."""
    cost = multi_kmeans_cost(10**6, 100, iterations=1)
    assert cost.distance_computations_per_iteration == 10**6 * 5050


def test_multi_kmeans_reads_and_step():
    cost = multi_kmeans_cost(1000, 10, iterations=5, k_min=2, k_step=2)
    assert cost.dataset_reads == 6  # 5 iterations + scoring
    # candidates 2,4,6,8,10 -> sum 30
    assert cost.distance_computations_per_iteration == 1000 * 30


def test_crossover_in_papers_region():
    """G-means beats a full multi-k-means sweep somewhere below a few
    hundred clusters (the paper's Figure 3 crossing)."""
    k = crossover_k(10**6)
    assert 10 <= k <= 400


def test_validation():
    with pytest.raises(ConfigurationError):
        gmeans_cost(0, 10)
    with pytest.raises(ConfigurationError):
        gmeans_cost(10, 0)
    with pytest.raises(ConfigurationError):
        multi_kmeans_cost(10, 5, iterations=0)
    with pytest.raises(ConfigurationError):
        gmeans_iterations(0)
