"""Public-API surface guards: exports resolve and stay consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.stats",
    "repro.mapreduce",
    "repro.clustering",
    "repro.core",
    "repro.data",
    "repro.analysis",
    "repro.evaluation",
    "repro.observability",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_unique(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__))


@pytest.mark.parametrize("package", PACKAGES)
def test_public_items_are_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item) and not isinstance(item, type(None)):
            if getattr(item, "__doc__", None) in (None, ""):
                undocumented.append(name)
    assert not undocumented, f"{package}: missing docstrings on {undocumented}"


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_registry_covers_cli_surface():
    """Every registered experiment/ablation has a description and runs
    through a callable (not re-running them here — just the wiring)."""
    from repro.evaluation.registry import ABLATIONS, DESCRIPTIONS, EXPERIMENTS

    for name, runner in {**EXPERIMENTS, **ABLATIONS}.items():
        assert callable(runner)
        assert name in DESCRIPTIONS
        assert DESCRIPTIONS[name]


def test_cli_and_registry_agree():
    from repro import cli
    from repro.evaluation import registry

    assert cli.EXPERIMENTS is registry.EXPERIMENTS
    assert cli.ABLATIONS is registry.ABLATIONS
