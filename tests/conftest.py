"""Shared fixtures for the test suite.

Everything is seeded; any test that fails must fail deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import demo_r2_dataset, generate_gaussian_mixture
from repro.data.loader import write_points
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_mixture():
    """3 well-separated clusters in R^2, 600 points."""
    return generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=7, cluster_std=1.0
    )


@pytest.fixture
def demo_mixture():
    """The 10-cluster R^2 demo set at small scale."""
    return demo_r2_dataset(n_points=1500, rng=11)


@pytest.fixture
def dfs() -> InMemoryDFS:
    """A DFS with small splits so multi-split behaviour is exercised."""
    return InMemoryDFS(split_size_bytes=4096)


@pytest.fixture
def runtime(dfs) -> MapReduceRuntime:
    return MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=2, task_heap_mb=64), rng=99
    )


@pytest.fixture
def small_dataset(dfs, small_mixture):
    """The small mixture written to the DFS."""
    return write_points(dfs, "points", small_mixture.points)
