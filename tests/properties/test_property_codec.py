"""Property-based round-trip tests for the text codec and DFS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.data.textio import decode_point, decode_points, encode_point, encode_points
from repro.mapreduce.hdfs import InMemoryDFS

point_matrices = npst.arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(1, 8)),
    elements=st.floats(
        min_value=-1e15, max_value=1e15, allow_nan=False, allow_infinity=False
    ),
)


@given(point_matrices)
def test_codec_roundtrip_bit_exact(points):
    assert np.array_equal(decode_points(encode_points(points)), points)


@given(
    npst.arrays(
        np.float64,
        st.integers(1, 10),
        elements=st.floats(-1e308, 1e308, allow_nan=False, allow_infinity=False),
    )
)
def test_single_point_roundtrip_extreme_magnitudes(vec):
    assert np.array_equal(decode_point(encode_point(vec)), vec)


@given(point_matrices, st.integers(16, 4096))
@settings(max_examples=30, deadline=None)
def test_dfs_split_roundtrip(points, split_size):
    """Whatever the split size, concatenating splits restores the data."""
    dfs = InMemoryDFS(split_size_bytes=split_size)
    f = dfs.write("f", points, bytes_per_record=16 * points.shape[1])
    assert np.array_equal(f.all_records(), points)
    assert sum(s.num_records for s in f.splits) == points.shape[0]
    assert all(s.num_records > 0 for s in f.splits)
