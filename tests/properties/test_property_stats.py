"""Property-based tests for the statistics substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.stats.anderson import anderson_darling_statistic, critical_value
from repro.stats.descriptive import StreamingMoments
from repro.stats.normal import normal_cdf, normal_pdf, normal_quantile
from repro.stats.projection import normalize, project_onto

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.floats(min_value=-30, max_value=30))
def test_cdf_monotone_and_bounded(x):
    assert 0.0 <= normal_cdf(x) <= 1.0
    assert normal_cdf(x) <= normal_cdf(x + 0.5)


@given(st.floats(min_value=-8, max_value=8))
def test_cdf_complement_symmetry(x):
    assert normal_cdf(x) + normal_cdf(-x) == pytest.approx(1.0, abs=1e-12)


@given(st.floats(min_value=1e-12, max_value=1 - 1e-12))
def test_quantile_is_cdf_inverse(p):
    assert normal_cdf(normal_quantile(p)) == pytest.approx(p, rel=1e-8, abs=1e-12)


@given(st.floats(min_value=-10, max_value=10))
def test_pdf_positive(x):
    assert normal_pdf(x) > 0.0


@given(
    st.lists(finite_floats, min_size=1, max_size=200),
    st.lists(finite_floats, min_size=1, max_size=200),
)
def test_moments_merge_equals_concat(xs, ys):
    merged = StreamingMoments()
    merged.add_many(np.array(xs))
    other = StreamingMoments()
    other.add_many(np.array(ys))
    merged.merge(other)
    whole = StreamingMoments()
    whole.add_many(np.array(xs + ys))
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
    assert merged.m2 == pytest.approx(whole.m2, rel=1e-6, abs=1e-3)


@given(st.lists(finite_floats, min_size=2, max_size=300))
def test_normalize_idempotent_shape(values):
    arr = np.array(values)
    z = normalize(arr)
    assert z.shape == (len(values),)
    # Idempotence holds wherever the first normalisation wasn't working
    # at the edge of float precision (subnormal spreads lose digits).
    if arr.std() > 1e-100 and z.std() > 0:
        z2 = normalize(z)
        assert np.allclose(z, z2, atol=1e-9)


@given(
    npst.arrays(
        np.float64,
        st.tuples(st.integers(2, 60), st.integers(1, 6)),
        elements=st.floats(-1e3, 1e3),
    ),
)
def test_projection_linearity(points):
    """project(a x + b y) = a project(x) + b project(y) row-wise."""
    d = points.shape[1]
    v = np.arange(1.0, d + 1.0)
    proj = project_onto(points, v)
    doubled = project_onto(2.0 * points, v)
    assert np.allclose(doubled, 2.0 * proj, rtol=1e-9, atol=1e-9)


@settings(max_examples=30)
@given(
    st.integers(min_value=8, max_value=500),
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=0.01, max_value=100),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ad_statistic_affine_invariant(n, shift, scale, seed):
    x = np.random.default_rng(seed).normal(size=n)
    a = anderson_darling_statistic(x)
    b = anderson_darling_statistic(shift + scale * x)
    assert a == pytest.approx(b, rel=1e-6, abs=1e-9)


@given(
    st.floats(min_value=1e-6, max_value=0.4),
    st.floats(min_value=1e-6, max_value=0.4),
)
def test_critical_value_monotonicity(a1, a2):
    lo, hi = sorted((a1, a2))
    assert critical_value(lo) >= critical_value(hi)
