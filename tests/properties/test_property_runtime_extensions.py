"""Property-based tests for partitioners, faults, locality, tracing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.hdfs import Split
from repro.mapreduce.locality import (
    MapTaskSpec,
    replica_nodes,
    schedule_map_tasks,
)
from repro.mapreduce.partitioners import make_weight_balanced_partitioner
from repro.mapreduce.trace import build_schedule
from repro.mapreduce.costmodel import makespan

weights_strategy = st.dictionaries(
    st.integers(0, 50), st.integers(1, 1000), min_size=1, max_size=30
)


@given(weights_strategy, st.integers(1, 16))
def test_balanced_partitioner_total_and_range(weights, num_reducers):
    p = make_weight_balanced_partitioner(weights, num_reducers)
    for key in weights:
        assert 0 <= p(key, num_reducers) < num_reducers


@given(weights_strategy, st.integers(2, 8))
def test_balanced_partitioner_no_worse_than_one_key_per_slot(weights, num_reducers):
    """LPT guarantee: max load <= sum/slots + max single weight."""
    p = make_weight_balanced_partitioner(weights, num_reducers)
    loads = [0] * num_reducers
    for key, w in weights.items():
        loads[p(key, num_reducers)] += w
    bound = sum(weights.values()) / num_reducers + max(weights.values())
    assert max(loads) <= bound + 1e-9


@given(
    st.floats(0.0, 0.8),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50)
def test_fault_model_never_shortens_tasks(failure_p, straggler_p, seed):
    model = FaultModel(
        task_failure_probability=failure_p,
        straggler_probability=straggler_p,
        max_attempts=50,
    )
    rng = np.random.default_rng(seed)
    duration = model.apply(3.0, "t", rng, Counters())
    assert duration >= 3.0 - 1e-12


@given(st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=50)
def test_speculation_bounds_straggler_cost(straggler_p, seed):
    model = FaultModel(
        straggler_probability=straggler_p,
        straggler_slowdown=10.0,
        speculative_execution=True,
        speculative_overhead=1.5,
    )
    rng = np.random.default_rng(seed)
    duration = model.apply(2.0, "t", rng, Counters())
    assert duration <= 2.0 * 1.5 + 1e-12


@given(
    st.lists(
        st.tuples(st.floats(0.1, 10.0), st.floats(0.0, 5.0)),
        min_size=0,
        max_size=40,
    ),
    st.integers(1, 6),
    st.integers(1, 4),
)
@settings(max_examples=50)
def test_locality_schedule_bounds(task_params, nodes, slots_per_node):
    cluster = ClusterConfig(nodes=nodes, map_slots_per_node=slots_per_node)
    tasks = [
        MapTaskSpec(
            seconds=base,
            fetch_seconds=fetch,
            replicas=(i % nodes,),
        )
        for i, (base, fetch) in enumerate(task_params)
    ]
    schedule = schedule_map_tasks(tasks, cluster)
    assert schedule.data_local_tasks + schedule.remote_tasks == len(tasks)
    if tasks:
        # Never better than the perfectly parallel all-local bound,
        # never worse than running everything serially with fetches.
        lower = max(t.seconds for t in tasks)
        upper = sum(t.seconds + t.fetch_seconds for t in tasks)
        assert lower - 1e-9 <= schedule.makespan <= upper + 1e-9


@given(st.integers(1, 64), st.integers(1, 8), st.integers(1, 10))
def test_replica_nodes_valid(index, nodes, replication):
    split = Split("file", index, [0], 8)
    replicas = replica_nodes(split, nodes, replication)
    assert 1 <= len(replicas) <= min(replication, nodes)
    assert all(0 <= r < nodes for r in replicas)
    assert len(set(replicas)) == len(replicas)


@given(
    st.lists(st.floats(0.01, 100.0), min_size=0, max_size=60),
    st.integers(1, 16),
)
def test_trace_schedule_consistent_with_makespan(tasks, slots):
    schedule = build_schedule(tasks, slots)
    if tasks:
        assert max(t.end for t in schedule) == pytest.approx(
            makespan(tasks, slots)
        )
    durations = sorted(t.duration for t in schedule)
    assert durations == pytest.approx(sorted(tasks))
