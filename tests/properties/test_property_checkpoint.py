"""Property-based tests: checkpoint round-trips are lossless.

Resume correctness hinges on the codec being exact — a checkpoint that
drops a found flag, truncates a float or advances an RNG stream breaks
the byte-identical-resume contract. These properties drive randomly
shaped cluster trees and RNG states through the full encode → pickle →
decode path and require perfect reconstruction.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    decode_gmeans_payload,
    encode_gmeans_payload,
)
from repro.core.state import ClusterNode, GMeansState

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


def center_strategy(dimensions):
    return st.lists(
        finite_floats, min_size=dimensions, max_size=dimensions
    ).map(lambda row: np.asarray(row, dtype=np.float64))


def node_strategy(dimensions):
    return st.builds(
        ClusterNode,
        cluster_id=st.integers(0, 10_000),
        center=center_strategy(dimensions),
        found=st.booleans(),
        children=st.one_of(
            st.none(),
            st.tuples(
                center_strategy(dimensions), center_strategy(dimensions)
            ).map(np.vstack),
        ),
        size=st.integers(0, 10**9),
        child_sizes=st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)),
    )


@st.composite
def state_strategy(draw):
    dimensions = draw(st.integers(1, 4))
    clusters = draw(st.lists(node_strategy(dimensions), max_size=6))
    next_id = draw(st.integers(len(clusters), len(clusters) + 100))
    return GMeansState(clusters=clusters, _next_id=next_id)


def assert_nodes_equal(a: ClusterNode, b: ClusterNode) -> None:
    assert a.cluster_id == b.cluster_id
    assert a.found == b.found
    assert a.size == b.size
    assert a.child_sizes == b.child_sizes
    assert np.array_equal(a.center, b.center)
    if a.children is None:
        assert b.children is None
    else:
        assert np.array_equal(a.children, b.children)


@given(state_strategy())
@settings(max_examples=50)
def test_state_payload_roundtrip_is_lossless(state):
    clone = GMeansState.from_payload(
        pickle.loads(pickle.dumps(state.to_payload()))
    )
    assert clone.k == state.k
    assert clone._next_id == state._next_id
    for ours, theirs in zip(state.clusters, clone.clusters):
        assert_nodes_equal(ours, theirs)
    # The id allocator really continues where it left off.
    if state.clusters:
        dims = state.clusters[0].center.shape[0]
        a = state.new_cluster(np.zeros(dims), None)
        b = clone.new_cluster(np.zeros(dims), None)
        assert a.cluster_id == b.cluster_id


@given(state_strategy())
@settings(max_examples=50)
def test_payload_does_not_alias_live_arrays(state):
    payload = state.to_payload()
    for node in state.clusters:
        node.center += 1.0  # mutate live state after the snapshot
    clone = GMeansState.from_payload(payload)
    for ours, theirs in zip(state.clusters, clone.clusters):
        assert not np.array_equal(ours.center, theirs.center)


@given(state_strategy(), st.integers(0, 2**31 - 1), st.integers(0, 40))
@settings(max_examples=50)
def test_gmeans_payload_roundtrip_preserves_rng_stream(state, seed, draws):
    rng = np.random.default_rng(seed)
    rng.random(draws)  # mid-stream, like a checkpoint mid-run
    payload = pickle.loads(
        pickle.dumps(encode_gmeans_payload(state, history=[], rng=rng))
    )
    restored_state, history, rng_state = decode_gmeans_payload(payload)
    assert history == []
    assert restored_state._next_id == state._next_id
    for ours, theirs in zip(state.clusters, restored_state.clusters):
        assert_nodes_equal(ours, theirs)
    # A generator restored from the snapshot emits the exact same
    # continuation as the original.
    resumed = np.random.default_rng(0)
    resumed.bit_generator.state = rng_state
    assert resumed.random(16).tolist() == rng.random(16).tolist()
