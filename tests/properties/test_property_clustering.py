"""Property-based tests of clustering invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.clustering.lloyd import lloyd_step
from repro.clustering.merge import merge_centers
from repro.clustering.metrics import assign_nearest, pairwise_sq_distances, wcss

points_arrays = npst.arrays(
    np.float64,
    st.tuples(st.integers(3, 80), st.integers(1, 5)),
    elements=st.floats(-1e4, 1e4),
)


@given(points_arrays, st.integers(1, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=60)
def test_lloyd_step_never_increases_wcss(points, k, seed):
    k = min(k, points.shape[0])
    rng = np.random.default_rng(seed)
    centers = points[rng.choice(points.shape[0], size=k, replace=False)]
    before = wcss(points, centers)
    new_centers, _, _ = lloyd_step(points, centers)
    after = wcss(points, new_centers)
    # Exact-arithmetic invariant; allow rounding noise scaled to the
    # data's magnitude (mean computation can shift coords by ~1 ulp).
    noise = 1e-12 * (1.0 + float(np.abs(points).max()) ** 2 * points.shape[0])
    assert after <= before + 1e-6 * max(1.0, before) + noise


@given(points_arrays)
def test_assignment_is_argmin(points):
    centers = points[: min(4, points.shape[0])]
    labels, sq = assign_nearest(points, centers)
    full = pairwise_sq_distances(points, centers)
    assert np.allclose(sq, full.min(axis=1))
    # Chosen distance equals the distance to the chosen center.
    chosen = full[np.arange(points.shape[0]), labels]
    assert np.allclose(chosen, sq)


@given(points_arrays)
def test_pairwise_distances_nonnegative_and_self_zero(points):
    d = pairwise_sq_distances(points, points)
    assert np.all(d >= 0)
    assert np.allclose(np.diag(d), 0.0, atol=1e-6)


@given(
    npst.arrays(
        np.float64,
        st.tuples(st.integers(1, 20), st.integers(1, 4)),
        elements=st.floats(-1e3, 1e3),
    ),
    st.floats(min_value=0.0, max_value=1e4),
)
def test_merge_centers_never_grows(centers, threshold):
    merged = merge_centers(centers, threshold)
    assert 1 <= merged.shape[0] <= centers.shape[0]
    assert merged.shape[1] == centers.shape[1]


@given(
    npst.arrays(
        np.float64,
        st.tuples(st.integers(2, 20), st.integers(1, 4)),
        elements=st.floats(-1e3, 1e3),
    ),
)
def test_merge_with_huge_threshold_collapses_to_one(centers):
    merged = merge_centers(centers, threshold=1e9)
    assert merged.shape[0] == 1
    assert np.allclose(merged[0], centers.mean(axis=0), rtol=1e-6, atol=1e-6)


@given(
    npst.arrays(
        np.float64,
        st.tuples(st.integers(1, 20), st.integers(1, 4)),
        elements=st.floats(-100, 100),
    ),
)
def test_merge_threshold_zero_is_identity_up_to_order(centers):
    merged = merge_centers(centers, threshold=0.0)
    assert merged.shape[0] == centers.shape[0]
