"""Property: node-fault schedules never break the determinism contract.

Whatever the (failure, recovery, seed) schedule does to the cluster,
the job's *results* stay byte-identical and its canonical journal stays
record-identical across every executor backend and both data planes —
node loss perturbs capacity and time, never output.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.nodes import NodeFaultModel
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import (
    InMemoryJournalSink,
    Journal,
    canonical_records,
)

BACKENDS = ("serial", "threads", "processes")
PLANES = ("pickled", "shared")


class ModMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 7, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def run_with_node_faults(backend, plane, model):
    from repro.mapreduce import dataplane

    dfs = InMemoryDFS(split_size_bytes=128, data_plane=plane)
    f = dfs.write("data", list(range(200)), bytes_per_record=8, replication=2)
    sink = InMemoryJournalSink()
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=3, reduce_slots_per_node=2),
        rng=11,
        node_faults=model,
        config=RuntimeConfig(executor=backend, num_workers=3),
        journal=Journal(sink),
    )
    job = Job(
        name="j", mapper=ModMapper, reducer=SumReducer, num_reduce_tasks=4
    )
    # Two runs over the same runtime so node deaths from the first job
    # reshape the capacity the second is scheduled on.
    first = runtime.run(job, f)
    second = runtime.run(job, f, cached=True)
    dfs.release()
    assert dataplane.orphaned_system_segments() == []
    return (
        sorted(first.output),
        sorted(second.output),
        first.counters.as_dict(),
        first.simulated_seconds + second.simulated_seconds,
        canonical_records(sink.records),
    )


@given(
    st.floats(0.0, 0.3),
    st.floats(0.0, 0.5),
    st.integers(0, 2**31 - 1),
)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_node_fault_schedules_byte_identical_across_backends_and_planes(
    failure_p, recovery_p, seed
):
    model = NodeFaultModel(
        node_failure_probability=failure_p,
        node_recovery_probability=recovery_p,
        seed=seed,
    )
    reference = None
    for backend in BACKENDS:
        for plane in PLANES:
            outcome = run_with_node_faults(backend, plane, model)
            if reference is None:
                reference = outcome
                continue
            assert outcome[0] == reference[0]
            assert outcome[1] == reference[1]
            assert outcome[2] == reference[2]
            assert outcome[3] == reference[3]
            assert outcome[4] == reference[4]
