"""Property-based tests of MapReduce runtime invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.costmodel import makespan
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import sizeof_value, stable_hash


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for token in value:
            ctx.emit(token, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@given(
    st.lists(
        st.lists(st.integers(0, 20), min_size=0, max_size=8),
        min_size=1,
        max_size=40,
    ),
    st.integers(1, 8),
    st.integers(1, 64),
)
@settings(max_examples=40, deadline=None)
def test_wordcount_invariant_under_splits_and_reducers(
    records, num_reducers, split_size
):
    """Token counts are independent of split layout and reducer count
    (the combiner is associative and partitioning is total)."""
    expected: dict[int, int] = {}
    for record in records:
        for token in record:
            expected[token] = expected.get(token, 0) + 1

    dfs = InMemoryDFS(split_size_bytes=split_size)
    f = dfs.write("data", records, bytes_per_record=8)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=0)
    job = Job(
        name="wc",
        mapper=TokenMapper,
        reducer=SumReducer,
        combiner=SumReducer,
        num_reduce_tasks=num_reducers,
    )
    result = runtime.run(job, f)
    assert dict(result.output) == expected


@given(
    st.lists(
        st.lists(st.integers(0, 20), min_size=0, max_size=8),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=25, deadline=None)
def test_combiner_does_not_change_output(records):
    outputs = []
    for combiner in (SumReducer, None):
        dfs = InMemoryDFS(split_size_bytes=16)
        f = dfs.write("data", records, bytes_per_record=8)
        runtime = MapReduceRuntime(dfs, rng=0)
        job = Job(
            name="wc",
            mapper=TokenMapper,
            reducer=SumReducer,
            combiner=combiner,
            num_reduce_tasks=3,
        )
        outputs.append(dict(runtime.run(job, f).output))
    assert outputs[0] == outputs[1]


class SeedUsingMapper(Mapper):
    """Mixes the per-task RNG into the output: catches any scheduling
    leak (seed assignment, merge order) a pure mapper would hide."""

    def map(self, key, value, ctx):
        for token in value:
            ctx.emit((token + int(ctx.rng.integers(3))) % 23, 1)


@given(
    st.lists(
        st.lists(st.integers(0, 20), min_size=0, max_size=6),
        min_size=1,
        max_size=25,
    ),
    st.integers(1, 6),
    st.sampled_from(["threads", "processes"]),
    st.integers(1, 4),
)
@settings(max_examples=20, deadline=None)
def test_results_invariant_to_backend_and_num_workers(
    records, num_reducers, backend, num_workers
):
    """Partitioning, shuffle and per-task RNG draws are a function of
    the data and the seed alone — never of the executor backend or its
    worker count."""

    def run(config: RuntimeConfig):
        dfs = InMemoryDFS(split_size_bytes=16)
        f = dfs.write("data", records, bytes_per_record=8)
        runtime = MapReduceRuntime(
            dfs, cluster=ClusterConfig(nodes=2), rng=5, config=config
        )
        job = Job(
            name="inv",
            mapper=SeedUsingMapper,
            reducer=SumReducer,
            combiner=SumReducer,
            num_reduce_tasks=num_reducers,
        )
        result = runtime.run(job, f)
        return (
            sorted(result.output),
            result.counters.snapshot(),
            result.map_task_seconds,
            result.reduce_task_seconds,
        )

    reference = run(RuntimeConfig())
    assert run(RuntimeConfig(executor=backend, num_workers=num_workers)) == reference


@given(st.lists(st.floats(0.0, 1e3), min_size=0, max_size=60), st.integers(1, 16))
def test_makespan_bounds(tasks, slots):
    """max(task) <= makespan <= sum(tasks); and more slots never hurt."""
    total = sum(tasks)
    span = makespan(tasks, slots)
    if tasks:
        assert max(tasks) - 1e-9 <= span <= total + 1e-9
    assert makespan(tasks, slots + 1) <= span + 1e-9


@given(
    st.one_of(
        st.integers(-(2**62), 2**62),
        st.text(max_size=20),
        st.tuples(st.integers(0, 100), st.integers(0, 100)),
    ),
    st.integers(1, 32),
)
def test_stable_hash_partitions_in_range(key, n):
    p = stable_hash(key) % n
    assert 0 <= p < n


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.integers(-1000, 1000),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=10),
        ),
        lambda children: st.lists(children, max_size=4).map(tuple),
        max_leaves=10,
    )
)
def test_sizeof_value_nonnegative(value):
    assert sizeof_value(value) >= 0
