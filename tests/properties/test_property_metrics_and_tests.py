"""Property-based tests: external metrics and normality tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.external import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
)
from repro.stats.normality import NORMALITY_TESTS, normality_test

labelings = st.lists(st.integers(0, 6), min_size=2, max_size=120)


@given(labelings)
def test_metrics_perfect_on_self(labels):
    a = np.array(labels)
    assert adjusted_rand_index(a, a) == pytest.approx(1.0)
    assert normalized_mutual_information(a, a) == pytest.approx(1.0)
    assert purity(a, a) == pytest.approx(1.0)


@given(labelings, st.integers(0, 5040 - 1))
def test_metrics_invariant_under_label_permutation(labels, perm_index):
    """Relabeling cluster ids never changes any score."""
    import itertools

    a = np.array(labels)
    ids = list(range(7))
    perm = list(itertools.permutations(ids))[perm_index % 5040]
    mapping = np.array(perm)
    b = mapping[a]
    assert adjusted_rand_index(a, b) == pytest.approx(1.0)
    assert normalized_mutual_information(a, b) == pytest.approx(1.0)


@given(labelings, labelings)
@settings(max_examples=60)
def test_metrics_symmetric_and_bounded(labels_a, labels_b):
    n = min(len(labels_a), len(labels_b))
    a = np.array(labels_a[:n])
    b = np.array(labels_b[:n])
    ari_ab = adjusted_rand_index(a, b)
    ari_ba = adjusted_rand_index(b, a)
    assert ari_ab == pytest.approx(ari_ba)
    assert -1.0 <= ari_ab <= 1.0
    nmi_ab = normalized_mutual_information(a, b)
    assert nmi_ab == pytest.approx(normalized_mutual_information(b, a))
    assert 0.0 <= nmi_ab <= 1.0
    assert 0.0 < purity(a, b) <= 1.0


@given(
    st.sampled_from(sorted(NORMALITY_TESTS)),
    st.integers(10, 400),
    st.floats(-50, 50),
    st.floats(0.1, 20.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60)
def test_normality_tests_affine_invariant(method, n, shift, scale, seed):
    """All tests decide on z-scores: location/scale cannot matter."""
    x = np.random.default_rng(seed).normal(size=n)
    base = normality_test(x, 0.05, method)
    moved = normality_test(shift + scale * x, 0.05, method)
    assert base.is_normal == moved.is_normal
    assert base.statistic == pytest.approx(moved.statistic, rel=1e-6, abs=1e-9)


@given(
    st.sampled_from(sorted(NORMALITY_TESTS)),
    st.integers(20, 300),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40)
def test_normality_verdict_well_formed(method, n, seed):
    x = np.random.default_rng(seed).uniform(size=n)
    verdict = normality_test(x, 0.01, method)
    assert verdict.n == n
    assert verdict.statistic >= 0.0 or method == "jarque_bera"
    assert verdict.critical > 0.0
    assert verdict.method == method
