"""Property tests: vectorized kernels == scalar reference paths, bitwise.

Floating-point addition is not associative, so "vectorized equals
scalar" is only provable in general when no operation rounds. Two
complementary regimes are exercised:

* **Any-floats properties** — kernel rewrites that preserve the exact
  sequence of float operations (``label_sums``'s bincount vs the
  scatter-add vs a per-record Python loop) must be bitwise identical on
  arbitrary doubles.
* **Grid-exact properties** — whole pipelines (assignment, partial
  sums, projections, AD statistics, counters). Points live on a dyadic
  grid (eighths), candidate-children pairs differ by ±2^t in 1, 2 or 4
  coordinates so ``||v||^2`` is a power of two and ``v/||v||^2`` is
  exactly representable. Every product and partial sum is then a
  dyadic rational well inside the 53-bit significand: no path rounds,
  so the vectorized BLAS kernels and the textbook per-record loops
  must produce byte-identical output however they order the work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.metrics import label_sums
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.core.test_clusters import (
    TestClustersMapper,
    decode_test_output,
    make_test_clusters_job,
)
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import (
    Counters,
    FRAMEWORK_GROUP,
    MRCounter,
    USER_GROUP,
    UserCounter,
)
from repro.mapreduce.hdfs import InMemoryDFS, Split
from repro.mapreduce.job import MapContext
from repro.mapreduce.runtime import MapReduceRuntime

# -- strategies ----------------------------------------------------------

#: Dyadic grid coordinate: an eighth in [-8, 8].
grid_coord = st.integers(-64, 64).map(lambda i: i / 8.0)


@st.composite
def grid_points(draw, min_rows=4, max_rows=40, min_d=1, max_d=3):
    """An ``(n, d)`` float64 matrix of grid-exact coordinates."""
    d = draw(st.integers(min_d, max_d))
    n = draw(st.integers(min_rows, max_rows))
    rows = draw(
        st.lists(
            st.lists(grid_coord, min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(rows, dtype=np.float64)


@st.composite
def grid_centers(draw, d, k_max=4):
    """``(k, d)`` distinct grid-exact centers."""
    k = draw(st.integers(1, k_max))
    seen: set = set()
    centers = []
    while len(centers) < k:
        row = tuple(draw(st.lists(grid_coord, min_size=d, max_size=d)))
        if row in seen:
            continue
        seen.add(row)
        centers.append(row)
    return np.asarray(centers, dtype=np.float64)


@st.composite
def exact_pairs(draw, centers):
    """Candidate-children pairs whose direction maths is exact.

    ``c1 - c2`` has ``m`` nonzero components, each ``±2^t`` with one
    shared ``t``, and ``m ∈ {1, 2, 4}`` — so ``||v||^2 = m * 4^t`` is a
    power of two and ``v / ||v||^2`` has exactly representable entries.
    """
    k, d = centers.shape
    pairs = {}
    for pid in range(k):
        if not draw(st.booleans()):
            continue
        t = draw(st.integers(-2, 2))
        m = draw(st.sampled_from([m for m in (1, 2, 4) if m <= d]))
        positions = draw(
            st.lists(
                st.integers(0, d - 1), min_size=m, max_size=m, unique=True
            )
        )
        v = np.zeros(d)
        for pos in positions:
            v[pos] = (1.0 if draw(st.booleans()) else -1.0) * 2.0**t
        c2 = np.asarray(
            draw(st.lists(grid_coord, min_size=d, max_size=d))
        )
        pairs[pid] = np.stack([c2 + v, c2])
    return pairs


# -- any-floats: order-preserving rewrites --------------------------------


@given(
    st.integers(0, 2**32 - 1),
    st.integers(1, 400),
    st.integers(1, 8),
    st.integers(1, 12),
)
@settings(max_examples=40, deadline=None)
def test_label_sums_bitwise_equals_scatter_add_and_loop(seed, n, d, k):
    """On *arbitrary* doubles: bincount == np.add.at == Python loop.

    All three accumulate per label in input order, so the identity
    holds with no grid assumption — this is what licenses using
    ``label_sums`` in every partial-sum kernel without perturbing the
    committed baseline journals.
    """
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((n, d))
    labels = rng.integers(0, k, n)

    scatter = np.zeros((k, d))
    np.add.at(scatter, labels, points)

    loop = np.zeros((k, d))
    for label, point in zip(labels, points):
        loop[label] += point

    fast = label_sums(points, labels, k)
    assert fast.tobytes() == scatter.tobytes()
    assert fast.tobytes() == loop.tobytes()


# -- grid-exact: whole kernels and jobs -----------------------------------


def _map_ctx(config: dict) -> MapContext:
    return MapContext(config, Counters(), np.random.default_rng(0), 1 << 30, "t")


def _make_split(points: np.ndarray) -> Split:
    return Split(
        file_name="data", index=0, records=points, size_bytes=points.nbytes
    )


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_projection_mapper_paths_bitwise_identical(data):
    """Vectorized split projection == per-record loop: same clusters,
    same projection bytes, same algorithmic counters."""
    points = data.draw(grid_points())
    centers = data.draw(grid_centers(points.shape[1]))
    pairs = data.draw(exact_pairs(centers))

    outputs = {}
    counters = {}
    for vectorized in (True, False):
        config = {
            "prev_centers": centers,
            "pairs": pairs,
            "alpha": 0.01,
            "vectorized": vectorized,
        }
        ctx = _map_ctx(config)
        mapper = TestClustersMapper()
        mapper.setup(ctx)
        outputs[vectorized] = {
            pid: proj.tobytes()
            for pid, proj in mapper.project_split(
                _make_split(points), ctx
            ).items()
        }
        counters[vectorized] = ctx.counters.as_dict().get(USER_GROUP, {})
    assert outputs[True] == outputs[False]
    assert counters[True] == counters[False]


def _run_kmeans_once(points, centers, vectorized):
    dfs = InMemoryDFS(split_size_bytes=max(64, points.nbytes // 3))
    f = dfs.write("data", points, bytes_per_record=points.shape[1] * 8)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=0)
    job = make_kmeans_job(centers, 4, vectorized=vectorized)
    result = runtime.run(job, f)
    new_centers, sizes = decode_kmeans_output(result.output, centers)
    return new_centers, sizes, result.counters


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_kmeans_job_paths_bitwise_identical(data):
    """One full k-means iteration: vectorized and per-record mappers
    produce byte-identical centroids, identical sizes, and identical
    algorithmic counters (combiner-visible record counts differ by
    design — pre-summed partials vs one record per point — so only the
    algorithm-level counters are compared)."""
    points = data.draw(grid_points())
    centers = data.draw(grid_centers(points.shape[1]))

    fast, fast_sizes, fast_counters = _run_kmeans_once(points, centers, True)
    slow, slow_sizes, slow_counters = _run_kmeans_once(points, centers, False)

    assert fast.tobytes() == slow.tobytes()
    assert np.array_equal(fast_sizes, slow_sizes)
    for name in (
        UserCounter.DISTANCE_COMPUTATIONS,
        UserCounter.COORDINATE_OPS,
    ):
        assert fast_counters.get(USER_GROUP, name) == slow_counters.get(
            USER_GROUP, name
        ), name
    assert fast_counters.get(
        FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS
    ) == slow_counters.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_test_clusters_job_paths_bitwise_identical(data):
    """The full reducer-side test job: byte-identical AD statistics and
    verdicts, identical counters (the test jobs emit identical shuffle
    records on both paths, so *every* counter must match)."""
    points = data.draw(grid_points(min_rows=8))
    centers = data.draw(grid_centers(points.shape[1]))
    pairs = data.draw(exact_pairs(centers))

    results = {}
    all_counters = {}
    for vectorized in (True, False):
        dfs = InMemoryDFS(split_size_bytes=max(64, points.nbytes // 3))
        f = dfs.write("data", points, bytes_per_record=points.shape[1] * 8)
        runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=2), rng=0)
        job = make_test_clusters_job(
            centers, pairs, 0.01, 4, vectorized=vectorized
        )
        result = runtime.run(job, f)
        results[vectorized] = {
            pid: tuple(verdict)
            for pid, verdict in decode_test_output(result.output).items()
        }
        all_counters[vectorized] = result.counters.as_dict()
    assert results[True] == results[False]
    assert all_counters[True] == all_counters[False]
