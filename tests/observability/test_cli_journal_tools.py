"""The journal-facing CLI: ``repro trace / analyze / diff``."""

import json

import pytest

from repro.cli import main
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import build_world
from repro.observability.journal import FileJournalSink, Journal


def record_journal(path, seed=7) -> str:
    journal = Journal(FileJournalSink(str(path)))
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=seed
    )
    world = build_world(
        mixture, nodes=2, target_splits=6, seed=seed, journal=journal
    )
    MRGMeans(world.runtime, MRGMeansConfig(seed=seed)).fit(world.dataset)
    journal.close()
    return str(path)


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    return record_journal(tmp_path_factory.mktemp("journals") / "run.jsonl")


def record_anomaly_journal(path, seed=7) -> str:
    """A run recorded with the in-flight detectors armed.

    The small fixture workload is perfectly even (every task in a phase
    simulates the same duration), so the statistical detectors cannot
    trip no matter how tight the thresholds.  Instead we force the
    reducer-side TestClusters strategy and drop ``heap_fraction`` to a
    sliver so the Figure-2 heap-breach predictor deterministically fires
    mid-run.
    """
    from repro.observability.anomaly import AnomalyWatchdog, parse_anomaly_spec
    from repro.observability.live import LiveRunState, TelemetrySink

    inner = FileJournalSink(str(path))
    sink = TelemetrySink(inner, LiveRunState())
    journal = Journal(sink)
    sink.anomaly = AnomalyWatchdog(
        journal,
        parse_anomaly_spec(
            "heap_fraction=0.0001,straggler_ratio=1.05,straggler_min_tasks=2"
        ),
    )
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=seed
    )
    world = build_world(
        mixture, nodes=2, target_splits=6, seed=seed, journal=journal
    )
    MRGMeans(
        world.runtime, MRGMeansConfig(seed=seed, strategy="reducer")
    ).fit(world.dataset)
    journal.close()
    assert sink.anomaly.fired, "fixture must record at least one firing"
    return str(path)


@pytest.fixture(scope="module")
def anomaly_journal_path(tmp_path_factory):
    return record_anomaly_journal(
        tmp_path_factory.mktemp("journals") / "anomalies.jsonl"
    )


def test_trace_renders_recorded_run(journal_path, capsys):
    assert main(["trace", journal_path]) == 0
    out = capsys.readouterr().out
    assert "== run timeline" in out


def test_trace_follow_tails_until_run_completes(journal_path, capsys):
    # The recorded run is already complete, so the first poll renders it
    # and returns without waiting.
    assert main(["trace", journal_path, "--follow", "--interval", "0.01"]) == 0
    captured = capsys.readouterr()
    assert "[follow]" in captured.err
    assert "complete" in captured.err
    assert "== run timeline" in captured.out


def test_trace_missing_file_exits_one(capsys):
    assert main(["trace", "does/not/exist.jsonl"]) == 1
    assert "cannot read journal" in capsys.readouterr().err


def test_trace_tolerates_truncated_journal(journal_path, tmp_path, capsys):
    text = open(journal_path, encoding="utf-8").read()
    lines = text.splitlines()
    clipped = tmp_path / "clipped.jsonl"
    clipped.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:20])
    assert main(["trace", str(clipped)]) == 0
    assert "[interrupted]" in capsys.readouterr().out


def test_trace_corrupt_journal_exits_one_with_message(
    journal_path, tmp_path, capsys
):
    lines = open(journal_path, encoding="utf-8").read().splitlines()
    lines[3] = lines[3][:10]  # mangle a record mid-stream
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text("\n".join(lines) + "\n")
    assert main(["trace", str(corrupt)]) == 1
    err = capsys.readouterr().err
    assert "cannot read journal" in err
    assert "corrupt journal record" in err


def test_analyze_reports_all_sections(journal_path, tmp_path, capsys):
    out_file = tmp_path / "analysis.txt"
    assert main(["analyze", journal_path, "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "== task skew / stragglers" in out
    assert "== heap-model audit (Figure 2)" in out
    assert "== cost-model residuals" in out
    assert "all consistent" in out
    assert out_file.read_text().strip() in out


def test_analyze_json_output(journal_path, capsys):
    assert main(["analyze", journal_path, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["heap_audit_consistent"] is True
    assert data["heap_audit"]
    assert data["max_abs_relative_residual"] < 1e-9


def test_analyze_unreadable_journal_exits_one(capsys):
    assert main(["analyze", "nope.jsonl"]) == 1
    assert "cannot read journal" in capsys.readouterr().err


def test_analyze_json_schema_is_versioned(journal_path, capsys):
    from repro.observability import ANALYZE_SCHEMA_VERSION

    assert main(["analyze", journal_path, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["schema_version"] == ANALYZE_SCHEMA_VERSION
    assert data["anomalies"] == []  # recorded without --anomaly


def test_analyze_surfaces_recorded_anomalies(anomaly_journal_path, capsys):
    assert main(["analyze", anomaly_journal_path, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["anomalies"]
    assert all("anomaly" in attrs for attrs in data["anomalies"])
    assert main(["analyze", anomaly_journal_path]) == 0
    assert "== in-flight anomalies" in capsys.readouterr().out


def test_anomalies_lists_recorded_firings(anomaly_journal_path, capsys):
    assert main(["anomalies", anomaly_journal_path]) == 0
    out = capsys.readouterr().out
    assert "firing(s)" in out
    assert "thresholds:" in out


def test_anomalies_json_reports_config_and_firings(anomaly_journal_path, capsys):
    assert main(["anomalies", anomaly_journal_path, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["config"]["straggler_ratio"] == 1.05
    assert data["anomalies"]


def test_anomalies_check_reconciles_live_run(anomaly_journal_path, capsys):
    assert main(["anomalies", anomaly_journal_path, "--check"]) == 0
    assert "reconciliation: OK" in capsys.readouterr().out
    assert main(["anomalies", anomaly_journal_path, "--check", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["expected_events"] == data["recorded_events"] > 0


def test_anomalies_check_fails_on_tampered_journal(
    anomaly_journal_path, tmp_path, capsys
):
    lines = open(anomaly_journal_path, encoding="utf-8").read().splitlines()
    kept, dropped = [], False
    for line in lines:
        if not dropped and '"name":"anomaly"' in line:
            dropped = True
            continue
        kept.append(line)
    assert dropped
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text("\n".join(kept) + "\n")
    assert main(["anomalies", str(tampered), "--check"]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_anomalies_check_requires_armed_run(journal_path, capsys):
    assert main(["anomalies", journal_path, "--check"]) == 1
    assert "no anomaly_config" in capsys.readouterr().err


def test_anomalies_post_hoc_detection_on_unarmed_journal(journal_path, capsys):
    # Without --check the detectors run post-hoc with defaults, so any
    # journal can be screened after the fact.
    assert main(["anomalies", journal_path]) == 0
    assert "firing(s)" in capsys.readouterr().out


def test_anomalies_missing_journal_exits_one(capsys):
    assert main(["anomalies", "nope.jsonl"]) == 1
    assert "cannot read journal" in capsys.readouterr().err


def test_diff_identical_runs_exits_zero(journal_path, tmp_path, capsys):
    candidate = record_journal(tmp_path / "again.jsonl")
    assert main(["diff", journal_path, candidate]) == 0
    assert "no regressions beyond thresholds" in capsys.readouterr().out


def diverged_copy(journal_path, target) -> str:
    """Copy of the journal whose run found a different k."""
    lines = []
    for line in open(journal_path, encoding="utf-8"):
        record = json.loads(line)
        if record["type"] == "span_end" and "k_found" in record.get(
            "attrs", {}
        ):
            record["attrs"]["k_found"] += 1
        lines.append(json.dumps(record))
    target.write_text("\n".join(lines) + "\n")
    return str(target)


def test_diff_detects_diverged_run_exits_one(journal_path, tmp_path, capsys):
    candidate = diverged_copy(journal_path, tmp_path / "other.jsonl")
    assert main(["diff", journal_path, candidate]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "results diverged" in out


def test_diff_allow_k_drift_waives_the_gate(journal_path, tmp_path):
    candidate = diverged_copy(journal_path, tmp_path / "other.jsonl")
    assert main(["diff", journal_path, candidate, "--allow-k-drift"]) == 0


def test_diff_json_output(journal_path, tmp_path, capsys):
    candidate = record_journal(tmp_path / "again.jsonl")
    assert main(["diff", journal_path, candidate, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["entries"]


def test_diff_unreadable_journal_exits_two(journal_path, capsys):
    assert main(["diff", "nope.jsonl", journal_path]) == 2
    assert main(["diff", journal_path, "nope.jsonl"]) == 2


# -- repro ablate / repro tune -------------------------------------------


def test_ablate_cli_list_components(capsys):
    assert main(["ablate", "--list-components"]) == 0
    out = capsys.readouterr().out
    assert "combiner" in out and "evaluation-only" in out


def test_ablate_cli_writes_report_and_check_verifies(tmp_path, capsys):
    out_dir = str(tmp_path / "reports")
    assert (
        main(
            [
                "ablate",
                "--points", "500",
                "--components", "combiner",
                "--out-dir", out_dir,
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "# Ablation importance report" in captured.out
    report_path = f"{out_dir}/ablation.json"
    report = json.load(open(report_path, encoding="utf-8"))
    assert [v["component"] for v in report["variants"]] == ["combiner"]
    # Journals landed under <out-dir>/ablate by default.
    assert report["baseline"]["journal"].startswith(out_dir)

    assert main(["ablate", "--check", "--out-dir", out_dir]) == 0
    assert "reconciles exactly" in capsys.readouterr().out

    report["variants"][0]["delta_makespan"] += 1.0
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle)
    assert main(["ablate", "--check", "--out-dir", out_dir]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_ablate_cli_unknown_component_exits_two(tmp_path, capsys):
    assert (
        main(
            [
                "ablate",
                "--components", "warp",
                "--out-dir", str(tmp_path),
            ]
        )
        == 2
    )
    assert "bad --components" in capsys.readouterr().err


def test_ablate_cli_check_without_report_exits_two(tmp_path, capsys):
    assert main(["ablate", "--check", "--out-dir", str(tmp_path)]) == 2
    assert "cannot load importance report" in capsys.readouterr().err


def test_tune_cli_writes_config_and_check_verifies(tmp_path, capsys):
    out_dir = str(tmp_path / "reports")
    assert (
        main(
            [
                "tune",
                "--points", "1200",
                "--top", "2",
                "--out-dir", out_dir,
                "--bench-json", f"{out_dir}/BENCH_cli.json",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "# Autotune report" in captured.out
    best = json.load(open(f"{out_dir}/best-config.json", encoding="utf-8"))
    assert best["within_budget"] is True
    bench = json.load(open(f"{out_dir}/BENCH_cli.json", encoding="utf-8"))
    assert bench["benchmark"] == "autotune"
    assert bench["metrics"]["within_budget"] is True

    assert main(["tune", "--check", "--out-dir", out_dir]) == 0
    assert "reconcile exactly" in capsys.readouterr().out


def test_tune_cli_check_without_report_exits_two(tmp_path, capsys):
    assert main(["tune", "--check", "--out-dir", str(tmp_path)]) == 2
    assert "cannot load tune report" in capsys.readouterr().err
