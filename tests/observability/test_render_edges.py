"""Renderer edge cases: near-empty journals, degraded/skipped rounds.

The happy path is exercised in ``test_replay.py`` over a full
hand-driven run; these journals are the awkward ones — a resume that
restored everything and ran nothing, runs that degraded or skipped
iterations — which the renderers must survive without special-casing
by the caller.
"""

from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.render import (
    render_iteration_table,
    render_job_gantts,
    render_metrics,
    render_timeline,
    render_trace,
)
from repro.observability.replay import replay_records


def test_empty_journal_every_view():
    replay = replay_records([])
    assert render_timeline(replay) == "(empty journal)"
    assert render_iteration_table(replay) == "(no iterations recorded)"
    assert render_job_gantts(replay) == "(no jobs recorded)"
    text = render_trace(replay, gantt=True, metrics=True)
    assert "(empty journal)" in text
    assert "(no jobs recorded)" in text


def restore_only_records():
    """A resumed run that found everything done: baseline, no jobs."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    journal.event(
        "checkpoint_restore",
        name="ck/iter-00003",
        iteration=3,
        jobs=9,
        simulated_seconds=42.0,
        counters={"framework": {"MAP_TASKS": 18}},
    )
    return sink.records


def test_restore_only_journal_renders_and_accounts():
    replay = replay_records(restore_only_records())
    timeline = render_timeline(replay)
    assert "! checkpoint_restore" in timeline
    assert "(empty journal)" not in timeline
    assert render_iteration_table(replay) == "(no iterations recorded)"
    assert render_job_gantts(replay) == "(no jobs recorded)"
    # The restored baseline still flows into the metrics totals.
    metrics = render_metrics(replay)
    assert "repro_framework_map_tasks 18" in metrics
    assert replay.total_simulated_seconds() == 42.0


def degraded_run_records():
    """Two iterations: one degraded, one skipped by resume."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        with journal.span(
            "iteration", "iteration-1", iteration=1, k_before=2
        ) as it:
            with journal.span("job", "TestClusters-i1", attempt=1) as job:
                job.set(status="failed", error="TaskPermanentlyFailedError")
            journal.event(
                "degraded_iteration",
                iteration=1,
                job="TestClusters-i1",
                clusters_kept=2,
            )
            it.set(k_after=2, degraded=True, simulated_seconds=1.5,
                   counters={"framework": {"MAP_TASKS": 2}})
        with journal.span(
            "iteration", "iteration-2", iteration=2, k_before=2
        ) as it:
            journal.event("iteration_skipped", iteration=2, reason="resume")
            it.set(k_after=2, simulated_seconds=0.0)
        run.set(status="ok", k_found=2, simulated_seconds=1.5)
    return sink.records


def test_degraded_iteration_is_visible_everywhere():
    replay = replay_records(degraded_run_records())
    timeline = render_timeline(replay)
    assert "[degraded]" in timeline
    assert "! degraded_iteration" in timeline
    table = render_iteration_table(replay)
    lines = table.splitlines()
    assert lines[0].rstrip().endswith("degraded")
    assert lines[1].rstrip().endswith("yes")  # iteration 1 flagged
    assert not lines[2].rstrip().endswith("yes")


def test_skipped_iteration_renders_without_jobs():
    replay = replay_records(degraded_run_records())
    assert "! iteration_skipped" in render_timeline(replay)
    table = render_iteration_table(replay)
    assert len(table.splitlines()) == 3  # header + both iterations
    # the failed attempt recorded no tasks: its job line still shows,
    # with no chart under it, and nothing blows up
    gantts = render_job_gantts(replay)
    assert "TestClusters-i1" in gantts
    assert "phase (" not in gantts
