"""Chrome trace-event export: schema validity, placement, determinism."""

import json

from repro.observability.export import (
    PID,
    TID_ITERATION,
    TID_JOB,
    TID_RUN,
    TID_SLOT_BASE,
    chrome_trace,
    render_chrome_trace,
    validate_trace,
)
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records

from tests.observability.test_critical import chaotic_run


def aborted_run():
    """A run killed by an SLO breach after one successful job."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        with journal.span("iteration", "iteration-1", iteration=1, k_before=1) as it:
            with journal.span("job", "KMeans-1", attempt=1) as job:
                with journal.span("phase", "map", tasks=1, slots=2):
                    journal.task("KMeans-1-m-00000", 0, 2.0, 0.0)
                job.set(
                    status="ok",
                    simulated_seconds=7.0,
                    timing={"startup_seconds": 5.0, "map_seconds": 2.0},
                    counters={},
                )
            journal.event("slo_breach", rule="max_k", limit=2, observed=4)
            it.set(k_after=4, simulated_seconds=7.0)
        run.set(status="error", error="SLOViolationError", simulated_seconds=7.0)
    return replay_records(sink.records)


def by_phase(trace, ph):
    return [e for e in trace["traceEvents"] if e["ph"] == ph]


def test_trace_validates_clean():
    trace = chrome_trace(chaotic_run())
    assert validate_trace(trace) == []
    assert trace["displayTimeUnit"] == "ms"


def test_run_bar_spans_the_whole_makespan():
    trace = chrome_trace(chaotic_run())
    runs = [e for e in by_phase(trace, "X") if e["tid"] == TID_RUN]
    assert len(runs) == 1
    assert runs[0]["ts"] == 0.0
    assert runs[0]["dur"] == 25.0 * 1e6  # journalled makespan, in us
    assert runs[0]["pid"] == PID


def test_on_path_job_placed_after_restore():
    trace = chrome_trace(chaotic_run())
    jobs = [e for e in by_phase(trace, "X") if e["tid"] == TID_JOB]
    names = [e["name"] for e in jobs]
    assert any(name.startswith("checkpoint restore") for name in names)
    winning = next(e for e in jobs if e["name"] == "KMeans-2")
    assert winning["ts"] == 10.0 * 1e6  # starts where the restore ends
    assert winning["dur"] == 15.0 * 1e6
    assert winning["args"]["blame"]["retries"] == 2.5


def test_failed_attempt_renders_with_zero_duration():
    trace = chrome_trace(chaotic_run())
    failed = [
        e
        for e in by_phase(trace, "X")
        if e["tid"] == TID_JOB and "failed attempt" in e["name"]
    ]
    assert len(failed) == 1
    assert failed[0]["dur"] == 0.0
    # Anchored at its iteration's window start, not at time zero.
    assert failed[0]["ts"] == 10.0 * 1e6


def test_tasks_land_on_slot_tracks_inside_their_phase():
    trace = chrome_trace(chaotic_run())
    task_bars = [
        e for e in by_phase(trace, "X") if e["tid"] >= TID_SLOT_BASE
    ]
    assert task_bars  # map + reduce tasks present
    # Map phase runs 15..18s (after the 5s startup from 10s): every map
    # task bar fits the window.
    map_bars = [e for e in task_bars if e["name"].startswith("map[")]
    for bar in map_bars:
        assert bar["ts"] >= 15.0 * 1e6 - 1
        assert bar["ts"] + bar["dur"] <= 18.0 * 1e6 + 1
    # Slot tracks are named in the metadata.
    slot_names = [
        e["args"]["name"]
        for e in by_phase(trace, "M")
        if e["name"] == "thread_name" and e["tid"] >= TID_SLOT_BASE
    ]
    assert "slot 0" in slot_names


def test_counters_track_k_and_cumulative_makespan():
    trace = chrome_trace(chaotic_run())
    counters = by_phase(trace, "C")
    k_samples = [e for e in counters if e["name"] == "k"]
    assert k_samples and k_samples[-1]["args"]["k"] == 2
    makespans = [e for e in counters if "makespan" in e["name"]]
    assert makespans[-1]["args"]["seconds"] == 25.0


def test_fault_events_become_instants():
    trace = chrome_trace(chaotic_run())
    instants = by_phase(trace, "i")
    names = [e["name"] for e in instants]
    assert "job_retry" in names
    assert "node_lost" in names
    lost = next(e for e in instants if e["name"] == "node_lost")
    assert lost["tid"] == TID_JOB
    assert lost["args"]["heartbeat_timeout_seconds"] == 1.0
    assert all(e["s"] in ("t", "p", "g") for e in instants)


def test_slo_abort_emits_an_instant_at_the_end():
    trace = chrome_trace(aborted_run())
    assert validate_trace(trace) == []
    aborts = [
        e for e in by_phase(trace, "i") if e["name"].startswith("aborted:")
    ]
    assert len(aborts) == 1
    assert aborts[0]["name"] == "aborted: SLOViolationError"
    assert aborts[0]["ts"] == 7.0 * 1e6
    assert "slo_breach" in [e["name"] for e in by_phase(trace, "i")]


def test_iteration_window_covers_its_jobs():
    trace = chrome_trace(chaotic_run())
    iterations = [e for e in by_phase(trace, "X") if e["tid"] == TID_ITERATION]
    assert len(iterations) == 1
    assert iterations[0]["ts"] == 10.0 * 1e6
    assert iterations[0]["dur"] == 15.0 * 1e6
    assert iterations[0]["args"]["k_after"] == 2


def test_render_is_deterministic_json():
    replay = chaotic_run()
    first = render_chrome_trace(replay)
    second = render_chrome_trace(chaotic_run())
    assert first == second
    assert json.loads(first)["traceEvents"]


def test_validate_flags_malformed_events():
    assert validate_trace([]) == ["trace is not a JSON object"]
    assert validate_trace({}) == ["traceEvents is not an array"]
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0},
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": -1.0},
            {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0.0, "s": "q"},
            {"ph": "C", "name": "x", "pid": 1, "tid": 0, "ts": 0.0, "args": 3},
        ]
    }
    problems = validate_trace(bad)
    assert len(problems) == 5  # unknown ph, bad ts, bad dur, bad scope, bad args
