"""SLO rule parsing and watchdog semantics."""

import io

import pytest

from repro.common.errors import ConfigurationError, SLOViolationError
from repro.observability.live import LiveRunState
from repro.observability.journal import Journal, NullJournalSink
from repro.observability.live import TelemetrySink
from repro.observability.slo import (
    RULE_NAMES,
    SLORule,
    SLOWatchdog,
    parse_slo_rules,
    watchdog_for,
)


def test_parse_slo_rules_basic():
    rules = parse_slo_rules("max_k=64,warn:max_wall_seconds=600")
    assert rules == (
        SLORule(name="max_k", limit=64.0, action="abort"),
        SLORule(name="max_wall_seconds", limit=600.0, action="warn"),
    )


def test_parse_slo_rules_tolerates_whitespace_and_empty_chunks():
    rules = parse_slo_rules(" max_k = 8 , , warn: max_job_retries = 3 ")
    assert [(r.name, r.limit, r.action) for r in rules] == [
        ("max_k", 8.0, "abort"),
        ("max_job_retries", 3.0, "warn"),
    ]
    assert parse_slo_rules("") == ()


@pytest.mark.parametrize(
    "spec",
    [
        "max_k",  # no limit
        "max_k=abc",  # non-numeric
        "max_k=0",  # non-positive limit
        "bogus_rule=1",  # unknown rule
        "pause:max_k=1",  # unknown action
        "max_k=1,max_k=2",  # duplicate
    ],
)
def test_parse_slo_rules_rejects_malformed_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_slo_rules(spec)


def _state_with_k(k):
    state = LiveRunState()
    state.k_current = k
    return state


def test_watchdog_abort_rule_latches_and_fires_once():
    stream = io.StringIO()
    watchdog = SLOWatchdog(parse_slo_rules("max_k=4"), stream=stream)
    state = _state_with_k(3)
    watchdog.observe(state)
    assert watchdog.abort_requested is None
    watchdog.check_abort()  # no breach yet: no raise

    state.k_current = 6
    watchdog.observe(state)
    watchdog.observe(state)  # second observation must not re-fire
    assert len(watchdog.breaches) == 1
    breach = watchdog.breaches[0]
    assert (breach.rule, breach.limit, breach.observed) == ("max_k", 4.0, 6.0)
    assert watchdog.abort_requested is breach
    assert state.breaches == [breach.as_dict()]
    assert stream.getvalue().count("SLO breach") == 1
    assert "aborting at next checkpoint" in stream.getvalue()

    with pytest.raises(SLOViolationError) as excinfo:
        watchdog.check_abort()
    assert excinfo.value.rule == "max_k"
    assert excinfo.value.limit == 4.0
    assert excinfo.value.observed == 6.0


def test_watchdog_warn_rule_never_requests_abort():
    stream = io.StringIO()
    watchdog = SLOWatchdog(parse_slo_rules("warn:max_k=4"), stream=stream)
    watchdog.observe(_state_with_k(10))
    assert watchdog.abort_requested is None
    watchdog.check_abort()  # warn-only: never raises
    assert "warning only" in stream.getvalue()


def test_watchdog_every_rule_name_is_observable():
    state = LiveRunState()
    state.k_current = 2
    watchdog = SLOWatchdog(
        [
            SLORule(
                name=name,
                limit=1e9,
                # on_anomaly is the one rule keyed by a detector type.
                anomaly="fault_storm" if name == "on_anomaly" else None,
            )
            for name in RULE_NAMES
        ],
        stream=io.StringIO(),
        clock=lambda: 0.0,
    )
    watchdog.observe(state)  # all quantities readable, none breached
    assert watchdog.breaches == []


def test_watchdog_for_finds_telemetry_watchdog():
    watchdog = SLOWatchdog(parse_slo_rules("max_k=4"), stream=io.StringIO())
    journal = Journal(TelemetrySink(watchdog=watchdog))
    assert watchdog_for(journal) is watchdog
    assert watchdog_for(Journal(NullJournalSink())) is None
    assert watchdog_for(None) is None
