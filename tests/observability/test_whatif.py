"""What-if re-scheduling: identity, knobs, parsing, rendering."""

import json

import pytest

from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records
from repro.observability.whatif import (
    Scenario,
    ScenarioError,
    parse_scenario,
    render_whatif,
    whatif_replay,
)


def recorded_run(
    map_seconds=3.0,
    reduce_sims=(1.0, 1.0),
    restore=0.0,
    combiner_optional=True,
):
    """One successful job with hand-checkable LPT numbers.

    Map: tasks [2, 2, 1, 1] on 2 slots (LPT makespan 3.0); reduce:
    capacity-following (len(tasks) == slots == 2); combiner counters
    record a 10x growth if switched off; recorded on 4 nodes.
    """
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        if restore:
            journal.event(
                "checkpoint_restore",
                name="iter-0001",
                iteration=1,
                jobs=1,
                simulated_seconds=restore,
                counters={},
            )
        with journal.span("iteration", "iteration-1", iteration=1) as it:
            with journal.span(
                "job",
                "KMeans-1",
                attempt=1,
                combiner_optional=combiner_optional,
            ) as job:
                with journal.span("phase", "map", tasks=4, slots=2):
                    for i, sim in enumerate([2.0, 2.0, 1.0, 1.0]):
                        journal.task(f"KMeans-1-m-{i:05d}", i, sim, 0.0)
                with journal.span(
                    "phase", "reduce", tasks=len(reduce_sims), slots=2
                ):
                    for i, sim in enumerate(reduce_sims):
                        journal.task(f"KMeans-1-r-{i:05d}", i, sim, 0.0)
                reduce_seconds = max(reduce_sims)
                sim_total = 5.0 + map_seconds + 1.0 + reduce_seconds
                job.set(
                    status="ok",
                    simulated_seconds=sim_total,
                    nodes=4,
                    timing={
                        "startup_seconds": 5.0,
                        "map_seconds": map_seconds,
                        "shuffle_seconds": 1.0,
                        "reduce_seconds": reduce_seconds,
                    },
                    counters={
                        "framework": {
                            "COMBINE_INPUT_RECORDS": 100,
                            "COMBINE_OUTPUT_RECORDS": 10,
                        }
                    },
                )
            it.set(simulated_seconds=sim_total)
        run.set(status="ok", simulated_seconds=sim_total + restore)
    return replay_records(sink.records)


def test_empty_scenario_is_the_identity():
    replay = recorded_run()
    report = whatif_replay(replay, Scenario())
    assert report.recorded_total == replay.total_simulated_seconds()
    assert report.predicted_total == report.recorded_total
    assert report.delta_seconds == 0.0
    for job in report.jobs:
        assert job.predicted == job.recorded


def test_fewer_slots_stretch_the_phases():
    # num_workers=1: map LPT([2,2,1,1], 1) = 6; capacity-following
    # reduce re-bins to one 1.0s task. 5 + 6 + 1 + 1 = 13.
    report = whatif_replay(recorded_run(), Scenario(num_workers=1))
    assert report.predicted_total == pytest.approx(13.0)
    assert report.delta_seconds > 0


def test_more_nodes_scale_slots_and_shuffle():
    # nodes 4 -> 8 doubles slots (map makespan 3 -> 2), halves the
    # per-node shuffle fabric time (1 -> 0.5), and the reduce wave
    # follows capacity (still 1.0). 5 + 2 + 0.5 + 1 = 8.5.
    report = whatif_replay(recorded_run(), Scenario(nodes=8))
    assert report.predicted_total == pytest.approx(8.5)
    phases = report.phase_totals()
    assert phases["map"] == (pytest.approx(3.0), pytest.approx(2.0))
    assert phases["shuffle"] == (pytest.approx(1.0), pytest.approx(0.5))


def test_combiner_off_grows_shuffle_by_recorded_ratio():
    # COMBINE_INPUT/OUTPUT = 100/10: shuffle grows 10x; the recorded
    # reduce tasks are pure startup (1.0s), so reduce is unchanged.
    report = whatif_replay(recorded_run(), Scenario(combiner=False))
    phases = report.phase_totals()
    assert phases["shuffle"] == (pytest.approx(1.0), pytest.approx(10.0))
    assert phases["reduce"] == (pytest.approx(1.0), pytest.approx(1.0))
    assert report.predicted_total == pytest.approx(5.0 + 3.0 + 10.0 + 1.0)


def test_combiner_off_scales_reduce_work_above_startup():
    # Reduce tasks of 2.0s carry 1.0s of work above the 1.0s task
    # startup; 10x record growth makes each 1 + 1*10 = 11s.
    report = whatif_replay(
        recorded_run(reduce_sims=(2.0, 2.0)), Scenario(combiner=False)
    )
    phases = report.phase_totals()
    assert phases["reduce"] == (pytest.approx(2.0), pytest.approx(11.0))


def test_combiner_off_skips_jobs_whose_combiner_is_load_bearing():
    # A job journalled without combiner_optional (e.g. one whose
    # combiner changes RNG consumption) keeps its recorded shuffle:
    # a real re-run would keep its combiner too.
    report = whatif_replay(
        recorded_run(combiner_optional=False), Scenario(combiner=False)
    )
    phases = report.phase_totals()
    assert phases["shuffle"] == (pytest.approx(1.0), pytest.approx(1.0))
    assert report.predicted_total == pytest.approx(report.recorded_total)


def test_scheduler_lpt_drops_the_calibration():
    # Recorded map took 4.0s where plain LPT packs it in 3.0s: the
    # calibrated model keeps 4.0 (untouched phase), pure LPT says 3.0.
    replay = recorded_run(map_seconds=4.0)
    keep = whatif_replay(replay, Scenario())
    assert keep.phase_totals()["map"] == (pytest.approx(4.0), pytest.approx(4.0))
    lpt = whatif_replay(replay, Scenario(scheduler="lpt"))
    assert lpt.phase_totals()["map"] == (pytest.approx(4.0), pytest.approx(3.0))


def test_split_factor_rebins_map_work():
    # F=2: 4 tasks (work 2.0 above startup) -> 8 balanced tasks of
    # 1 + 2/8 = 1.25s; on 2 slots that is 4 waves = 5.0s.
    report = whatif_replay(recorded_run(), Scenario(split_factor=2.0))
    assert report.phase_totals()["map"][1] == pytest.approx(5.0)


def test_restored_baselines_ride_both_totals():
    report = whatif_replay(recorded_run(restore=7.5), Scenario(num_workers=1))
    assert report.restore_seconds == 7.5
    assert report.recorded_total == pytest.approx(7.5 + 10.0)
    assert report.predicted_total == pytest.approx(7.5 + 13.0)
    assert "restored baselines contribute 7.50s" in render_whatif(report)


def test_jobs_without_timing_ride_both_totals():
    """A successful job recorded without a per-phase timing dict has
    nothing to re-schedule, but its seconds still belong to the
    makespan: carried as-recorded on both sides (like restores) and
    surfaced in the report, never silently dropped."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        with journal.span("iteration", "iteration-1", iteration=1) as it:
            with journal.span("job", "Init-1", attempt=1) as job:
                job.set(status="ok", simulated_seconds=7.5, counters={})
            with journal.span("job", "KMeans-1", attempt=1) as job:
                with journal.span("phase", "map", tasks=2, slots=2):
                    journal.task("KMeans-1-m-00000", 0, 2.0, 0.0)
                    journal.task("KMeans-1-m-00001", 1, 2.0, 0.0)
                job.set(
                    status="ok",
                    simulated_seconds=3.0,
                    timing={"startup_seconds": 1.0, "map_seconds": 2.0},
                    counters={},
                )
            it.set(simulated_seconds=10.5)
        run.set(status="ok", simulated_seconds=10.5)
    replay = replay_records(sink.records)
    report = whatif_replay(replay, Scenario(num_workers=1))
    assert report.as_recorded_jobs == 1
    assert report.as_recorded_seconds == 7.5
    # The recorded makespan agrees with the journalled makespan even
    # though one job could not be re-scheduled.
    assert report.recorded_total == replay.total_simulated_seconds()
    # Only the timed job moves: map LPT([2,2], 1) = 4 vs recorded 2.
    assert report.predicted_total == pytest.approx(7.5 + 1.0 + 4.0)
    assert len(report.jobs) == 1
    payload = report.as_dict()
    assert payload["as_recorded_jobs"] == 1
    assert payload["as_recorded_seconds"] == 7.5
    text = render_whatif(report)
    assert "1 job(s) recorded without timing carried as-recorded" in text


def test_parse_scenario_roundtrip():
    scenario = parse_scenario(
        ["num_workers=8", "combiner=off", "split_factor=1.5", "scheduler=lpt"]
    )
    assert scenario.num_workers == 8
    assert scenario.combiner is False
    assert scenario.split_factor == 1.5
    assert scenario.scheduler == "lpt"
    assert not scenario.empty
    assert "num_workers=8" in scenario.describe()
    assert parse_scenario([]).empty


@pytest.mark.parametrize(
    "bad",
    [
        "num_workers",  # no '='
        "warp_drive=9",  # unknown key
        "num_workers=many",  # not an int
        "combiner=maybe",  # not on/off
        "scheduler=fifo",  # unknown scheduler
        "nodes=0",  # below 1
        "split_factor=0",  # must be > 0
    ],
)
def test_parse_scenario_rejects(bad):
    with pytest.raises(ScenarioError):
        parse_scenario([bad])


def test_report_is_json_ready_and_renders():
    report = whatif_replay(recorded_run(), Scenario(nodes=2))
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["scenario"]["nodes"] == 2
    assert payload["predicted_total"] > payload["recorded_total"]
    text = render_whatif(report)
    assert "scenario: nodes=2" in text
    assert "predicted makespan" in text
    assert "most-moved jobs" in text
