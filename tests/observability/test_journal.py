"""Journal mechanics: spans, sinks, sequencing, canonical form."""

import json

import pytest

from repro.observability.journal import (
    EVENT,
    JOURNAL_ENV,
    SPAN_END,
    SPAN_START,
    TASK,
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    NullJournalSink,
    canonical_records,
    file_journal,
    load_journal,
)


def journal_and_sink():
    sink = InMemoryJournalSink()
    return Journal(sink), sink


def test_disabled_journal_emits_nothing():
    journal = Journal()  # defaults to NullJournalSink
    assert not journal.enabled
    with journal.span("run", "r") as span:
        span.set(result=1)
        journal.event("noop")
        journal.task("t", 0, 1.0, 0.0)
    assert isinstance(journal.sink, NullJournalSink)


def test_records_get_monotonic_seq_numbers():
    journal, sink = journal_and_sink()
    with journal.span("run", "r"):
        journal.event("a")
        journal.event("b")
    seqs = [record["seq"] for record in sink.records]
    assert seqs == sorted(seqs) == list(range(len(sink.records)))


def test_span_nesting_sets_parents():
    journal, sink = journal_and_sink()
    with journal.span("run", "r") as run:
        with journal.span("job", "j") as job:
            journal.event("inside_job")
        journal.event("inside_run")
    starts = {r["name"]: r for r in sink.records if r["type"] == SPAN_START}
    events = {r["name"]: r for r in sink.records if r["type"] == EVENT}
    assert starts["r"]["parent"] is None
    assert starts["j"]["parent"] == run.id
    assert events["inside_job"]["parent"] == job.id
    assert events["inside_run"]["parent"] == run.id


def test_span_end_carries_set_attrs():
    journal, sink = journal_and_sink()
    with journal.span("job", "j", attempt=1) as span:
        span.set(status="ok", simulated_seconds=2.0)
    end = next(r for r in sink.records if r["type"] == SPAN_END)
    assert end["span"] == span.id
    assert end["attrs"] == {"status": "ok", "simulated_seconds": 2.0}


def test_span_exception_marks_error_and_propagates():
    journal, sink = journal_and_sink()
    with pytest.raises(ValueError):
        with journal.span("job", "j"):
            raise ValueError("boom")
    end = next(r for r in sink.records if r["type"] == SPAN_END)
    assert end["attrs"]["status"] == "error"
    assert end["attrs"]["error"] == "ValueError"


def test_end_span_pops_abandoned_inner_spans():
    journal, sink = journal_and_sink()
    outer = journal.start_span("run", "r")
    journal.start_span("job", "abandoned")
    journal.end_span(outer)
    journal.event("after")
    event = next(r for r in sink.records if r["type"] == EVENT)
    assert event["parent"] is None  # the stack is empty again


def test_task_records_attach_to_current_span():
    journal, sink = journal_and_sink()
    with journal.span("phase", "map") as phase:
        journal.task("job-m-00000", 0, 1.5, 0.01)
    task = next(r for r in sink.records if r["type"] == TASK)
    assert task["parent"] == phase.id
    assert task["task_id"] == "job-m-00000"
    assert task["index"] == 0
    assert task["sim_seconds"] == 1.5


def test_canonical_records_strip_wall_clock_fields():
    journal, sink = journal_and_sink()
    with journal.span("phase", "map"):
        journal.task("t", 0, 1.0, 0.123)
    canon = canonical_records(sink.records)
    for record in canon:
        assert not any(key.startswith("wall") for key in record)
    # and nothing else is lost
    assert all("seq" in record for record in canon)


def test_file_sink_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = Journal(FileJournalSink(str(path)))
    with journal.span("run", "r") as span:
        journal.task("t", 0, 1.0, 0.0)
        span.set(status="ok")
    journal.close()
    records = load_journal(str(path))
    assert [r["type"] for r in records] == [SPAN_START, TASK, SPAN_END]
    # every line is standalone JSON
    for line in path.read_text().splitlines():
        json.loads(line)


def test_file_journal_shared_per_path(tmp_path):
    path = str(tmp_path / "shared.jsonl")
    a = file_journal(path)
    b = file_journal(path)
    assert a is b
    a.event("one")
    b.event("two")
    a.close()
    seqs = [r["seq"] for r in load_journal(path)]
    assert seqs == [0, 1]  # one shared sequence stream


def test_from_env_disabled_without_variable():
    journal = Journal.from_env(environ={})
    assert not journal.enabled


def test_from_env_opens_file_journal(tmp_path):
    path = str(tmp_path / "env.jsonl")
    journal = Journal.from_env(environ={JOURNAL_ENV: path})
    assert journal.enabled
    journal.event("hello")
    journal.close()
    assert load_journal(path)[0]["name"] == "hello"


def recorded_file(tmp_path) -> str:
    path = tmp_path / "run.jsonl"
    journal = Journal(FileJournalSink(str(path)))
    with journal.span("run", "r") as span:
        journal.task("t", 0, 1.0, 0.0)
        journal.event("marker", note="x")
        span.set(status="ok")
    journal.close()
    return str(path)


def test_truncated_final_record_is_tolerated(tmp_path):
    """A run killed mid-write leaves half a line; loading must survive."""
    path = recorded_file(tmp_path)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    complete = text.splitlines()
    truncated = "\n".join(complete[:-1]) + "\n" + complete[-1][: len(complete[-1]) // 2]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(truncated)
    records = load_journal(path)
    assert [r["type"] for r in records] == [SPAN_START, TASK, EVENT]
    # the replayed run simply shows up as interrupted downstream


def test_corruption_mid_stream_raises_typed_error(tmp_path):
    from repro.common.errors import JournalCorruptError, ReproError

    path = recorded_file(tmp_path)
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # mangle a middle record
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptError) as excinfo:
        load_journal(path)
    assert issubclass(JournalCorruptError, ReproError)
    assert excinfo.value.line_number == 2
    assert path in str(excinfo.value)


def test_non_object_record_raises_typed_error(tmp_path):
    from repro.common.errors import JournalCorruptError

    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "event", "seq": 0}\n[1, 2, 3]\n')
    with pytest.raises(JournalCorruptError, match="line 2|bad.jsonl:2"):
        load_journal(str(path))


def test_numpy_scalars_serialise(tmp_path):
    np = pytest.importorskip("numpy")
    path = tmp_path / "np.jsonl"
    journal = Journal(FileJournalSink(str(path)))
    journal.event("e", value=np.float64(1.5), count=np.int64(3))
    journal.close()
    record = load_journal(str(path))[0]
    assert record["attrs"] == {"value": 1.5, "count": 3}


def test_truncated_tail_after_final_run_end_raises(tmp_path):
    """Once every run span has ended nothing more is legitimately
    appended, so a half-written trailing line is real corruption."""
    from repro.common.errors import JournalCorruptError

    path = recorded_file(tmp_path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "event", "na')  # garbage after run_end
    with pytest.raises(JournalCorruptError, match="after the final run_end"):
        load_journal(path)
    # The tailer's read mode tolerates it (multi-run journal mid-write).
    records = load_journal(path, strict_tail=False)
    assert records[-1]["type"] == SPAN_END


def test_partial_tail_between_runs_tolerated_when_not_strict(tmp_path):
    """A multi-run journal caught between fits: run 1 fully ended, run
    2's start record half-written. strict_tail=False (the tailer) must
    read the complete prefix."""
    path = tmp_path / "multi.jsonl"
    journal = Journal(FileJournalSink(str(path)))
    with journal.span("run", "first") as span:
        span.set(status="ok")
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "span_start", "span": 99, "kind": "ru')
    records = load_journal(str(path), strict_tail=False)
    assert [r["type"] for r in records] == [SPAN_START, SPAN_END]


def test_load_journal_tolerates_growing_file_mid_run(tmp_path):
    """Regression: tailing a journal being written concurrently.

    Replay every prefix of the byte stream a run produces, including
    prefixes that cut a record line in half — exactly what a tailer
    sees between sink flushes. None may raise; each must decode a
    prefix of the final record list.
    """
    path = tmp_path / "grow.jsonl"
    journal = Journal(FileJournalSink(str(path)))
    with journal.span("run", "r") as span:
        with journal.span("job", "KMeans-1", attempt=1) as job:
            journal.task("t1", 0, 1.0, 0.0)
            job.set(status="ok", simulated_seconds=3.0)
        span.set(status="ok", simulated_seconds=3.0)
    journal.close()
    text = (tmp_path / "grow.jsonl").read_text()
    final = load_journal(str(path))
    grown = tmp_path / "partial.jsonl"
    for cut in range(0, len(text) + 1, 7):
        grown.write_text(text[:cut])
        records = load_journal(str(grown), strict_tail=False)
        assert records == final[: len(records)]
    # The complete file reads identically in both modes.
    assert load_journal(str(path)) == final


def test_follow_journal_tails_growing_file(tmp_path):
    """Regression for `repro trace --follow` racing the file sink: the
    poll loop writes more of the journal between polls (including a
    half-line) and the tailer must never raise, then return the
    complete replay once the run span closes."""
    from repro.observability.live import follow_journal

    path = tmp_path / "tail.jsonl"
    source = tmp_path / "source.jsonl"
    journal = Journal(FileJournalSink(str(source)))
    with journal.span("run", "r") as span:
        with journal.span("job", "KMeans-1", attempt=1) as job:
            journal.task("t1", 0, 1.0, 0.0)
            job.set(status="ok", simulated_seconds=3.0)
        span.set(status="ok", simulated_seconds=3.0)
    journal.close()
    text = source.read_text()
    # Grow the file across polls: half a line, more records, the rest.
    cuts = [0, len(text) // 3 + 5, len(text) // 3 * 2 + 3, len(text)]
    state = {"step": 0}

    def fake_sleep(_seconds):
        state["step"] = min(state["step"] + 1, len(cuts) - 1)
        path.write_text(text[: cuts[state["step"]]])

    path.write_text(text[: cuts[0]])
    updates = []
    replay = follow_journal(
        str(path),
        lambda rep, recs: updates.append(len(recs)),
        interval=0.0,
        sleep=fake_sleep,
        max_polls=50,
    )
    assert replay is not None
    assert replay.roots and all(root.complete for root in replay.roots)
    assert updates == sorted(updates)  # monotone growth, no resets
