"""Replay: folding a record stream back into a span tree."""

from repro.mapreduce.counters import Counters
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.render import (
    render_iteration_table,
    render_job_gantts,
    render_timeline,
    render_trace,
)
from repro.observability.replay import left_fold_seconds, replay_records


def recorded_run():
    """A small hand-driven run: 1 run, 2 iterations, retries + events."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans", dataset="d") as run:
        with journal.span("iteration", "iteration-1", iteration=1, k_before=1) as it:
            with journal.span("job", "KMeans-1", attempt=1) as job:
                with journal.span("phase", "map", tasks=2, slots=2):
                    journal.task("KMeans-1-m-00000", 0, 1.0, 0.0)
                    journal.task("KMeans-1-m-00001", 1, 2.0, 0.0)
                job.set(status="failed", error="TaskPermanentlyFailedError")
            journal.event("job_retry", job="KMeans-1", retry=1, backoff_seconds=5.0)
            with journal.span("job", "KMeans-1", attempt=2) as job:
                with journal.span("phase", "map", tasks=2, slots=2):
                    journal.task("KMeans-1-m-00000", 0, 1.0, 0.0)
                    journal.task("KMeans-1-m-00001", 1, 2.0, 0.0)
                job.set(
                    status="ok",
                    retries=1,
                    simulated_seconds=8.0,
                    counters={"framework": {"MAP_TASKS": 2, "JOB_RETRIES": 1}},
                )
            it.set(k_after=2, simulated_seconds=8.0,
                   counters={"framework": {"MAP_TASKS": 2, "JOB_RETRIES": 1}})
        with journal.span("iteration", "iteration-2", iteration=2, k_before=2) as it:
            with journal.span("job", "KMeans-2", attempt=1) as job:
                job.set(status="ok", simulated_seconds=3.0,
                        counters={"framework": {"MAP_TASKS": 2}})
            it.set(k_after=2, simulated_seconds=3.0,
                   counters={"framework": {"MAP_TASKS": 2}})
        run.set(status="ok", k_found=2, simulated_seconds=11.0)
    return sink.records


def test_replay_reconstructs_hierarchy():
    replay = replay_records(recorded_run())
    assert len(replay.runs()) == 1
    assert len(replay.iterations()) == 2
    assert len(replay.jobs()) == 3  # both attempts plus iteration 2's job
    run = replay.runs()[0]
    assert [child.kind for child in run.children] == ["iteration", "iteration"]
    assert run.get("k_found") == 2


def test_replay_surfaces_failed_attempts():
    replay = replay_records(recorded_run())
    attempts = replay.jobs()
    assert attempts[0].get("status") == "failed"
    assert attempts[0].get("error") == "TaskPermanentlyFailedError"
    assert len(replay.successful_jobs()) == 2
    retry_events = replay.events_named("job_retry")
    assert len(retry_events) == 1
    assert retry_events[0].attrs["backoff_seconds"] == 5.0


def test_replay_tasks_attach_to_phases():
    replay = replay_records(recorded_run())
    phases = replay.phases()
    assert len(phases) == 2
    assert [task.index for task in phases[0].tasks] == [0, 1]
    assert phases[0].tasks[1].sim_seconds == 2.0


def test_total_accounting_skips_failed_attempts():
    replay = replay_records(recorded_run())
    totals = replay.total_counters()
    assert totals.get("framework", "MAP_TASKS") == 4  # 2 + 2, not 6
    assert totals.get("framework", "JOB_RETRIES") == 1
    assert replay.total_simulated_seconds() == 11.0


def test_restored_baseline_counts_into_totals():
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    journal.event(
        "checkpoint_restore",
        name="ck/iter-00002",
        iteration=2,
        jobs=6,
        simulated_seconds=20.0,
        counters={"framework": {"MAP_TASKS": 12}},
    )
    with journal.span("job", "J", attempt=1) as job:
        job.set(status="ok", simulated_seconds=5.0,
                counters={"framework": {"MAP_TASKS": 2}})
    replay = replay_records(sink.records)
    assert replay.total_simulated_seconds() == 25.0
    assert replay.total_counters().get("framework", "MAP_TASKS") == 14


def test_total_simulated_seconds_is_a_plain_left_fold():
    """Regression: CPython 3.12+ builtin sum() uses Neumaier
    compensated summation, which differs bitwise from the runtime's
    ``+=`` accumulation. The journal accounting must use the same
    plain left fold on every Python version, or the exact
    reconciliation in ``repro analyze`` fails spuriously on valid
    journals (seen on the committed 04-slo-abort baseline)."""
    values = [0.1] * 10
    folded = left_fold_seconds(values)
    # Pin the fold order: ten 0.1s left-fold to just under 1.0, where
    # any compensated scheme (math.fsum, 3.12+ sum) rounds to 1.0.
    assert folded == 0.9999999999999999
    assert folded != 1.0

    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        with journal.span("iteration", "iteration-1", iteration=1) as it:
            for j in range(10):
                with journal.span("job", f"KMeans-{j}", attempt=1) as job:
                    job.set(status="ok", simulated_seconds=0.1, counters={})
            it.set(simulated_seconds=1.0)
        run.set(status="ok")
    replay = replay_records(sink.records)
    assert replay.total_simulated_seconds() == folded


def test_truncated_journal_yields_incomplete_spans():
    records = recorded_run()
    # Kill the run mid-flight: drop everything after the first task.
    truncated = records[:6]
    replay = replay_records(truncated)
    run = replay.runs()[0]
    assert not run.complete
    assert "[interrupted]" in render_timeline(replay)
    # accounting over a truncated journal still works (no successful jobs)
    assert replay.total_simulated_seconds() == 0.0
    assert replay.total_counters().as_dict() == {}


def test_span_counters_parse_into_counters_object():
    replay = replay_records(recorded_run())
    counters = replay.successful_jobs()[0].counters()
    assert isinstance(counters, Counters)
    assert counters.get("framework", "MAP_TASKS") == 2


def test_render_timeline_shows_attempts_and_events():
    text = render_timeline(replay_records(recorded_run()))
    assert "run 'gmeans'" in text
    assert "attempt 1: failed" in text
    assert "attempt 2: ok" in text
    assert "! job_retry" in text
    assert "[survived 1 retries]" in text


def test_render_iteration_table_rows():
    text = render_iteration_table(replay_records(recorded_run()))
    lines = text.splitlines()
    assert len(lines) == 3  # header + two iterations
    assert "1->2" in lines[1]
    assert "retries" in lines[0]


def test_render_job_gantts_rebuilds_schedules():
    text = render_job_gantts(replay_records(recorded_run()), width=20)
    assert "map phase (2 tasks over 2 slots)" in text
    assert "slot" in text


def test_render_trace_assembles_sections():
    text = render_trace(
        replay_records(recorded_run()), gantt=True, metrics=True
    )
    assert "== run timeline" in text
    assert "== per-iteration counters" in text
    assert "== job gantts" in text
    assert "== metrics" in text
    assert "repro_framework_map_tasks 4" in text


def test_empty_journal_renders_gracefully():
    replay = replay_records([])
    assert "(empty journal)" in render_timeline(replay)
    assert "(no iterations recorded)" in render_iteration_table(replay)
    assert "(no jobs recorded)" in render_job_gantts(replay)


def test_node_events_filters_lifecycle_in_journal_order():
    """node_events() is exactly the lifecycle subset (lost / recovered /
    blacklisted), in global seq order — even when the events hang off
    different spans at different depths."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        journal.event("node_lost", node="node-0", deaths=1)
        with journal.span("iteration", "iteration-1", iteration=1) as it:
            journal.event("job_retry", job="KMeans-1", retry=1)
            with journal.span("job", "KMeans-1", attempt=1) as job:
                journal.event("node_recovered", node="node-0", recoveries=1)
                journal.event("node_lost", node="node-1", deaths=1)
                job.set(status="ok", simulated_seconds=1.0, counters={})
            journal.event("node_blacklisted", node="node-1", deaths=3)
            it.set(simulated_seconds=1.0)
        run.set(status="ok")
    replay = replay_records(sink.records)

    lifecycle = replay.node_events()
    assert [e.name for e in lifecycle] == [
        "node_lost",
        "node_recovered",
        "node_lost",
        "node_blacklisted",
    ]
    # Journal order is seq order, strictly increasing.
    seqs = [e.seq for e in lifecycle]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # Which nodes, in order of occurrence.
    assert [e.attrs["node"] for e in lifecycle] == [
        "node-0",
        "node-0",
        "node-1",
        "node-1",
    ]
    # Non-lifecycle events are excluded but still in replay.events.
    assert "job_retry" in [e.name for e in replay.events]
