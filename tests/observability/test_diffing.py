"""Cross-run regression detection: summaries, thresholds, the gate."""

import dataclasses

import pytest

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import BENCH_COST
from repro.evaluation.harness import build_world
from repro.observability.diffing import (
    DiffThresholds,
    diff_replays,
    diff_summaries,
    render_diff,
    summarize_replay,
)
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records


def record_gmeans(seed=7, cost=None):
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=3, dimensions=2, rng=seed
    )
    world = build_world(
        mixture, nodes=2, target_splits=6, seed=seed, cost=cost,
        journal=journal,
    )
    MRGMeans(world.runtime, MRGMeansConfig(seed=seed)).fit(world.dataset)
    return replay_records(sink.records)


@pytest.fixture(scope="module")
def baseline_replay():
    return record_gmeans()


def test_summary_reduces_journal(baseline_replay):
    summary = summarize_replay(baseline_replay)
    assert summary.runs == 1
    assert summary.jobs == summary.job_attempts > 0
    assert summary.simulated_seconds > 0
    assert summary.k_trajectory
    assert summary.k_found is not None
    assert summary.counter("framework", "SHUFFLE_BYTES") > 0
    total_phases = sum(summary.phase_seconds.values())
    assert total_phases == pytest.approx(summary.simulated_seconds, rel=1e-6)


def test_identical_runs_diff_clean(baseline_replay):
    candidate = record_gmeans()
    report = diff_replays(
        baseline_replay, candidate, baseline_path="a", candidate_path="b"
    )
    assert report.ok
    assert not report.regressions
    text = render_diff(report)
    assert "no regressions beyond thresholds" in text
    assert "REGRESSION" not in text


def inflated_map_cost():
    """BENCH_COST with per-record map cost inflated into significance.

    (At 600-point test scale the startup constants dominate, so the
    injection has to be large to move total time past any threshold —
    on real workloads a doubled per-record cost trips the same gate.)
    """
    return dataclasses.replace(BENCH_COST, seconds_per_map_record=2e-3)


def test_inflated_map_record_cost_is_a_regression(baseline_replay):
    candidate = record_gmeans(cost=inflated_map_cost())
    report = diff_replays(baseline_replay, candidate)
    assert not report.ok
    regressed = {entry.metric for entry in report.regressions}
    assert "simulated_seconds" in regressed
    assert "phase.map_seconds" in regressed
    # Cost constants change time, never results or counters.
    assert "k_trajectory" not in regressed
    assert not any(metric.startswith("counter.") for metric in regressed)
    assert "REGRESSION" in render_diff(report)


def test_k_drift_is_always_a_regression(baseline_replay):
    baseline_summary = summarize_replay(baseline_replay)
    candidate_summary = summarize_replay(baseline_replay)
    # Same costs, same counters — only the answer changed.
    candidate_summary.k_trajectory = [
        list(pair) for pair in baseline_summary.k_trajectory
    ]
    candidate_summary.k_trajectory[-1][-1] += 1
    candidate_summary.k_found = baseline_summary.k_found + 1
    report = diff_summaries(baseline_summary, candidate_summary)
    assert [e.metric for e in report.regressions] == ["k_trajectory"]
    assert "results diverged" in render_diff(report)
    # ... unless drift is explicitly allowed.
    allowed = DiffThresholds(allow_k_drift=True)
    report = diff_summaries(baseline_summary, candidate_summary, allowed)
    assert report.ok


def test_thresholds_scale_the_gate(baseline_replay):
    candidate = record_gmeans(cost=inflated_map_cost())
    generous = DiffThresholds(max_time_regression=10.0)
    report = diff_replays(baseline_replay, candidate, generous)
    assert report.ok


def test_as_dict_is_json_ready(baseline_replay):
    import json

    report = diff_replays(baseline_replay, record_gmeans())
    data = json.loads(json.dumps(report.as_dict()))
    assert data["ok"] is True
    assert data["thresholds"]["max_time_regression"] == 0.10
    assert any(e["metric"] == "k_trajectory" for e in data["entries"])


def test_new_cost_from_zero_base_is_flagged():
    baseline = summarize_replay(replay_records([]))
    candidate_replay = record_gmeans()
    candidate = summarize_replay(candidate_replay)
    report = diff_summaries(baseline, candidate)
    regressed = {entry.metric for entry in report.regressions}
    assert "simulated_seconds" in regressed
