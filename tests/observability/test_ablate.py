"""The ablation engine: scripted-delta scoring, a real grid, verify."""

import json

import pytest

from repro.observability.ablate import (
    WorkloadSpec,
    load_importance,
    metrics_from_replay,
    render_importance,
    run_ablation,
    score_variant,
    variant_slug,
    verify_importance,
    write_importance,
)
from repro.observability.components import component, engine_variants
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records


def scripted_run(
    makespan,
    shuffle_bytes,
    wasted_counter,
    heap_bytes,
    k_found=3,
    events=(),
    failed_attempt_seconds=None,
):
    """One hand-written journal with fully controlled metrics.

    The job's timing splits the makespan as startup 1.0 + map the rest,
    so the critical path reconciles exactly and the blame landing is
    predictable (startup / compute only).
    """
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans", dataset="d") as run:
        with journal.span(
            "iteration", "iteration-1", iteration=1, k_before=1
        ) as it:
            if failed_attempt_seconds is not None:
                with journal.span("job", "KMeans-1", attempt=1) as job:
                    job.set(
                        status="failed",
                        error="TaskPermanentlyFailedError",
                        simulated_seconds=failed_attempt_seconds,
                    )
            with journal.span(
                "job",
                "KMeans-1",
                attempt=1 if failed_attempt_seconds is None else 2,
            ) as job:
                with journal.span(
                    "phase",
                    "map",
                    tasks=1,
                    slots=1,
                    max_key_heap_bytes=heap_bytes,
                ):
                    journal.task("KMeans-1-m-00000", 0, makespan - 1.0, 0.0)
                for name in events:
                    journal.event(name, name="iter-0001")
                job.set(
                    status="ok",
                    simulated_seconds=makespan,
                    timing={
                        "startup_seconds": 1.0,
                        "map_seconds": makespan - 1.0,
                        "shuffle_seconds": 0.0,
                        "reduce_seconds": 0.0,
                    },
                    counters={
                        "framework": {
                            "SHUFFLE_BYTES": shuffle_bytes,
                            "WASTED_COMPUTE_SECONDS": wasted_counter,
                        }
                    },
                )
            it.set(k_after=k_found, simulated_seconds=makespan)
        run.set(status="ok", k_found=k_found, simulated_seconds=makespan)
    return replay_records(sink.records)


def test_scripted_pair_produces_known_signed_deltas():
    baseline = metrics_from_replay(scripted_run(25.0, 1000, 2.0, 500))
    flipped = metrics_from_replay(
        scripted_run(
            20.0, 1600, 3.5, 800, events=("checkpoint_write",) * 2
        )
    )
    assert baseline.reconciled and flipped.reconciled
    entry = score_variant(
        component("combiner"), False, "flip.jsonl", baseline, flipped
    )
    assert entry.delta_makespan == -5.0
    assert entry.delta_fraction == -0.2
    assert entry.delta_shuffle_bytes == 600
    assert entry.delta_wasted_seconds == 1.5
    assert entry.delta_heap_bytes == 300
    assert entry.events_delta == {"checkpoint_write": 2}
    assert entry.k_drift is False
    assert entry.invariant_ok  # runtime layer: no invariance claim
    # The blame shift is over the same categories and sums to the
    # makespan delta (both runs fully reconcile).
    assert sum(entry.blame_shift.values()) == pytest.approx(-5.0)


def test_failed_attempts_land_in_wasted_seconds():
    metrics = metrics_from_replay(
        scripted_run(25.0, 1000, 2.0, 500, failed_attempt_seconds=4.0)
    )
    assert metrics.wasted_seconds == 6.0  # 4.0 failed attempt + 2.0 counter
    assert metrics.jobs == 1 and metrics.job_attempts == 2
    # Failed attempts never count toward the reconciled makespan.
    assert metrics.makespan == 25.0


def test_infrastructure_flip_must_be_simulated_invariant():
    baseline = metrics_from_replay(scripted_run(25.0, 1000, 2.0, 500))
    same = metrics_from_replay(scripted_run(25.0, 1000, 2.0, 500))
    drifted = metrics_from_replay(scripted_run(25.0, 1001, 2.0, 500))
    executor = component("executor")
    assert score_variant(executor, "threads", "j", baseline, same).invariant_ok
    violated = score_variant(executor, "threads", "j", baseline, drifted)
    assert not violated.invariant_ok
    assert violated.delta_shuffle_bytes == 1


def test_k_drift_is_flagged():
    baseline = metrics_from_replay(scripted_run(25.0, 1000, 2.0, 500))
    drifted = metrics_from_replay(
        scripted_run(25.0, 1000, 2.0, 500, k_found=4)
    )
    entry = score_variant(
        component("test_strategy"), "reducer", "j", baseline, drifted
    )
    assert entry.k_drift


def test_workload_spec_round_trip_rejects_unknown_fields():
    spec = WorkloadSpec(n_points=123)
    assert WorkloadSpec.from_dict(spec.as_dict()) == spec
    with pytest.raises(ValueError, match="unknown"):
        WorkloadSpec.from_dict({"n_points": 1, "warp": 9})


def test_variant_slug_is_filename_safe():
    assert variant_slug(component("combiner"), False) == "combiner=False"
    assert "/" not in variant_slug(component("split_factor"), 0.5)


# -- one small real grid, shared across the remaining tests --------------


SPEC = WorkloadSpec(n_points=600)


@pytest.fixture(scope="module")
def grid(tmp_path_factory):
    journal_dir = tmp_path_factory.mktemp("ablate-journals")
    report = run_ablation(SPEC, journal_dir=str(journal_dir))
    return report, str(journal_dir)


def test_grid_covers_every_engine_flip_and_reconciles(grid):
    report, _ = grid
    assert len(report.variants) == len(engine_variants())
    assert report.ok
    assert report.baseline.reconciled
    infra = [v for v in report.variants if v.simulated_invariant]
    assert infra and all(v.invariant_ok for v in infra)
    # Infrastructure flips change nothing simulated, by contract.
    assert all(v.delta_makespan == 0.0 for v in infra)


def test_grid_is_deterministic_for_the_same_seed(grid):
    report, _ = grid
    again = run_ablation(SPEC)  # in-memory journals, same seed
    ours = report.as_dict()
    theirs = again.as_dict()
    # Journal paths differ (tmp dir vs in-memory); everything simulated
    # must match exactly.
    for entry in (ours, theirs):
        entry["baseline"].pop("journal")
        for variant in entry["variants"]:
            variant.pop("journal")
    assert ours == theirs


def test_written_report_verifies_exactly(grid, tmp_path):
    report, _ = grid
    written = write_importance(report, out_dir=str(tmp_path))
    loaded = load_importance(written["json"])
    assert verify_importance(loaded) == []


def test_verify_catches_tampered_deltas(grid, tmp_path):
    report, _ = grid
    written = write_importance(report, out_dir=str(tmp_path))
    loaded = load_importance(written["json"])
    loaded["variants"][0]["delta_makespan"] += 0.5
    problems = verify_importance(loaded)
    assert problems and "delta_makespan" in problems[0]


def test_verify_reports_missing_journals(grid, tmp_path):
    report, _ = grid
    written = write_importance(report, out_dir=str(tmp_path))
    loaded = load_importance(written["json"])
    loaded["baseline"]["journal"] = str(tmp_path / "gone.jsonl")
    problems = verify_importance(loaded)
    assert problems and "missing" in problems[0]


def test_render_importance_sections(grid):
    report, _ = grid
    text = render_importance(report)
    assert "# Ablation importance report" in text
    assert "## Importance ranking (one flip per row)" in text
    assert "## Critical-path blame shift per flip" in text
    assert "## Infrastructure flips (determinism contract)" in text
    assert "invariant confirmed" in text


def test_report_json_is_loadable_and_versioned(grid, tmp_path):
    report, _ = grid
    written = write_importance(report, out_dir=str(tmp_path))
    raw = json.load(open(written["json"], encoding="utf-8"))
    assert raw["schema_version"] == 1
    assert raw["ranking"]
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ValueError, match="schema_version"):
        load_importance(str(bad))
