"""Critical-path extraction: reconciliation, blame, slack, off-path."""

from repro.observability.critical import (
    BLAME_CATEGORIES,
    critical_path,
    makespan_of_chain,
    render_critical,
)
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records


def chaotic_run():
    """One resumed run: restored baseline, a failed attempt + retry,
    and a winning attempt that lost a node mid-flight.

    Hand-picked numbers make every blame category non-zero and easy to
    assert: restore 10s; winning job sim 15s = startup 5 + map 3 +
    shuffle 1 + reduce 2 + overhead 4 (retries 2.5 + heartbeat 1.0 +
    recovery residue 0.5).
    """
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans", dataset="d") as run:
        journal.event(
            "checkpoint_restore",
            name="iter-0001",
            iteration=1,
            jobs=2,
            simulated_seconds=10.0,
            counters={},
        )
        with journal.span("iteration", "iteration-2", iteration=2, k_before=2) as it:
            with journal.span("job", "KMeans-2", attempt=1) as job:
                job.set(status="failed", error="TaskPermanentlyFailedError")
            journal.event("job_retry", job="KMeans-2", retry=1, backoff_seconds=2.5)
            with journal.span("job", "KMeans-2", attempt=2) as job:
                with journal.span("phase", "map", tasks=2, slots=2):
                    journal.task("KMeans-2-m-00000", 0, 3.0, 0.0)
                    journal.task("KMeans-2-m-00001", 1, 1.0, 0.0)
                with journal.span("phase", "reduce", tasks=1, slots=2):
                    journal.task("KMeans-2-r-00000", 0, 2.0, 0.0)
                journal.event(
                    "node_lost",
                    node="node-1",
                    deaths=1,
                    heartbeat_timeout_seconds=1.0,
                    blocks_lost=0,
                )
                job.set(
                    status="ok",
                    simulated_seconds=15.0,
                    overhead_seconds=4.0,
                    retries=1,
                    timing={
                        "startup_seconds": 5.0,
                        "map_seconds": 3.0,
                        "shuffle_seconds": 1.0,
                        "reduce_seconds": 2.0,
                    },
                    counters={},
                )
            it.set(k_after=2, simulated_seconds=15.0)
        run.set(status="ok", k_found=2, simulated_seconds=25.0)
    return replay_records(sink.records)


def test_reconciles_exactly_with_journal_accounting():
    replay = chaotic_run()
    path = critical_path(replay)
    assert path.total_seconds == replay.total_simulated_seconds()
    assert path.total_seconds == 25.0
    assert path.reconciled


def test_segments_tile_the_makespan():
    path = critical_path(chaotic_run())
    assert len(path.restores) == 1
    assert len(path.jobs) == 1
    restore = path.restores[0]
    assert (restore.start, restore.end, restore.seconds) == (0.0, 10.0, 10.0)
    assert restore.name == "iter-0001"
    assert restore.iteration == 1
    job = path.jobs[0]
    assert (job.start, job.end) == (10.0, 25.0)
    assert job.attempt == 2
    assert job.sim_seconds == 15.0
    # Consecutive segments abut: no gaps, no overlaps.
    assert job.start == restore.end


def test_blame_breakdown_values():
    path = critical_path(chaotic_run())
    assert path.blame["checkpointing"] == 10.0
    assert path.blame["startup"] == 5.0
    # compute = balanced bound: map 4/2 + reduce 2/2.
    assert path.blame["compute"] == 3.0
    # stragglers = recorded phase seconds above the balanced bound.
    assert path.blame["stragglers"] == 2.0
    assert path.blame["shuffle"] == 1.0
    assert path.blame["retries"] == 2.5
    assert path.blame["heartbeat"] == 1.0
    # overhead 4.0 minus the named causes lands in recovery.
    assert path.blame["recovery"] == 0.5
    assert set(path.blame) == set(BLAME_CATEGORIES)
    assert abs(path.blame_seconds - path.total_seconds) < 1e-9


def test_task_slack_and_critical_chain():
    path = critical_path(chaotic_run())
    map_phase = path.jobs[0].phases[0]
    assert map_phase.phase == "map"
    # LPT over [3.0, 1.0] on 2 slots: task 0 alone on the longest slot.
    assert map_phase.chain == [0]
    assert map_phase.chain_seconds == 3.0
    slack = {task.index: task for task in map_phase.tasks}
    assert slack[0].critical and slack[0].slack == 0.0
    assert not slack[1].critical and slack[1].slack == 2.0
    assert makespan_of_chain(map_phase.chain, [3.0, 1.0]) == map_phase.chain_seconds
    reduce_phase = path.jobs[0].phases[1]
    assert reduce_phase.chain == [0]
    assert all(task.slack == 0.0 for task in reduce_phase.tasks if task.critical)


def test_failed_attempts_are_off_path_with_zero_clock():
    path = critical_path(chaotic_run())
    assert len(path.off_path) == 1
    attempt = path.off_path[0]
    assert attempt.job == "KMeans-2"
    assert attempt.attempt == 1
    assert attempt.status == "failed"
    # The failed attempt contributes nothing to the path total; its
    # backoff is blamed on the winning attempt instead.
    assert path.total_seconds == 25.0


def test_negative_recovery_residue_is_clamped_and_surfaced():
    """Journalled backoff + heartbeat exceeding overhead_seconds is an
    accounting anomaly: recovery must clamp at zero and the negative
    residue land in the explicit ``residual`` bucket (with a rendered
    warning), not in a negative recovery percentage."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        with journal.span("iteration", "iteration-1", iteration=1) as it:
            journal.event("job_retry", job="KMeans-1", retry=1, backoff_seconds=3.0)
            with journal.span("job", "KMeans-1", attempt=2) as job:
                # overhead 1.0 < backoff 3.0: 2.0s of negative residue.
                job.set(
                    status="ok",
                    simulated_seconds=10.0,
                    overhead_seconds=1.0,
                    retries=1,
                    timing={"startup_seconds": 9.0},
                    counters={},
                )
            it.set(simulated_seconds=10.0)
        run.set(status="ok", simulated_seconds=10.0)
    path = critical_path(replay_records(sink.records))
    assert path.reconciled
    assert path.blame["retries"] == 3.0
    assert path.blame["recovery"] == 0.0
    assert path.blame["residual"] == -2.0
    # The decomposition still sums to the segment total.
    assert abs(path.blame_seconds - path.total_seconds) < 1e-9
    text = render_critical(path)
    assert "warning: accounting residual -2.00s" in text


def test_empty_journal_reconciles_trivially():
    path = critical_path(replay_records([]))
    assert path.total_seconds == 0.0
    assert path.journal_seconds == 0.0
    assert path.reconciled
    assert path.jobs == [] and path.restores == [] and path.off_path == []
    assert "(empty run)" in render_critical(path)


def test_reconciliation_is_bitwise_under_awkward_floats():
    """0.1-style floats don't sum associatively; the identity holds
    because critical_path replicates the replay's exact fold order."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    with journal.span("run", "gmeans") as run:
        for i in range(7):
            journal.event(
                "checkpoint_restore",
                name=f"iter-{i:04d}",
                iteration=i,
                jobs=1,
                simulated_seconds=0.3,
                counters={},
            )
        with journal.span("iteration", "iteration-8", iteration=8) as it:
            for j in range(100):
                with journal.span("job", f"KMeans-{j}", attempt=1) as job:
                    job.set(status="ok", simulated_seconds=0.1, counters={})
            it.set(simulated_seconds=10.0)
        run.set(status="ok")
    replay = replay_records(sink.records)
    path = critical_path(replay)
    assert path.total_seconds == replay.total_simulated_seconds()
    assert path.reconciled
    # And the per-segment placements are the fold's partial sums.
    assert path.jobs[-1].end == path.total_seconds


def test_as_dict_is_json_ready_and_canonical():
    import json

    path = critical_path(chaotic_run())
    payload = path.as_dict()
    text = json.dumps(payload, sort_keys=True)
    assert "wall" not in text
    assert payload["reconciled"] is True
    assert payload["blame"]["retries"] == 2.5
    assert len(payload["jobs"]) == 1 and len(payload["off_path"]) == 1


def test_render_mentions_verdict_and_off_path():
    text = render_critical(critical_path(chaotic_run()))
    assert "reconciled exactly" in text
    assert "1 failed/abandoned attempts" in text
    assert "checkpointing 10.00s" in text
    assert "heartbeat 1.00s" in text
