"""Metrics registry boundary snapshots and Prometheus rendering."""

from repro.mapreduce.counters import Counters
from repro.observability.metrics import (
    MetricsRegistry,
    escape_label_value,
    metric_name,
    render_prometheus,
)


def test_mark_returns_delta_and_advances():
    counters = Counters()
    counters.inc("g", "n", 2)
    registry = MetricsRegistry(counters)
    counters.inc("g", "n", 3)
    first = registry.mark()
    assert first.get("g", "n") == 3
    counters.inc("g", "n", 1)
    second = registry.mark()
    assert second.get("g", "n") == 1
    assert registry.mark().as_dict() == {}  # nothing accumulated since


def test_delta_does_not_advance():
    counters = Counters()
    registry = MetricsRegistry(counters)
    counters.inc("g", "n", 4)
    assert registry.delta().get("g", "n") == 4
    assert registry.delta().get("g", "n") == 4  # still there
    assert registry.mark().get("g", "n") == 4


def test_max_counters_survive_marks_as_high_water():
    counters = Counters()
    counters.set_max("g", "HEAP_MAX", 10)
    registry = MetricsRegistry(counters)
    counters.set_max("g", "HEAP_MAX", 5)  # below: no delta
    assert registry.mark().as_dict() == {}
    counters.set_max("g", "HEAP_MAX", 50)
    assert registry.mark().get("g", "HEAP_MAX") == 50


def test_metric_name_is_lowercase_prefixed():
    assert metric_name("framework", "MAP_TASKS") == "repro_framework_map_tasks"


def test_render_prometheus_types_and_sorting():
    counters = Counters()
    counters.inc("framework", "MAP_TASKS", 7)
    counters.set_max("user", "POINTS_PER_CLUSTER_MAX", 99)
    text = render_prometheus(counters, extra={"simulated_seconds_total": 1.5})
    lines = text.splitlines()
    assert "# TYPE repro_framework_map_tasks counter" in lines
    assert "repro_framework_map_tasks 7" in lines
    assert "# TYPE repro_user_points_per_cluster_max gauge" in lines
    assert "repro_user_points_per_cluster_max 99" in lines
    assert "# TYPE repro_simulated_seconds_total gauge" in lines
    assert "repro_simulated_seconds_total 1.5" in lines


def test_render_prometheus_deterministic():
    a, b = Counters(), Counters()
    a.inc("g", "x", 1)
    a.inc("g", "y", 2)
    b.inc("g", "y", 2)
    b.inc("g", "x", 1)
    assert render_prometheus(a) == render_prometheus(b)


def test_render_prometheus_emits_help_lines():
    counters = Counters()
    counters.inc("framework", "MAP_TASKS", 7)
    lines = render_prometheus(counters, extra={"live_k": 4.0}).splitlines()
    help_lines = [line for line in lines if line.startswith("# HELP")]
    assert any("repro_framework_map_tasks" in line for line in help_lines)
    assert any("repro_live_k" in line for line in help_lines)
    # One HELP immediately before each TYPE, exposition-format style.
    for index, line in enumerate(lines):
        if line.startswith("# TYPE"):
            assert lines[index - 1].startswith("# HELP")


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_render_prometheus_labels_are_escaped():
    counters = Counters()
    counters.inc("g", "n", 1)
    text = render_prometheus(counters, labels={"run": 'we"ird\\name'})
    assert 'repro_g_n{run="we\\"ird\\\\name"} 1' in text.splitlines()


def test_render_prometheus_renames_colliding_extra_gauge():
    counters = Counters()
    counters.inc("live", "k", 5)  # renders as repro_live_k (counter)
    lines = render_prometheus(counters, extra={"live_k": 9.0}).splitlines()
    assert "repro_live_k 5" in lines
    assert "repro_live_k_extra 9.0" in lines
    # The same metric name must never be declared with two types.
    type_names = [line.split()[2] for line in lines if line.startswith("# TYPE")]
    assert len(type_names) == len(set(type_names))


def test_render_prometheus_dedupes_extras_case_insensitively():
    """Gauge names derived from event attrs can differ only by case;
    lowercasing must not silently emit one metric twice."""
    counters = Counters()
    lines = render_prometheus(
        counters, extra={"live_K": 1.0, "live_k": 2.0}
    ).splitlines()
    sample_names = [
        line.split()[0] for line in lines if not line.startswith("#")
    ]
    assert len(sample_names) == len(set(sample_names)) == 2
    assert "repro_live_k" in sample_names
    assert "repro_live_k_extra" in sample_names


def test_render_prometheus_dedupes_counters_case_insensitively():
    """Two counter keys differing only by case lowercase to the same
    metric name; the second must be renamed, not emitted as duplicate
    HELP/TYPE/sample lines scrapers reject."""
    counters = Counters()
    counters.inc("live", "K", 1)
    counters.inc("live", "k", 2)
    lines = render_prometheus(counters).splitlines()
    sample_names = [
        line.split()[0] for line in lines if not line.startswith("#")
    ]
    assert len(sample_names) == len(set(sample_names)) == 2
    assert "repro_live_k" in sample_names
    assert "repro_live_k_extra" in sample_names
    type_names = [line.split()[2] for line in lines if line.startswith("# TYPE")]
    assert len(type_names) == len(set(type_names))


def test_render_prometheus_chained_collisions_stay_unique():
    counters = Counters()
    counters.inc("live", "k", 5)
    lines = render_prometheus(
        counters, extra={"live_k": 1.0, "live_K_extra": 2.0}
    ).splitlines()
    sample_names = [
        line.split()[0] for line in lines if not line.startswith("#")
    ]
    assert len(sample_names) == len(set(sample_names)) == 3
    type_names = [line.split()[2] for line in lines if line.startswith("# TYPE")]
    assert len(type_names) == len(set(type_names))
