"""Metrics registry boundary snapshots and Prometheus rendering."""

from repro.mapreduce.counters import Counters
from repro.observability.metrics import (
    MetricsRegistry,
    metric_name,
    render_prometheus,
)


def test_mark_returns_delta_and_advances():
    counters = Counters()
    counters.inc("g", "n", 2)
    registry = MetricsRegistry(counters)
    counters.inc("g", "n", 3)
    first = registry.mark()
    assert first.get("g", "n") == 3
    counters.inc("g", "n", 1)
    second = registry.mark()
    assert second.get("g", "n") == 1
    assert registry.mark().as_dict() == {}  # nothing accumulated since


def test_delta_does_not_advance():
    counters = Counters()
    registry = MetricsRegistry(counters)
    counters.inc("g", "n", 4)
    assert registry.delta().get("g", "n") == 4
    assert registry.delta().get("g", "n") == 4  # still there
    assert registry.mark().get("g", "n") == 4


def test_max_counters_survive_marks_as_high_water():
    counters = Counters()
    counters.set_max("g", "HEAP_MAX", 10)
    registry = MetricsRegistry(counters)
    counters.set_max("g", "HEAP_MAX", 5)  # below: no delta
    assert registry.mark().as_dict() == {}
    counters.set_max("g", "HEAP_MAX", 50)
    assert registry.mark().get("g", "HEAP_MAX") == 50


def test_metric_name_is_lowercase_prefixed():
    assert metric_name("framework", "MAP_TASKS") == "repro_framework_map_tasks"


def test_render_prometheus_types_and_sorting():
    counters = Counters()
    counters.inc("framework", "MAP_TASKS", 7)
    counters.set_max("user", "POINTS_PER_CLUSTER_MAX", 99)
    text = render_prometheus(counters, extra={"simulated_seconds_total": 1.5})
    lines = text.splitlines()
    assert "# TYPE repro_framework_map_tasks counter" in lines
    assert "repro_framework_map_tasks 7" in lines
    assert "# TYPE repro_user_points_per_cluster_max gauge" in lines
    assert "repro_user_points_per_cluster_max 99" in lines
    assert "# TYPE repro_simulated_seconds_total gauge" in lines
    assert "repro_simulated_seconds_total 1.5" in lines


def test_render_prometheus_deterministic():
    a, b = Counters(), Counters()
    a.inc("g", "x", 1)
    a.inc("g", "y", 2)
    b.inc("g", "y", 2)
    b.inc("g", "x", 1)
    assert render_prometheus(a) == render_prometheus(b)
