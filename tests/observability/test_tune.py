"""The autotuner: prediction ranking, validation, decision trail."""

import json

import pytest

from repro.observability.replay import replay_journal
from repro.observability.tune import (
    Candidate,
    TuneError,
    TuneSpace,
    best_config_payload,
    default_tune_spec,
    load_tune,
    load_tuned_config,
    render_tune,
    run_tune,
    verify_tune,
    write_tune,
)

SPEC = default_tune_spec(n_points=1200)


@pytest.fixture(scope="module")
def tuned(tmp_path_factory):
    journal_dir = tmp_path_factory.mktemp("tune-journals")
    report = run_tune(SPEC, journal_dir=str(journal_dir), top_n=3)
    return report, str(journal_dir)


def test_space_is_the_ordered_cartesian_product():
    space = TuneSpace(nodes=(2, 4), combiner=(True,), split_factor=(1.0, 2.0))
    assert space.candidates() == [
        Candidate(2, True, 1.0),
        Candidate(2, True, 2.0),
        Candidate(4, True, 1.0),
        Candidate(4, True, 2.0),
    ]


def test_baseline_candidate_maps_to_the_empty_scenario():
    cand = Candidate(nodes=SPEC.nodes, combiner=True, split_factor=1.0)
    assert cand.is_baseline(SPEC)
    scenario = Candidate(8, False, 2.0).scenario(SPEC)
    assert (scenario.nodes, scenario.combiner, scenario.split_factor) == (
        8,
        False,
        2.0,
    )


def test_predictions_cover_the_space_and_rank_ascending(tuned):
    report, _ = tuned
    assert len(report.predictions) == len(TuneSpace().candidates())
    seconds = [p.predicted_seconds for p in report.predictions]
    assert seconds == sorted(seconds)


def test_winner_validates_within_budget(tuned):
    report, _ = tuned
    assert report.winner is not None
    assert report.winner.rel_error <= report.budget
    assert report.ok
    # The winner is the measured-best validated candidate.
    assert report.winner.actual_seconds == min(
        v.actual_seconds for v in report.validated
    )


def test_decision_trail_is_journalled(tuned):
    report, journal_dir = tuned
    replay = replay_journal(f"{journal_dir}/decisions.jsonl")
    stages = [
        event.attrs.get("stage")
        for event in replay.events_named("tune_decision")
    ]
    assert stages[0] == "baseline"
    assert stages.count("predicted") == len(report.predictions)
    assert stages.count("validated") == len(report.validated)
    assert stages[-1] == "winner"


def test_written_report_verifies_exactly(tuned, tmp_path):
    report, _ = tuned
    written = write_tune(report, out_dir=str(tmp_path))
    loaded = load_tune(written["json"])
    best = load_tuned_config(written["best_config"])
    assert verify_tune(loaded, best_config=best) == []


def test_verify_catches_tampering(tuned, tmp_path):
    report, _ = tuned
    written = write_tune(report, out_dir=str(tmp_path))
    loaded = load_tune(written["json"])
    loaded["predictions"][0]["predicted_seconds"] += 0.25
    problems = verify_tune(loaded)
    assert problems and "do not reconcile" in problems[0]

    loaded = load_tune(written["json"])
    best = load_tuned_config(written["best_config"])
    best["config"]["nodes"] = 99
    problems = verify_tune(loaded, best_config=best)
    assert any("does not match the tune winner" in p for p in problems)


def test_best_config_payload_is_loadable(tuned, tmp_path):
    report, _ = tuned
    payload = best_config_payload(report)
    assert payload["within_budget"] is True
    assert payload["config"]["num_reduce_tasks"] == SPEC.num_reduce_tasks
    path = tmp_path / "best-config.json"
    path.write_text(json.dumps(payload))
    assert load_tuned_config(str(path))["config"] == payload["config"]
    with pytest.raises(TuneError, match="schema_version"):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 7}))
        load_tuned_config(str(bad))


def test_render_tune_sections(tuned):
    report, _ = tuned
    text = render_tune(report)
    assert "# Autotune report" in text
    assert "## Predicted ranking" in text
    assert "## Validation (predicted vs re-run)" in text
    assert "## Decision" in text
    assert "within the 0.02 budget" in text


def test_run_tune_rejects_bad_inputs():
    with pytest.raises(TuneError, match="top_n"):
        run_tune(SPEC, top_n=0)
    with pytest.raises(TuneError, match="empty"):
        run_tune(SPEC, TuneSpace(nodes=(), combiner=(), split_factor=()))
