"""The declarative component manifest: the single source of flip lists."""

import pytest

from repro.observability.components import (
    LAYERS,
    MANIFEST,
    Component,
    ComponentError,
    component,
    component_values,
    engine_components,
    engine_variants,
)


def test_manifest_names_are_unique_and_layers_valid():
    names = [comp.name for comp in MANIFEST]
    assert len(names) == len(set(names))
    assert all(comp.layer in LAYERS for comp in MANIFEST)


def test_lookup_and_unknown_name():
    assert component("combiner").target == "gmeans.use_combiner"
    with pytest.raises(ComponentError, match="unknown component"):
        component("warp-drive")


def test_values_default_to_baseline_plus_flips():
    vote = component("vote_rule")
    assert vote.values == ("weighted_majority", "any_reject", "all_reject")
    assert component_values("vote_rule") == vote.values


def test_sweep_overrides_value_order():
    # The evaluation ablations iterate the sweep, which may order the
    # baseline away from the front (paper-literal variants first).
    assert component_values("anchor") == ("previous", "centroid")
    assert component_values("test_strategy") == ("mapper", "reducer", "auto")
    assert component_values("kmeans_iterations") == (1, 2, 3, 4)


def test_target_splits_into_namespace_and_field():
    comp = component("split_factor")
    assert comp.namespace == "workload"
    assert comp.field == "split_factor"


def test_infrastructure_components_are_simulated_invariant():
    by_layer = {
        comp.name: comp.simulated_invariant for comp in engine_components()
    }
    assert by_layer["executor"] and by_layer["dispatch"] and by_layer["data_plane"]
    assert not by_layer["combiner"]


def test_labels_render_booleans_and_overrides():
    assert component("locality").label(True) == "on"
    assert component("combiner").label(False) == "off"
    assert component("checkpointing").label("checkpoints") == "every-iteration"
    assert component("test_strategy").label("reducer") == "always-TestClusters"


def test_engine_variants_cover_every_engine_flip():
    variants = engine_variants()
    assert [(c.name, v) for c, v in variants][:2] == [
        ("combiner", False),
        ("test_strategy", "reducer"),
    ]
    expected = sum(len(c.flips) for c in engine_components())
    assert len(variants) == expected


def test_engine_variants_subset_and_rejections():
    subset = engine_variants(["split_factor"])
    assert [(c.name, v) for c, v in subset] == [
        ("split_factor", 0.5),
        ("split_factor", 2.0),
    ]
    with pytest.raises(ComponentError, match="evaluation-only"):
        engine_variants(["vote_rule"])
    with pytest.raises(ComponentError, match="unknown"):
        engine_variants(["nope"])


def test_component_validation():
    with pytest.raises(ValueError, match="layer"):
        Component("x", "d", "cosmic", "a.b", baseline=1, flips=(2,))
    with pytest.raises(ValueError, match="dotted"):
        Component("x", "d", "runtime", "nodot", baseline=1, flips=(2,))
    with pytest.raises(ValueError, match="must not appear in flips"):
        Component("x", "d", "runtime", "a.b", baseline=1, flips=(1, 2))
    with pytest.raises(ValueError, match="at least one flip"):
        Component("x", "d", "runtime", "a.b", baseline=1)
