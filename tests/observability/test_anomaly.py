"""In-flight anomaly detection: spec parsing, each detector's firing
rule, the live watchdog's re-entrant journal emission, and the exact
replay reconciliation contract (``repro anomalies --check``)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.observability.anomaly import (
    ANOMALY,
    ANOMALY_CONFIG,
    ANOMALY_TYPES,
    COST_MODEL_DRIFT,
    FAULT_STORM,
    HEAP_BREACH_PREDICTED,
    SKEW_DRIFT,
    STRAGGLER_ONSET,
    AnomalyConfig,
    AnomalyDetectors,
    AnomalyWatchdog,
    anomaly_watchdog_for,
    detect_anomalies,
    job_family,
    parse_anomaly_spec,
    reconcile_anomalies,
    recorded_anomaly_config,
    render_anomalies,
    render_reconciliation,
)
from repro.observability.journal import (
    ITERATION,
    JOB,
    PHASE,
    RUN,
    InMemoryJournalSink,
    Journal,
)
from repro.observability.live import LiveRunState, TelemetrySink
from repro.observability.slo import SLORule, parse_slo_rules

MIB = 1024 * 1024


# -- spec / config ---------------------------------------------------------


def test_parse_spec_off_forms_return_none():
    for spec in (None, "", "0", "off", "false", "no", "  OFF  "):
        assert parse_anomaly_spec(spec) is None


def test_parse_spec_on_forms_return_defaults():
    for spec in ("1", "on", "true", "YES"):
        assert parse_anomaly_spec(spec) == AnomalyConfig()


def test_parse_spec_knob_overrides():
    config = parse_anomaly_spec("straggler_ratio=1.5, storm_events=3")
    assert config.straggler_ratio == 1.5
    assert config.storm_events == 3
    assert config.skew_factor == AnomalyConfig().skew_factor


def test_parse_spec_rejects_unknown_duplicate_and_non_numeric():
    with pytest.raises(ConfigurationError):
        parse_anomaly_spec("nope=1")
    with pytest.raises(ConfigurationError):
        parse_anomaly_spec("storm_events=2,storm_events=3")
    with pytest.raises(ConfigurationError):
        parse_anomaly_spec("skew_factor=wide")


def test_config_validates_thresholds():
    with pytest.raises(ConfigurationError):
        AnomalyConfig(straggler_ratio=0.0)
    with pytest.raises(ConfigurationError):
        AnomalyConfig(storm_events=0)
    with pytest.raises(ConfigurationError):
        AnomalyConfig(heap_fraction=-0.5)


def test_config_round_trips_through_dict():
    config = AnomalyConfig(straggler_ratio=2.5, storm_events=3)
    assert AnomalyConfig.from_dict(config.as_dict()) == config


def test_job_family_strips_iteration_suffixes():
    assert job_family("TestClusters-i3") == "TestClusters"
    assert job_family("KMeans-i2s1") == "KMeans"
    assert job_family("KMeansAndFindNewCenters-i12") == "KMeansAndFindNewCenters"
    assert job_family("oddjob") == "oddjob"


# -- synthetic streams -----------------------------------------------------


def armed_journal(config):
    inner = InMemoryJournalSink()
    sink = TelemetrySink(inner, LiveRunState())
    journal = Journal(sink)
    sink.anomaly = AnomalyWatchdog(journal, config)
    return journal, inner, sink


def emit_job(
    journal,
    name,
    map_seconds=(1.0, 1.0),
    reduce_seconds=(1.0,),
    map_attrs=None,
    reduce_attrs=None,
    job_attrs=None,
    events=(),
):
    with journal.span(JOB, name, attempt=1) as job:
        with journal.span(PHASE, "map", tasks=len(map_seconds), slots=2) as phase:
            for index, seconds in enumerate(map_seconds):
                journal.task(f"{name}-m-{index}", index, seconds, 0.0)
            if map_attrs:
                phase.set(**map_attrs)
        for event_name, attrs in events:
            journal.event(event_name, **attrs)
        with journal.span(PHASE, "reduce", tasks=len(reduce_seconds), slots=2) as phase:
            for index, seconds in enumerate(reduce_seconds):
                journal.task(f"{name}-r-{index}", index, seconds, 0.0)
            if reduce_attrs:
                phase.set(**reduce_attrs)
        job.set(status="ok", simulated_seconds=10.0, **(job_attrs or {}))


def test_straggler_onset_fires_on_phase_end_with_exact_stats():
    journal, inner, sink = armed_journal(
        AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    )
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
    fired = sink.anomaly.fired
    assert [f["anomaly"] for f in fired] == [STRAGGLER_ONSET]
    assert fired[0]["straggler_ratio"] == pytest.approx(9.0)
    assert fired[0]["phase"] == "map"
    # Below the min-task floor the same skew stays silent.
    journal2, _, sink2 = armed_journal(
        AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    )
    with journal2.span(RUN, "gmeans"):
        emit_job(journal2, "KMeans-i1", map_seconds=(1.0, 9.0))
    assert sink2.anomaly.fired == []


def test_skew_drift_measured_against_first_seen_family_baseline():
    journal, _, sink = armed_journal(AnomalyConfig(skew_factor=2.0))
    with journal.span(RUN, "gmeans"):
        # Balanced baseline (imbalance 1.0), then one bucket takes
        # nearly everything (imbalance 2.8 = 2.8x the baseline).
        emit_job(
            journal,
            "TestClusters-i1",
            reduce_attrs={"bucket_records": [10, 10, 10]},
        )
        emit_job(
            journal,
            "TestClusters-i2",
            reduce_attrs={"bucket_records": [28, 1, 1]},
        )
        # Fires once per family, not again on a third skewed job.
        emit_job(
            journal,
            "TestClusters-i3",
            reduce_attrs={"bucket_records": [29, 1, 0]},
        )
    fired = [f for f in sink.anomaly.fired if f["anomaly"] == SKEW_DRIFT]
    assert len(fired) == 1
    assert fired[0]["job"] == "TestClusters-i2"
    assert fired[0]["drift"] == pytest.approx(2.8)


def test_heap_breach_predicted_fires_before_reduce_from_map_growth():
    journal, inner, sink = armed_journal(AnomalyConfig(heap_fraction=1.0))
    with journal.span(RUN, "gmeans"):
        journal.event("strategy_decision", usable_heap_bytes=10 * MIB)
        # Baseline: 100 map-output records cost 6 MiB of per-key heap.
        emit_job(
            journal,
            "TestClusters-i1",
            map_attrs={"map_output_records": 100},
            reduce_attrs={"max_key_heap_bytes": 6 * MIB},
        )
        # Double the map output: projected 12 MiB > 10 MiB usable.
        emit_job(
            journal,
            "TestClusters-i2",
            map_attrs={"map_output_records": 200},
            reduce_attrs={"max_key_heap_bytes": 6 * MIB},
        )
    fired = [f for f in sink.anomaly.fired if f["anomaly"] == HEAP_BREACH_PREDICTED]
    assert len(fired) == 1
    assert fired[0]["job"] == "TestClusters-i2"
    assert fired[0]["projected_heap_bytes"] == pytest.approx(12 * MIB)
    # The prediction lands in the journal before the reduce phase opens.
    records = inner.records
    breach_seq = next(
        r["seq"]
        for r in records
        if r.get("name") == ANOMALY
        and r["attrs"]["anomaly"] == HEAP_BREACH_PREDICTED
    )
    reduce_starts = [
        r["seq"]
        for r in records
        if r.get("type") == "span_start"
        and r.get("name") == "reduce"
        and r["seq"] > breach_seq
    ]
    assert reduce_starts, "the offending reduce phase must start after the firing"


def test_cost_model_drift_fires_on_recorded_vs_predicted_gap():
    journal, _, sink = armed_journal(AnomalyConfig(residual_threshold=0.25))
    with journal.span(RUN, "gmeans"):
        # Two 1s map tasks on 2 slots predict a 1s phase; the journal
        # says 2s — a +50% residual.
        emit_job(
            journal,
            "KMeans-i1",
            map_seconds=(1.0, 1.0),
            reduce_seconds=(1.0,),
            job_attrs={
                "timing": {"map_seconds": 2.0, "reduce_seconds": 1.0},
            },
        )
    fired = [f for f in sink.anomaly.fired if f["anomaly"] == COST_MODEL_DRIFT]
    assert len(fired) == 1
    assert fired[0]["phase"] == "map"
    assert fired[0]["residual"] == pytest.approx(0.5)


def test_fault_storm_counts_events_per_simulated_window():
    journal, _, sink = armed_journal(
        AnomalyConfig(storm_window_seconds=8.0, storm_events=2)
    )
    with journal.span(RUN, "gmeans"):
        # Window 0: two retries trip the storm; the third stays silent.
        emit_job(
            journal,
            "KMeans-i1",
            events=[
                ("job_retry", {"attempt": 1}),
                ("job_retry", {"attempt": 2}),
                ("job_retry", {"attempt": 3}),
            ],
        )
        # The ok job advances the simulated clock by 10s into window 1,
        # where a fresh pair of retries trips a fresh storm.
        emit_job(
            journal,
            "KMeans-i2",
            events=[
                ("job_retry", {"attempt": 1}),
                ("job_retry", {"attempt": 2}),
            ],
        )
    fired = [f for f in sink.anomaly.fired if f["anomaly"] == FAULT_STORM]
    assert [f["window"] for f in fired] == [0, 1]
    assert all(f["events"] == 2 for f in fired)


def test_watchdog_emits_config_then_nested_events_with_correct_parents():
    journal, inner, sink = armed_journal(
        AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    )
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
    records = inner.records
    # anomaly_config rides right behind the first record.
    assert records[1]["name"] == ANOMALY_CONFIG
    assert records[1]["seq"] == 1
    anomaly = next(r for r in records if r.get("name") == ANOMALY)
    trigger = next(
        r
        for r in records
        if r.get("type") == "span_end" and anomaly["seq"] == r["seq"] + 1
    )
    # Emitted while the map span_end was being sunk: the map span is
    # already popped, so the anomaly's parent is the enclosing job span.
    job_span = next(
        r["span"] for r in records if r.get("type") == "span_start" and r.get("kind") == JOB
    )
    assert anomaly["parent"] == job_span
    assert trigger["type"] == "span_end"
    # Sequence numbers stay gapless and ordered despite nesting.
    assert [r["seq"] for r in records] == list(range(len(records)))


def test_live_state_counts_anomalies_and_serves_them():
    journal, _, sink = armed_journal(
        AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    )
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
    state = sink.state
    assert state.anomaly_counts == {STRAGGLER_ONSET: 1}
    assert state.snapshot()["anomaly_counts"] == {STRAGGLER_ONSET: 1}
    gauges = state.live_gauges()
    assert gauges["live_anomalies"] == 1.0
    assert gauges[f"live_anomalies_{STRAGGLER_ONSET}"] == 1.0


def test_anomaly_watchdog_for_reads_the_armed_sink():
    journal, _, sink = armed_journal(AnomalyConfig())
    assert anomaly_watchdog_for(journal) is sink.anomaly
    assert anomaly_watchdog_for(None) is None
    assert anomaly_watchdog_for(Journal(InMemoryJournalSink())) is None


# -- offline detection and reconciliation ----------------------------------


def recorded_run(config=None):
    config = config or AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    journal, inner, sink = armed_journal(config)
    with journal.span(RUN, "gmeans"):
        with journal.span(ITERATION, "iteration-1", iteration=1):
            emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
            emit_job(
                journal,
                "KMeans-i2s0",
                map_seconds=(1.0, 1.0, 1.0, 9.0),
                events=[("job_retry", {"attempt": 1})],
            )
    return inner.records, sink.anomaly.fired


def test_detect_anomalies_re_derives_live_firings():
    records, fired = recorded_run()
    assert recorded_anomaly_config(records) == AnomalyConfig(
        straggler_ratio=2.0, straggler_min_tasks=4
    )
    assert detect_anomalies(records) == fired


def test_reconcile_agrees_with_live_recorded_journal():
    records, _ = recorded_run()
    outcome = reconcile_anomalies(records)
    assert outcome.ok
    assert outcome.mismatches == []
    assert len(outcome.expected) == len(outcome.recorded)
    assert outcome.as_dict()["ok"] is True


def test_reconcile_flags_dropped_recorded_event():
    records, _ = recorded_run()
    tampered = [
        r
        for i, r in enumerate(records)
        if not (
            r.get("name") == ANOMALY
            and all(rec.get("name") != ANOMALY for rec in records[:i])
        )
    ]
    outcome = reconcile_anomalies(tampered)
    assert not outcome.ok
    assert any("missing from the journal" in m for m in outcome.mismatches)


def test_reconcile_flags_tampered_attrs():
    import copy

    records, _ = recorded_run()
    tampered = copy.deepcopy(records)
    for record in tampered:
        if record.get("name") == ANOMALY:
            record["attrs"]["straggler_ratio"] = 99.0
            break
    outcome = reconcile_anomalies(tampered)
    assert not outcome.ok
    assert any("differs from the derived" in m for m in outcome.mismatches)


def test_reconcile_flags_forged_event_on_clean_journal():
    journal = Journal(InMemoryJournalSink())
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1")
        journal.event(ANOMALY, anomaly=STRAGGLER_ONSET, straggler_ratio=9.0)
    outcome = reconcile_anomalies(journal.sink.records)
    assert outcome.config is None
    assert not outcome.ok
    assert any("did not derive" in m for m in outcome.mismatches)


def test_renderers_cover_every_type_and_verdicts():
    records, fired = recorded_run()
    text = render_anomalies(fired, AnomalyConfig())
    assert "straggler_onset" in text and "firing(s)" in text
    samples = [
        {"anomaly": SKEW_DRIFT, "job": "T-i2", "family": "T", "imbalance": 2.0,
         "baseline_imbalance": 1.0, "drift": 2.0, "threshold": 2.0},
        {"anomaly": HEAP_BREACH_PREDICTED, "job": "T-i2",
         "projected_heap_bytes": 1.0, "usable_heap_bytes": 1,
         "heap_fraction": 1.0},
        {"anomaly": COST_MODEL_DRIFT, "job": "K", "phase": "map",
         "predicted_seconds": 1.0, "recorded_seconds": 2.0, "residual": 0.5},
        {"anomaly": FAULT_STORM, "window": 0, "window_seconds": 60.0,
         "events": 8, "threshold": 8, "trigger": "job_retry"},
        {"anomaly": "unknown_future_type"},
    ]
    rendered = render_anomalies(samples)
    for sample in samples:
        assert str(sample["anomaly"]) in rendered
    ok = render_reconciliation(reconcile_anomalies(records))
    assert "OK" in ok
    first_anomaly = next(
        i for i, r in enumerate(records) if r.get("name") == ANOMALY
    )
    bad = render_reconciliation(
        reconcile_anomalies(records[:first_anomaly] + records[first_anomaly + 1 :])
    )
    assert "FAILED" in bad


# -- SLO integration -------------------------------------------------------


def test_parse_slo_rules_on_anomaly():
    rules = parse_slo_rules("on_anomaly=heap_breach_predicted,max_k=4")
    assert rules[0].anomaly == "heap_breach_predicted"
    assert rules[0].limit == 0.0
    assert rules[0].key == "on_anomaly:heap_breach_predicted"
    warn = parse_slo_rules("warn:on_anomaly=fault_storm")[0]
    assert warn.action == "warn"
    # Distinct types are not duplicates; the same type twice is.
    assert len(parse_slo_rules("on_anomaly=fault_storm,on_anomaly=skew_drift")) == 2
    with pytest.raises(ConfigurationError):
        parse_slo_rules("on_anomaly=fault_storm,on_anomaly=fault_storm")
    with pytest.raises(ConfigurationError):
        parse_slo_rules("on_anomaly=not_a_type")
    with pytest.raises(ConfigurationError):
        SLORule(name="max_k", limit=4.0, anomaly="fault_storm")
    assert set(ANOMALY_TYPES) >= {"fault_storm", "heap_breach_predicted"}


def test_on_anomaly_rule_breaches_when_the_detector_fires():
    import io

    from repro.observability.slo import SLOWatchdog

    stream = io.StringIO()
    watchdog = SLOWatchdog(
        parse_slo_rules("on_anomaly=straggler_onset"), stream=stream
    )
    inner = InMemoryJournalSink()
    sink = TelemetrySink(inner, LiveRunState(), watchdog=watchdog)
    journal = Journal(sink)
    sink.anomaly = AnomalyWatchdog(
        journal, AnomalyConfig(straggler_ratio=2.0, straggler_min_tasks=4)
    )
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
    assert watchdog.abort_requested is not None
    assert watchdog.abort_requested.rule == "on_anomaly:straggler_onset"
    assert "SLO breach: on_anomaly:straggler_onset" in stream.getvalue()


def test_unarmed_run_emits_no_anomaly_records():
    inner = InMemoryJournalSink()
    journal = Journal(TelemetrySink(inner, LiveRunState()))
    with journal.span(RUN, "gmeans"):
        emit_job(journal, "KMeans-i1", map_seconds=(1.0, 1.0, 1.0, 9.0))
    assert all(
        record.get("name") not in (ANOMALY, ANOMALY_CONFIG)
        for record in inner.records
    )
    assert reconcile_anomalies(inner.records).ok
