"""Live telemetry: state aggregation, tee sink, renderer, HTTP endpoint,
journal tailing and the environment wiring."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.observability.journal import (
    ITERATION,
    JOB,
    PHASE,
    RUN,
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    canonical_records,
)
from repro.observability.live import (
    LIVE_ENV,
    METRICS_PORT_ENV,
    LiveRenderer,
    LiveRunState,
    MetricsServer,
    TelemetrySink,
    follow_journal,
    telemetry_journal_from_env,
    telemetry_requested,
)
from repro.observability.anomaly import ANOMALY_ENV
from repro.observability.slo import SLO_ENV

MIB = 1024 * 1024


def drive_run(journal, iterations=2):
    """Emit a small synthetic G-means-shaped run through ``journal``."""
    with journal.span(RUN, "gmeans", algorithm="gmeans", k_init=2) as run:
        k = 2
        for i in range(1, iterations + 1):
            with journal.span(
                ITERATION, f"iteration-{i}", iteration=i, k_before=k
            ) as iteration:
                with journal.span(JOB, f"KMeans-i{i}", attempt=1) as job:
                    with journal.span(PHASE, "map", tasks=2):
                        journal.task("m0", 0, 1.0, 0.01)
                        journal.task("m1", 1, 1.0, 0.01)
                    with journal.span(PHASE, "reduce", tasks=1):
                        journal.task("r0", 0, 1.0, 0.01)
                    job.set(
                        status="ok",
                        counters={"framework": {"MAP_TASKS": 2}},
                        simulated_seconds=10.0,
                        heap_bytes=64 * MIB,
                        max_reduce_heap_bytes=32 * MIB,
                    )
                split = 1 if i < iterations else 0
                iteration.set(
                    k_after=k + split,
                    clusters_split=split,
                    strategy="all",
                    simulated_seconds=10.0,
                )
                k += split
        run.set(status="ok", k_found=k)


def telemetry_journal(**kwargs):
    inner = InMemoryJournalSink()
    sink = TelemetrySink(inner, **kwargs)
    return Journal(sink), inner, sink.state


# -- LiveRunState aggregation --------------------------------------------


def test_state_aggregates_run_stream():
    journal, _, state = telemetry_journal()
    drive_run(journal)
    assert state.run_name == "gmeans"
    assert state.run_status == "ok"
    assert state.iterations_done == 2
    assert state.k_trajectory == [3, 3]
    assert state.k_current == 3
    assert state.jobs_ok == 2
    assert state.jobs_failed == 0
    assert state.counters.get("framework", "MAP_TASKS") == 4
    assert state.simulated_seconds == pytest.approx(20.0)
    assert state.max_heap_fraction == pytest.approx(0.5)
    assert state.last_iteration["clusters_split"] == 0


def test_eta_scales_last_iteration_by_k_growth():
    journal, _, state = telemetry_journal()
    with journal.span(RUN, "gmeans", k_init=2):
        with journal.span(ITERATION, "iteration-1", iteration=1, k_before=2) as it:
            it.set(k_after=4, clusters_split=2, simulated_seconds=10.0)
        # Mid-run after a splitting iteration: next round ~ 10s * 4/2.
        assert state.eta_simulated_seconds() == pytest.approx(20.0)
    # Run closed: nothing left to estimate.
    assert state.eta_simulated_seconds() == 0.0


def test_eta_zero_when_nothing_split():
    journal, _, state = telemetry_journal()
    drive_run(journal, iterations=1)  # single iteration splits nothing
    assert state.eta_simulated_seconds() == 0.0


def test_task_records_and_ticks_drive_phase_progress():
    journal, _, state = telemetry_journal()
    with journal.span(RUN, "gmeans"):
        with journal.span(ITERATION, "iteration-1", iteration=1, k_before=2):
            with journal.span(JOB, "KMeans-i1", attempt=1):
                with journal.span(PHASE, "map", tasks=3):
                    assert (state.phase_tasks_done, state.phase_tasks_total) == (0, 3)
                    # Executor ticks arrive before the task records do.
                    journal.sink.task_progress("map", 1, 3)
                    assert state.phase_tasks_done == 1
                    journal.task("m0", 0, 1.0, 0.01)
                    journal.task("m1", 1, 1.0, 0.01)
                    # Records after ticks never overshoot the total.
                    assert state.phase_tasks_done <= 3
                # Phase end clamps to complete.
                assert state.phase_tasks_done == 3


def test_event_counting_and_checkpoint_restore_baseline():
    journal, _, state = telemetry_journal()
    with journal.span(RUN, "gmeans"):
        journal.event("job_retry", job="KMeans-i1")
        journal.event(
            "checkpoint_restore",
            iteration=3,
            counters={"framework": {"MAP_TASKS": 12}},
            simulated_seconds=33.0,
            jobs=6,
        )
    assert state.job_retries == 1
    assert state.counters.get("framework", "MAP_TASKS") == 12
    assert state.simulated_seconds == pytest.approx(33.0)
    assert state.jobs_ok == 6


def test_live_gauges_and_snapshot_are_json_ready():
    journal, _, state = telemetry_journal()
    drive_run(journal)
    gauges = state.live_gauges(now=0.0)
    assert gauges["live_k"] == 3.0
    assert gauges["live_iterations_done"] == 2.0
    assert gauges["live_jobs_ok"] == 2.0
    assert gauges["live_run_complete"] == 1.0
    assert all(name.startswith("live_") for name in gauges)
    snap = state.snapshot(now=0.0)
    json.dumps(snap)  # must round-trip as JSON
    assert snap["run_status"] == "ok"
    assert snap["k_trajectory"] == [3, 3]
    assert snap["counters"]["framework"]["MAP_TASKS"] == 4


# -- TelemetrySink tee ----------------------------------------------------


def test_telemetry_sink_tees_records_unmodified():
    plain = Journal(InMemoryJournalSink())
    drive_run(plain)
    teed, inner, _ = telemetry_journal()
    drive_run(teed)
    assert canonical_records(inner.records) == canonical_records(
        plain.sink.records
    )


def test_telemetry_sink_notifies_listeners():
    seen = []
    inner = InMemoryJournalSink()
    sink = TelemetrySink(inner, listeners=[lambda rec, st: seen.append(rec)])
    journal = Journal(sink)
    drive_run(journal, iterations=1)
    assert seen == inner.records


# -- LiveRenderer ---------------------------------------------------------


def test_renderer_non_tty_prints_one_line_per_iteration():
    stream = io.StringIO()  # StringIO.isatty() is False
    journal, _, _ = telemetry_journal(renderer=LiveRenderer(stream=stream))
    drive_run(journal, iterations=2)
    journal.close()
    lines = [line for line in stream.getvalue().splitlines() if line]
    # Two iteration closes + the run close, nothing else, no ANSI.
    assert len(lines) == 3
    assert all(line.startswith("[live]") for line in lines)
    assert "\x1b[" not in stream.getvalue()


class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


def test_renderer_tty_repaints_in_place_with_throttle():
    stream = _FakeTTY()
    ticks = iter(float(i) for i in range(1000))
    renderer = LiveRenderer(stream=stream, min_interval=10.0, clock=lambda: next(ticks))
    state = LiveRunState()
    state.consume(
        {"type": "span_start", "span": 0, "kind": RUN, "name": "gmeans", "attrs": {}}
    )
    renderer.update(state, None)  # first paint
    painted = stream.getvalue()
    assert "[live]" in painted
    renderer.update(state, None)  # throttled: clock moved only 1s < 10s
    assert stream.getvalue() == painted
    # A span boundary bypasses the throttle and repaints in place.
    renderer.update(state, {"type": "span_end", "span": 0, "attrs": {"status": "ok"}})
    assert "\x1b[" in stream.getvalue()
    renderer.finish(state)
    assert stream.getvalue().endswith("\n")


# -- MetricsServer --------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def test_metrics_server_serves_metrics_healthz_and_state():
    journal, _, state = telemetry_journal()
    drive_run(journal)
    server = MetricsServer(state, port=0)
    try:
        assert server.port > 0
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        text = body.decode("utf-8")
        assert "repro_framework_map_tasks 4" in text
        assert "repro_live_k 3.0" in text
        assert "# HELP repro_live_k" in text

        status, _, body = _get(server.url + "/healthz")
        assert (status, body) == (200, b"ok\n")

        status, ctype, body = _get(server.url + "/state")
        assert status == 200
        assert ctype == "application/json"
        snap = json.loads(body)
        assert snap["run"] == "gmeans"
        assert snap["jobs_ok"] == 2

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
    finally:
        server.close()


# -- follow_journal -------------------------------------------------------


def test_follow_journal_tails_a_growing_file(tmp_path):
    path = str(tmp_path / "follow.jsonl")
    first = Journal(InMemoryJournalSink())
    drive_run(first)
    records = first.sink.records
    split = len(records) // 2

    sink = FileJournalSink(path)
    for record in records[:split]:
        sink.emit(record)
    sink.close()

    def grow(_interval):
        tail = FileJournalSink(path)
        for record in records[split:]:
            tail.emit(record)
        tail.close()

    updates = []
    replay = follow_journal(
        path, lambda rep, recs: updates.append(len(recs)), interval=0.0, sleep=grow
    )
    assert updates == [split, len(records)]
    assert replay.roots and all(root.complete for root in replay.roots)


def test_follow_journal_tolerates_missing_file_and_truncated_tail(tmp_path):
    path = str(tmp_path / "late.jsonl")
    first = Journal(InMemoryJournalSink())
    drive_run(first, iterations=1)

    def appear(_interval):
        sink = FileJournalSink(path)
        for record in first.sink.records:
            sink.emit(record)
        sink.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type":"span_sta')  # killed mid-write

    updates = []
    replay = follow_journal(
        path,
        lambda rep, recs: updates.append(len(recs)),
        interval=0.0,
        sleep=appear,
        max_polls=5,
    )
    assert updates == [len(first.sink.records)]  # truncated tail dropped
    assert replay is not None and replay.roots[0].complete


def test_follow_journal_tolerates_mid_character_truncation(tmp_path):
    # Regression: a record killed mid-way through a multi-byte UTF-8
    # character used to raise UnicodeDecodeError out of load_journal
    # (text-mode read decodes the torn byte sequence before the
    # line-level truncation tolerance can drop it).
    path = str(tmp_path / "torn.jsonl")
    first = Journal(InMemoryJournalSink())
    drive_run(first, iterations=1)

    def appear(_interval):
        sink = FileJournalSink(path)
        for record in first.sink.records:
            sink.emit(record)
        sink.close()
        payload = '{"type":"event","name":"café-prob'.encode("utf-8")
        with open(path, "ab") as fh:
            fh.write(payload[:-6])  # cut inside the two-byte "é"

    updates = []
    replay = follow_journal(
        path,
        lambda rep, recs: updates.append(len(recs)),
        interval=0.0,
        sleep=appear,
        max_polls=5,
    )
    assert updates == [len(first.sink.records)]  # torn tail dropped
    assert replay is not None and replay.roots[0].complete


def test_follow_journal_picks_up_completed_truncated_record(tmp_path):
    # A mid-line tail is not corruption, just an in-flight write: once
    # the writer finishes the line on a later poll, the record lands.
    path = str(tmp_path / "inflight.jsonl")
    first = Journal(InMemoryJournalSink())
    drive_run(first, iterations=1)
    records = first.sink.records
    sink = FileJournalSink(path)
    for record in records[:-1]:
        sink.emit(record)
    sink.close()
    import json as _json

    last_line = _json.dumps(records[-1], separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(last_line[:12])  # the final record is mid-write

    def finish(_interval):
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(last_line[12:] + "\n")

    updates = []
    replay = follow_journal(
        path,
        lambda rep, recs: updates.append(len(recs)),
        interval=0.0,
        sleep=finish,
        max_polls=5,
    )
    assert updates[0] == len(records) - 1  # partial tail dropped...
    assert updates[-1] == len(records)  # ...then completed next poll
    assert replay.roots[0].complete


def test_follow_journal_respects_max_polls(tmp_path):
    path = str(tmp_path / "stalled.jsonl")
    sink = FileJournalSink(path)
    sink.emit(
        {"type": "span_start", "span": 0, "parent": None, "kind": RUN,
         "name": "gmeans", "attrs": {}, "seq": 0}
    )
    sink.close()
    polls = []
    replay = follow_journal(
        path, lambda rep, recs: None, interval=0.0,
        sleep=lambda s: polls.append(s), max_polls=3,
    )
    assert len(polls) == 2  # max_polls bounds the wait on a stalled run
    assert replay is not None and not replay.roots[0].complete


# -- environment wiring ---------------------------------------------------


def test_telemetry_requested_switches():
    assert not telemetry_requested({})
    assert not telemetry_requested({LIVE_ENV: "0"})
    assert not telemetry_requested({ANOMALY_ENV: "off"})
    assert telemetry_requested({LIVE_ENV: "1"})
    assert telemetry_requested({METRICS_PORT_ENV: "8787"})
    assert telemetry_requested({SLO_ENV: "max_k=4"})
    assert telemetry_requested({ANOMALY_ENV: "1"})
    assert telemetry_requested({ANOMALY_ENV: "storm_events=3"})


def test_telemetry_journal_from_env_builds_and_caches():
    assert telemetry_journal_from_env({}) is None
    env = {SLO_ENV: "max_k=123456"}  # unique spec: the cache is process-wide
    journal = telemetry_journal_from_env(env)
    assert journal is not None and journal.enabled
    assert isinstance(journal.sink, TelemetrySink)
    assert journal.sink.watchdog is not None
    assert not journal.sink.inner.enabled  # no journal path: null inner
    assert telemetry_journal_from_env(env) is journal  # cached per config


def test_telemetry_from_env_arms_anomaly_watchdog():
    from repro.observability.anomaly import AnomalyConfig, AnomalyWatchdog

    env = {ANOMALY_ENV: "straggler_ratio=123.5"}  # unique: process-wide cache
    journal = telemetry_journal_from_env(env)
    assert journal is not None and journal.enabled
    assert isinstance(journal.sink.anomaly, AnomalyWatchdog)
    assert journal.sink.anomaly.journal is journal  # emits re-entrantly
    assert journal.sink.anomaly.config == AnomalyConfig(straggler_ratio=123.5)
    assert journal.sink.watchdog is None  # no SLO rules requested
    assert telemetry_journal_from_env(env) is journal  # spec is a cache key


def test_journal_from_env_composes_anomaly_with_file_and_slo(tmp_path):
    # Journal.from_env is the runtime's single entry point: a file
    # journal, SLO rules and the anomaly detectors must all compose
    # into one telemetry journal from the same environment.
    from repro.observability.anomaly import AnomalyWatchdog
    from repro.observability.journal import JOURNAL_ENV, FileJournalSink

    path = str(tmp_path / "combo.jsonl")
    env = {
        JOURNAL_ENV: path,
        SLO_ENV: "max_k=123457",  # unique: process-wide cache
        ANOMALY_ENV: "1",
    }
    journal = Journal.from_env(environ=env)
    assert journal.enabled
    assert isinstance(journal.sink, TelemetrySink)
    assert isinstance(journal.sink.inner, FileJournalSink)
    assert journal.sink.watchdog is not None
    assert isinstance(journal.sink.anomaly, AnomalyWatchdog)
    # The anomaly spec is part of the cache key: flipping it builds a
    # distinct journal instead of reusing the armed one.
    assert Journal.from_env(environ=env) is journal
    other = Journal.from_env(environ={**env, ANOMALY_ENV: "off"})
    assert other is not journal
    assert other.sink.anomaly is None
