"""Per-task profiling: real CPU/memory measurement and the env switch."""

import tracemalloc

from repro.observability.profiling import (
    PROFILE_TASKS_ENV,
    TaskProfile,
    TaskProfiler,
    env_flag,
    profiling_from_env,
    task_profiler,
)


def test_env_flag_truthiness():
    for value in ("1", "true", "True", " YES ", "on"):
        assert env_flag(value), value
    for value in (None, "", "0", "false", "off", "nope"):
        assert not env_flag(value), repr(value)


def test_profiling_from_env_reads_flag():
    assert profiling_from_env({PROFILE_TASKS_ENV: "1"}) is True
    assert profiling_from_env({PROFILE_TASKS_ENV: "0"}) is False
    assert profiling_from_env({}) is False


def test_task_profiler_measures_cpu_and_peak_memory():
    with TaskProfiler() as profile:
        blob = [bytes(64 * 1024) for _ in range(16)]  # ~1 MiB live at peak
        total = sum(len(chunk) for chunk in blob)
    assert total == 16 * 64 * 1024
    assert profile.cpu_seconds >= 0.0
    assert profile.peak_memory_bytes >= 16 * 64 * 1024
    # The profiler started tracemalloc itself, so it must stop it again.
    assert not tracemalloc.is_tracing()


def test_task_profiler_nests_under_active_tracemalloc():
    tracemalloc.start()
    try:
        with TaskProfiler() as profile:
            data = bytes(256 * 1024)
        assert len(data) == 256 * 1024
        assert profile.peak_memory_bytes >= 256 * 1024
        # Outer trace owned by the test must survive the profiler.
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()


def test_task_profiler_cpu_only_skips_tracemalloc():
    with TaskProfiler(memory=False) as profile:
        data = bytes(256 * 1024)
        assert not tracemalloc.is_tracing()  # no tracing armed
    assert len(data) == 256 * 1024
    assert profile.cpu_seconds >= 0.0
    assert profile.peak_memory_bytes is None  # not measured != zero


def test_task_profiler_factory():
    null = task_profiler(False)
    with null as profile:
        pass
    assert isinstance(profile, TaskProfile)
    assert profile.cpu_seconds == 0.0
    assert profile.peak_memory_bytes is None
    assert task_profiler(False) is null  # shared no-op instance
    cpu_only = task_profiler(True)
    assert isinstance(cpu_only, TaskProfiler) and not cpu_only.memory
    assert task_profiler(True, memory=True).memory
