"""Run registry: scanning, index, dashboard rendering, report files."""

import json
import os

import pytest

from repro.observability.registry import (
    INDEX_SCHEMA_VERSION,
    RegistryError,
    registry_index,
    render_dashboard,
    render_dashboard_html,
    scan_registry,
    write_report,
)

from tests.observability.test_critical import chaotic_run
from tests.observability.test_export import aborted_run


def write_journal(path, replay):
    with open(path, "w", encoding="utf-8") as handle:
        for record in replay.records:
            handle.write(json.dumps(record) + "\n")


@pytest.fixture
def rundir(tmp_path):
    """Three heterogeneous journals: chaos, a repeat, and an SLO abort."""
    runs = tmp_path / "runs"
    runs.mkdir()
    write_journal(runs / "01-chaos.jsonl", chaotic_run())
    write_journal(runs / "02-chaos-again.jsonl", chaotic_run())
    write_journal(runs / "03-slo-abort.jsonl", aborted_run())
    (runs / "notes.txt").write_text("not a journal")
    return str(runs)


def test_scan_orders_by_filename_and_strips_suffix(rundir):
    entries = scan_registry(rundir)
    assert [e.label for e in entries] == [
        "01-chaos",
        "02-chaos-again",
        "03-slo-abort",
    ]
    assert all(e.path.endswith(".jsonl") for e in entries)


def test_entry_facts_from_chaotic_journal(rundir):
    entry = scan_registry(rundir)[0]
    assert entry.makespan == 25.0
    assert entry.reconciled
    assert entry.blame["checkpointing"] == 10.0
    assert entry.wasted_attempts == 1  # the failed first attempt
    assert entry.slo_abort is False and entry.error is None
    assert entry.k_path == "2 -> 2"


def test_entry_facts_from_slo_abort(rundir):
    entry = scan_registry(rundir)[-1]
    assert entry.slo_abort is True
    assert entry.error == "SLOViolationError"
    assert entry.makespan == 7.0


def test_registry_index_payload(rundir):
    index = registry_index(scan_registry(rundir))
    assert index["schema_version"] == INDEX_SCHEMA_VERSION
    assert len(index["runs"]) == 3
    # JSON-serializable end to end.
    payload = json.loads(json.dumps(index))
    assert payload["runs"][0]["label"] == "01-chaos"
    assert payload["runs"][0]["summary"]["simulated_seconds"] == 25.0


def test_dashboard_sections(rundir):
    text = render_dashboard(scan_registry(rundir))
    assert "# Run registry dashboard" in text
    assert "3 journal(s), ordered by filename." in text
    assert "## Makespan trend" in text
    assert "## Critical-path blame over time" in text
    assert "## SLO & fault history" in text
    assert "| 01-chaos | 25.00 " in text
    assert "SLO abort" in text  # the verdict column
    assert "**SLO ABORT**" in text  # the history section
    assert "#" * 5 in text  # trend bars render


def test_dashboard_html_is_self_contained(rundir):
    page = render_dashboard_html(scan_registry(rundir))
    assert page.startswith("<!doctype html>")
    assert "<pre>" in page
    assert "01-chaos" in page
    # Markdown pipes survive escaping inside the <pre> body.
    assert "| 01-chaos |" in page


def test_write_report_artifacts(rundir, tmp_path):
    out = str(tmp_path / "reports")
    written = write_report(rundir, out_dir=out, basename="dash")
    assert set(written) == {"index", "markdown", "html"}
    for path in written.values():
        assert os.path.exists(path)
    index = json.load(open(written["index"], encoding="utf-8"))
    assert index["schema_version"] == INDEX_SCHEMA_VERSION
    assert "# Run registry dashboard" in open(written["markdown"]).read()
    no_html = write_report(rundir, out_dir=out, basename="bare", with_html=False)
    assert set(no_html) == {"index", "markdown"}


def _ablation_fixture() -> dict:
    return {
        "ok": True,
        "variants": [
            {
                "component": "combiner",
                "label": "off",
                "delta_makespan": 0.5,
                "delta_fraction": 0.02,
                "simulated_invariant": False,
            },
            {
                "component": "executor",
                "label": "threads",
                "delta_makespan": 0.0,
                "delta_fraction": 0.0,
                "simulated_invariant": True,
                "invariant_ok": True,
            },
        ],
    }


def _tune_fixture() -> dict:
    return {
        "ok": True,
        "budget": 0.02,
        "predictions": [{}] * 18,
        "validated": [{}] * 3,
        "improvement_fraction": 0.01,
        "winner": {
            "candidate": {"nodes": 8, "combiner": True, "split_factor": 1.0},
            "actual_seconds": 3.5,
            "rel_error": 0.001,
        },
    }


def test_dashboard_without_reports_has_no_ablation_section(rundir):
    assert "## Ablations & tuning" not in render_dashboard(scan_registry(rundir))


def test_dashboard_renders_ablation_and_tune_reports(rundir):
    text = render_dashboard(
        scan_registry(rundir),
        ablation=_ablation_fixture(),
        tune=_tune_fixture(),
    )
    assert "## Ablations & tuning" in text
    assert "| 1 | combiner=off | +0.500 | +2.0% | - |" in text
    assert "| 2 | executor=threads | +0.000 | +0.0% | ok |" in text
    assert "winner: nodes=8, combiner=on, split_factor=1.0" in text
    assert "prediction error 0.0010 against the 0.02 budget (within)" in text


def test_write_report_picks_up_reports_in_out_dir(rundir, tmp_path):
    out = tmp_path / "reports"
    out.mkdir()
    (out / "ablation.json").write_text(json.dumps(_ablation_fixture()))
    (out / "tune.json").write_text(json.dumps(_tune_fixture()))
    (out / "unparseable.json").write_text("{nope")
    written = write_report(rundir, out_dir=str(out))
    markdown = open(written["markdown"], encoding="utf-8").read()
    assert "## Ablations & tuning" in markdown
    assert "combiner=off" in markdown
    assert "## Ablations &amp; tuning" in open(written["html"]).read()


def test_write_report_tolerates_corrupt_reports(rundir, tmp_path):
    out = tmp_path / "reports"
    out.mkdir()
    (out / "ablation.json").write_text("{not json")
    (out / "tune.json").write_text(json.dumps(["not", "a", "dict"]))
    written = write_report(rundir, out_dir=str(out))
    markdown = open(written["markdown"], encoding="utf-8").read()
    assert "## Ablations & tuning" not in markdown


def test_scan_rejects_bad_directories(tmp_path):
    with pytest.raises(RegistryError, match="not a directory"):
        scan_registry(str(tmp_path / "missing"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(RegistryError, match="no .jsonl journals"):
        scan_registry(str(empty))
