"""Journal analytics: skew profiling, heap audit, cost residuals."""

import math

import pytest

from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import build_world
from repro.observability.analyze import (
    DurationStats,
    _percentile,
    analyze_replay,
    render_analysis,
    render_heap_audit,
    render_residuals,
    render_skew,
)
from repro.observability.journal import InMemoryJournalSink, Journal
from repro.observability.replay import replay_records


def record_gmeans(
    seed=7,
    nodes=4,
    reduce_slots_per_node=8,
    n_clusters=3,
    strategy="auto",
):
    """One seeded G-means run recorded into an in-memory journal."""
    sink = InMemoryJournalSink()
    journal = Journal(sink)
    mixture = generate_gaussian_mixture(
        n_points=600, n_clusters=n_clusters, dimensions=2, rng=seed
    )
    world = build_world(
        mixture,
        nodes=nodes,
        target_splits=6,
        reduce_slots_per_node=reduce_slots_per_node,
        seed=seed,
        journal=journal,
    )
    config = MRGMeansConfig(seed=seed, strategy=strategy)
    result = MRGMeans(world.runtime, config).fit(world.dataset)
    return replay_records(sink.records), result


@pytest.fixture(scope="module")
def mapper_side_report():
    replay, _ = record_gmeans()
    return analyze_replay(replay)


@pytest.fixture(scope="module")
def reducer_side_report():
    # 2 nodes x 1 reduce slot: any iteration testing >= 3 clusters
    # crosses the parallelism threshold, and 600 points easily fit the
    # default 1 GiB task heap -> the rule switches to reducer-side.
    replay, _ = record_gmeans(nodes=2, reduce_slots_per_node=1, n_clusters=4)
    return analyze_replay(replay)


# -- percentiles / duration stats ---------------------------------------


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(values, 0.0) == 1.0
    assert _percentile(values, 1.0) == 4.0
    assert _percentile(values, 0.5) == 2.5
    assert _percentile([5.0], 0.95) == 5.0
    assert _percentile([], 0.5) == 0.0


def test_duration_stats_straggler_ratio():
    stats = DurationStats.from_seconds([1.0, 1.0, 1.0, 3.0])
    assert stats.count == 4
    assert stats.max_seconds == 3.0
    assert stats.p50_seconds == 1.0
    assert stats.straggler_ratio == 3.0
    assert DurationStats.from_seconds([]) is None


def test_duration_stats_zero_p50_gives_zero_ratio():
    stats = DurationStats.from_seconds([0.0, 0.0, 0.0])
    assert stats.straggler_ratio == 0.0


# -- skew profiles -------------------------------------------------------


def test_skew_profiles_cover_every_job(mapper_side_report):
    report = mapper_side_report
    assert report.jobs, "run recorded no jobs"
    assert report.map_tasks is not None and report.map_tasks.count > 0
    names = {profile.job for profile in report.jobs}
    assert any(name.startswith("KMeans") for name in names)


def test_reduce_phases_carry_shuffle_skew(mapper_side_report):
    reduce_phases = [
        phase
        for profile in mapper_side_report.jobs
        for phase in profile.phases
        if phase.phase == "reduce"
    ]
    assert reduce_phases, "no reduce phases profiled"
    for phase in reduce_phases:
        assert phase.bucket_records is not None
        assert phase.bucket_bytes is not None
        assert len(phase.bucket_records) == len(phase.bucket_bytes)
        assert sum(phase.bucket_records) > 0
        assert phase.record_skew >= 1.0
        assert phase.byte_skew >= 1.0
        assert phase.max_key_records >= 1
    map_phases = [
        phase
        for profile in mapper_side_report.jobs
        for phase in profile.phases
        if phase.phase == "map"
    ]
    assert all(phase.bucket_records is None for phase in map_phases)


# -- heap-model audit ----------------------------------------------------


def test_heap_audit_all_consistent_mapper_side(mapper_side_report):
    report = mapper_side_report
    assert report.heap_audit, "no strategy decisions recorded"
    assert report.heap_audit_consistent
    assert all(not entry.forced for entry in report.heap_audit)


def test_heap_audit_reducer_side_measures_actual_heap(reducer_side_report):
    report = reducer_side_report
    assert report.heap_audit_consistent
    reducer_entries = [
        entry for entry in report.heap_audit if entry.strategy == "reducer"
    ]
    assert reducer_entries, "small cluster never switched to reducer-side"
    for entry in reducer_entries:
        assert entry.clusters_to_test > entry.total_reduce_slots
        assert entry.predicted_heap_bytes <= entry.usable_heap_bytes
        assert entry.test_job is not None
        assert entry.test_job.startswith("TestClusters")
        assert entry.actual_heap_bytes > 0
        assert entry.relative_error is not None
        assert math.isfinite(entry.relative_error)
        # Prediction is points-in-biggest-cluster x 64 B; the actual
        # buffer is bounded by it (clusters can only shrink under the
        # assignment the prediction assumed a worst case for).
        assert entry.actual_heap_bytes <= entry.predicted_heap_bytes


def test_forced_strategy_is_flagged_but_consistent():
    replay, _ = record_gmeans(strategy="reducer")
    report = analyze_replay(replay)
    assert report.heap_audit
    assert report.heap_audit_consistent
    forced = [entry for entry in report.heap_audit if entry.forced]
    assert forced, "forcing reducer-side on a big cluster should be forced"
    assert all(entry.strategy == "reducer" for entry in forced)
    assert all(entry.rule_strategy == "mapper" for entry in forced)


def test_tampered_decision_is_flagged_inconsistent():
    replay, _ = record_gmeans()
    events = replay.events_named("strategy_decision")
    assert events
    # Flip a recorded verdict: the audit must catch that the strategy
    # no longer follows from its own recorded inputs.
    events[0].attrs["strategy"] = "reducer"
    events[0].attrs["rule_strategy"] = "reducer"
    report = analyze_replay(replay)
    assert not report.heap_audit_consistent
    assert "INCONSISTENT" in render_heap_audit(report)


# -- cost-model residuals ------------------------------------------------


def test_residuals_match_runtime_charging(mapper_side_report):
    report = mapper_side_report
    assert report.residuals, "no successful jobs with timing"
    # The runtime charges phases with the same LPT scheduler the
    # analyzer re-runs, so recorded journals reconcile exactly.
    assert report.max_abs_relative_residual < 1e-9
    phase_names = {
        phase.phase for job in report.residuals for phase in job.phases
    }
    assert {"map", "shuffle"} <= phase_names


# -- rendering -----------------------------------------------------------


def test_render_analysis_sections(mapper_side_report):
    text = render_analysis(mapper_side_report)
    assert "== task skew / stragglers" in text
    assert "== heap-model audit (Figure 2)" in text
    assert "== cost-model residuals" in text
    assert "all consistent with estimate_reducer_heap_bytes inputs" in text
    assert "max |relative residual|" in text


def test_render_on_empty_journal():
    report = analyze_replay(replay_records([]))
    assert "(no tasks)" in render_skew(report)
    assert "(no strategy decisions recorded)" in render_heap_audit(report)
    assert "(no successful jobs with timing recorded)" in render_residuals(
        report
    )
    assert report.heap_audit_consistent  # vacuously
    assert report.max_abs_relative_residual == 0.0


def test_as_dict_round_trips_to_json(mapper_side_report):
    import json

    payload = json.dumps(mapper_side_report.as_dict())
    data = json.loads(payload)
    assert data["heap_audit_consistent"] is True
    assert data["map_tasks"]["count"] > 0
    assert data["residuals"][0]["phases"][0]["relative_residual"] is not None
