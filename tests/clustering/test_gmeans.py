"""Serial G-means: recovers k, split decisions, options."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.clustering.gmeans import (
    GMeansOptions,
    gmeans,
    pick_children,
    split_decision,
)


def test_recovers_k_on_demo(demo_mixture):
    result = gmeans(demo_mixture.points, rng=1)
    assert 10 <= result.k <= 14
    assert result.k_history[0] == 1
    assert result.iterations == len(result.k_history)


def test_single_gaussian_stays_one_cluster(rng):
    pts = rng.normal(size=(1000, 3))
    result = gmeans(pts, rng=2)
    assert result.k == 1
    assert result.ad_tests >= 1


def test_two_blobs_split_once(rng):
    pts = np.vstack(
        [rng.normal(-10, 1, (400, 2)), rng.normal(10, 1, (400, 2))]
    )
    result = gmeans(pts, rng=3)
    assert result.k == 2


def test_k_max_caps_growth(demo_mixture):
    result = gmeans(demo_mixture.points, GMeansOptions(k_max=4), rng=4)
    assert result.k <= 4


def test_k_init_seeds_multiple(demo_mixture):
    result = gmeans(demo_mixture.points, GMeansOptions(k_init=4), rng=5)
    assert result.k >= 4
    assert result.k_history[0] == 4


def test_min_split_size_blocks_small_clusters(rng):
    pts = np.vstack([rng.normal(-5, 1, (30, 2)), rng.normal(5, 1, (30, 2))])
    result = gmeans(pts, GMeansOptions(min_split_size=1000), rng=6)
    assert result.k == 1


def test_random_child_init_also_works(demo_mixture):
    result = gmeans(
        demo_mixture.points, GMeansOptions(child_init="random"), rng=7
    )
    assert 8 <= result.k <= 16


def test_invalid_options():
    with pytest.raises(ConfigurationError):
        GMeansOptions(child_init="magic")
    with pytest.raises(ConfigurationError):
        GMeansOptions(k_init=0)


def test_pick_children_pca_direction(rng):
    """PCA children straddle the center along the dominant axis."""
    pts = np.column_stack([rng.normal(0, 10, 500), rng.normal(0, 0.1, 500)])
    children = pick_children(pts, pts.mean(axis=0), "pca", rng)
    v = children[0] - children[1]
    assert abs(v[0]) > 10 * abs(v[1])


def test_pick_children_random_returns_member_points(rng):
    pts = rng.normal(size=(50, 2))
    children = pick_children(pts, pts.mean(axis=0), "random", rng)
    for c in children:
        assert np.any(np.all(pts == c, axis=1))


def test_pick_children_degenerate_cluster(rng):
    assert pick_children(np.ones((1, 2)), np.ones(2), "random", rng) is None
    assert pick_children(np.ones((10, 2)), np.ones(2), "pca", rng) is None


def test_split_decision_gaussian_vs_bimodal(rng):
    gaussian = rng.normal(size=(2000, 2))
    children = np.array([[1.0, 0.0], [-1.0, 0.0]])
    should_split, stat = split_decision(gaussian, children, alpha=1e-4)
    assert not should_split

    bimodal = np.vstack(
        [rng.normal(-6, 1, (1000, 2)), rng.normal(6, 1, (1000, 2))]
    )
    children = np.array([[6.0, 0.0], [-6.0, 0.0]])
    should_split, stat = split_decision(bimodal, children, alpha=1e-4)
    assert should_split
    assert stat > 1.8692


def test_split_decision_degenerate_direction(rng):
    pts = rng.normal(size=(100, 2))
    children = np.array([[1.0, 1.0], [1.0, 1.0]])
    should_split, stat = split_decision(pts, children, alpha=1e-4)
    assert not should_split
    assert stat == 0.0


def test_inertia_reported_matches_assignment(demo_mixture):
    result = gmeans(demo_mixture.points, rng=8)
    d = np.linalg.norm(
        demo_mixture.points[:, None, :] - result.centers[None, :, :], axis=2
    )
    assert result.inertia == pytest.approx((d.min(axis=1) ** 2).sum(), rel=1e-9)
