"""X-means and the spherical BIC."""

import math

import numpy as np
import pytest

from repro.clustering.lloyd import lloyd_kmeans
from repro.clustering.xmeans import spherical_bic, xmeans
from repro.data.generator import paper_family_dataset


def test_bic_prefers_true_structure(rng):
    pts = np.vstack(
        [rng.normal(-8, 1, (300, 4)), rng.normal(8, 1, (300, 4))]
    )
    one = lloyd_kmeans(pts, k=1, init="random", rng=0)
    two = lloyd_kmeans(pts, k=2, init="kmeans++", rng=0)
    bic1 = spherical_bic(pts, one.centers, one.labels)
    bic2 = spherical_bic(pts, two.centers, two.labels)
    assert bic2 > bic1


def test_bic_penalises_overfitting(rng):
    pts = rng.normal(size=(400, 4))
    one = lloyd_kmeans(pts, k=1, init="random", rng=1)
    many = lloyd_kmeans(pts, k=8, init="kmeans++", rng=1)
    assert spherical_bic(pts, one.centers, one.labels) > spherical_bic(
        pts, many.centers, many.labels
    )


def test_bic_degenerate_fit_is_minus_inf():
    pts = np.ones((10, 2))
    labels = np.zeros(10, dtype=np.int64)
    assert spherical_bic(pts, np.ones((1, 2)), labels) == -math.inf


def test_xmeans_recovers_k_high_dim():
    mixture = paper_family_dataset(n_clusters=6, n_points=3000, rng=9)
    result = xmeans(mixture.points, rng=10)
    assert 5 <= result.k <= 9


def test_xmeans_single_gaussian(rng):
    pts = rng.normal(size=(800, 6))
    result = xmeans(pts, rng=11)
    assert result.k == 1


def test_xmeans_respects_k_max(demo_mixture):
    result = xmeans(demo_mixture.points, k_init=2, k_max=4, rng=12)
    assert result.k <= 4


def test_xmeans_k_init_floor(demo_mixture):
    result = xmeans(demo_mixture.points, k_init=3, rng=13)
    assert result.k >= 3
    assert result.k_history[0] == 3


def test_xmeans_low_dim_needs_k_init_2(demo_mixture):
    """The documented BIC caveat: k_init=2 recovers the demo clusters."""
    result = xmeans(demo_mixture.points, k_init=2, rng=14)
    assert 8 <= result.k <= 13
