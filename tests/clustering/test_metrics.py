"""Clustering metrics: distances, assignment, WCSS."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.clustering.metrics import (
    assign_nearest,
    average_distance,
    cluster_sizes,
    explained_variance_ratio,
    pairwise_sq_distances,
    wcss,
)


def test_pairwise_sq_distances_hand_computed():
    pts = np.array([[0.0, 0.0], [3.0, 4.0]])
    ctr = np.array([[0.0, 0.0], [6.0, 8.0]])
    d = pairwise_sq_distances(pts, ctr)
    assert d == pytest.approx(np.array([[0.0, 100.0], [25.0, 25.0]]))


def test_pairwise_never_negative():
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(100, 5)) * 1e-8  # rounding-prone scale
    d = pairwise_sq_distances(pts, pts[:10])
    assert np.all(d >= 0.0)


def test_pairwise_dimension_mismatch():
    with pytest.raises(DataFormatError):
        pairwise_sq_distances(np.ones((2, 3)), np.ones((2, 2)))


def test_assign_nearest_basic():
    pts = np.array([[0.1], [0.9], [2.1]])
    ctr = np.array([[0.0], [1.0], [2.0]])
    labels, sq = assign_nearest(pts, ctr)
    assert labels.tolist() == [0, 1, 2]
    assert sq == pytest.approx(np.array([0.01, 0.01, 0.01]))


def test_assign_nearest_chunked_matches_direct():
    rng = np.random.default_rng(1)
    pts = rng.normal(size=(40000, 3))  # forces multiple chunks
    ctr = rng.normal(size=(7, 3))
    labels, sq = assign_nearest(pts, ctr)
    direct = pairwise_sq_distances(pts, ctr)
    assert np.array_equal(labels, np.argmin(direct, axis=1))
    assert np.allclose(sq, direct.min(axis=1))


def test_assign_nearest_tie_goes_to_lowest_index():
    pts = np.array([[0.5]])
    ctr = np.array([[0.0], [1.0]])
    labels, _ = assign_nearest(pts, ctr)
    assert labels[0] == 0


def test_wcss_optimal_vs_given_labels():
    pts = np.array([[0.0], [1.0], [10.0]])
    ctr = np.array([[0.0], [10.0]])
    optimal = wcss(pts, ctr)
    forced = wcss(pts, ctr, labels=np.array([1, 1, 1]))
    assert optimal == pytest.approx(1.0)
    assert forced > optimal


def test_wcss_zero_for_perfect_centers():
    pts = np.array([[1.0, 1.0], [2.0, 2.0]])
    assert wcss(pts, pts) == 0.0


def test_wcss_rejects_bad_labels_shape():
    with pytest.raises(DataFormatError):
        wcss(np.ones((3, 1)), np.ones((1, 1)), labels=np.array([0, 0]))


def test_average_distance_hand_computed():
    pts = np.array([[0.0, 0.0], [0.0, 2.0]])
    ctr = np.array([[0.0, 1.0]])
    assert average_distance(pts, ctr) == pytest.approx(1.0)


def test_cluster_sizes_counts_and_validates():
    sizes = cluster_sizes(np.array([0, 0, 2]), k=4)
    assert sizes.tolist() == [2, 0, 1, 0]
    with pytest.raises(DataFormatError):
        cluster_sizes(np.array([0, 5]), k=3)


def test_explained_variance_bounds():
    rng = np.random.default_rng(2)
    pts = np.concatenate([rng.normal(-5, 1, (100, 2)), rng.normal(5, 1, (100, 2))])
    good = explained_variance_ratio(pts, np.array([[-5.0, -5.0], [5.0, 5.0]]))
    bad = explained_variance_ratio(pts, pts.mean(axis=0, keepdims=True))
    assert 0.0 <= bad < 0.05
    assert 0.9 < good <= 1.0


def test_explained_variance_degenerate_data():
    pts = np.ones((10, 2))
    assert explained_variance_ratio(pts, np.ones((1, 2))) == 1.0
