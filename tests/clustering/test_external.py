"""External metrics: ARI, NMI, purity."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.clustering.external import (
    adjusted_rand_index,
    clustering_report,
    normalized_mutual_information,
    purity,
)


def test_identical_partitions_are_perfect():
    labels = np.array([0, 0, 1, 1, 2, 2])
    assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
    assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)
    assert purity(labels, labels) == pytest.approx(1.0)


def test_permuted_label_ids_are_still_perfect():
    a = np.array([0, 0, 1, 1, 2, 2])
    b = np.array([2, 2, 0, 0, 1, 1])
    assert adjusted_rand_index(a, b) == pytest.approx(1.0)
    assert normalized_mutual_information(a, b) == pytest.approx(1.0)
    assert purity(a, b) == pytest.approx(1.0)


def test_ari_hand_computed():
    """Classic example: two 3-cluster partitions of 6 points."""
    a = np.array([0, 0, 0, 1, 1, 1])
    b = np.array([0, 0, 1, 1, 2, 2])
    # Contingency: rows (a) x cols (b) = [[2,1,0],[0,1,2]]
    # sum_cells C2 = 1 + 0 + 0 + 0 + 0 + 1 = 2; rows: C2(3)+C2(3)=6;
    # cols: C2(2)*3 = 3; total C2(6)=15.
    # ARI = (2 - 6*3/15) / (0.5*(6+3) - 6*3/15) = (2-1.2)/(4.5-1.2)
    assert adjusted_rand_index(a, b) == pytest.approx(0.8 / 3.3)


def test_random_labels_score_near_zero_ari():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 5, size=3000)
    b = rng.integers(0, 5, size=3000)
    assert abs(adjusted_rand_index(a, b)) < 0.02
    assert normalized_mutual_information(a, b) < 0.02


def test_single_cluster_vs_many():
    a = np.array([0, 0, 1, 1])
    b = np.zeros(4, dtype=int)
    assert adjusted_rand_index(a, b) == pytest.approx(0.0, abs=1e-12)
    assert purity(a, b) == pytest.approx(0.5)


def test_purity_increases_with_oversplitting():
    truth = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    coarse = np.array([0, 0, 0, 1, 1, 1, 1, 1])
    shattered = np.arange(8)
    assert purity(truth, shattered) == 1.0
    assert purity(truth, coarse) < 1.0
    # ...which is why ARI penalises the shattering instead.
    assert adjusted_rand_index(truth, shattered) < adjusted_rand_index(
        truth, coarse
    )


def test_report_bundles_all():
    labels = np.array([0, 1, 0, 1])
    report = clustering_report(labels, labels)
    assert set(report) == {"ari", "nmi", "purity"}
    assert all(v == pytest.approx(1.0) for v in report.values())


def test_validation():
    with pytest.raises(DataFormatError):
        adjusted_rand_index(np.array([0, 1]), np.array([0]))
    with pytest.raises(DataFormatError):
        purity(np.array([]), np.array([]))
    with pytest.raises(DataFormatError):
        normalized_mutual_information(np.array([-1, 0]), np.array([0, 0]))


def test_gmeans_clustering_scores_high_on_demo(demo_mixture):
    """Integration: serial G-means labels vs generator truth."""
    from repro.clustering import gmeans

    result = gmeans(demo_mixture.points, rng=9)
    report = clustering_report(demo_mixture.labels, result.labels)
    assert report["ari"] > 0.9
    assert report["nmi"] > 0.9
    assert report["purity"] > 0.95
