"""Lloyd's algorithm: steps, convergence, empty clusters."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.clustering.lloyd import lloyd_kmeans, lloyd_step
from repro.clustering.metrics import wcss


def test_lloyd_step_recomputes_means():
    pts = np.array([[0.0], [2.0], [10.0], [12.0]])
    centers = np.array([[1.0], [9.0]])
    new_centers, labels, inertia = lloyd_step(pts, centers)
    assert labels.tolist() == [0, 0, 1, 1]
    assert new_centers == pytest.approx(np.array([[1.0], [11.0]]))
    assert inertia == pytest.approx(1 + 1 + 1 + 9)


def test_lloyd_step_keeps_empty_cluster_center():
    pts = np.array([[0.0], [1.0]])
    centers = np.array([[0.5], [100.0]])
    new_centers, labels, _ = lloyd_step(pts, centers)
    assert np.all(labels == 0)
    assert new_centers[1, 0] == 100.0


def test_lloyd_recovers_separated_clusters(small_mixture):
    result = lloyd_kmeans(
        small_mixture.points, k=3, init="kmeans++", rng=0
    )
    assert result.k == 3
    assert result.converged
    # Each true center has a fitted center within 1 std.
    for true_center in small_mixture.centers:
        d = np.linalg.norm(result.centers - true_center, axis=1)
        assert d.min() < 1.0


def test_wcss_never_increases_over_iterations(small_mixture):
    pts = small_mixture.points
    centers = lloyd_kmeans(pts, k=5, init="random", rng=3, max_iterations=1).centers
    previous = wcss(pts, centers)
    for _ in range(10):
        centers, _, _ = lloyd_step(pts, centers)
        current = wcss(pts, centers)
        assert current <= previous + 1e-9
        previous = current


def test_explicit_init_matrix():
    pts = np.array([[0.0], [1.0], [10.0]])
    result = lloyd_kmeans(pts, init=np.array([[0.0], [10.0]]))
    assert result.k == 2
    assert result.centers == pytest.approx(np.array([[0.5], [10.0]]))


def test_init_matrix_k_mismatch():
    with pytest.raises(ConfigurationError):
        lloyd_kmeans(np.ones((5, 1)), k=3, init=np.ones((2, 1)))


def test_init_method_requires_k():
    with pytest.raises(ConfigurationError):
        lloyd_kmeans(np.ones((5, 1)), init="random")


def test_iteration_budget_respected():
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(500, 4))
    result = lloyd_kmeans(pts, k=20, init="random", rng=1, max_iterations=2)
    assert result.iterations <= 2


def test_converged_flag_on_stable_input():
    pts = np.array([[0.0], [0.0], [10.0], [10.0]])
    result = lloyd_kmeans(pts, init=np.array([[0.0], [10.0]]))
    assert result.converged
    assert result.iterations == 1


def test_reseed_empty_recovers_lost_cluster():
    pts = np.vstack(
        [np.zeros((50, 2)), np.full((50, 2), 100.0), np.full((2, 2), 200.0)]
    )
    # Third center starts far away from everything, glued to nothing.
    init = np.array([[0.0, 0.0], [100.0, 100.0], [-500.0, -500.0]])
    frozen = lloyd_kmeans(pts, init=init, reseed_empty=False, max_iterations=5)
    reseeded = lloyd_kmeans(pts, init=init, reseed_empty=True, max_iterations=5)
    assert reseeded.inertia < frozen.inertia


def test_labels_match_final_centers(small_mixture):
    result = lloyd_kmeans(small_mixture.points, k=3, init="kmeans++", rng=5)
    d = np.linalg.norm(
        small_mixture.points[:, None, :] - result.centers[None, :, :], axis=2
    )
    assert np.array_equal(result.labels, np.argmin(d, axis=1))
    assert result.inertia == pytest.approx((d.min(axis=1) ** 2).sum())
