"""Center merging (the paper's future-work post-processing)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.clustering.merge import (
    merge_centers,
    merge_gmeans_centers,
    suggest_merge_threshold,
)


def test_merge_pairs_below_threshold():
    centers = np.array([[0.0, 0.0], [0.5, 0.0], [10.0, 0.0]])
    merged = merge_centers(centers, threshold=1.0)
    assert merged.shape[0] == 2
    assert np.any(np.all(np.isclose(merged, [0.25, 0.0]), axis=1))


def test_merge_single_link_chains():
    centers = np.array([[0.0], [0.9], [1.8], [10.0]])
    merged = merge_centers(centers, threshold=1.0)
    # 0-0.9-1.8 chain collapses even though 0 and 1.8 are > 1 apart.
    assert merged.shape[0] == 2


def test_merge_weighted_by_sizes():
    centers = np.array([[0.0], [1.0]])
    merged = merge_centers(centers, threshold=2.0, sizes=np.array([3, 1]))
    assert merged[0, 0] == pytest.approx(0.25)


def test_merge_zero_threshold_is_identity():
    centers = np.array([[0.0], [1.0], [2.0]])
    assert merge_centers(centers, threshold=0.0).shape[0] == 3


def test_merge_validations():
    with pytest.raises(ConfigurationError):
        merge_centers(np.ones((2, 2)), threshold=-1.0)
    with pytest.raises(ConfigurationError):
        merge_centers(np.ones((2, 2)), threshold=1.0, sizes=np.ones(3))


def test_suggest_threshold_scales_with_dispersion(rng):
    tight = rng.normal(0, 0.5, size=(500, 2))
    loose = rng.normal(0, 4.0, size=(500, 2))
    center = np.zeros((1, 2))
    assert suggest_merge_threshold(loose, center) > suggest_merge_threshold(
        tight, center
    )


def test_merge_gmeans_centers_fixes_overestimate(demo_mixture):
    """Duplicate each true center slightly perturbed -> merge restores k."""
    rng = np.random.default_rng(3)
    doubled = np.vstack(
        [demo_mixture.centers, demo_mixture.centers + rng.normal(0, 0.3, demo_mixture.centers.shape)]
    )
    merged = merge_gmeans_centers(demo_mixture.points, doubled, rng=4)
    assert merged.shape[0] == demo_mixture.n_clusters


def test_merge_gmeans_no_polish(demo_mixture):
    merged = merge_gmeans_centers(
        demo_mixture.points,
        demo_mixture.centers,
        threshold=0.0,
        polish_iterations=0,
    )
    assert merged.shape == demo_mixture.centers.shape
    assert np.allclose(merged, demo_mixture.centers)
