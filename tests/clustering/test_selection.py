"""k-selection criteria from the related-work section."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.clustering.lloyd import lloyd_kmeans
from repro.clustering.selection import (
    CRITERIA,
    choose_k,
    dunn_index,
    elbow_k,
    gap_statistic_k,
    jump_k,
    silhouette_k,
    silhouette_score,
    sweep_kmeans,
)


@pytest.fixture(scope="module")
def blobs():
    """4 well-separated clusters in R^2."""
    rng = np.random.default_rng(21)
    centers = np.array([[0, 0], [30, 0], [0, 30], [30, 30]], dtype=float)
    pts = np.vstack([rng.normal(c, 1.0, size=(150, 2)) for c in centers])
    return pts


@pytest.fixture(scope="module")
def sweep(blobs):
    return sweep_kmeans(blobs, range(2, 9), rng=1, restarts=2)


def test_sweep_covers_requested_ks(sweep):
    assert sweep.ks == list(range(2, 9))
    assert set(sweep.results) == set(sweep.ks)


def test_sweep_wcss_decreases_with_k(sweep):
    curve = sweep.wcss_curve()
    values = [curve[k] for k in sweep.ks]
    assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))


def test_sweep_rejects_bad_ks(blobs):
    with pytest.raises(ConfigurationError):
        sweep_kmeans(blobs, [0, 1], rng=0)
    with pytest.raises(ConfigurationError):
        sweep_kmeans(blobs, [], rng=0)


def test_elbow_finds_true_k(sweep):
    assert elbow_k(sweep.wcss_curve()) == 4


def test_elbow_needs_three_points():
    with pytest.raises(ConfigurationError):
        elbow_k({2: 10.0, 3: 5.0})


def test_silhouette_score_range_and_quality(blobs):
    good = lloyd_kmeans(blobs, k=4, init="kmeans++", rng=2)
    bad = lloyd_kmeans(blobs, k=2, init="kmeans++", rng=2)
    s_good = silhouette_score(blobs, good.labels, rng=3)
    s_bad = silhouette_score(blobs, bad.labels, rng=3)
    assert -1.0 <= s_bad < s_good <= 1.0
    assert s_good > 0.75


def test_silhouette_sampling_close_to_full(blobs):
    fit = lloyd_kmeans(blobs, k=4, init="kmeans++", rng=4)
    full = silhouette_score(blobs, fit.labels, sample_size=None)
    sampled = silhouette_score(blobs, fit.labels, sample_size=200, rng=5)
    assert sampled == pytest.approx(full, abs=0.1)


def test_silhouette_requires_two_clusters(blobs):
    with pytest.raises(ConfigurationError):
        silhouette_score(blobs, np.zeros(blobs.shape[0], dtype=int))


def test_silhouette_k(blobs, sweep):
    assert silhouette_k(blobs, sweep, rng=6) == 4


def test_jump_k(blobs, sweep):
    k = jump_k(sweep.wcss_curve(), blobs.shape[0], blobs.shape[1])
    assert k == 4


def test_gap_statistic_k(blobs, sweep):
    k = gap_statistic_k(blobs, sweep, n_references=5, rng=7)
    assert 3 <= k <= 5


def test_dunn_index_better_for_true_k(blobs):
    good = lloyd_kmeans(blobs, k=4, init="kmeans++", rng=8)
    bad = lloyd_kmeans(blobs, k=6, init="kmeans++", rng=8)
    assert dunn_index(blobs, good.centers, good.labels) > dunn_index(
        blobs, bad.centers, bad.labels
    )


def test_dunn_requires_two_clusters(blobs):
    with pytest.raises(ConfigurationError):
        dunn_index(blobs, blobs.mean(axis=0, keepdims=True), np.zeros(len(blobs), dtype=int))


@pytest.mark.parametrize("method", ["elbow", "silhouette", "jump", "bic"])
def test_choose_k_near_truth(blobs, sweep, method):
    k = choose_k(blobs, range(2, 9), method=method, rng=9, sweep=sweep)
    assert 3 <= k <= 5


def test_choose_k_aic(blobs, sweep):
    k = choose_k(blobs, range(2, 9), method="aic", rng=10, sweep=sweep)
    assert 3 <= k <= 6


def test_choose_k_unknown_method(blobs):
    with pytest.raises(ConfigurationError):
        choose_k(blobs, range(2, 5), method="vibes")


def test_criteria_constant_lists_all():
    assert set(CRITERIA) == {"elbow", "silhouette", "jump", "gap", "dunn", "bic", "aic"}
