"""Initialisation strategies."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.clustering.init import (
    canopy_init,
    farthest_point_from,
    init_centers,
    kmeans_pp_init,
    random_init,
)


@pytest.fixture
def points(rng):
    return rng.normal(size=(200, 3))


def test_random_init_picks_distinct_points(points):
    centers = random_init(points, 5, rng=0)
    assert centers.shape == (5, 3)
    # Each center is an actual dataset point.
    for c in centers:
        assert np.any(np.all(points == c, axis=1))
    assert len(np.unique(centers, axis=0)) == 5


def test_random_init_too_many_centers(points):
    with pytest.raises(ConfigurationError):
        random_init(points, 201, rng=0)


def test_random_init_does_not_alias_input(points):
    centers = random_init(points, 2, rng=0)
    centers[0, 0] = 1e9
    assert points.max() < 1e9


def test_kmeans_pp_spreads_centers():
    """On two far blobs, k-means++ with k=2 lands one center per blob
    (random init does so only ~half the time)."""
    rng = np.random.default_rng(5)
    blob_a = rng.normal(-100, 1, size=(100, 2))
    blob_b = rng.normal(100, 1, size=(100, 2))
    pts = np.vstack([blob_a, blob_b])
    hits = 0
    for seed in range(20):
        centers = kmeans_pp_init(pts, 2, rng=seed)
        sides = set(np.sign(centers[:, 0]).tolist())
        hits += sides == {-1.0, 1.0}
    assert hits == 20


def test_kmeans_pp_all_duplicate_points():
    pts = np.ones((10, 2))
    centers = kmeans_pp_init(pts, 3, rng=0)
    assert centers.shape == (3, 2)
    assert np.all(centers == 1.0)


def test_kmeans_pp_k_exceeds_n():
    with pytest.raises(ConfigurationError):
        kmeans_pp_init(np.ones((2, 2)), 3, rng=0)


def test_canopy_covers_blobs():
    rng = np.random.default_rng(6)
    pts = np.vstack(
        [rng.normal(c, 0.5, size=(50, 2)) for c in ((0, 0), (20, 0), (0, 20))]
    )
    centers = canopy_init(pts, t1=10.0, t2=5.0, rng=1)
    # Every blob center is near some canopy center.
    for blob in ((0, 0), (20, 0), (0, 20)):
        d = np.linalg.norm(centers - np.array(blob), axis=1)
        assert d.min() < 3.0


def test_canopy_max_canopies_cap():
    pts = np.random.default_rng(7).uniform(0, 100, size=(200, 2))
    centers = canopy_init(pts, t1=2.0, t2=1.0, rng=0, max_canopies=5)
    assert centers.shape[0] == 5


def test_canopy_invalid_thresholds():
    pts = np.ones((5, 2))
    with pytest.raises(ConfigurationError):
        canopy_init(pts, t1=1.0, t2=2.0)
    with pytest.raises(ConfigurationError):
        canopy_init(pts, t1=1.0, t2=0.0)


def test_init_centers_dispatch(points):
    assert init_centers(points, 3, "random", rng=0).shape == (3, 3)
    assert init_centers(points, 3, "kmeans++", rng=0).shape == (3, 3)
    with pytest.raises(ConfigurationError):
        init_centers(points, 3, "magic", rng=0)


def test_farthest_point_from():
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 0.0]])
    far = farthest_point_from(pts, np.array([[0.0, 0.0]]))
    assert np.array_equal(far, [50.0, 0.0])
