"""MapReduce G-means: determining the k in k-means with MapReduce.

A full reproduction of Debatty, Michiardi, Mees & Thonnard,
"Determining the k in k-means with MapReduce" (EDBT/ICDT 2014),
including the Hadoop-like MapReduce substrate it runs on.

Quickstart::

    from repro import (
        MRGMeans, MRGMeansConfig, MapReduceRuntime, InMemoryDFS,
        generate_gaussian_mixture, write_points,
    )

    mixture = generate_gaussian_mixture(
        n_points=20_000, n_clusters=25, dimensions=10, rng=0
    )
    dfs = InMemoryDFS(split_size_bytes=256 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(dfs, rng=0)
    result = MRGMeans(runtime, MRGMeansConfig(seed=0)).fit(dataset)
    print(result.k_found, result.simulated_seconds)

Subpackages
-----------
``repro.core``
    The paper's contribution: MR G-means, MR k-means, multi-k-means.
``repro.mapreduce``
    The simulated Hadoop runtime (DFS, jobs, combiners, counters,
    heap accounting, cluster topology, cost model).
``repro.clustering``
    Serial algorithms and the related-work k-selection criteria.
``repro.stats``
    Anderson-Darling normality test and normal-distribution utilities.
``repro.data``
    Synthetic Gaussian-mixture generators and the text codec.
``repro.analysis``
    Closed-form Section-4 cost model.
``repro.evaluation``
    One experiment entry point per paper table/figure.
"""

__version__ = "1.0.0"

from repro.common.errors import (
    ConfigurationError,
    DataFormatError,
    JavaHeapSpaceError,
    JobFailedError,
    ReproError,
)
from repro.core import (
    MRGMeans,
    MRGMeansConfig,
    MRGMeansResult,
    MRKMeans,
    MRKMeansResult,
    MultiKMeans,
    MultiKMeansResult,
)
from repro.clustering import (
    GMeansOptions,
    KMeansResult,
    average_distance,
    choose_k,
    gmeans,
    lloyd_kmeans,
    merge_gmeans_centers,
    wcss,
    xmeans,
)
from repro.data import (
    demo_r2_dataset,
    generate_gaussian_mixture,
    paper_family_dataset,
    read_points,
    write_points,
)
from repro.mapreduce import (
    ClusterConfig,
    CostParameters,
    InMemoryDFS,
    MapReduceRuntime,
)
from repro.stats import anderson_darling_normality

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DataFormatError",
    "JavaHeapSpaceError",
    "JobFailedError",
    "MRGMeans",
    "MRGMeansConfig",
    "MRGMeansResult",
    "MRKMeans",
    "MRKMeansResult",
    "MultiKMeans",
    "MultiKMeansResult",
    "GMeansOptions",
    "KMeansResult",
    "average_distance",
    "choose_k",
    "gmeans",
    "lloyd_kmeans",
    "merge_gmeans_centers",
    "wcss",
    "xmeans",
    "demo_r2_dataset",
    "generate_gaussian_mixture",
    "paper_family_dataset",
    "read_points",
    "write_points",
    "ClusterConfig",
    "CostParameters",
    "InMemoryDFS",
    "MapReduceRuntime",
    "anderson_darling_normality",
]
