"""The ``KMeansAndFindNewCenters`` job (paper, Section 3.1).

The last k-means refinement pass of every G-means iteration is merged
with the selection of each cluster's two *next-iteration* candidate
centers, saving one full dataset read per iteration. The mapper emits
every point's contribution twice:

* under ``centerid`` — the classical k-means partial;
* under ``centerid + OFFSET`` — a candidate-center sample, where
  ``OFFSET = 2**62`` (half the largest Java long) cleanly separates the
  two key populations inside a single shuffle.

The combiner and reducer dispatch on the key: above the offset they
keep only two candidate points per cluster ("chosen randomly" — a
weighted reservoir here, so the merge of per-split samples stays close
to uniform over the cluster); below it they perform the classical
k-means reduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import record_point, split_points

from repro.clustering.metrics import assign_nearest, cluster_sizes, label_sums
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.hdfs import Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.mapreduce.types import OFFSET
from repro.core.kmeans_job import CENTERS_KEY, VECTORIZED_KEY, load_centers


def merge_candidate_samples(
    samples: list[tuple[np.ndarray, int]], rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """Merge per-split candidate samples into one 2-point sample.

    Each sample is ``(points, weight)`` where ``points`` holds up to
    two rows drawn from ``weight`` cluster members. Rows are kept with
    probability proportional to their source weights, approximating a
    uniform 2-sample over the whole cluster regardless of how its
    points were split across map tasks.
    """
    merged_points, merged_weight = samples[0]
    merged_points = np.asarray(merged_points, dtype=np.float64)
    for points, weight in samples[1:]:
        points = np.asarray(points, dtype=np.float64)
        total = merged_weight + weight
        rows = []
        pool_a = list(merged_points)
        pool_b = list(points)
        for _ in range(2):
            take_a = (
                pool_a
                and (not pool_b or rng.random() < merged_weight / total)
            )
            source = pool_a if take_a else pool_b
            if not source:
                break
            rows.append(source.pop(rng.integers(len(source))))
        if rows:
            merged_points = np.vstack(rows)
        merged_weight = total
    return merged_points, merged_weight


class KMeansAndFindNewCentersMapper(Mapper):
    """Emits each point twice: k-means partial + candidate sample."""

    def setup(self, ctx: MapContext) -> None:
        self.centers = load_centers(ctx)
        self.vectorized = bool(ctx.config.get(VECTORIZED_KEY, True))

    def map(self, key: object, value: np.ndarray, ctx: MapContext) -> None:
        point = record_point(value, ctx)
        k, d = self.centers.shape
        ctx.count_distances(k, d)
        nearest = int(np.argmin(np.linalg.norm(self.centers - point, axis=1)))
        ctx.emit(nearest, (point.copy(), 1))
        ctx.emit(nearest + OFFSET, (point.reshape(1, -1).copy(), 1))

    def map_split(self, split: Split, ctx: MapContext) -> None:
        if not self.vectorized:
            super().map_split(split, ctx)
            return
        points = split_points(split, ctx)
        k, d = self.centers.shape
        labels, _ = assign_nearest(points, self.centers)
        ctx.count_distances(points.shape[0] * k, d)
        sums = label_sums(points, labels, k)
        counts = cluster_sizes(labels, k)
        for cid in np.flatnonzero(counts):
            count = int(counts[cid])
            ctx.emit(int(cid), (sums[cid].copy(), count), records=count)
            members = points[labels == cid]
            picked = ctx.rng.choice(
                members.shape[0], size=min(2, members.shape[0]), replace=False
            )
            # The second emission of every point (the paper doubles the
            # map output); the combiner-equivalent sampling keeps 2.
            ctx.emit(
                int(cid) + OFFSET,
                (members[picked].copy(), count),
                records=count,
            )


class KMeansAndFindNewCentersCombiner(Reducer):
    """Key-dispatching combiner: k-means partials vs candidate samples."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        if key >= OFFSET:
            ctx.emit(key, merge_candidate_samples(values, ctx.rng))
            return
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.emit(key, (total, count))


class KMeansAndFindNewCentersReducer(Reducer):
    """Key-dispatching reducer: new center position or final 2-sample."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        if key >= OFFSET:
            points, weight = merge_candidate_samples(values, ctx.rng)
            ctx.emit(key, (points, weight))
            return
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.counters.set_max(
            USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX, count
        )
        ctx.emit(key, (total / count, count))


def make_find_new_centers_job(
    centers: np.ndarray,
    num_reduce_tasks: int,
    name: str = "KMeansAndFindNewCenters",
    vectorized: bool = True,
) -> Job:
    """Build the merged last-iteration + candidate-picking job."""
    return Job(
        name=name,
        mapper=KMeansAndFindNewCentersMapper,
        combiner=KMeansAndFindNewCentersCombiner,
        reducer=KMeansAndFindNewCentersReducer,
        num_reduce_tasks=num_reduce_tasks,
        config={
            CENTERS_KEY: np.asarray(centers, dtype=np.float64),
            VECTORIZED_KEY: vectorized,
        },
    )


def decode_find_new_centers_output(
    result_output: list, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray, dict[int, np.ndarray]]:
    """Split the job output into k-means results and candidate pairs.

    Returns ``(new_centers, sizes, candidates)`` where ``candidates``
    maps each center id to the (up to 2) sampled points for the next
    iteration. Ids that received no points are absent from
    ``candidates`` and keep their old center position.
    """
    new_centers = np.asarray(centers, dtype=np.float64).copy()
    sizes = np.zeros(new_centers.shape[0], dtype=np.int64)
    candidates: dict[int, np.ndarray] = {}
    for key, value in result_output:
        if key >= OFFSET:
            points, _weight = value
            candidates[key - OFFSET] = np.asarray(points, dtype=np.float64)
        else:
            center, count = value
            new_centers[key] = center
            sizes[key] = count
    return new_centers, sizes, candidates
