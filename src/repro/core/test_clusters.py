"""The ``TestClusters`` job (paper, Section 3.2) — reducer-side testing.

The mapper assigns each point to its cluster (nearest center *from the
previous iteration*), projects it on the vector joining the cluster's
two current candidate children, and emits ``vectorid -> projection``.
The reducer gathers the full projection vector of each cluster,
normalises it and applies the Anderson-Darling test.

Because the reducer materialises every projection of its cluster, its
heap need grows with the biggest cluster — 64 bytes per point as
measured in the paper's Figure 2 — and the job genuinely fails with
``JavaHeapSpaceError`` when a cluster outgrows the task JVM. That is
exactly why the driver only switches to this strategy once clusters
are numerous (parallelism above the reduce capacity) and small enough
(heap estimate under 66% of the JVM heap).
"""

from __future__ import annotations

import numpy as np

from repro.core.records import split_points

from repro.mapreduce.counters import UserCounter
from repro.mapreduce.hdfs import Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.clustering.metrics import assign_nearest
from repro.stats.normality import normality_test
from repro.stats.projection import projection_direction
from repro.core.config import HEAP_BYTES_PER_PROJECTION
from repro.core.kmeans_job import VECTORIZED_KEY

#: Config keys shared by both test jobs.
PREV_CENTERS_KEY = "prev_centers"
PAIRS_KEY = "pairs"  # dict: parent index -> (2, d) current children
ALPHA_KEY = "alpha"
NORMALITY_KEY = "normality_test"  # registry name; default "anderson"


class TestVerdict(tuple):
    """Reducer output: ``(statistic, n, is_normal, decided)``.

    A thin tuple subclass so job output stays sizable/serialisable
    while reading naturally at the driver.
    """

    __slots__ = ()
    __test__ = False  # not a pytest class, despite the Test* name

    def __new__(cls, statistic: float, n: int, is_normal: bool, decided: bool):
        return super().__new__(cls, (float(statistic), int(n), bool(is_normal), bool(decided)))

    def __getnewargs__(self):
        # tuple subclasses with a custom __new__ signature need this to
        # pickle (verdicts are reduce output and cross process pools).
        return tuple(self)

    @property
    def statistic(self) -> float:
        return self[0]

    @property
    def n(self) -> int:
        return self[1]

    @property
    def is_normal(self) -> bool:
        return self[2]

    @property
    def decided(self) -> bool:
        return self[3]


class ProjectionHeapCost:
    """Picklable per-value heap charge of the reduce-side strategy.

    One buffered projection costs ``heap_bytes_per_projection`` (64
    bytes, the paper's Figure-2 calibration). A class instead of a
    closure so jobs survive the trip to process-pool workers.
    """

    __slots__ = ("heap_bytes_per_projection",)

    def __init__(self, heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION):
        self.heap_bytes_per_projection = int(heap_bytes_per_projection)

    def __call__(self, value: object) -> int:
        return int(np.asarray(value).size * self.heap_bytes_per_projection)

    def __reduce__(self):
        return (type(self), (self.heap_bytes_per_projection,))


class ProjectionMapperBase(Mapper):
    """Shared setup/projection logic of both test strategies.

    Like :class:`~repro.core.kmeans_job.KMeansMapper`, two code paths
    share identical semantics: ``vectorized=True`` (default) assigns
    and projects whole splits through numpy/BLAS, ``vectorized=False``
    is the textbook per-record loop kept as the equivalence oracle.
    """

    def setup(self, ctx: MapContext) -> None:
        self.prev_centers = np.asarray(
            ctx.config[PREV_CENTERS_KEY], dtype=np.float64
        )
        self.vectorized = bool(ctx.config.get(VECTORIZED_KEY, True))
        self.vectors: dict[int, np.ndarray] = {}
        for pid, pair in ctx.config[PAIRS_KEY].items():
            direction = projection_direction(pair)
            if direction is not None:
                self.vectors[int(pid)] = direction

    def project_split(
        self, split: Split, ctx: MapContext
    ) -> "dict[int, np.ndarray]":
        """Assign the split's points and project per active cluster.

        Returns ``parent id -> projection array`` for clusters that own
        points in this split and have a usable direction vector; the
        projections of each cluster appear in split (record) order.
        """
        points = split_points(split, ctx)
        if self.vectorized:
            return self._project_vectorized(points, ctx)
        return self._project_scalar(points, ctx)

    def _project_vectorized(
        self, points: np.ndarray, ctx: MapContext
    ) -> "dict[int, np.ndarray]":
        k_prev, d = self.prev_centers.shape
        labels, _ = assign_nearest(points, self.prev_centers)
        ctx.count_distances(points.shape[0] * k_prev, d)
        # Stable argsort groups member rows per cluster in one O(n log n)
        # pass instead of one boolean-mask scan per tested cluster. The
        # gathered rows are the mask's rows in the same (record) order,
        # so each cluster's matvec sees identical bytes.
        order = np.argsort(labels, kind="stable")
        grouped = labels[order]
        projections: dict[int, np.ndarray] = {}
        for pid, v in self.vectors.items():
            start, stop = np.searchsorted(grouped, [pid, pid + 1])
            if start == stop:
                continue
            member = points[order[start:stop]]
            proj = member @ v
            ctx.count(UserCounter.PROJECTIONS, member.shape[0])
            ctx.count(UserCounter.COORDINATE_OPS, member.shape[0] * d)
            projections[pid] = proj
        return projections

    def _project_scalar(
        self, points: np.ndarray, ctx: MapContext
    ) -> "dict[int, np.ndarray]":
        """The per-record reference path (the oracle the property tests
        hold the vectorized kernels against)."""
        k_prev, d = self.prev_centers.shape
        buffers: dict[int, list[float]] = {pid: [] for pid in self.vectors}
        for point in np.asarray(points, dtype=np.float64):
            ctx.count_distances(k_prev, d)
            pid = int(
                np.argmin(np.linalg.norm(self.prev_centers - point, axis=1))
            )
            v = self.vectors.get(pid)
            if v is None:
                continue
            buffers[pid].append(float(point @ v))
            ctx.count(UserCounter.PROJECTIONS)
            ctx.count(UserCounter.COORDINATE_OPS, d)
        return {
            pid: np.asarray(buffer, dtype=np.float64)
            for pid, buffer in buffers.items()
            if buffer
        }


class TestClustersMapper(ProjectionMapperBase):
    """Emits raw projections; the reducer does the testing."""

    def map_split(self, split: Split, ctx: MapContext) -> None:
        for pid, proj in self.project_split(split, ctx).items():
            ctx.emit(pid, proj, records=proj.size)


class TestClustersReducer(Reducer):
    """Normalises each cluster's projection vector and runs the test."""

    def setup(self, ctx: TaskContext) -> None:
        self.alpha = float(ctx.config[ALPHA_KEY])
        self.method = ctx.config.get(NORMALITY_KEY, "anderson")

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        projections = np.concatenate([np.asarray(v).ravel() for v in values])
        n = projections.size
        ctx.count(UserCounter.AD_TESTS)
        ctx.count(UserCounter.CLUSTER_TESTS)
        ctx.count(UserCounter.AD_SAMPLE_POINTS, n)
        if n < 2:
            ctx.emit(key, TestVerdict(0.0, n, True, True))
            return
        result = normality_test(projections, self.alpha, self.method)
        ctx.emit(key, TestVerdict(result.statistic, n, result.is_normal, True))


def make_test_clusters_job(
    prev_centers: np.ndarray,
    pairs: dict[int, np.ndarray],
    alpha: float,
    num_reduce_tasks: int,
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
    name: str = "TestClusters",
    partitioner=None,
    normality: str = "anderson",
    vectorized: bool = True,
) -> Job:
    """Build the reducer-side test job.

    ``heap_bytes_per_projection`` models the JVM cost of one buffered
    projection (64 bytes, the paper's Figure-2 calibration). A custom
    ``partitioner`` (e.g. the weight-balanced one from
    :mod:`repro.mapreduce.partitioners`) overrides the hash default —
    the skew mitigation the paper leaves as future work. ``vectorized``
    selects the mapper code path (whole-split BLAS vs the per-record
    oracle loop) — semantics are identical.
    """
    job = Job(
        name=name,
        mapper=TestClustersMapper,
        reducer=TestClustersReducer,
        num_reduce_tasks=num_reduce_tasks,
        config={
            PREV_CENTERS_KEY: np.asarray(prev_centers, dtype=np.float64),
            PAIRS_KEY: {int(k): np.asarray(v) for k, v in pairs.items()},
            ALPHA_KEY: float(alpha),
            NORMALITY_KEY: normality,
            VECTORIZED_KEY: bool(vectorized),
        },
        heap_bytes_per_value=ProjectionHeapCost(heap_bytes_per_projection),
    )
    if partitioner is not None:
        job.partitioner = partitioner
    return job


def decode_test_output(result_output: list) -> dict[int, TestVerdict]:
    """Verdicts keyed by parent cluster index."""
    verdicts: dict[int, TestVerdict] = {}
    for pid, value in result_output:
        verdicts[int(pid)] = TestVerdict(*value)
    return verdicts


def estimate_reducer_heap_bytes(
    max_cluster_points: int,
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
) -> int:
    """The driver's heap estimate for the biggest cluster (paper: count
    points per cluster, multiply by the per-point heap constant)."""
    if max_cluster_points < 0:
        raise ValueError(f"max_cluster_points must be >= 0, got {max_cluster_points}")
    return int(max_cluster_points) * int(heap_bytes_per_projection)
