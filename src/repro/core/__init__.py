"""The paper's contribution: MapReduce G-means and its baselines.

* :class:`MRGMeans` — Algorithm 1: PickInitialCenters, then chained
  KMeans / KMeansAndFindNewCenters / TestClusters(+TestFewClusters)
  rounds until every cluster passes the Anderson-Darling test.
* :class:`MRKMeans` — classical fixed-k MapReduce k-means.
* :class:`MultiKMeans` — the paper's baseline: one job refines the
  clusterings of every candidate k simultaneously (Algorithm 6).
"""

from repro.core.checkpoint import (
    decode_gmeans_payload,
    decode_iteration_stats,
    encode_gmeans_payload,
    encode_iteration_stats,
)
from repro.core.config import (
    HEAP_BYTES_PER_PROJECTION,
    MIN_MAPPER_SAMPLE,
    MRGMeansConfig,
    STRATEGIES,
    VOTE_RULES,
)
from repro.core.gmeans_mr import IterationStats, MRGMeans, MRGMeansResult
from repro.core.kmeans_job import (
    KMeansCombiner,
    KMeansMapper,
    KMeansReducer,
    decode_kmeans_output,
    make_kmeans_job,
)
from repro.core.kmeans_find_new import (
    KMeansAndFindNewCentersCombiner,
    KMeansAndFindNewCentersMapper,
    KMeansAndFindNewCentersReducer,
    decode_find_new_centers_output,
    make_find_new_centers_job,
    merge_candidate_samples,
)
from repro.core.kmeans_mr import MRKMeans, MRKMeansResult
from repro.core.kmeans_parallel import kmeans_parallel_init
from repro.core.multi_kmeans import (
    MultiKMeans,
    MultiKMeansResult,
    make_multi_kmeans_job,
)
from repro.core.pick_initial import pick_initial_pairs
from repro.core.xmeans_mr import MRXMeans, MRXMeansResult
from repro.core.state import ClusterNode, FlatCenters, GMeansState
from repro.core.strategy import MAPPER_SIDE, REDUCER_SIDE, choose_test_strategy
from repro.core.test_clusters import (
    TestVerdict,
    decode_test_output,
    estimate_reducer_heap_bytes,
    make_test_clusters_job,
)
from repro.core.test_few_clusters import MapperVote, make_test_few_clusters_job

__all__ = [
    "decode_gmeans_payload",
    "decode_iteration_stats",
    "encode_gmeans_payload",
    "encode_iteration_stats",
    "HEAP_BYTES_PER_PROJECTION",
    "MIN_MAPPER_SAMPLE",
    "MRGMeansConfig",
    "STRATEGIES",
    "VOTE_RULES",
    "IterationStats",
    "MRGMeans",
    "MRGMeansResult",
    "KMeansCombiner",
    "KMeansMapper",
    "KMeansReducer",
    "decode_kmeans_output",
    "make_kmeans_job",
    "KMeansAndFindNewCentersCombiner",
    "KMeansAndFindNewCentersMapper",
    "KMeansAndFindNewCentersReducer",
    "decode_find_new_centers_output",
    "make_find_new_centers_job",
    "merge_candidate_samples",
    "MRKMeans",
    "MRKMeansResult",
    "kmeans_parallel_init",
    "MultiKMeans",
    "MultiKMeansResult",
    "make_multi_kmeans_job",
    "pick_initial_pairs",
    "MRXMeans",
    "MRXMeansResult",
    "ClusterNode",
    "FlatCenters",
    "GMeansState",
    "MAPPER_SIDE",
    "REDUCER_SIDE",
    "choose_test_strategy",
    "TestVerdict",
    "decode_test_output",
    "estimate_reducer_heap_bytes",
    "make_test_clusters_job",
    "MapperVote",
    "make_test_few_clusters_job",
]
