"""Multi-k-means — the paper's baseline (Algorithm 6).

The classical way to find k is to run k-means for every candidate k
and score the results. To compare against G-means fairly, the paper
folds all candidate values into *one* job per iteration: the mapper
assigns each point to its nearest center for **every** k in
``[k_min, k_max]`` and emits one pair per candidate clustering, so a
single round refines every clustering at once, at the price of
``O(n * sum(k))  =  O(n * k_max^2)`` distance computations per
iteration.

After the configured number of iterations (the paper uses 10, "enough
to find a stable solution"), a WCSS job scores every candidate k and a
classical criterion (elbow or jump) picks the winner — the "at least
one additional job" the paper notes multi-k-means needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.records import first_split_points, record_point, split_points

from repro.common.errors import (
    ConfigurationError,
    JavaHeapSpaceError,
    JobFailedError,
)
from repro.common.rng import ensure_rng
from repro.clustering.init import kmeans_pp_init
from repro.clustering.metrics import assign_nearest, cluster_sizes, label_sums
from repro.clustering.selection import elbow_k, jump_k
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.driver import ChainTotals, JobChainDriver
from repro.mapreduce.hdfs import DFSFile, Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import ITERATION, RUN
from repro.observability.metrics import MetricsRegistry

CENTERS_BY_K_KEY = "centers_by_k"
VECTORIZED_KEY = "vectorized"


class MultiKMeansMapper(Mapper):
    """Assigns every point under every candidate k (Algorithm 6)."""

    def setup(self, ctx: MapContext) -> None:
        self.centers_by_k = {
            int(k): np.asarray(c, dtype=np.float64)
            for k, c in ctx.config[CENTERS_BY_K_KEY].items()
        }
        self.vectorized = bool(ctx.config.get(VECTORIZED_KEY, True))

    def map(self, key: object, value: np.ndarray, ctx: MapContext) -> None:
        point = record_point(value, ctx)
        for k, centers in self.centers_by_k.items():
            ctx.count_distances(centers.shape[0], centers.shape[1])
            nearest = int(np.argmin(np.linalg.norm(centers - point, axis=1)))
            ctx.emit((k, nearest), (point.copy(), 1))

    def map_split(self, split: Split, ctx: MapContext) -> None:
        if not self.vectorized:
            super().map_split(split, ctx)
            return
        points = split_points(split, ctx)
        for k, centers in self.centers_by_k.items():
            labels, _ = assign_nearest(points, centers)
            ctx.count_distances(points.shape[0] * k, centers.shape[1])
            sums = label_sums(points, labels, k)
            counts = cluster_sizes(labels, k)
            for cid in np.flatnonzero(counts):
                ctx.emit(
                    (k, int(cid)),
                    (sums[cid].copy(), int(counts[cid])),
                    records=int(counts[cid]),
                )


class MultiKMeansCombiner(Reducer):
    """Classical ``(sum, count)`` pre-aggregation per ``(k, centerid)``."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.emit(key, (total, count))


class MultiKMeansReducer(Reducer):
    """New center per ``(k, centerid)``."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.counters.set_max(
            USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX, count
        )
        ctx.emit(key, (total / count, count))


class WCSSMapper(Mapper):
    """Scores every candidate clustering: emits per-k partial SSE."""

    def setup(self, ctx: MapContext) -> None:
        self.centers_by_k = {
            int(k): np.asarray(c, dtype=np.float64)
            for k, c in ctx.config[CENTERS_BY_K_KEY].items()
        }

    def map_split(self, split: Split, ctx: MapContext) -> None:
        points = split_points(split, ctx)
        for k, centers in self.centers_by_k.items():
            _, sq = assign_nearest(points, centers)
            ctx.count_distances(points.shape[0] * k, centers.shape[1])
            ctx.emit(k, (float(sq.sum()), points.shape[0]), records=points.shape[0])


class WCSSReducer(Reducer):
    """Total WCSS per candidate k."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        sse = sum(v[0] for v in values)
        n = sum(v[1] for v in values)
        ctx.emit(key, (sse, n))


def make_multi_kmeans_job(
    centers_by_k: dict[int, np.ndarray],
    num_reduce_tasks: int,
    name: str = "MultiKMeans",
    vectorized: bool = True,
) -> Job:
    """One refinement iteration over every candidate k."""
    return Job(
        name=name,
        mapper=MultiKMeansMapper,
        combiner=MultiKMeansCombiner,
        reducer=MultiKMeansReducer,
        num_reduce_tasks=num_reduce_tasks,
        config={
            CENTERS_BY_K_KEY: centers_by_k,
            VECTORIZED_KEY: vectorized,
        },
    )


@dataclass
class MultiKMeansResult:
    """Outcome of a multi-k-means run."""

    centers_by_k: dict[int, np.ndarray]
    wcss_by_k: dict[int, float]
    best_k: int
    iterations: int
    iteration_seconds: list[float] = field(default_factory=list)
    totals: ChainTotals = field(default_factory=ChainTotals)
    #: Refinement iterations whose job failed permanently and was
    #: skipped under the degradation policy (centers kept as-is).
    failed_iterations: list[int] = field(default_factory=list)

    @property
    def best_centers(self) -> np.ndarray:
        return self.centers_by_k[self.best_k]

    @property
    def simulated_seconds(self) -> float:
        return self.totals.simulated_seconds

    @property
    def average_iteration_seconds(self) -> float:
        """The number the paper's Table 2 reports."""
        if not self.iteration_seconds:
            return 0.0
        return float(np.mean(self.iteration_seconds))


class MultiKMeans:
    """Driver: iterate Algorithm 6, then score and choose k."""

    def __init__(
        self,
        runtime: MapReduceRuntime,
        k_min: int = 1,
        k_max: int = 10,
        k_step: int = 1,
        iterations: int = 10,
        criterion: str = "elbow",
        init: str = "random",
        vectorized: bool = True,
        seed: int | None = None,
        cache_input: bool = False,
    ):
        if not 1 <= k_min <= k_max:
            raise ConfigurationError(
                f"need 1 <= k_min <= k_max, got k_min={k_min}, k_max={k_max}"
            )
        if k_step < 1:
            raise ConfigurationError(f"k_step must be >= 1, got {k_step}")
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if criterion not in ("elbow", "jump"):
            raise ConfigurationError(
                f"criterion must be 'elbow' or 'jump', got {criterion!r}"
            )
        self.runtime = runtime
        self.ks = list(range(k_min, k_max + 1, k_step))
        self.iterations = iterations
        self.criterion = criterion
        self.init = init
        self.vectorized = vectorized
        self.seed = seed
        self.cache_input = cache_input

    def _initial_centers(
        self, f: DFSFile, rng: np.random.Generator
    ) -> dict[int, np.ndarray]:
        sample = first_split_points(f)
        if sample.shape[0] < max(self.ks):
            raise ConfigurationError(
                f"first split holds {sample.shape[0]} points; cannot seed "
                f"k={max(self.ks)}"
            )
        centers_by_k: dict[int, np.ndarray] = {}
        for k in self.ks:
            if self.init == "random":
                idx = rng.choice(sample.shape[0], size=k, replace=False)
                centers_by_k[k] = sample[idx].copy()
            elif self.init in ("kmeans++", "k-means++"):
                centers_by_k[k] = kmeans_pp_init(sample, k, rng=rng)
            else:
                raise ConfigurationError(f"unknown init method {self.init!r}")
        return centers_by_k

    def fit(self, dataset: "DFSFile | str") -> MultiKMeansResult:
        """Run all iterations, score every k, and pick the best."""
        rng = ensure_rng(self.seed)
        f = (
            self.runtime.dfs.open(dataset)
            if isinstance(dataset, str)
            else dataset
        )
        driver = JobChainDriver(self.runtime, cache_input=self.cache_input)
        centers_by_k = self._initial_centers(f, rng)
        reduce_tasks = self.runtime.cluster.total_reduce_slots
        iteration_seconds: list[float] = []
        failed_iterations: list[int] = []
        journal = self.runtime.journal
        metrics = MetricsRegistry(driver.totals.counters)
        with journal.span(
            RUN,
            "multi_kmeans",
            dataset=f.name,
            k_min=min(self.ks),
            k_max=max(self.ks),
        ) as run_span:
            for iteration in range(1, self.iterations + 1):
                job = make_multi_kmeans_job(
                    centers_by_k,
                    reduce_tasks,
                    name=f"MultiKMeans-{iteration}",
                    vectorized=self.vectorized,
                )
                seconds_before = driver.totals.simulated_seconds
                with journal.span(
                    ITERATION,
                    f"iteration-{iteration}",
                    iteration=iteration,
                ) as span:
                    try:
                        result = driver.run(job, f)
                    except JobFailedError as exc:
                        # Deterministic heap exhaustion still aborts the
                        # sweep — only fault-induced failures are safe
                        # to skip.
                        if isinstance(exc.cause, JavaHeapSpaceError):
                            raise
                        # Degradation policy: a refinement pass that died
                        # after every retry is skipped — the centers
                        # simply miss one Lloyd update, which later
                        # passes absorb — instead of aborting the whole
                        # candidate sweep.
                        failed_iterations.append(iteration)
                        journal.event(
                            "iteration_skipped",
                            iteration=iteration,
                            job=job.name,
                        )
                        if journal.enabled:
                            span.set(
                                status="skipped",
                                degraded=True,
                                simulated_seconds=0.0,
                                counters=metrics.mark().as_dict(),
                            )
                        continue
                    iteration_seconds.append(result.simulated_seconds)
                    for (k, cid), (center, _count) in result.output:
                        centers_by_k[k][cid] = center
                    if journal.enabled:
                        span.set(
                            simulated_seconds=(
                                driver.totals.simulated_seconds - seconds_before
                            ),
                            counters=metrics.mark().as_dict(),
                        )

            # Scoring job ("at least one additional job to find the
            # correct value of k").
            score_job = Job(
                name="MultiKMeans-WCSS",
                mapper=WCSSMapper,
                combiner=WCSSReducer,
                reducer=WCSSReducer,
                num_reduce_tasks=reduce_tasks,
                config={CENTERS_BY_K_KEY: centers_by_k},
            )
            result = driver.run(score_job, f)
            wcss_by_k: dict[int, float] = {}
            n_points = 0
            for k, (sse, n) in result.output:
                wcss_by_k[int(k)] = float(sse)
                n_points = int(n)
            if len(wcss_by_k) >= 3 and self.criterion == "elbow":
                best_k = elbow_k(wcss_by_k)
            elif len(wcss_by_k) >= 2 and self.criterion == "jump":
                dimensions = next(iter(centers_by_k.values())).shape[1]
                best_k = jump_k(wcss_by_k, n_points, dimensions)
            else:
                best_k = min(wcss_by_k, key=wcss_by_k.get)
            if journal.enabled:
                run_span.set(
                    status="ok",
                    best_k=best_k,
                    simulated_seconds=driver.totals.simulated_seconds,
                    jobs=driver.totals.jobs,
                )
        return MultiKMeansResult(
            centers_by_k=centers_by_k,
            wcss_by_k=wcss_by_k,
            best_k=best_k,
            iterations=self.iterations,
            iteration_seconds=iteration_seconds,
            totals=driver.totals,
            failed_iterations=failed_iterations,
        )
