"""MR G-means — the paper's Algorithm 1.

::

    PickInitialCenters
    while not ClusteringCompleted:
        KMeans                      (kmeans_iterations - 1 passes)
        KMeansAndFindNewCenters     (last pass + next-iteration picks)
        TestClusters | TestFewClusters

Unlike the serial algorithm, every iteration tests *all* active
clusters in parallel, so the number of centers roughly doubles per
round and the final k overshoots the true count (~1.5x in the paper's
Table 1); the optional ``post_merge`` pass implements the paper's
future-work fix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import JavaHeapSpaceError, JobFailedError
from repro.common.rng import ensure_rng
from repro.clustering.merge import merge_gmeans_centers
from repro.mapreduce.driver import (
    ChainTotals,
    CheckpointingJobChainDriver,
    JobChainDriver,
)
from repro.mapreduce.hdfs import DFSFile
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import ITERATION, RUN
from repro.observability.slo import watchdog_for
from repro.observability.metrics import MetricsRegistry
from repro.core.checkpoint import (
    decode_gmeans_payload,
    encode_gmeans_payload,
)
from repro.core.config import MRGMeansConfig, RESUME_ENV
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.core.kmeans_find_new import (
    decode_find_new_centers_output,
    make_find_new_centers_job,
)
from repro.core.pick_initial import pick_initial_pairs
from repro.core.state import (
    ClusterNode,
    GMeansState,
    ROLE_CHILD_A,
    ROLE_CHILD_B,
)
from repro.core.strategy import MAPPER_SIDE, REDUCER_SIDE, decide_test_strategy
from repro.core.test_clusters import decode_test_output, make_test_clusters_job
from repro.core.test_few_clusters import make_test_few_clusters_job


@dataclass(frozen=True)
class IterationStats:
    """Diagnostics of one G-means iteration."""

    iteration: int
    k_before: int
    k_after: int
    clusters_tested: int
    clusters_split: int
    clusters_found: int
    strategy: str
    simulated_seconds: float
    centers: np.ndarray  # refined current centers (Figure 1 snapshots)
    #: True when this iteration's test job failed permanently (after
    #: all job retries) and the driver fell back to the conservative
    #: degradation policy: every tested cluster kept intact.
    degraded: bool = False


@dataclass
class MRGMeansResult:
    """Outcome of an MR G-means run."""

    centers: np.ndarray
    k_found: int
    iterations: int
    completed: bool
    history: list[IterationStats] = field(default_factory=list)
    totals: ChainTotals = field(default_factory=ChainTotals)
    merged_centers: np.ndarray | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.totals.simulated_seconds


class MRGMeans:
    """Driver for MapReduce G-means over a simulated cluster.

    Parameters
    ----------
    runtime:
        The MapReduce runtime (cluster topology + cost model + DFS).
    config:
        Algorithm tunables; defaults follow the paper.
    cache_input:
        Spark-style in-memory dataset between chained jobs (the
        paper's future-work optimisation); disabled by default to
        match the Hadoop measurements.
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        config: MRGMeansConfig | None = None,
        cache_input: bool = False,
    ):
        self.runtime = runtime
        self.config = config or MRGMeansConfig()
        self.cache_input = cache_input

    # -- public ----------------------------------------------------------

    def fit(
        self, dataset: "DFSFile | str", resume_from: "str | None" = None
    ) -> MRGMeansResult:
        """Run the full algorithm on ``dataset`` (a DFS file or name).

        With ``config.checkpoint_dir`` set, the chain state is written
        to the DFS after every iteration. ``resume_from`` restarts a
        killed run from such a checkpoint: a checkpoint's DFS name, or
        ``"latest"`` to pick the newest one under the checkpoint
        directory (falling back to a fresh start when none exists yet).
        ``None`` consults ``$REPRO_RESUME`` — the CLI's ``--resume``
        flag. A resumed run restores the cluster generation, history,
        chain totals, cached-file set and every RNG stream, and is
        byte-identical to a run that was never interrupted.
        """
        cfg = self.config
        f = (
            self.runtime.dfs.open(dataset)
            if isinstance(dataset, str)
            else dataset
        )
        if resume_from is None:
            resume_from = os.environ.get(RESUME_ENV) or None
        journal = self.runtime.journal
        with journal.span(
            RUN,
            "gmeans",
            dataset=f.name,
            k_init=cfg.k_init,
            k_max=cfg.k_max,
        ) as span:
            result = self._fit(f, resume_from)
            if journal.enabled:
                span.set(
                    status="ok",
                    k_found=result.k_found,
                    iterations=result.iterations,
                    completed=result.completed,
                    simulated_seconds=result.totals.simulated_seconds,
                    jobs=result.totals.jobs,
                )
        return result

    def _fit(self, f: DFSFile, resume_from: "str | None") -> MRGMeansResult:
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        journal = self.runtime.journal
        driver = self._make_driver(resume_from)
        state = GMeansState()
        history: list[IterationStats] = []
        iteration = 0
        checkpoint = self._load_checkpoint(driver, resume_from)
        if checkpoint is not None:
            state, history, algo_rng_state = decode_gmeans_payload(
                checkpoint.payload
            )
            rng.bit_generator.state = algo_rng_state
            iteration = checkpoint.iteration
        else:
            for parent, pair in pick_initial_pairs(f, cfg.k_init, rng=rng):
                state.new_cluster(parent, pair)

        completed = iteration > 0 and state.all_found
        metrics = MetricsRegistry(driver.totals.counters)
        while not completed and iteration < cfg.max_iterations:
            iteration += 1
            seconds_before = driver.totals.simulated_seconds
            k_before = state.k
            with journal.span(
                ITERATION,
                f"iteration-{iteration}",
                iteration=iteration,
                k_before=k_before,
            ) as span:
                stats = self._run_iteration(driver, f, state, iteration)
                history.append(
                    IterationStats(
                        iteration=iteration,
                        k_before=k_before,
                        k_after=state.k,
                        clusters_tested=stats["tested"],
                        clusters_split=stats["split"],
                        clusters_found=stats["found"],
                        strategy=stats["strategy"],
                        simulated_seconds=(
                            driver.totals.simulated_seconds - seconds_before
                        ),
                        centers=stats["centers"],
                        degraded=stats["degraded"],
                    )
                )
                completed = state.all_found
                if isinstance(driver, CheckpointingJobChainDriver):
                    driver.save_checkpoint(
                        iteration, encode_gmeans_payload(state, history, rng)
                    )
                if journal.enabled:
                    span.set(
                        k_after=state.k,
                        clusters_tested=stats["tested"],
                        clusters_split=stats["split"],
                        clusters_found=stats["found"],
                        strategy=stats["strategy"],
                        degraded=stats["degraded"],
                        simulated_seconds=(
                            driver.totals.simulated_seconds - seconds_before
                        ),
                        counters=metrics.mark().as_dict(),
                    )
            # SLO watchdog abort point: the iteration span is closed and
            # its checkpoint (when checkpointing is on) durably written,
            # so an abort here always leaves a run that
            # ``fit(resume_from=...)`` can finish once the rule is
            # relaxed. Raises SLOViolationError (CLI exit code 3).
            watchdog = watchdog_for(journal)
            if watchdog is not None:
                watchdog.check_abort()

        centers = state.parent_centers()
        merged = None
        if cfg.post_merge:
            points = np.asarray(f.all_records(), dtype=np.float64)
            merged = merge_gmeans_centers(points, centers, rng=rng)
        return MRGMeansResult(
            centers=centers,
            k_found=state.k,
            iterations=iteration,
            completed=completed,
            history=history,
            totals=driver.totals,
            merged_centers=merged,
        )

    # -- checkpointing ----------------------------------------------------

    def _make_driver(self, resume_from: "str | None") -> JobChainDriver:
        """Build the chain driver (checkpointing when configured).

        An explicit ``resume_from`` checkpoint name also implies its
        directory when the config leaves ``checkpoint_dir`` unset, so a
        bare ``fit(f, resume_from="ck/gmeans/iter-00003")`` works.
        """
        checkpoint_dir = self.config.checkpoint_dir
        if (
            checkpoint_dir is None
            and resume_from not in (None, "latest")
            and "/" in resume_from
        ):
            checkpoint_dir = resume_from.rsplit("/", 1)[0]
        if checkpoint_dir is None:
            return JobChainDriver(self.runtime, cache_input=self.cache_input)
        return CheckpointingJobChainDriver(
            self.runtime,
            cache_input=self.cache_input,
            checkpoint_dir=checkpoint_dir,
        )

    @staticmethod
    def _load_checkpoint(driver: JobChainDriver, resume_from: "str | None"):
        """Resolve ``resume_from`` against the driver (None = fresh run)."""
        if resume_from is None:
            return None
        if not isinstance(driver, CheckpointingJobChainDriver):
            from repro.common.errors import ConfigurationError

            raise ConfigurationError(
                "resume requested but checkpointing is not configured "
                "(set MRGMeansConfig.checkpoint_dir or $REPRO_CHECKPOINT_DIR)"
            )
        if resume_from == "latest":
            name = driver.latest_checkpoint()
            if name is None:  # nothing saved yet: a fresh start
                return None
            return driver.load_checkpoint(name)
        return driver.load_checkpoint(resume_from)

    # -- one iteration ----------------------------------------------------

    def _run_iteration(
        self,
        driver: JobChainDriver,
        f: DFSFile,
        state: GMeansState,
        iteration: int,
    ) -> dict:
        cfg = self.config
        # A fixed reducer count (Hadoop jobs commonly pin one) keeps the
        # algorithm's trajectory identical across cluster sizes, which
        # is what the Table-4 node-scaling comparison needs.
        reduce_tasks = (
            cfg.num_reduce_tasks or self.runtime.cluster.total_reduce_slots
        )
        flat = state.flatten_current(cfg.refine_found_centers)
        centers = flat.centers

        # KMeans refinement passes (all but the last).
        for step in range(cfg.kmeans_iterations - 1):
            job = make_kmeans_job(
                centers,
                reduce_tasks,
                name=f"KMeans-i{iteration}s{step}",
                vectorized=cfg.vectorized,
                combiner=cfg.use_combiner,
            )
            result = driver.run(job, f)
            centers, _sizes = decode_kmeans_output(result.output, centers)

        # Last pass merged with candidate picking.
        job = make_find_new_centers_job(
            centers,
            reduce_tasks,
            name=f"KMeansAndFindNewCenters-i{iteration}",
            vectorized=cfg.vectorized,
        )
        result = driver.run(job, f)
        centers, sizes, candidates = decode_find_new_centers_output(
            result.output, centers
        )
        state.apply_refined(flat, centers)
        state.record_sizes(flat, sizes)
        if cfg.anchor == "centroid":
            # Re-anchor every active cluster at its refined children's
            # size-weighted centroid, so the test job's membership
            # matches the mass the verdict will freeze.
            for node in state.clusters:
                if not node.found:
                    node.center = node.children_centroid()

        # Decide which clusters can be tested at all.
        found_now = 0
        pairs: dict[int, np.ndarray] = {}
        for index, node in enumerate(state.clusters):
            if node.found:
                continue
            if not node.has_usable_children() or node.size < cfg.min_split_size:
                node.found = True
                found_now += 1
                continue
            pairs[index] = node.children
        if not pairs:
            return {
                "tested": 0,
                "split": 0,
                "found": found_now,
                "strategy": "none",
                "centers": centers.copy(),
                "degraded": False,
            }

        # Strategy choice (the paper's two-condition rule, or forced).
        # The decision is journalled with its full evidence either way,
        # so `repro analyze` can audit the heap model against what the
        # test job's reducers actually buffered.
        max_points = max(state.clusters[index].size for index in pairs)
        # The rule runs against the cluster's *live* capacity: node loss
        # shrinks the reduce-slot pool, so the same iteration can cross
        # the paper's parallelism threshold that the full-strength
        # cluster would not (heap fit still gates the switch). With
        # every node alive the live state reports exactly the config's
        # capacity, so fault-free runs decide identically to before.
        decision = decide_test_strategy(
            len(pairs),
            max_points,
            self.runtime.cluster_state,
            cfg.heap_bytes_per_projection,
        )
        static_slots = self.runtime.cluster.total_reduce_slots
        if decision.total_reduce_slots != static_slots:
            static_decision = decide_test_strategy(
                len(pairs),
                max_points,
                self.runtime.cluster,
                cfg.heap_bytes_per_projection,
            )
            if static_decision.strategy != decision.strategy:
                self.runtime.journal.event(
                    "strategy_redecision",
                    iteration=iteration,
                    from_strategy=static_decision.strategy,
                    to_strategy=decision.strategy,
                    static_reduce_slots=static_slots,
                    live_reduce_slots=decision.total_reduce_slots,
                    clusters_to_test=decision.clusters_to_test,
                    predicted_heap_bytes=decision.predicted_heap_bytes,
                    usable_heap_bytes=decision.usable_heap_bytes,
                )
        if cfg.strategy == "auto":
            strategy = decision.strategy
            forced = False
        else:
            strategy = MAPPER_SIDE if cfg.strategy == "mapper" else REDUCER_SIDE
            forced = strategy != decision.strategy
        decision_attrs = decision.as_event_attrs()
        decision_attrs["strategy"] = strategy  # chosen (may be forced)
        decision_attrs["rule_strategy"] = decision.strategy
        self.runtime.journal.event(
            "strategy_decision",
            iteration=iteration,
            forced=forced,
            **decision_attrs,
        )

        prev_centers = state.parent_centers()
        if strategy == REDUCER_SIDE:
            partitioner = None
            if cfg.balanced_partitioning:
                from repro.mapreduce.partitioners import (
                    make_weight_balanced_partitioner,
                )

                partitioner = make_weight_balanced_partitioner(
                    {pid: state.clusters[pid].size for pid in pairs},
                    reduce_tasks,
                )
            test_job = make_test_clusters_job(
                prev_centers,
                pairs,
                cfg.alpha,
                reduce_tasks,
                heap_bytes_per_projection=cfg.heap_bytes_per_projection,
                name=f"TestClusters-i{iteration}",
                partitioner=partitioner,
                normality=cfg.normality_test,
                vectorized=cfg.vectorized,
            )
        else:
            test_job = make_test_few_clusters_job(
                prev_centers,
                pairs,
                cfg.alpha,
                reduce_tasks,
                min_sample=cfg.min_mapper_sample,
                vote_rule=cfg.vote_rule,
                heap_bytes_per_projection=cfg.heap_bytes_per_projection,
                name=f"TestFewClusters-i{iteration}",
                normality=cfg.normality_test,
                vectorized=cfg.vectorized,
            )
        degraded = False
        try:
            result = driver.run(test_job, f)
            verdicts = decode_test_output(result.output)
        except JobFailedError as exc:
            # Heap exhaustion is a deterministic misconfiguration, not a
            # fault — surfacing it is the point of Figure 2, so it still
            # aborts the chain.
            if isinstance(exc.cause, JavaHeapSpaceError):
                raise
            # The test job died permanently (every retry exhausted).
            # Degrade instead of aborting the chain: with no verdicts,
            # every tested cluster is kept intact and marked found — the
            # conservative, termination-preserving choice (identical to
            # the no-verdict policy of _apply_verdicts), recorded on the
            # iteration so operators can see what was skipped.
            verdicts = {}
            degraded = True
            self.runtime.journal.event(
                "degraded_iteration",
                iteration=iteration,
                job=test_job.name,
                clusters_kept=len(pairs),
            )

        splits = self._apply_verdicts(state, flat, pairs, verdicts, candidates)
        return {
            "tested": len(pairs),
            "split": splits,
            "found": found_now + (len(pairs) - splits),
            "strategy": strategy,
            "centers": centers.copy(),
            "degraded": degraded,
        }

    def _apply_verdicts(
        self,
        state: GMeansState,
        flat,
        pairs: dict[int, np.ndarray],
        verdicts: dict,
        candidates: dict[int, np.ndarray],
    ) -> int:
        """Rebuild the cluster list from the test verdicts.

        Returns the number of clusters that were split. Policy for the
        edge cases: a cluster with no verdict (its points vanished this
        round) or an undecided mapper-side vote is kept intact — the
        conservative choice that guarantees termination.
        """
        cfg = self.config
        flat_of = {
            (index, role): pos for pos, (index, role) in enumerate(flat.slots)
        }
        new_clusters: list[ClusterNode] = []
        splits = 0
        k_budget = cfg.k_max - state.k
        # Snapshot: new_cluster() appends to state.clusters while we walk
        # the current generation.
        current_generation = list(state.clusters)
        for index, node in enumerate(current_generation):
            if node.found or index not in pairs:
                node.found = True
                new_clusters.append(node)
                continue
            verdict = verdicts.get(index)
            if (
                verdict is not None
                and not verdict.decided
                and cfg.undecided_policy == "defer"
            ):
                # No mapper saw enough of this cluster to vote; keep it
                # active and retest next round (bounded by max_iterations).
                new_clusters.append(node)
                continue
            must_keep = (
                verdict is None
                or not verdict.decided
                or verdict.is_normal
                or k_budget <= 0
            )
            if must_keep:
                if cfg.recenter_on_accept:
                    # The test validated the cluster's *current* mass;
                    # freeze the center where that mass sits (the
                    # size-weighted child centroid), not at the stale
                    # previous-iteration position.
                    node.center = node.children_centroid()
                node.found = True
                new_clusters.append(node)
                continue
            splits += 1
            k_budget -= 1
            for role in (ROLE_CHILD_A, ROLE_CHILD_B):
                child_center = node.children[role]
                sample = candidates.get(flat_of[(index, role)])
                usable = (
                    sample is not None
                    and sample.shape[0] == 2
                    and not np.array_equal(sample[0], sample[1])
                )
                child = state.new_cluster(
                    child_center,
                    sample if usable else None,
                    found=not usable,
                )
                new_clusters.append(child)
        state.clusters = new_clusters
        return splits
