"""MR G-means — the paper's Algorithm 1.

::

    PickInitialCenters
    while not ClusteringCompleted:
        KMeans                      (kmeans_iterations - 1 passes)
        KMeansAndFindNewCenters     (last pass + next-iteration picks)
        TestClusters | TestFewClusters

Unlike the serial algorithm, every iteration tests *all* active
clusters in parallel, so the number of centers roughly doubles per
round and the final k overshoots the true count (~1.5x in the paper's
Table 1); the optional ``post_merge`` pass implements the paper's
future-work fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import ensure_rng
from repro.clustering.merge import merge_gmeans_centers
from repro.mapreduce.driver import ChainTotals, JobChainDriver
from repro.mapreduce.hdfs import DFSFile
from repro.mapreduce.runtime import MapReduceRuntime
from repro.core.config import MRGMeansConfig
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.core.kmeans_find_new import (
    decode_find_new_centers_output,
    make_find_new_centers_job,
)
from repro.core.pick_initial import pick_initial_pairs
from repro.core.state import (
    ClusterNode,
    GMeansState,
    ROLE_CHILD_A,
    ROLE_CHILD_B,
)
from repro.core.strategy import MAPPER_SIDE, REDUCER_SIDE, choose_test_strategy
from repro.core.test_clusters import decode_test_output, make_test_clusters_job
from repro.core.test_few_clusters import make_test_few_clusters_job


@dataclass(frozen=True)
class IterationStats:
    """Diagnostics of one G-means iteration."""

    iteration: int
    k_before: int
    k_after: int
    clusters_tested: int
    clusters_split: int
    clusters_found: int
    strategy: str
    simulated_seconds: float
    centers: np.ndarray  # refined current centers (Figure 1 snapshots)


@dataclass
class MRGMeansResult:
    """Outcome of an MR G-means run."""

    centers: np.ndarray
    k_found: int
    iterations: int
    completed: bool
    history: list[IterationStats] = field(default_factory=list)
    totals: ChainTotals = field(default_factory=ChainTotals)
    merged_centers: np.ndarray | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.totals.simulated_seconds


class MRGMeans:
    """Driver for MapReduce G-means over a simulated cluster.

    Parameters
    ----------
    runtime:
        The MapReduce runtime (cluster topology + cost model + DFS).
    config:
        Algorithm tunables; defaults follow the paper.
    cache_input:
        Spark-style in-memory dataset between chained jobs (the
        paper's future-work optimisation); disabled by default to
        match the Hadoop measurements.
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        config: MRGMeansConfig | None = None,
        cache_input: bool = False,
    ):
        self.runtime = runtime
        self.config = config or MRGMeansConfig()
        self.cache_input = cache_input

    # -- public ----------------------------------------------------------

    def fit(self, dataset: "DFSFile | str") -> MRGMeansResult:
        """Run the full algorithm on ``dataset`` (a DFS file or name)."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        f = (
            self.runtime.dfs.open(dataset)
            if isinstance(dataset, str)
            else dataset
        )
        driver = JobChainDriver(self.runtime, cache_input=self.cache_input)
        state = GMeansState()
        for parent, pair in pick_initial_pairs(f, cfg.k_init, rng=rng):
            state.new_cluster(parent, pair)

        history: list[IterationStats] = []
        completed = False
        iteration = 0
        while not completed and iteration < cfg.max_iterations:
            iteration += 1
            seconds_before = driver.totals.simulated_seconds
            k_before = state.k
            stats = self._run_iteration(driver, f, state, iteration)
            history.append(
                IterationStats(
                    iteration=iteration,
                    k_before=k_before,
                    k_after=state.k,
                    clusters_tested=stats["tested"],
                    clusters_split=stats["split"],
                    clusters_found=stats["found"],
                    strategy=stats["strategy"],
                    simulated_seconds=(
                        driver.totals.simulated_seconds - seconds_before
                    ),
                    centers=stats["centers"],
                )
            )
            completed = state.all_found

        centers = state.parent_centers()
        merged = None
        if cfg.post_merge:
            points = np.asarray(f.all_records(), dtype=np.float64)
            merged = merge_gmeans_centers(points, centers, rng=rng)
        return MRGMeansResult(
            centers=centers,
            k_found=state.k,
            iterations=iteration,
            completed=completed,
            history=history,
            totals=driver.totals,
            merged_centers=merged,
        )

    # -- one iteration ----------------------------------------------------

    def _run_iteration(
        self,
        driver: JobChainDriver,
        f: DFSFile,
        state: GMeansState,
        iteration: int,
    ) -> dict:
        cfg = self.config
        # A fixed reducer count (Hadoop jobs commonly pin one) keeps the
        # algorithm's trajectory identical across cluster sizes, which
        # is what the Table-4 node-scaling comparison needs.
        reduce_tasks = (
            cfg.num_reduce_tasks or self.runtime.cluster.total_reduce_slots
        )
        flat = state.flatten_current(cfg.refine_found_centers)
        centers = flat.centers

        # KMeans refinement passes (all but the last).
        for step in range(cfg.kmeans_iterations - 1):
            job = make_kmeans_job(
                centers,
                reduce_tasks,
                name=f"KMeans-i{iteration}s{step}",
                vectorized=cfg.vectorized,
            )
            result = driver.run(job, f)
            centers, _sizes = decode_kmeans_output(result.output, centers)

        # Last pass merged with candidate picking.
        job = make_find_new_centers_job(
            centers,
            reduce_tasks,
            name=f"KMeansAndFindNewCenters-i{iteration}",
            vectorized=cfg.vectorized,
        )
        result = driver.run(job, f)
        centers, sizes, candidates = decode_find_new_centers_output(
            result.output, centers
        )
        state.apply_refined(flat, centers)
        state.record_sizes(flat, sizes)
        if cfg.anchor == "centroid":
            # Re-anchor every active cluster at its refined children's
            # size-weighted centroid, so the test job's membership
            # matches the mass the verdict will freeze.
            for node in state.clusters:
                if not node.found:
                    node.center = node.children_centroid()

        # Decide which clusters can be tested at all.
        found_now = 0
        pairs: dict[int, np.ndarray] = {}
        for index, node in enumerate(state.clusters):
            if node.found:
                continue
            if not node.has_usable_children() or node.size < cfg.min_split_size:
                node.found = True
                found_now += 1
                continue
            pairs[index] = node.children
        if not pairs:
            return {
                "tested": 0,
                "split": 0,
                "found": found_now,
                "strategy": "none",
                "centers": centers.copy(),
            }

        # Strategy choice (the paper's two-condition rule, or forced).
        max_points = max(state.clusters[index].size for index in pairs)
        if cfg.strategy == "auto":
            strategy = choose_test_strategy(
                len(pairs),
                max_points,
                self.runtime.cluster,
                cfg.heap_bytes_per_projection,
            )
        else:
            strategy = MAPPER_SIDE if cfg.strategy == "mapper" else REDUCER_SIDE

        prev_centers = state.parent_centers()
        if strategy == REDUCER_SIDE:
            partitioner = None
            if cfg.balanced_partitioning:
                from repro.mapreduce.partitioners import (
                    make_weight_balanced_partitioner,
                )

                partitioner = make_weight_balanced_partitioner(
                    {pid: state.clusters[pid].size for pid in pairs},
                    reduce_tasks,
                )
            test_job = make_test_clusters_job(
                prev_centers,
                pairs,
                cfg.alpha,
                reduce_tasks,
                heap_bytes_per_projection=cfg.heap_bytes_per_projection,
                name=f"TestClusters-i{iteration}",
                partitioner=partitioner,
                normality=cfg.normality_test,
            )
        else:
            test_job = make_test_few_clusters_job(
                prev_centers,
                pairs,
                cfg.alpha,
                reduce_tasks,
                min_sample=cfg.min_mapper_sample,
                vote_rule=cfg.vote_rule,
                heap_bytes_per_projection=cfg.heap_bytes_per_projection,
                name=f"TestFewClusters-i{iteration}",
                normality=cfg.normality_test,
            )
        result = driver.run(test_job, f)
        verdicts = decode_test_output(result.output)

        splits = self._apply_verdicts(state, flat, pairs, verdicts, candidates)
        return {
            "tested": len(pairs),
            "split": splits,
            "found": found_now + (len(pairs) - splits),
            "strategy": strategy,
            "centers": centers.copy(),
        }

    def _apply_verdicts(
        self,
        state: GMeansState,
        flat,
        pairs: dict[int, np.ndarray],
        verdicts: dict,
        candidates: dict[int, np.ndarray],
    ) -> int:
        """Rebuild the cluster list from the test verdicts.

        Returns the number of clusters that were split. Policy for the
        edge cases: a cluster with no verdict (its points vanished this
        round) or an undecided mapper-side vote is kept intact — the
        conservative choice that guarantees termination.
        """
        cfg = self.config
        flat_of = {
            (index, role): pos for pos, (index, role) in enumerate(flat.slots)
        }
        new_clusters: list[ClusterNode] = []
        splits = 0
        k_budget = cfg.k_max - state.k
        # Snapshot: new_cluster() appends to state.clusters while we walk
        # the current generation.
        current_generation = list(state.clusters)
        for index, node in enumerate(current_generation):
            if node.found or index not in pairs:
                node.found = True
                new_clusters.append(node)
                continue
            verdict = verdicts.get(index)
            if (
                verdict is not None
                and not verdict.decided
                and cfg.undecided_policy == "defer"
            ):
                # No mapper saw enough of this cluster to vote; keep it
                # active and retest next round (bounded by max_iterations).
                new_clusters.append(node)
                continue
            must_keep = (
                verdict is None
                or not verdict.decided
                or verdict.is_normal
                or k_budget <= 0
            )
            if must_keep:
                if cfg.recenter_on_accept:
                    # The test validated the cluster's *current* mass;
                    # freeze the center where that mass sits (the
                    # size-weighted child centroid), not at the stale
                    # previous-iteration position.
                    node.center = node.children_centroid()
                node.found = True
                new_clusters.append(node)
                continue
            splits += 1
            k_budget -= 1
            for role in (ROLE_CHILD_A, ROLE_CHILD_B):
                child_center = node.children[role]
                sample = candidates.get(flat_of[(index, role)])
                usable = (
                    sample is not None
                    and sample.shape[0] == 2
                    and not np.array_equal(sample[0], sample[1])
                )
                child = state.new_cluster(
                    child_center,
                    sample if usable else None,
                    found=not usable,
                )
                new_clusters.append(child)
        state.clusters = new_clusters
        return splits
