"""Checkpoint payloads for the MR G-means driver.

The generic :class:`~repro.mapreduce.driver.CheckpointingJobChainDriver`
persists an opaque algorithm payload plus the chain accounting; this
module defines what G-means puts inside that payload — the cluster
generation (:meth:`GMeansState.to_payload`), the per-iteration history,
and the state of the algorithm-level RNG — and restores it losslessly.

The contract the integration suite enforces: a run interrupted after
iteration *i* and resumed from the iteration-*i* checkpoint produces an
:class:`~repro.core.gmeans_mr.MRGMeansResult` byte-identical to a run
that was never interrupted (centers, ``k_found``, history, counters and
simulated time alike).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataFormatError
from repro.core.state import GMeansState

#: Payload discriminator, checked on decode so a G-means resume cannot
#: silently consume another algorithm's checkpoint.
GMEANS_ALGORITHM = "gmeans"


def encode_iteration_stats(stats) -> dict:
    """Serialisable snapshot of one ``IterationStats`` record."""
    return {
        "iteration": stats.iteration,
        "k_before": stats.k_before,
        "k_after": stats.k_after,
        "clusters_tested": stats.clusters_tested,
        "clusters_split": stats.clusters_split,
        "clusters_found": stats.clusters_found,
        "strategy": stats.strategy,
        "simulated_seconds": stats.simulated_seconds,
        "centers": np.asarray(stats.centers, dtype=np.float64).copy(),
        "degraded": stats.degraded,
    }


def decode_iteration_stats(payload: dict):
    """Rebuild an ``IterationStats`` from :func:`encode_iteration_stats`."""
    from repro.core.gmeans_mr import IterationStats

    return IterationStats(
        iteration=int(payload["iteration"]),
        k_before=int(payload["k_before"]),
        k_after=int(payload["k_after"]),
        clusters_tested=int(payload["clusters_tested"]),
        clusters_split=int(payload["clusters_split"]),
        clusters_found=int(payload["clusters_found"]),
        strategy=str(payload["strategy"]),
        simulated_seconds=float(payload["simulated_seconds"]),
        centers=np.asarray(payload["centers"], dtype=np.float64).copy(),
        degraded=bool(payload["degraded"]),
    )


def encode_gmeans_payload(
    state: GMeansState, history: list, rng: np.random.Generator
) -> dict:
    """The algorithm payload G-means hands to the checkpointing driver."""
    return {
        "algorithm": GMEANS_ALGORITHM,
        "state": state.to_payload(),
        "history": [encode_iteration_stats(stats) for stats in history],
        "algo_rng_state": rng.bit_generator.state,
    }


def decode_gmeans_payload(payload: dict) -> tuple[GMeansState, list, dict]:
    """Restore ``(state, history, algo_rng_state)`` from a payload."""
    algorithm = payload.get("algorithm")
    if algorithm != GMEANS_ALGORITHM:
        raise DataFormatError(
            f"checkpoint payload belongs to algorithm {algorithm!r}, "
            f"expected {GMEANS_ALGORITHM!r}"
        )
    state = GMeansState.from_payload(payload["state"])
    history = [decode_iteration_stats(entry) for entry in payload["history"]]
    return state, history, payload["algo_rng_state"]
