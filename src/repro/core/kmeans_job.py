"""The classical MapReduce k-means job with combiners.

Mapper: assign each point to its nearest center, emit
``centerid -> (coordinates, 1)``. Combiner/reducer: sum coordinate
vectors and counts; the reducer divides to obtain the new center.

Two mapper code paths share identical semantics:

* ``vectorized=False`` — the textbook per-record path (one emit per
  point), used by the equivalence tests;
* ``vectorized=True`` (default) — whole-split numpy processing that
  emits pre-summed partials, with framework counters still recording
  one logical map-output record per point. This is the "hybrid design
  that takes into account the number of nodes ... and the quantity of
  heap memory available" knob: semantics and accounting match the
  per-record path exactly (the combiner is associative), only the
  simulation speed differs.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import record_point, split_points

from repro.clustering.metrics import assign_nearest, cluster_sizes, label_sums
from repro.mapreduce.counters import USER_GROUP, UserCounter
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.mapreduce.hdfs import Split

#: Config key holding the (k, d) current-center matrix.
CENTERS_KEY = "centers"
#: Config key selecting the mapper code path.
VECTORIZED_KEY = "vectorized"


def load_centers(ctx: TaskContext) -> np.ndarray:
    """Read the broadcast center matrix from the job configuration
    (Hadoop would ship it via the distributed cache)."""
    return np.asarray(ctx.config[CENTERS_KEY], dtype=np.float64)


class KMeansMapper(Mapper):
    """Nearest-center assignment; emits per-center partial sums."""

    def setup(self, ctx: MapContext) -> None:
        self.centers = load_centers(ctx)
        self.vectorized = bool(ctx.config.get(VECTORIZED_KEY, True))

    def map(self, key: object, value: np.ndarray, ctx: MapContext) -> None:
        point = record_point(value, ctx)
        k, d = self.centers.shape
        ctx.count_distances(k, d)
        nearest = int(np.argmin(np.linalg.norm(self.centers - point, axis=1)))
        ctx.emit(nearest, (point.copy(), 1))

    def map_split(self, split: Split, ctx: MapContext) -> None:
        if not self.vectorized:
            super().map_split(split, ctx)
            return
        points = split_points(split, ctx)
        k, d = self.centers.shape
        labels, _ = assign_nearest(points, self.centers)
        ctx.count_distances(points.shape[0] * k, d)
        sums = label_sums(points, labels, k)
        counts = cluster_sizes(labels, k)
        for cid in np.flatnonzero(counts):
            ctx.emit(
                int(cid),
                (sums[cid].copy(), int(counts[cid])),
                records=int(counts[cid]),
            )


class KMeansCombiner(Reducer):
    """Pre-aggregates ``(sum, count)`` partials per center."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.emit(key, (total, count))


class KMeansReducer(Reducer):
    """Computes the new center position of each cluster."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        total = np.zeros_like(np.asarray(values[0][0], dtype=np.float64))
        count = 0
        for partial_sum, partial_count in values:
            total += partial_sum
            count += partial_count
        ctx.counters.set_max(
            USER_GROUP, UserCounter.POINTS_PER_CLUSTER_MAX, count
        )
        ctx.emit(key, (total / count, count))


def make_kmeans_job(
    centers: np.ndarray,
    num_reduce_tasks: int,
    name: str = "KMeans",
    vectorized: bool = True,
    combiner: bool = True,
) -> Job:
    """Build the classical k-means job for one refinement iteration.

    ``combiner=False`` drops the map-side pre-aggregation: the reducer
    sums partial ``(sum, count)`` pairs either way, so the centers are
    identical — only shuffle volume (and therefore simulated time)
    changes, which is what the combiner ablation and the what-if
    validation bench measure.
    """
    return Job(
        name=name,
        mapper=KMeansMapper,
        combiner=KMeansCombiner if combiner else None,
        combiner_optional=combiner,
        reducer=KMeansReducer,
        num_reduce_tasks=num_reduce_tasks,
        config={
            CENTERS_KEY: np.asarray(centers, dtype=np.float64),
            VECTORIZED_KEY: vectorized,
        },
    )


def decode_kmeans_output(
    result_output: list, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Turn reducer output into ``(new_centers, sizes)``.

    Clusters that received no points keep their previous position and
    report size 0 (the reducer simply never saw their id).
    """
    new_centers = np.asarray(centers, dtype=np.float64).copy()
    sizes = np.zeros(new_centers.shape[0], dtype=np.int64)
    for cid, (center, count) in result_output:
        new_centers[cid] = center
        sizes[cid] = count
    return new_centers, sizes
