"""MapReduce X-means — the related-work comparator, distributed.

The paper's related-work section weighs G-means against X-means
(Pelleg & Moore 2000), which splits clusters by comparing the Bayesian
Information Criterion of a one-center model against a two-center model
on each cluster's points. This module ports X-means to the same
MapReduce substrate so the two algorithms can be compared like for
like (see the ``algorithms`` ablation):

* ``ChildrenKMeans`` — refines every cluster's two candidate children
  *within* their parent's membership (hierarchical keys
  ``(parent, child)``), which preserves X-means' local-split semantics;
* ``BICDecision`` — computes, per cluster, the residual sums and
  member counts of both models in one pass; the reducer evaluates the
  spherical-Gaussian BIC of each and votes split/keep.

Candidate children are sampled with the same weighted-reservoir job
G-means uses (``KMeansAndFindNewCenters``), so the per-iteration job
structure — refine, pick, decide — matches MR G-means exactly and the
cost comparison is apples to apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.clustering.metrics import assign_nearest, cluster_sizes, label_sums
from repro.core.kmeans_find_new import (
    decode_find_new_centers_output,
    make_find_new_centers_job,
)
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job
from repro.core.pick_initial import pick_initial_pairs
from repro.core.records import split_points
from repro.mapreduce.driver import ChainTotals, JobChainDriver
from repro.mapreduce.hdfs import DFSFile, Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime
from repro.observability.journal import ITERATION, RUN
from repro.observability.metrics import MetricsRegistry

PARENTS_KEY = "parents"
CHILDREN_KEY = "children"  # dict: parent index -> (2, d)
DIMENSIONS_KEY = "dimensions"


class ChildrenKMeansMapper(Mapper):
    """Per point: nearest parent, then nearest of that parent's two
    children; emits hierarchical k-means partials."""

    def setup(self, ctx: MapContext) -> None:
        self.parents = np.asarray(ctx.config[PARENTS_KEY], dtype=np.float64)
        self.children = {
            int(p): np.asarray(pair, dtype=np.float64)
            for p, pair in ctx.config[CHILDREN_KEY].items()
        }

    def map_split(self, split: Split, ctx: MapContext) -> None:
        points = split_points(split, ctx)
        kp, d = self.parents.shape
        labels, _ = assign_nearest(points, self.parents)
        ctx.count_distances(points.shape[0] * kp, d)
        for parent, pair in self.children.items():
            member = points[labels == parent]
            if member.shape[0] == 0:
                continue
            child_labels, _ = assign_nearest(member, pair)
            ctx.count_distances(member.shape[0] * 2, d)
            sums = label_sums(member, child_labels, 2)
            counts = cluster_sizes(child_labels, 2)
            for child in np.flatnonzero(counts):
                ctx.emit(
                    (parent, int(child)),
                    (sums[child].copy(), int(counts[child])),
                    records=int(counts[child]),
                )


# The children-refinement job reuses the classical k-means combiner
# (sums partials) and reducer (divides once, at the end) — a combiner
# must stay in (sum, count) space or re-combination corrupts the mean.
from repro.core.kmeans_job import KMeansCombiner, KMeansReducer  # noqa: E402


class BICDecisionMapper(Mapper):
    """Per cluster: residual sums under the 1- and 2-center models."""

    def setup(self, ctx: MapContext) -> None:
        self.parents = np.asarray(ctx.config[PARENTS_KEY], dtype=np.float64)
        self.children = {
            int(p): np.asarray(pair, dtype=np.float64)
            for p, pair in ctx.config[CHILDREN_KEY].items()
        }

    def map_split(self, split: Split, ctx: MapContext) -> None:
        points = split_points(split, ctx)
        kp, d = self.parents.shape
        labels, parent_sq = assign_nearest(points, self.parents)
        ctx.count_distances(points.shape[0] * kp, d)
        for parent, pair in self.children.items():
            mask = labels == parent
            member = points[mask]
            if member.shape[0] == 0:
                continue
            child_labels, child_sq = assign_nearest(member, pair)
            ctx.count_distances(member.shape[0] * 2, d)
            counts = cluster_sizes(child_labels, 2)
            ctx.emit(
                parent,
                (
                    float(parent_sq[mask].sum()),
                    float(child_sq.sum()),
                    int(member.shape[0]),
                    int(counts[0]),
                    int(counts[1]),
                ),
                records=int(member.shape[0]),
            )


def _bic(rss: float, n: int, d: int, k: int, sizes: "list[int]") -> float:
    """Spherical-Gaussian BIC from aggregates (cf.
    :func:`repro.clustering.xmeans.spherical_bic`)."""
    dof = n - k
    if dof <= 0 or rss <= 0.0:
        return -math.inf
    variance = rss / (dof * d)
    log_likelihood = 0.0
    for ni in sizes:
        if ni > 0:
            log_likelihood += ni * math.log(ni / n)
    log_likelihood -= 0.5 * n * d * math.log(2.0 * math.pi * variance)
    log_likelihood -= 0.5 * (n - k) * d
    return log_likelihood - 0.5 * (k * (d + 1)) * math.log(n)


class BICDecisionReducer(Reducer):
    """Aggregates per-split sums and votes split/keep per cluster."""

    def setup(self, ctx: TaskContext) -> None:
        self.dimensions = int(ctx.config[DIMENSIONS_KEY])

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        rss_parent = sum(v[0] for v in values)
        rss_children = sum(v[1] for v in values)
        n = sum(v[2] for v in values)
        n_a = sum(v[3] for v in values)
        n_b = sum(v[4] for v in values)
        bic_one = _bic(rss_parent, n, self.dimensions, 1, [n])
        bic_two = _bic(rss_children, n, self.dimensions, 2, [n_a, n_b])
        should_split = bic_two > bic_one and min(n_a, n_b) > 0
        ctx.emit(key, (bool(should_split), n, bic_one, bic_two))


@dataclass
class MRXMeansResult:
    """Outcome of an MR X-means run."""

    centers: np.ndarray
    k_found: int
    iterations: int
    completed: bool
    totals: ChainTotals = field(default_factory=ChainTotals)

    @property
    def simulated_seconds(self) -> float:
        return self.totals.simulated_seconds


class MRXMeans:
    """Driver: grow k by BIC-guided splits, MapReduce throughout."""

    def __init__(
        self,
        runtime: MapReduceRuntime,
        k_init: int = 1,
        k_max: int = 4096,
        max_iterations: int = 30,
        min_split_size: int = 25,
        child_refinements: int = 2,
        seed: int | None = None,
        cache_input: bool = False,
    ):
        if k_init < 1 or k_max < k_init:
            raise ConfigurationError(
                f"need 1 <= k_init <= k_max, got {k_init}, {k_max}"
            )
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.runtime = runtime
        self.k_init = k_init
        self.k_max = k_max
        self.max_iterations = max_iterations
        self.min_split_size = min_split_size
        self.child_refinements = child_refinements
        self.seed = seed
        self.cache_input = cache_input

    def fit(self, dataset: "DFSFile | str") -> MRXMeansResult:
        """Run MR X-means on ``dataset``."""
        rng = ensure_rng(self.seed)
        f = (
            self.runtime.dfs.open(dataset)
            if isinstance(dataset, str)
            else dataset
        )
        driver = JobChainDriver(self.runtime, cache_input=self.cache_input)
        reduce_tasks = self.runtime.cluster.total_reduce_slots
        seeds = pick_initial_pairs(f, self.k_init, rng=rng)
        centers = np.vstack([parent for parent, _pair in seeds])
        found = [False] * centers.shape[0]

        iteration = 0
        completed = False
        journal = self.runtime.journal
        metrics = MetricsRegistry(driver.totals.counters)

        def finish_iteration(span, seconds_before: float) -> None:
            if journal.enabled:
                span.set(
                    k_after=centers.shape[0],
                    simulated_seconds=(
                        driver.totals.simulated_seconds - seconds_before
                    ),
                    counters=metrics.mark().as_dict(),
                )

        with journal.span(
            RUN,
            "xmeans",
            dataset=f.name,
            k_init=self.k_init,
            k_max=self.k_max,
        ) as run_span:
            while not completed and iteration < self.max_iterations:
                iteration += 1
                seconds_before = driver.totals.simulated_seconds
                with journal.span(
                    ITERATION,
                    f"iteration-{iteration}",
                    iteration=iteration,
                    k_before=centers.shape[0],
                ) as span:
                    # 1. Refine the global centers; the merged pass also
                    #    picks each cluster's two candidate children.
                    job = make_kmeans_job(
                        centers, reduce_tasks, name=f"XMeans-KMeans-{iteration}"
                    )
                    centers, _ = decode_kmeans_output(
                        driver.run(job, f).output, centers
                    )
                    job = make_find_new_centers_job(
                        centers, reduce_tasks, name=f"XMeans-Pick-{iteration}"
                    )
                    centers, sizes, candidates = decode_find_new_centers_output(
                        driver.run(job, f).output, centers
                    )

                    children = {
                        index: candidates[index]
                        for index in range(centers.shape[0])
                        if not found[index]
                        and index in candidates
                        and candidates[index].shape[0] == 2
                        and not np.array_equal(
                            candidates[index][0], candidates[index][1]
                        )
                        and sizes[index] >= self.min_split_size
                    }
                    for index in range(centers.shape[0]):
                        if index not in children:
                            found[index] = True
                    if not children:
                        completed = all(found)
                        finish_iteration(span, seconds_before)
                        break

                    # 2. Refine children within their parents.
                    for step in range(self.child_refinements):
                        job = Job(
                            name=f"XMeans-Children-{iteration}.{step}",
                            mapper=ChildrenKMeansMapper,
                            combiner=KMeansCombiner,
                            reducer=KMeansReducer,
                            num_reduce_tasks=reduce_tasks,
                            config={PARENTS_KEY: centers, CHILDREN_KEY: children},
                        )
                        refined = dict(children)
                        for (parent, child), (mean, _count) in driver.run(
                            job, f
                        ).output:
                            refined[parent] = refined[parent].copy()
                            refined[parent][child] = mean
                        children = refined

                    # 3. BIC decision per cluster.
                    job = Job(
                        name=f"XMeans-BIC-{iteration}",
                        mapper=BICDecisionMapper,
                        combiner=None,
                        reducer=BICDecisionReducer,
                        num_reduce_tasks=reduce_tasks,
                        config={
                            PARENTS_KEY: centers,
                            CHILDREN_KEY: children,
                            DIMENSIONS_KEY: centers.shape[1],
                        },
                    )
                    verdicts = dict(driver.run(job, f).output)

                    new_centers: list[np.ndarray] = []
                    new_found: list[bool] = []
                    k_budget = self.k_max - centers.shape[0]
                    for index in range(centers.shape[0]):
                        if found[index] or index not in children:
                            new_centers.append(centers[index])
                            new_found.append(True)
                            continue
                        verdict = verdicts.get(index)
                        if verdict is not None and verdict[0] and k_budget > 0:
                            new_centers.extend(children[index])
                            new_found.extend([False, False])
                            k_budget -= 1
                        else:
                            # Tested and kept: this cluster is finished.
                            new_centers.append(centers[index])
                            new_found.append(True)
                    centers = np.vstack(new_centers)
                    found = new_found
                    completed = all(found)
                    finish_iteration(span, seconds_before)
            if journal.enabled:
                run_span.set(
                    status="ok",
                    k_found=centers.shape[0],
                    iterations=iteration,
                    completed=completed,
                    simulated_seconds=driver.totals.simulated_seconds,
                    jobs=driver.totals.jobs,
                )

        return MRXMeansResult(
            centers=centers,
            k_found=centers.shape[0],
            iterations=iteration,
            completed=completed,
            totals=driver.totals,
        )
