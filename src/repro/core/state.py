"""Center bookkeeping across MR G-means iterations.

One subtlety of the MapReduce port (paper, Section 3) is that every
iteration juggles three generations of centers:

* **previous** — the parent centers that define cluster membership when
  testing (``TestClusters`` assigns each point to its nearest previous
  center);
* **current** — the candidate children pairs being refined by k-means
  this iteration (plus the centers of clusters already marked found);
* **next** — the candidate pairs picked by ``KMeansAndFindNewCenters``
  for the iteration after this one.

:class:`GMeansState` owns that bookkeeping: it flattens the current
generation into the dense center array the jobs consume and maps the
results back onto the cluster tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Role of a flat center slot: the single center of a found cluster, or
#: one of the two candidate children of an active cluster.
ROLE_FOUND = -1
ROLE_CHILD_A = 0
ROLE_CHILD_B = 1


@dataclass
class ClusterNode:
    """One cluster of the current generation."""

    cluster_id: int
    center: np.ndarray
    found: bool = False
    children: np.ndarray | None = None  # (2, d) candidate pair
    size: int = 0  # points assigned (from the latest k-means pass)
    child_sizes: tuple[int, int] = (0, 0)  # per-child point counts

    def has_usable_children(self) -> bool:
        """True when a non-degenerate candidate pair is attached."""
        return (
            self.children is not None
            and self.children.shape[0] == 2
            and not np.array_equal(self.children[0], self.children[1])
        )

    def children_centroid(self) -> np.ndarray:
        """Size-weighted mean of the two children — where the cluster's
        mass currently sits (falls back to the stale parent center for
        an empty pair)."""
        if self.children is None or sum(self.child_sizes) == 0:
            return self.center
        weights = np.asarray(self.child_sizes, dtype=np.float64)
        return np.average(self.children, axis=0, weights=weights)

    # -- checkpoint codec ------------------------------------------------

    def to_payload(self) -> dict:
        """Loss-free serialisable snapshot of this node.

        Arrays are copied (a checkpoint must not alias live state that
        the next iteration mutates in place).
        """
        return {
            "cluster_id": self.cluster_id,
            "center": self.center.copy(),
            "found": self.found,
            "children": None if self.children is None else self.children.copy(),
            "size": self.size,
            "child_sizes": tuple(self.child_sizes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusterNode":
        """Rebuild a node from :meth:`to_payload` output."""
        children = payload["children"]
        return cls(
            cluster_id=int(payload["cluster_id"]),
            center=np.asarray(payload["center"], dtype=np.float64).copy(),
            found=bool(payload["found"]),
            children=None
            if children is None
            else np.asarray(children, dtype=np.float64).copy(),
            size=int(payload["size"]),
            child_sizes=(
                int(payload["child_sizes"][0]),
                int(payload["child_sizes"][1]),
            ),
        )


@dataclass
class FlatCenters:
    """The dense center array handed to a job, plus its slot map."""

    centers: np.ndarray  # (K, d)
    slots: list[tuple[int, int]]  # flat index -> (cluster list index, role)

    @property
    def k(self) -> int:
        return self.centers.shape[0]


@dataclass
class GMeansState:
    """All clusters of the current generation."""

    clusters: list[ClusterNode] = field(default_factory=list)
    _next_id: int = 0

    def new_cluster(
        self,
        center: np.ndarray,
        children: np.ndarray | None,
        found: bool = False,
    ) -> ClusterNode:
        node = ClusterNode(
            cluster_id=self._next_id,
            center=np.asarray(center, dtype=np.float64).copy(),
            found=found,
            children=None if children is None else np.asarray(children, dtype=np.float64).copy(),
        )
        self._next_id += 1
        self.clusters.append(node)
        return node

    # -- views ----------------------------------------------------------

    @property
    def k(self) -> int:
        """Current number of clusters."""
        return len(self.clusters)

    @property
    def active(self) -> list[ClusterNode]:
        """Clusters still to be tested."""
        return [c for c in self.clusters if not c.found]

    @property
    def all_found(self) -> bool:
        return all(c.found for c in self.clusters)

    def parent_centers(self) -> np.ndarray:
        """The previous-generation centers (one per cluster)."""
        return np.vstack([c.center for c in self.clusters])

    def flatten_current(self, refine_found: bool) -> FlatCenters:
        """Dense array of the centers k-means refines this iteration.

        Active clusters contribute their two children; found clusters
        contribute their single center when ``refine_found`` (otherwise
        they are excluded — their points then gravitate to other
        centers, which is why the paper keeps refining them).
        """
        rows: list[np.ndarray] = []
        slots: list[tuple[int, int]] = []
        for index, node in enumerate(self.clusters):
            if node.found:
                if refine_found:
                    rows.append(node.center)
                    slots.append((index, ROLE_FOUND))
            elif node.children is not None:
                rows.append(node.children[0])
                slots.append((index, ROLE_CHILD_A))
                rows.append(node.children[1])
                slots.append((index, ROLE_CHILD_B))
        return FlatCenters(centers=np.vstack(rows), slots=slots)

    def apply_refined(self, flat: FlatCenters, refined: np.ndarray) -> None:
        """Write refined center positions back onto the cluster tree."""
        for (index, role), row in zip(flat.slots, refined):
            node = self.clusters[index]
            if role == ROLE_FOUND:
                node.center = row.copy()
            else:
                node.children[role] = row

    def record_sizes(self, flat: FlatCenters, sizes: np.ndarray) -> None:
        """Store per-cluster point counts from a k-means pass.

        An active cluster's size is the sum over its two children; a
        found cluster's is its own slot.
        """
        for node in self.clusters:
            node.size = 0
            node.child_sizes = (0, 0)
        for (index, role), count in zip(flat.slots, sizes):
            node = self.clusters[index]
            node.size += int(count)
            if role == ROLE_CHILD_A:
                node.child_sizes = (int(count), node.child_sizes[1])
            elif role == ROLE_CHILD_B:
                node.child_sizes = (node.child_sizes[0], int(count))

    # -- checkpoint codec ------------------------------------------------

    def to_payload(self) -> dict:
        """Loss-free serialisable snapshot of the whole generation
        (every node plus the id allocator — a resumed run must keep
        assigning the ids an uninterrupted run would have)."""
        return {
            "next_id": self._next_id,
            "clusters": [node.to_payload() for node in self.clusters],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GMeansState":
        """Rebuild a state from :meth:`to_payload` output."""
        return cls(
            clusters=[
                ClusterNode.from_payload(node) for node in payload["clusters"]
            ],
            _next_id=int(payload["next_id"]),
        )
