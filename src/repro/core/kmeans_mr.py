"""Plain MapReduce k-means driver (fixed k).

The building block the paper's baselines are made of: chained
``KMeans`` jobs until convergence or an iteration budget. Used by the
quality comparison (Table 3 runs the baseline at the k G-means found)
and by the equivalence tests against serial Lloyd.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.records import first_split_points

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.clustering.init import kmeans_pp_init
from repro.mapreduce.driver import ChainTotals, JobChainDriver
from repro.mapreduce.hdfs import DFSFile
from repro.mapreduce.runtime import MapReduceRuntime
from repro.core.kmeans_job import decode_kmeans_output, make_kmeans_job


@dataclass
class MRKMeansResult:
    """Outcome of an MR k-means run."""

    centers: np.ndarray
    sizes: np.ndarray
    iterations: int
    converged: bool
    totals: ChainTotals = field(default_factory=ChainTotals)

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    @property
    def simulated_seconds(self) -> float:
        return self.totals.simulated_seconds


class MRKMeans:
    """Fixed-k MapReduce k-means."""

    def __init__(
        self,
        runtime: MapReduceRuntime,
        k: int,
        init: str = "random",
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        vectorized: bool = True,
        seed: int | None = None,
        cache_input: bool = False,
    ):
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.runtime = runtime
        self.k = k
        self.init = init
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.vectorized = vectorized
        self.seed = seed
        self.cache_input = cache_input

    def _initial_centers(
        self, f: DFSFile, rng: np.random.Generator, driver: JobChainDriver
    ) -> np.ndarray:
        if self.init in ("kmeans||", "kmeans-parallel"):
            # Bahmani's scalable k-means++: runs as MapReduce jobs whose
            # cost folds into this run's chain accounting.
            from repro.core.kmeans_parallel import kmeans_parallel_init

            return kmeans_parallel_init(
                self.runtime,
                f,
                self.k,
                seed=int(rng.integers(2**63 - 1)),
                driver=driver,
            )
        sample = first_split_points(f)
        if sample.shape[0] < self.k:
            raise ConfigurationError(
                f"first split holds {sample.shape[0]} points; cannot seed k={self.k}"
            )
        if self.init == "random":
            idx = rng.choice(sample.shape[0], size=self.k, replace=False)
            return sample[idx].copy()
        if self.init in ("kmeans++", "k-means++"):
            return kmeans_pp_init(sample, self.k, rng=rng)
        raise ConfigurationError(f"unknown init method {self.init!r}")

    def fit(
        self,
        dataset: "DFSFile | str",
        initial_centers: np.ndarray | None = None,
    ) -> MRKMeansResult:
        """Iterate MR k-means to convergence (or the iteration budget)."""
        rng = ensure_rng(self.seed)
        f = (
            self.runtime.dfs.open(dataset)
            if isinstance(dataset, str)
            else dataset
        )
        driver = JobChainDriver(self.runtime, cache_input=self.cache_input)
        if initial_centers is None:
            centers = self._initial_centers(f, rng, driver)
        else:
            centers = np.asarray(initial_centers, dtype=np.float64).copy()
            if centers.shape[0] != self.k:
                raise ConfigurationError(
                    f"initial_centers has {centers.shape[0]} rows but k={self.k}"
                )
        reduce_tasks = self.runtime.cluster.total_reduce_slots
        sizes = np.zeros(self.k, dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            job = make_kmeans_job(
                centers,
                reduce_tasks,
                name=f"KMeans-{iteration}",
                vectorized=self.vectorized,
            )
            result = driver.run(job, f)
            new_centers, sizes = decode_kmeans_output(result.output, centers)
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift <= self.tolerance:
                converged = True
                break
        return MRKMeansResult(
            centers=centers,
            sizes=sizes,
            iterations=iteration,
            converged=converged,
            totals=driver.totals,
        )
