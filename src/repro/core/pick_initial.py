"""``PickInitialCenters`` — the serial seeding step of MR G-means.

"A classical step of any k-means algorithm. The main difference with
respect to classical k-means implementations is that it picks *pairs*
of centers (c1 and c2). We use a serial implementation, that picks
initial centers at random, but other distributed or more efficient
algorithms ... can perfectly be used instead."

The implementation samples from the first split of the dataset (a
serial driver-side read, as in the paper) and supports the cited
alternatives via ``method``: random or k-means++ pair seeding.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import first_split_points

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.clustering.init import kmeans_pp_init
from repro.mapreduce.hdfs import DFSFile


def pick_initial_pairs(
    dataset: DFSFile,
    k_init: int,
    rng=None,
    method: str = "random",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Pick ``k_init`` initial (parent center, children pair) seeds.

    Returns a list of ``(parent_center, children)`` tuples where
    ``children`` is a ``(2, d)`` matrix. The parent center is the pair
    midpoint — with ``k_init=1`` every point belongs to the single
    initial cluster regardless, exactly as in the paper.
    """
    if k_init < 1:
        raise ConfigurationError(f"k_init must be >= 1, got {k_init}")
    rng = ensure_rng(rng)
    sample = first_split_points(dataset)
    needed = 2 * k_init
    if sample.shape[0] < needed:
        raise ConfigurationError(
            f"first split holds {sample.shape[0]} points; "
            f"cannot pick {needed} initial centers"
        )
    if method == "random":
        idx = rng.choice(sample.shape[0], size=needed, replace=False)
        picked = sample[idx]
    elif method in ("kmeans++", "k-means++"):
        picked = kmeans_pp_init(sample, needed, rng=rng)
    else:
        raise ConfigurationError(f"unknown init method {method!r}")
    seeds = []
    for i in range(k_init):
        pair = picked[2 * i : 2 * i + 2].copy()
        parent = pair.mean(axis=0)
        seeds.append((parent, pair))
    return seeds
