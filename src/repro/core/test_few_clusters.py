"""The ``TestFewClusters`` job (paper, Algorithm 5) — mapper-side testing.

While k is small, reducer-side testing has two problems: parallelism is
bounded by k, and a single reducer may receive the projections of a
huge cluster (worst case: the whole dataset) and exhaust its heap. The
alternative strategy runs the Anderson-Darling test *inside each
mapper*, on the split-local sample of every cluster, in the mapper's
``close`` hook; reducers merely combine the mapper decisions.

Correctness relies on per-mapper samples being large enough: the job
only emits a decision for clusters with at least ``min_sample``
(default 20, the paper's safety margin over the rule-of-thumb 8)
points in the split. Mapper memory is bounded by the split size —
``O(split_bytes / dimensions)`` projections — which the mapper
accounts explicitly against its task heap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.mapreduce.counters import UserCounter
from repro.mapreduce.hdfs import Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.stats.normality import normality_test
from repro.core.config import (
    HEAP_BYTES_PER_PROJECTION,
    MIN_MAPPER_SAMPLE,
    VOTE_RULES,
)
from repro.core.kmeans_job import VECTORIZED_KEY
from repro.core.test_clusters import (
    ALPHA_KEY,
    NORMALITY_KEY,
    PAIRS_KEY,
    PREV_CENTERS_KEY,
    ProjectionMapperBase,
    TestVerdict,
)

MIN_SAMPLE_KEY = "min_sample"
VOTE_RULE_KEY = "vote_rule"
HEAP_PER_PROJECTION_KEY = "heap_bytes_per_projection"


class MapperVote(tuple):
    """One mapper's contribution: ``(statistic, n, decided, rejected)``.

    ``decided`` is False when the mapper's sample was below the
    ``min_sample`` threshold ("the mapper is then not able to compute a
    decision"). ``rejected`` carries the mapper's own accept/reject
    verdict — the critical value can depend on the mapper's sample size
    (e.g. Lilliefors), so the decision must travel with the vote.
    """

    __slots__ = ()

    def __new__(
        cls, statistic: float, n: int, decided: bool, rejected: bool = False
    ):
        return super().__new__(
            cls, (float(statistic), int(n), bool(decided), bool(rejected))
        )

    def __getnewargs__(self):
        return tuple(self)

    @property
    def statistic(self) -> float:
        return self[0]

    @property
    def n(self) -> int:
        return self[1]

    @property
    def decided(self) -> bool:
        return self[2]

    @property
    def rejected(self) -> bool:
        return self[3]


class TestFewClustersMapper(ProjectionMapperBase):
    """Buffers projections per cluster; tests them in ``close``."""

    def setup(self, ctx: MapContext) -> None:
        super().setup(ctx)
        self.alpha = float(ctx.config[ALPHA_KEY])
        self.method = ctx.config.get(NORMALITY_KEY, "anderson")
        self.min_sample = int(ctx.config.get(MIN_SAMPLE_KEY, MIN_MAPPER_SAMPLE))
        self.heap_per_projection = int(
            ctx.config.get(HEAP_PER_PROJECTION_KEY, HEAP_BYTES_PER_PROJECTION)
        )
        self._buffers: dict[int, list[np.ndarray]] = {}

    def map_split(self, split: Split, ctx: MapContext) -> None:
        for pid, proj in self.project_split(split, ctx).items():
            ctx.allocate(proj.size * self.heap_per_projection)
            self._buffers.setdefault(pid, []).append(proj)

    def close(self, ctx: MapContext) -> None:
        for pid in sorted(self._buffers):
            sample = np.concatenate(self._buffers[pid])
            if sample.size < self.min_sample:
                ctx.emit(pid, MapperVote(math.nan, sample.size, False))
                continue
            ctx.count(UserCounter.AD_TESTS)
            ctx.count(UserCounter.AD_SAMPLE_POINTS, sample.size)
            result = normality_test(sample, self.alpha, self.method)
            ctx.emit(
                pid,
                MapperVote(
                    result.statistic, sample.size, True, not result.is_normal
                ),
            )


class TestFewClustersReducer(Reducer):
    """Combines mapper votes into one verdict per cluster.

    Three combination rules are provided (the paper says only that the
    reducers "combine the decisions taken by mappers"):

    * ``weighted_majority`` (default) — votes weighted by sample size;
    * ``any_reject`` — split as soon as one mapper rejects normality;
    * ``all_reject`` — split only when every deciding mapper rejects.
    """

    def setup(self, ctx: TaskContext) -> None:
        self.alpha = float(ctx.config[ALPHA_KEY])
        self.rule = ctx.config.get(VOTE_RULE_KEY, "weighted_majority")
        if self.rule not in VOTE_RULES:
            raise ConfigurationError(f"unknown vote rule {self.rule!r}")

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        ctx.count(UserCounter.CLUSTER_TESTS)
        votes = [MapperVote(*v) for v in values]
        decided = [v for v in votes if v.decided]
        total_n = sum(v.n for v in votes)
        if not decided:
            ctx.emit(key, TestVerdict(math.nan, total_n, True, False))
            return
        rejects = [v for v in decided if v.rejected]
        accept_weight = sum(v.n for v in decided) - sum(v.n for v in rejects)
        reject_weight = sum(v.n for v in rejects)
        if self.rule == "weighted_majority":
            is_normal = reject_weight <= accept_weight
        elif self.rule == "any_reject":
            is_normal = not rejects
        else:  # all_reject
            is_normal = len(rejects) < len(decided)
        mean_stat = sum(v.statistic * v.n for v in decided) / sum(
            v.n for v in decided
        )
        ctx.emit(key, TestVerdict(mean_stat, total_n, is_normal, True))


def make_test_few_clusters_job(
    prev_centers: np.ndarray,
    pairs: dict[int, np.ndarray],
    alpha: float,
    num_reduce_tasks: int,
    min_sample: int = MIN_MAPPER_SAMPLE,
    vote_rule: str = "weighted_majority",
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
    name: str = "TestFewClusters",
    normality: str = "anderson",
    vectorized: bool = True,
) -> Job:
    """Build the mapper-side test job."""
    return Job(
        name=name,
        mapper=TestFewClustersMapper,
        reducer=TestFewClustersReducer,
        num_reduce_tasks=num_reduce_tasks,
        config={
            PREV_CENTERS_KEY: np.asarray(prev_centers, dtype=np.float64),
            PAIRS_KEY: {int(k): np.asarray(v) for k, v in pairs.items()},
            ALPHA_KEY: float(alpha),
            MIN_SAMPLE_KEY: int(min_sample),
            VOTE_RULE_KEY: vote_rule,
            HEAP_PER_PROJECTION_KEY: int(heap_bytes_per_projection),
            NORMALITY_KEY: normality,
            VECTORIZED_KEY: bool(vectorized),
        },
    )
