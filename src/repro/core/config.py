"""Configuration of the MapReduce G-means driver."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import check_in_range, check_positive

#: Environment variables consulted when the config leaves checkpointing
#: unset — how the ``--checkpoint-dir`` / ``--resume`` CLI flags reach
#: drivers constructed deep inside the experiment registry.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
RESUME_ENV = "REPRO_RESUME"

#: Reducer heap bytes consumed per buffered projection. The paper
#: measures this experimentally in Figure 2 (linear regression
#: ``64 * x - 42.67`` MB over millions of points, i.e. 64 bytes — eight
#: doubles of JVM object overhead — per point) and then uses the value
#: 64 to decide when switching to the reducer-side strategy is safe.
HEAP_BYTES_PER_PROJECTION = 64

#: Minimum mapper-side sample for a trustworthy Anderson-Darling test.
#: "a minimum size of 8 is considered to be sufficient. In our
#: implementation we use a threshold of 20, to stay on the safe side."
MIN_MAPPER_SAMPLE = 20

#: How mapper votes are merged by the TestFewClusters reducer.
VOTE_RULES = ("weighted_majority", "any_reject", "all_reject")

#: Strategy override values ("auto" applies the paper's switching rule).
STRATEGIES = ("auto", "mapper", "reducer")

#: What to do with a cluster whose mapper-side vote was undecided
#: (every mapper's sample fell below ``min_mapper_sample``): mark it
#: found (conservative, the default) or defer and retest next round.
UNDECIDED_POLICIES = ("found", "defer")

#: How the test jobs anchor cluster membership. "previous" is the
#: paper-literal choice (nearest center from the previous iteration);
#: "centroid" anchors each active cluster at the size-weighted centroid
#: of its refined children, which tracks the cluster's current mass and
#: avoids accepting a cluster on a sample its children no longer hold.
ANCHOR_MODES = ("centroid", "previous")


@dataclass
class MRGMeansConfig:
    """Tunables of :class:`repro.core.gmeans_mr.MRGMeans`.

    ``kmeans_iterations`` is the total number of k-means refinement
    passes per G-means iteration, *including* the final pass that is
    merged with candidate picking ("we found experimentally that only
    two k-means iterations are sufficient" — the paper's default).
    """

    #: Significance level of the Anderson-Darling test. The serial
    #: G-means paper runs at the very strict 1e-4; the MR port tests
    #: clusters through per-split mapper votes whose individual samples
    #: are far smaller than the full cluster, which costs statistical
    #: power — 0.01 compensates and matches the EDBT paper's observed
    #: splitting behaviour (its own level is unstated). Set
    #: ``alpha=repro.stats.GMEANS_ALPHA`` for the canonical strictness.
    alpha: float = 0.01
    #: Which normality test decides splits: "anderson" (G-means
    #: canon), "jarque_bera" or "lilliefors" (ablation alternatives
    #: from :mod:`repro.stats.normality`).
    normality_test: str = "anderson"
    k_init: int = 1
    k_max: int = 4096
    max_iterations: int = 30
    kmeans_iterations: int = 2
    min_split_size: int = 25
    min_mapper_sample: int = MIN_MAPPER_SAMPLE
    vote_rule: str = "weighted_majority"
    strategy: str = "auto"
    undecided_policy: str = "found"
    anchor: str = "centroid"
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION
    #: Balance reduce-side load by known cluster sizes when testing
    #: (the skew handling the paper leaves as future work).
    balanced_partitioning: bool = False
    refine_found_centers: bool = True
    recenter_on_accept: bool = True
    #: Mapper code path for the k-means *and* normality-test jobs:
    #: whole-split numpy/BLAS kernels (default) or the textbook
    #: per-record loops kept as the equivalence oracle. Semantics and
    #: algorithmic counters are identical either way.
    vectorized: bool = True
    post_merge: bool = False
    #: Map-side pre-aggregation in the k-means refinement jobs.
    #: Results are identical with it off (the reducer sums partial
    #: pairs either way); only shuffle volume and simulated time move —
    #: the knob the what-if validation bench exercises.
    use_combiner: bool = True
    num_reduce_tasks: int | None = None
    seed: int | None = None
    #: DFS directory for per-iteration chain checkpoints. ``None``
    #: (default) consults ``$REPRO_CHECKPOINT_DIR``; the empty string
    #: disables checkpointing even when the environment sets it.
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_dir is None:
            self.checkpoint_dir = os.environ.get(CHECKPOINT_DIR_ENV) or None
        elif not self.checkpoint_dir:
            self.checkpoint_dir = None
        check_in_range("alpha", self.alpha, 1e-12, 0.5)
        check_positive("k_init", self.k_init)
        check_positive("k_max", self.k_max)
        check_positive("max_iterations", self.max_iterations)
        check_positive("min_split_size", self.min_split_size)
        check_positive("min_mapper_sample", self.min_mapper_sample)
        check_positive("heap_bytes_per_projection", self.heap_bytes_per_projection)
        if self.kmeans_iterations < 1:
            raise ConfigurationError(
                "kmeans_iterations must be >= 1 (the final pass is the "
                f"KMeansAndFindNewCenters job), got {self.kmeans_iterations}"
            )
        if self.vote_rule not in VOTE_RULES:
            raise ConfigurationError(
                f"vote_rule must be one of {VOTE_RULES}, got {self.vote_rule!r}"
            )
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.undecided_policy not in UNDECIDED_POLICIES:
            raise ConfigurationError(
                f"undecided_policy must be one of {UNDECIDED_POLICIES}, "
                f"got {self.undecided_policy!r}"
            )
        if self.anchor not in ANCHOR_MODES:
            raise ConfigurationError(
                f"anchor must be one of {ANCHOR_MODES}, got {self.anchor!r}"
            )
        if self.k_init > self.k_max:
            raise ConfigurationError(
                f"k_init={self.k_init} exceeds k_max={self.k_max}"
            )
        if self.num_reduce_tasks is not None:
            check_positive("num_reduce_tasks", self.num_reduce_tasks)
        from repro.stats.normality import NORMALITY_TESTS

        if self.normality_test not in NORMALITY_TESTS:
            raise ConfigurationError(
                f"normality_test must be one of {sorted(NORMALITY_TESTS)}, "
                f"got {self.normality_test!r}"
            )
