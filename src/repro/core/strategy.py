"""The hybrid test-strategy switching rule (paper, Section 3.2).

The driver starts with mapper-side testing (``TestFewClusters``) and
switches to reducer-side testing (``TestClusters``) only when both
conditions hold:

1. the number of clusters to test exceeds the total reduce capacity of
   the cluster (below that, reducer-side parallelism is bounded by k
   and mapper-side testing wins);
2. the estimated heap required by the busiest reducer — points in the
   biggest cluster times the per-projection heap constant (64 bytes,
   Figure 2) — fits within the usable fraction of the task JVM heap
   (66%; above that the garbage collector thrashes).

:func:`decide_test_strategy` returns the full :class:`StrategyDecision`
— the rule's inputs, the predicted reducer heap and both condition
outcomes — which the G-means driver journals as a ``strategy_decision``
event so ``repro analyze`` can audit every switch against what the
reducers actually buffered.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.common.validation import check_non_negative, check_positive
from repro.mapreduce.cluster import ClusterConfig
from repro.core.config import HEAP_BYTES_PER_PROJECTION
from repro.core.test_clusters import estimate_reducer_heap_bytes

MAPPER_SIDE = "mapper"
REDUCER_SIDE = "reducer"


@dataclass(frozen=True)
class StrategyDecision:
    """One application of the switching rule, inputs and verdict.

    ``predicted_heap_bytes`` is the Figure-2 estimate
    (``max_cluster_points × heap_bytes_per_projection``) the rule
    compared against ``usable_heap_bytes``; the two booleans are the
    rule's conditions, recorded so a journal audit can re-derive the
    verdict from the inputs alone.
    """

    strategy: str
    clusters_to_test: int
    max_cluster_points: int
    predicted_heap_bytes: int
    usable_heap_bytes: int
    total_reduce_slots: int
    enough_parallelism: bool
    heap_fits: bool

    def as_event_attrs(self) -> dict:
        """Flat JSON-ready attrs for a ``strategy_decision`` event."""
        return asdict(self)


def decide_test_strategy(
    clusters_to_test: int,
    max_cluster_points: int,
    cluster: ClusterConfig,
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
) -> StrategyDecision:
    """Apply the paper's two-condition switching rule, keeping the
    evidence: returns the chosen strategy together with every input the
    decision depended on.

    ``cluster`` is anything exposing ``total_reduce_slots`` and
    ``usable_heap_bytes`` — a static :class:`ClusterConfig` or a live
    :class:`~repro.mapreduce.nodes.ClusterState`, whose slot pool
    shrinks as nodes die (the driver re-derives the decision from live
    capacity every iteration)."""
    check_positive("clusters_to_test", clusters_to_test)
    check_non_negative("max_cluster_points", max_cluster_points)
    enough_parallelism = clusters_to_test > cluster.total_reduce_slots
    heap_needed = estimate_reducer_heap_bytes(
        max_cluster_points, heap_bytes_per_projection
    )
    heap_fits = heap_needed <= cluster.usable_heap_bytes
    strategy = (
        REDUCER_SIDE if enough_parallelism and heap_fits else MAPPER_SIDE
    )
    return StrategyDecision(
        strategy=strategy,
        clusters_to_test=int(clusters_to_test),
        max_cluster_points=int(max_cluster_points),
        predicted_heap_bytes=int(heap_needed),
        usable_heap_bytes=int(cluster.usable_heap_bytes),
        total_reduce_slots=int(cluster.total_reduce_slots),
        enough_parallelism=enough_parallelism,
        heap_fits=heap_fits,
    )


def choose_test_strategy(
    clusters_to_test: int,
    max_cluster_points: int,
    cluster: ClusterConfig,
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
) -> str:
    """Apply the paper's two-condition switching rule.

    Returns :data:`MAPPER_SIDE` (``TestFewClusters``) or
    :data:`REDUCER_SIDE` (``TestClusters``).
    """
    return decide_test_strategy(
        clusters_to_test, max_cluster_points, cluster, heap_bytes_per_projection
    ).strategy
