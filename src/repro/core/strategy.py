"""The hybrid test-strategy switching rule (paper, Section 3.2).

The driver starts with mapper-side testing (``TestFewClusters``) and
switches to reducer-side testing (``TestClusters``) only when both
conditions hold:

1. the number of clusters to test exceeds the total reduce capacity of
   the cluster (below that, reducer-side parallelism is bounded by k
   and mapper-side testing wins);
2. the estimated heap required by the busiest reducer — points in the
   biggest cluster times the per-projection heap constant (64 bytes,
   Figure 2) — fits within the usable fraction of the task JVM heap
   (66%; above that the garbage collector thrashes).
"""

from __future__ import annotations

from repro.common.validation import check_non_negative, check_positive
from repro.mapreduce.cluster import ClusterConfig
from repro.core.config import HEAP_BYTES_PER_PROJECTION
from repro.core.test_clusters import estimate_reducer_heap_bytes

MAPPER_SIDE = "mapper"
REDUCER_SIDE = "reducer"


def choose_test_strategy(
    clusters_to_test: int,
    max_cluster_points: int,
    cluster: ClusterConfig,
    heap_bytes_per_projection: int = HEAP_BYTES_PER_PROJECTION,
) -> str:
    """Apply the paper's two-condition switching rule.

    Returns :data:`MAPPER_SIDE` (``TestFewClusters``) or
    :data:`REDUCER_SIDE` (``TestClusters``).
    """
    check_positive("clusters_to_test", clusters_to_test)
    check_non_negative("max_cluster_points", max_cluster_points)
    enough_parallelism = clusters_to_test > cluster.total_reduce_slots
    heap_needed = estimate_reducer_heap_bytes(
        max_cluster_points, heap_bytes_per_projection
    )
    heap_fits = heap_needed <= cluster.usable_heap_bytes
    if enough_parallelism and heap_fits:
        return REDUCER_SIDE
    return MAPPER_SIDE
