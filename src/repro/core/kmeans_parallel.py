"""Scalable k-means++ initialisation — k-means|| (Bahmani et al. 2012).

The paper's ``PickInitialCenters`` is a serial random pick, but it
notes that "other distributed or more efficient algorithms can be found
in the literature and can perfectly be used instead", citing Bahmani's
MapReduce version of k-means++ explicitly. This module implements it as
MapReduce jobs on the simulated runtime:

1. seed with one random point;
2. for a few rounds, each point joins the candidate set independently
   with probability ``min(1, l * d^2(x, C) / phi_X(C))`` where ``l`` is
   the oversampling factor (~2k) and ``phi`` the current clustering
   cost — one MapReduce job per round (mapper samples and sums partial
   costs; reducer merges);
3. weight every candidate by the number of points nearest to it (one
   more job), then recluster the small weighted candidate set down to
   ``k`` centers with weighted k-means++ / Lloyd on the driver.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import first_split_points, split_points

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.clustering.metrics import assign_nearest, cluster_sizes
from repro.mapreduce.driver import JobChainDriver
from repro.mapreduce.hdfs import DFSFile, Split
from repro.mapreduce.job import Job, MapContext, Mapper, Reducer, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime

CENTERS_KEY = "centers"
SAMPLING_RATE_KEY = "sampling_rate"  # l / phi

#: Reducer output keys.
COST_KEY = 0
CANDIDATES_KEY = 1


class CostAndSampleMapper(Mapper):
    """Per split: partial clustering cost + independently sampled
    candidate points (one round of k-means|| oversampling)."""

    def setup(self, ctx: MapContext) -> None:
        self.centers = np.asarray(ctx.config[CENTERS_KEY], dtype=np.float64)
        self.rate = float(ctx.config[SAMPLING_RATE_KEY])

    def map_split(self, split: Split, ctx: MapContext) -> None:
        points = split_points(split, ctx)
        k, d = self.centers.shape
        _, sq = assign_nearest(points, self.centers)
        ctx.count_distances(points.shape[0] * k, d)
        ctx.emit(COST_KEY, (float(sq.sum()), points.shape[0]), records=points.shape[0])
        if self.rate > 0.0:
            probs = np.minimum(1.0, self.rate * sq)
            picked = points[ctx.rng.random(points.shape[0]) < probs]
            if picked.shape[0]:
                ctx.emit(CANDIDATES_KEY, picked.copy(), records=picked.shape[0])


class CostAndSampleReducer(Reducer):
    """Sums partial costs; concatenates sampled candidates."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        if key == COST_KEY:
            cost = sum(v[0] for v in values)
            count = sum(v[1] for v in values)
            ctx.emit(COST_KEY, (cost, count))
        else:
            ctx.emit(CANDIDATES_KEY, np.vstack(values))


class WeightCandidatesMapper(Mapper):
    """Counts, per split, how many points are nearest to each candidate."""

    def setup(self, ctx: MapContext) -> None:
        self.centers = np.asarray(ctx.config[CENTERS_KEY], dtype=np.float64)

    def map_split(self, split: Split, ctx: MapContext) -> None:
        points = split_points(split, ctx)
        k, d = self.centers.shape
        labels, _ = assign_nearest(points, self.centers)
        ctx.count_distances(points.shape[0] * k, d)
        counts = cluster_sizes(labels, k)
        for cid in np.flatnonzero(counts):
            ctx.emit(int(cid), int(counts[cid]), records=int(counts[cid]))


class SumReducer(Reducer):
    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        ctx.emit(key, sum(values))


def _weighted_kmeans_pp(
    candidates: np.ndarray, weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Weighted k-means++ seeding over the (small) candidate set."""
    n = candidates.shape[0]
    centers = np.empty((k, candidates.shape[1]))
    probs = weights / weights.sum()
    centers[0] = candidates[rng.choice(n, p=probs)]
    sq = np.sum((candidates - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        scores = weights * sq
        total = scores.sum()
        if total == 0.0:
            centers[i:] = candidates[rng.choice(n, size=k - i, p=probs)]
            break
        centers[i] = candidates[rng.choice(n, p=scores / total)]
        sq = np.minimum(sq, np.sum((candidates - centers[i]) ** 2, axis=1))
    return centers


def _weighted_lloyd(
    candidates: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """A few weighted Lloyd steps over the candidate set."""
    for _ in range(iterations):
        labels, _ = assign_nearest(candidates, centers)
        new_centers = centers.copy()
        for c in range(centers.shape[0]):
            mask = labels == c
            if np.any(mask):
                new_centers[c] = np.average(
                    candidates[mask], axis=0, weights=weights[mask]
                )
        centers = new_centers
    return centers


def kmeans_parallel_init(
    runtime: MapReduceRuntime,
    dataset: "DFSFile | str",
    k: int,
    rounds: int = 5,
    oversampling: float | None = None,
    recluster_iterations: int = 5,
    seed: int | None = None,
    driver: JobChainDriver | None = None,
) -> np.ndarray:
    """Run k-means|| and return ``k`` initial centers.

    ``oversampling`` is the per-round expected sample size ``l``
    (default ``2k``, Bahmani's recommendation). Pass an existing
    ``driver`` to fold the jobs into a larger chain's accounting.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    rng = ensure_rng(seed)
    f = runtime.dfs.open(dataset) if isinstance(dataset, str) else dataset
    driver = driver or JobChainDriver(runtime)

    # Step 1: one uniform random seed from the first split (serial, as
    # in PickInitialCenters).
    sample = first_split_points(f)
    centers = sample[rng.integers(sample.shape[0])].reshape(1, -1)
    oversampling = float(oversampling if oversampling is not None else 2 * k)

    # Step 2: sampling rounds. The first pass only measures phi.
    phi = None
    for round_index in range(rounds + 1):
        rate = 0.0 if phi is None else oversampling / max(phi, 1e-300)
        job = Job(
            name=f"KMeansParallel-round{round_index}",
            mapper=CostAndSampleMapper,
            reducer=CostAndSampleReducer,
            num_reduce_tasks=2,
            config={CENTERS_KEY: centers, SAMPLING_RATE_KEY: rate},
        )
        output = driver.run(job, f).output_dict()
        phi = output[COST_KEY][0][0]
        if round_index == 0:
            continue
        picked = output.get(CANDIDATES_KEY)
        if picked:
            centers = np.vstack([centers] + picked)

    if centers.shape[0] < k:
        # Not enough candidates (tiny data): pad with random points.
        extra = sample[
            rng.choice(sample.shape[0], size=k - centers.shape[0], replace=False)
        ]
        centers = np.vstack([centers, extra])

    # Step 3: weight candidates by attracted points, then recluster.
    job = Job(
        name="KMeansParallel-weights",
        mapper=WeightCandidatesMapper,
        combiner=SumReducer,
        reducer=SumReducer,
        num_reduce_tasks=2,
        config={CENTERS_KEY: centers},
    )
    result = driver.run(job, f)
    weights = np.zeros(centers.shape[0])
    for cid, count in result.output:
        weights[cid] = count
    # Candidates that attracted nothing carry epsilon weight so the
    # reclustering stays well defined.
    weights = np.maximum(weights, 1e-12)

    seeded = _weighted_kmeans_pp(centers, weights, k, rng)
    return _weighted_lloyd(centers, weights, seeded, recluster_iterations)
