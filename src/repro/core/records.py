"""RecordReader shim: jobs accept numpy *or* text splits.

Hadoop mappers receive text lines and parse them; the simulation's fast
path stores numpy blocks instead. ``split_points`` lets every point-
consuming mapper accept both: datasets written with
:func:`repro.data.loader.write_points_as_text` run through the full
codec on every job (fidelity mode), while numpy datasets skip the
parsing cost. The text path also charges a per-record parse cost
through the user counters so the cost model sees the difference — the
paper's own argument for numeric keys over text keys.
"""

from __future__ import annotations

import numpy as np

from repro.data.textio import decode_points
from repro.mapreduce.dataplane import SharedBlock
from repro.mapreduce.hdfs import Split
from repro.mapreduce.job import MapContext

#: User counter: text records parsed by RecordReaders.
RECORDS_PARSED = "RECORDS_PARSED"


def record_point(value, ctx: "MapContext | None" = None) -> np.ndarray:
    """One record as a point vector (text line or numeric row)."""
    if isinstance(value, str):
        from repro.data.textio import decode_point

        point = decode_point(value)
        if ctx is not None:
            ctx.count(RECORDS_PARSED)
        return point
    return np.asarray(value, dtype=np.float64)


def split_points(split: Split, ctx: "MapContext | None" = None) -> np.ndarray:
    """The split's records as an ``(n, d)`` float matrix.

    Text splits are decoded through the codec (and counted); numpy
    splits are passed through untouched; shared-memory splits resolve
    to a zero-copy read-only view of the segment.
    """
    records = split.records
    if isinstance(records, SharedBlock):
        return records.resolve()
    if isinstance(records, np.ndarray):
        return records
    points = decode_points(list(records))
    if ctx is not None:
        ctx.count(RECORDS_PARSED, points.shape[0])
    return points


def first_split_points(f) -> np.ndarray:
    """Driver-side sample: the first split's records as points.

    Used by the serial seeding steps (PickInitialCenters and friends),
    which read a sample outside any MapReduce job.
    """
    return split_points(f.splits[0])
