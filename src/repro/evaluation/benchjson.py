"""The unified ``BENCH_*.json`` schema.

Benchmark scripts under ``benchmarks/`` archive their headline
measurement as a JSON file at the repo root; this module is the one
writer/loader so every file shares a shape the regression tooling can
rely on:

``schema_version``
    Integer, bumped on incompatible layout changes.
``benchmark``
    The measurement's stable name (e.g. ``journal_overhead_gmeans``).
``workload``
    What was measured — algorithm, dataset shape, seeds, worker
    counts. Enough to re-run the measurement.
``platform``
    Where it was measured — OS, Python, CPU count. Never compared,
    only recorded.
``metrics``
    The numbers themselves (wall seconds, overhead fractions,
    speedups, record counts...).

:func:`load_bench_json` validates the shape and raises
:class:`~repro.common.errors.DataFormatError` on anything else, so CI
fails loudly on a hand-edited or stale file rather than silently
gating on garbage.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform as _platform

from repro.common.errors import DataFormatError

SCHEMA_VERSION = 1

REQUIRED_FIELDS = ("schema_version", "benchmark", "workload", "platform", "metrics")


def platform_info() -> dict:
    """The recording environment, as archived under ``platform``."""
    return {
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def bench_entry(benchmark: str, workload: dict, metrics: dict) -> dict:
    """Assemble one schema-conforming benchmark entry."""
    if not benchmark:
        raise DataFormatError("benchmark name must be non-empty")
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": str(benchmark),
        "workload": dict(workload),
        "platform": platform_info(),
        "metrics": dict(metrics),
    }


def write_bench_json(
    path: "str | os.PathLike", benchmark: str, workload: dict, metrics: dict
) -> dict:
    """Write one benchmark entry to ``path``; returns the entry."""
    entry = bench_entry(benchmark, workload, metrics)
    target = pathlib.Path(path)
    target.write_text(json.dumps(entry, indent=2, sort_keys=False) + "\n")
    return entry


def load_bench_json(path: "str | os.PathLike") -> dict:
    """Read and validate a ``BENCH_*.json`` file."""
    target = pathlib.Path(path)
    try:
        entry = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{target}: not valid JSON: {exc}") from exc
    if not isinstance(entry, dict):
        raise DataFormatError(f"{target}: expected a JSON object")
    missing = [name for name in REQUIRED_FIELDS if name not in entry]
    if missing:
        raise DataFormatError(
            f"{target}: missing required fields: {', '.join(missing)}"
        )
    if entry["schema_version"] != SCHEMA_VERSION:
        raise DataFormatError(
            f"{target}: schema_version {entry['schema_version']!r}, "
            f"this loader reads {SCHEMA_VERSION}"
        )
    for name in ("workload", "platform", "metrics"):
        if not isinstance(entry[name], dict):
            raise DataFormatError(f"{target}: {name!r} must be an object")
    extra = entry.get("benchmarks")
    if extra is not None:
        if not isinstance(extra, dict):
            raise DataFormatError(f"{target}: 'benchmarks' must be an object")
        for name, sub in extra.items():
            if not isinstance(sub, dict):
                raise DataFormatError(
                    f"{target}: benchmarks[{name!r}] must be an object"
                )
            for field in ("workload", "platform", "metrics"):
                if not isinstance(sub.get(field), dict):
                    raise DataFormatError(
                        f"{target}: benchmarks[{name!r}] missing {field!r}"
                    )
    return entry


def merge_bench_json(
    path: "str | os.PathLike", benchmark: str, workload: dict, metrics: dict
) -> dict:
    """Add/update one measurement in a shared ``BENCH_*.json`` file.

    Several benchmark scripts can archive into the same file (e.g. the
    observability suite): the first measurement owns the top-level
    entry, later ones land under the optional ``benchmarks`` object
    keyed by benchmark name — re-recording either updates it in place.
    A missing or same-named file degenerates to :func:`write_bench_json`.
    """
    target = pathlib.Path(path)
    if not target.exists():
        return write_bench_json(path, benchmark, workload, metrics)
    entry = load_bench_json(path)
    if entry["benchmark"] == benchmark:
        sub_entries = entry.get("benchmarks")
        entry = bench_entry(benchmark, workload, metrics)
        if sub_entries:
            entry["benchmarks"] = sub_entries
    else:
        entry.setdefault("benchmarks", {})[benchmark] = {
            "workload": dict(workload),
            "platform": platform_info(),
            "metrics": dict(metrics),
        }
    target.write_text(json.dumps(entry, indent=2, sort_keys=False) + "\n")
    return entry
