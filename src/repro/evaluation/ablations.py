"""Ablations of the paper's design choices.

Section 3 of the paper makes several implementation decisions with
brief justifications; each function here isolates one of them and
measures its effect on the same data:

* ``kmeans_iterations`` — "we found experimentally that only two
  k-means iterations are sufficient";
* the hybrid mapper/reducer test strategy and its switching rule;
* the mapper-vote combination rule (unspecified in the paper);
* the membership anchor (paper-literal "previous" vs this
  implementation's "centroid" default);
* weight-balanced partitioning under skew (the paper's future work);
* initial-center selection (serial random vs k-means++ vs the cited
  MapReduce k-means|| of Bahmani et al.);
* Spark-style input caching (the paper's future work).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.metrics import assign_nearest, average_distance
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans
from repro.core.kmeans_mr import MRKMeans
from repro.core.test_clusters import make_test_clusters_job
from repro.data.generator import generate_gaussian_mixture, paper_family_dataset
from repro.evaluation.experiments import EXPERIMENT_ALPHA, ExperimentResult
from repro.evaluation.harness import build_world
from repro.evaluation.tables import render_table
from repro.mapreduce.partitioners import (
    make_weight_balanced_partitioner,
    reduce_load_imbalance,
)
# The value lists these ablations sweep live in the declarative
# component manifest shared with `repro ablate` / `repro tune`, so a
# knob's variants are declared exactly once.
from repro.observability.components import component_values


def _quality(points: np.ndarray, centers: np.ndarray) -> tuple[float, float]:
    """(average distance, worst cluster RMS radius)."""
    labels, sq = assign_nearest(points, centers)
    worst = 0.0
    for c in range(centers.shape[0]):
        member = sq[labels == c]
        if member.size:
            worst = max(worst, float(np.sqrt(member.mean())))
    return float(np.sqrt(sq).mean()), worst


def ablation_kmeans_iterations(
    iterations_list: "list[int] | None" = None,
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 13,
) -> ExperimentResult:
    """How many k-means refinement passes per G-means round?

    The paper settles on two; this sweeps 1..4 and reports the
    quality/cost trade-off.
    """
    iterations_list = iterations_list or list(
        component_values("kmeans_iterations")
    )
    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    rows = []
    for km_iters in iterations_list:
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"km{km_iters}",
        )
        cfg = MRGMeansConfig(
            seed=seed, alpha=EXPERIMENT_ALPHA, kmeans_iterations=km_iters
        )
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        avg, worst = _quality(world.points, result.centers)
        rows.append(
            {
                "kmeans_iterations": km_iters,
                "k_found": result.k_found,
                "avg_distance": avg,
                "time_seconds": result.simulated_seconds,
                "dataset_reads": result.totals.dataset_reads,
            }
        )
    text = render_table(
        ["k-means passes/round", "k_found", "avg distance", "time (sim s)", "reads"],
        [
            [r["kmeans_iterations"], r["k_found"], r["avg_distance"],
             r["time_seconds"], r["dataset_reads"]]
            for r in rows
        ],
        title=f"Ablation — k-means passes per G-means iteration"
        f" (k_real={k_real}, paper uses 2)",
    )
    return ExperimentResult(name="ablation_kmeans_iterations", rows=rows, text=text)


def ablation_test_strategy(
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 17,
) -> ExperimentResult:
    """Mapper-side vs reducer-side vs auto (the hybrid rule)."""
    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    rows = []
    for strategy in component_values("test_strategy"):
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"strat-{strategy}",
        )
        cfg = MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA, strategy=strategy)
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        avg, worst = _quality(world.points, result.centers)
        used = sorted({h.strategy for h in result.history if h.strategy != "none"})
        rows.append(
            {
                "strategy": strategy,
                "used": "+".join(used),
                "k_found": result.k_found,
                "avg_distance": avg,
                "time_seconds": result.simulated_seconds,
            }
        )
    text = render_table(
        ["configured", "strategies used", "k_found", "avg distance", "time (sim s)"],
        [
            [r["strategy"], r["used"], r["k_found"], r["avg_distance"],
             r["time_seconds"]]
            for r in rows
        ],
        title="Ablation — normality-test strategy (TestFewClusters vs TestClusters)",
    )
    return ExperimentResult(name="ablation_test_strategy", rows=rows, text=text)


def ablation_vote_rules(
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 19,
) -> ExperimentResult:
    """How mapper votes combine into a verdict (unspecified in paper)."""
    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    rows = []
    for rule in component_values("vote_rule"):
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"vote-{rule}",
        )
        cfg = MRGMeansConfig(
            seed=seed, alpha=EXPERIMENT_ALPHA, strategy="mapper", vote_rule=rule
        )
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        avg, _worst = _quality(world.points, result.centers)
        rows.append(
            {
                "vote_rule": rule,
                "k_found": result.k_found,
                "ratio": result.k_found / k_real,
                "avg_distance": avg,
                "iterations": result.iterations,
            }
        )
    text = render_table(
        ["vote rule", "k_found", "ratio", "avg distance", "iterations"],
        [
            [r["vote_rule"], r["k_found"], r["ratio"], r["avg_distance"],
             r["iterations"]]
            for r in rows
        ],
        title="Ablation — mapper-vote combination (more eager rejection"
        " splits more)",
    )
    return ExperimentResult(name="ablation_vote_rules", rows=rows, text=text)


def ablation_anchor_modes(
    k_real: int = 64,
    n_points: int = 40_000,
    seed: int = 6,
) -> ExperimentResult:
    """Membership anchor: paper-literal previous centers vs children
    centroid (this implementation's default)."""
    seeds = list(range(seed, seed + 8))
    variants = [
        (
            "centroid (default)" if anchor == "centroid" else "paper-literal",
            anchor,
            anchor == "centroid",
        )
        for anchor in component_values("anchor")
    ]
    # A healthy sigma=2 cluster in R^10 has RMS radius 2*sqrt(10) ~ 6.3;
    # a "coverage hole" is a found cluster half again wider than that —
    # a frozen multi-cluster aggregate.
    hole_radius = 1.5 * 2.0 * np.sqrt(10)
    rows = []
    for label, anchor, recenter in variants:
        holes = 0
        distances = []
        ratios = []
        for s in seeds:
            mixture = paper_family_dataset(k_real, n_points, rng=s)
            world = build_world(
                mixture, nodes=4, target_splits=16, seed=s,
                dataset_name=f"anchor-{label}-{s}",
            )
            cfg = MRGMeansConfig(
                seed=s,
                alpha=EXPERIMENT_ALPHA,
                anchor=anchor,
                recenter_on_accept=recenter,
            )
            result = MRGMeans(world.runtime, cfg).fit(world.dataset)
            avg, worst = _quality(world.points, result.centers)
            holes += worst > hole_radius
            distances.append(avg)
            ratios.append(result.k_found / k_real)
        rows.append(
            {
                "variant": label,
                "anchor": anchor,
                "recenter_on_accept": recenter,
                "seeds": len(seeds),
                "coverage_holes": holes,
                "mean_avg_distance": float(np.mean(distances)),
                "mean_ratio": float(np.mean(ratios)),
            }
        )
    text = render_table(
        ["variant", "runs", "coverage holes", "mean avg distance", "mean k ratio"],
        [
            [r["variant"], r["seeds"], r["coverage_holes"],
             r["mean_avg_distance"], r["mean_ratio"]]
            for r in rows
        ],
        title="Ablation — test membership anchor across seeds (a coverage"
        " hole = a frozen multi-cluster aggregate)",
    )
    return ExperimentResult(name="ablation_anchor_modes", rows=rows, text=text)


def ablation_balanced_partitioning(
    n_points: int = 60_000,
    seed: int = 23,
) -> ExperimentResult:
    """Skew: hash vs weight-balanced partitioning of TestClusters.

    A mixture with Zipf-ish cluster sizes sends one giant cluster's
    projections to a single hash-chosen reducer; balancing by known
    cluster sizes spreads the rest of the keys away from it.
    """
    weights = np.array([0.55, 0.15, 0.08, 0.06, 0.05, 0.04, 0.03, 0.04])
    mixture = generate_gaussian_mixture(
        n_points, 8, 5, rng=seed, weights=weights, center_low=0, center_high=200
    )
    # Make reduce-side work dominate task startup so load imbalance is
    # visible in the phase time (the paper's concern is exactly this
    # regime: heavy reducers serialising the phase).
    from dataclasses import replace

    from repro.evaluation.harness import BENCH_COST

    skew_cost = replace(
        BENCH_COST, seconds_per_ad_point=1e-5, task_startup_seconds=0.0
    )
    world = build_world(
        mixture, nodes=2, target_splits=16, seed=seed, dataset_name="skewed",
        cost=skew_cost,
    )
    labels, _ = assign_nearest(mixture.points, mixture.centers)
    sizes = {c: int((labels == c).sum()) for c in range(8)}
    pairs = {
        c: np.vstack(
            [mixture.centers[c] + 0.5, mixture.centers[c] - 0.5]
        )
        for c in range(8)
    }
    num_reduce = 4
    rows = []
    for mode in component_values("partitioner"):
        partitioner = (
            make_weight_balanced_partitioner(sizes, num_reduce)
            if mode == "balanced"
            else None
        )
        job = make_test_clusters_job(
            mixture.centers, pairs, EXPERIMENT_ALPHA, num_reduce,
            name=f"TestClusters-{mode}", partitioner=partitioner,
        )
        result = world.runtime.run(job, world.dataset)
        rows.append(
            {
                "partitioner": mode,
                "reduce_imbalance": reduce_load_imbalance(result),
                "reduce_seconds": result.timing.reduce_seconds,
            }
        )
    text = render_table(
        ["partitioner", "reduce load imbalance (max/mean)", "reduce phase (sim s)"],
        [[r["partitioner"], r["reduce_imbalance"], r["reduce_seconds"]] for r in rows],
        title="Ablation — skewed cluster sizes, hash vs weight-balanced"
        " partitioning (the paper's future work)",
    )
    return ExperimentResult(
        name="ablation_balanced_partitioning", rows=rows, text=text
    )


def ablation_init_methods(
    k: int = 16,
    n_points: int = 30_000,
    seed: int = 29,
) -> ExperimentResult:
    """Initial centers: serial random (the paper's PickInitialCenters)
    vs serial k-means++ vs MapReduce k-means|| (both cited as drop-in
    replacements)."""
    mixture = generate_gaussian_mixture(
        n_points, k, 10, rng=seed, center_low=0, center_high=150
    )
    rows = []
    for method in component_values("init_method"):
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"init-{method}",
        )
        result = MRKMeans(
            world.runtime, k=k, init=method, max_iterations=10, seed=seed
        ).fit(world.dataset)
        labels, _ = assign_nearest(result.centers, mixture.centers)
        covered = len(set(labels.tolist()))
        rows.append(
            {
                "init": method,
                "avg_distance": average_distance(world.points, result.centers),
                "true_clusters_covered": covered,
                "iterations": result.iterations,
                "time_seconds": result.simulated_seconds,
            }
        )
    text = render_table(
        ["init", "avg distance", "true clusters covered", "k-means iterations",
         "time (sim s)"],
        [
            [r["init"], r["avg_distance"], r["true_clusters_covered"],
             r["iterations"], r["time_seconds"]]
            for r in rows
        ],
        title=f"Ablation — initial-center selection for k-means (k={k})",
    )
    return ExperimentResult(name="ablation_init_methods", rows=rows, text=text)


def ablation_cache_input(
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 31,
) -> ExperimentResult:
    """Spark-style in-memory input between chained jobs."""
    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    # Scale the disk term to the dataset size (the paper's full scans
    # cost minutes; see examples/cluster_capacity_planning.py).
    from dataclasses import replace

    from repro.evaluation.harness import BENCH_COST

    slow_disk = replace(BENCH_COST, disk_read_mbps=0.1)
    rows = []
    for cache in component_values("cache_input"):
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"cache-{cache}", cost=slow_disk,
        )
        cfg = MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
        result = MRGMeans(world.runtime, cfg, cache_input=cache).fit(world.dataset)
        rows.append(
            {
                "cache_input": cache,
                "k_found": result.k_found,
                "disk_reads": result.totals.dataset_reads,
                "cached_reads": result.totals.cached_reads,
                "time_seconds": result.simulated_seconds,
            }
        )
    text = render_table(
        ["cache input", "k_found", "disk reads", "cached reads", "time (sim s)"],
        [
            [r["cache_input"], r["k_found"], r["disk_reads"], r["cached_reads"],
             r["time_seconds"]]
            for r in rows
        ],
        title="Ablation — Spark-style dataset caching between chained jobs",
    )
    return ExperimentResult(name="ablation_cache_input", rows=rows, text=text)


def ablation_normality_tests(
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 37,
) -> ExperimentResult:
    """Anderson-Darling vs the cheaper alternatives.

    Hamerly & Elkan chose Anderson-Darling for its power against the
    alternatives that matter here (a cluster hiding two modes); this
    ablation swaps in Jarque-Bera (moments) and Lilliefors (KS) and
    measures how the discovered clustering changes.
    """
    from repro.clustering.external import adjusted_rand_index
    from repro.clustering.metrics import assign_nearest as _assign

    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    rows = []
    for method in component_values("normality_test"):
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"norm-{method}",
        )
        cfg = MRGMeansConfig(
            seed=seed, alpha=EXPERIMENT_ALPHA, normality_test=method
        )
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        avg, _worst = _quality(world.points, result.centers)
        labels, _ = _assign(world.points, result.centers)
        rows.append(
            {
                "normality_test": method,
                "k_found": result.k_found,
                "ratio": result.k_found / k_real,
                "avg_distance": avg,
                "ari": adjusted_rand_index(mixture.labels, labels),
                "iterations": result.iterations,
            }
        )
    text = render_table(
        ["test", "k_found", "ratio", "avg distance", "ARI vs truth", "iterations"],
        [
            [r["normality_test"], r["k_found"], r["ratio"], r["avg_distance"],
             r["ari"], r["iterations"]]
            for r in rows
        ],
        title="Ablation — normality test powering the split decision",
    )
    return ExperimentResult(name="ablation_normality_tests", rows=rows, text=text)


def ablation_cluster_shapes(
    k_real: int = 6,
    n_points: int = 24_000,
    seed: int = 41,
) -> ExperimentResult:
    """How MR G-means behaves when clusters are not spherical Gaussians.

    Compact shapes are forgiving: anisotropic ellipsoids project to
    Gaussians along every axis, and even uniform balls project to a
    bell-shaped marginal that the per-mapper votes accept (the serial
    full-sample test is stricter — see the data-families tests). The
    killer is *background noise*: a uniform field is never Gaussian at
    any scale, so k explodes — cleanly, though: real clusters stay
    pure and the merge post-processing recovers them.
    """
    from repro.clustering.external import adjusted_rand_index, purity as _purity
    from repro.clustering.metrics import assign_nearest as _assign
    from repro.data.families import (
        anisotropic_mixture,
        noisy_mixture,
        uniform_ball_mixture,
    )

    datasets = {
        "gaussian (paper)": generate_gaussian_mixture(
            n_points, k_real, 4, rng=seed, center_low=0, center_high=150
        ),
        "anisotropic (cond 8)": anisotropic_mixture(
            n_points, k_real, 4, condition_number=8.0, rng=seed,
            center_low=0, center_high=600,
        ),
        "uniform balls": uniform_ball_mixture(
            n_points, k_real, 4, radius=3.0, rng=seed,
            center_low=0, center_high=150,
        ),
        "gaussian + 5% noise": noisy_mixture(
            n_points, k_real, 4, noise_fraction=0.05, rng=seed,
            center_low=0, center_high=150,
        ),
    }
    rows = []
    for label, mixture in datasets.items():
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed,
            dataset_name=f"shape-{label}",
        )
        cfg = MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        labels, _ = _assign(world.points, result.centers)
        clustered = mixture.labels >= 0
        rows.append(
            {
                "dataset": label,
                "k_found": result.k_found,
                "ratio": result.k_found / k_real,
                "ari": adjusted_rand_index(
                    mixture.labels[clustered], labels[clustered]
                ),
                "purity": _purity(
                    mixture.labels[clustered], labels[clustered]
                ),
            }
        )
    text = render_table(
        ["dataset", "k_found", "ratio", "ARI vs truth", "purity"],
        [
            [r["dataset"], r["k_found"], r["ratio"], r["ari"], r["purity"]]
            for r in rows
        ],
        title=f"Ablation — cluster shape robustness (k_real={k_real})",
    )
    return ExperimentResult(name="ablation_cluster_shapes", rows=rows, text=text)


def ablation_algorithms(
    k_real: int = 16,
    n_points: int = 30_000,
    seed: int = 43,
) -> ExperimentResult:
    """Head to head: MR G-means vs MR X-means vs fixed-k baselines.

    The paper's related work reports that G-means "seems to outperform
    X-means"; with both ported to the same substrate the comparison is
    direct: discovered k, clustering accuracy against the generating
    labels, and total simulated cost.
    """
    from repro.clustering.external import adjusted_rand_index
    from repro.clustering.metrics import assign_nearest as _assign
    from repro.core.xmeans_mr import MRXMeans

    mixture = paper_family_dataset(k_real, n_points, rng=seed)
    rows = []

    def record(label, k_found, centers, totals):
        labels, _ = _assign(mixture.points, centers)
        rows.append(
            {
                "algorithm": label,
                "k_found": k_found,
                "ari": adjusted_rand_index(mixture.labels, labels),
                "avg_distance": average_distance(mixture.points, centers),
                "time_seconds": totals.simulated_seconds,
                "dataset_reads": totals.dataset_reads,
            }
        )

    world = build_world(
        mixture, nodes=4, target_splits=16, seed=seed, dataset_name="alg-g"
    )
    g = MRGMeans(
        world.runtime, MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
    ).fit(world.dataset)
    record("MR G-means", g.k_found, g.centers, g.totals)

    world = build_world(
        mixture, nodes=4, target_splits=16, seed=seed, dataset_name="alg-x"
    )
    x = MRXMeans(world.runtime, seed=seed).fit(world.dataset)
    record("MR X-means", x.k_found, x.centers, x.totals)

    world = build_world(
        mixture, nodes=4, target_splits=16, seed=seed, dataset_name="alg-k"
    )
    baseline = MRKMeans(
        world.runtime, k=k_real, init="kmeans++", max_iterations=10, seed=seed
    ).fit(world.dataset)
    record(
        "MR k-means (true k, ++ init)",
        baseline.k,
        baseline.centers,
        baseline.totals,
    )

    text = render_table(
        ["algorithm", "k_found", "ARI vs truth", "avg distance",
         "time (sim s)", "reads"],
        [
            [r["algorithm"], r["k_found"], r["ari"], r["avg_distance"],
             r["time_seconds"], r["dataset_reads"]]
            for r in rows
        ],
        title=f"Ablation — algorithms head to head (k_real={k_real};"
        " k-means is given the true k)",
    )
    return ExperimentResult(name="ablation_algorithms", rows=rows, text=text)
