"""One entry point per table and figure of the paper's evaluation.

Every function builds its scaled-down world, runs the same algorithms
the paper ran, and returns an :class:`ExperimentResult` carrying both
the raw rows and a rendered paper-vs-measured report. The benchmark
suite under ``benchmarks/`` is a thin shell over these functions; they
can also be driven directly::

    from repro.evaluation import experiments
    print(experiments.table1_gmeans_scaling().text)

Scale note: the paper uses 10M-100M points on a physical Hadoop
cluster; here the datasets are scaled down (tens of thousands of
points, k up to ~128) and time is the runtime's simulated seconds. The
claims being reproduced are *shapes* — linear vs quadratic growth in
k, the ~1.5x overestimation, the ~10% quality gap, near-linear node
speedup — not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.costmodel import gmeans_cost, multi_kmeans_cost
from repro.clustering.metrics import assign_nearest, average_distance
from repro.common.errors import JobFailedError
from repro.core.config import MRGMeansConfig
from repro.core.gmeans_mr import MRGMeans, MRGMeansResult
from repro.core.kmeans_mr import MRKMeans
from repro.core.multi_kmeans import MultiKMeans
from repro.core.test_clusters import make_test_clusters_job
from repro.data.generator import (
    demo_r2_dataset,
    generate_gaussian_mixture,
    paper_family_dataset,
)
from repro.evaluation import paper_values
from repro.evaluation.figures import ascii_scatter, ascii_series, correlation, linear_fit
from repro.evaluation.harness import World, build_world
from repro.evaluation.tables import render_table
from repro.mapreduce.cluster import MIB


#: Significance level used throughout the experiment suite. The EDBT
#: paper does not state its Anderson-Darling level; at 0.01 the suite
#: reproduces the paper's consistent ~1.5x overestimation of k, while
#: the library default (:data:`repro.stats.GMEANS_ALPHA` = 1e-4, the
#: G-means paper's strict setting) recovers k almost exactly on the
#: same data.
EXPERIMENT_ALPHA = 0.01


@dataclass
class ExperimentResult:
    """Rows + rendered report of one experiment."""

    name: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Figure 1 — evolution of centers across iterations (10 clusters in R^2)
# ---------------------------------------------------------------------------


def fig1_center_evolution(
    n_points: int = 3000, seed: int = 1, max_plots: int = 3
) -> ExperimentResult:
    """Run MR G-means on the 10-cluster R^2 demo set and snapshot the
    centers it places at each iteration (the paper's Figure 1)."""
    mixture = demo_r2_dataset(n_points=n_points, rng=seed)
    world = build_world(mixture, nodes=4, target_splits=8, seed=seed)
    driver = MRGMeans(
        world.runtime, MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
    )
    result = driver.fit(world.dataset)
    rows = [
        {
            "iteration": h.iteration,
            "k_before": h.k_before,
            "k_after": h.k_after,
            "split": h.clusters_split,
            "centers": h.centers.shape[0],
        }
        for h in result.history
    ]
    plots = []
    for h in result.history[:max_plots]:
        plots.append(
            ascii_scatter(
                [(mixture.points, "."), (h.centers, "#")],
                width=64,
                height=18,
                title=f"Iteration {h.iteration}: {h.centers.shape[0]} centers",
            )
        )
    table = render_table(
        ["iteration", "k before", "k after", "clusters split", "current centers"],
        [[r["iteration"], r["k_before"], r["k_after"], r["split"], r["centers"]] for r in rows],
        title="Figure 1 — G-means center evolution (10 true clusters in R^2)",
    )
    text = table + "\n\n" + "\n\n".join(plots)
    return ExperimentResult(
        name="fig1",
        rows=rows,
        text=text,
        data={"result": result, "mixture": mixture},
    )


# ---------------------------------------------------------------------------
# Figure 2 — reducer heap required by TestClusters
# ---------------------------------------------------------------------------


def fig2_heap_memory(
    points_counts: "list[int] | None" = None,
    heap_mb_values: "list[int] | None" = None,
    seed: int = 2,
) -> ExperimentResult:
    """Reproduce the Figure-2 heap frontier.

    Single-cluster datasets of growing size are tested by the
    ``TestClusters`` reducer under varying task heaps; each (size, heap)
    cell either succeeds or dies with ``JavaHeapSpaceError``. A linear
    fit through the per-size minimum successful heap recovers the
    paper's 64 bytes/point slope.
    """
    if points_counts is None:
        # Scaled 1:100 from the paper's 4M-16M points per reducer.
        points_counts = [40_000, 60_000, 80_000, 100_000, 120_000, 160_000]
    if heap_mb_values is None:
        heap_mb_values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]

    rows = []
    min_heap_by_n: dict[int, int] = {}
    for n in points_counts:
        mixture = generate_gaussian_mixture(
            n_points=n, n_clusters=1, dimensions=10, rng=seed, cluster_std=1.0
        )
        for heap_mb in heap_mb_values:
            world = build_world(
                mixture,
                nodes=1,
                target_splits=4,
                task_heap_mb=heap_mb,
                seed=seed,
                dataset_name=f"fig2-{n}",
            )
            center = mixture.points.mean(axis=0, keepdims=True)
            pair = np.vstack([mixture.points[0], mixture.points[1]])
            job = make_test_clusters_job(
                prev_centers=center,
                pairs={0: pair},
                alpha=1e-4,
                num_reduce_tasks=1,
            )
            try:
                world.runtime.run(job, world.dataset)
                succeeded = True
            except JobFailedError:
                succeeded = False
            rows.append(
                {"points": n, "heap_mb": heap_mb, "succeeded": succeeded}
            )
            if succeeded and n not in min_heap_by_n:
                min_heap_by_n[n] = heap_mb

    xs = [n / 1e6 for n in sorted(min_heap_by_n)]  # millions of points
    ys = [min_heap_by_n[n] for n in sorted(min_heap_by_n)]
    slope_mb_per_million, intercept_mb = linear_fit(xs, ys)
    slope_bytes_per_point = slope_mb_per_million * MIB / 1e6
    table = render_table(
        ["points", "min heap (MB)", "exact need (MB)"],
        [
            [n, min_heap_by_n[n], n * 64 / MIB]
            for n in sorted(min_heap_by_n)
        ],
        title="Figure 2 — minimum reducer heap vs points per reducer",
    )
    text = (
        table
        + f"\n\nlinear fit: {slope_mb_per_million:.1f} MB per million points"
        f" (= {slope_bytes_per_point:.1f} bytes/point), intercept"
        f" {intercept_mb:.2f} MB"
        + f"\npaper:      {paper_values.FIG2_SLOPE_BYTES_PER_POINT:.1f}"
        f" bytes/point, intercept {paper_values.FIG2_INTERCEPT_MB:.2f} MB"
        " (JVM baseline overhead, absent from the simulation)"
    )
    return ExperimentResult(
        name="fig2",
        rows=rows,
        text=text,
        data={
            "slope_bytes_per_point": slope_bytes_per_point,
            "intercept_mb": intercept_mb,
            "min_heap_by_n": min_heap_by_n,
        },
    )


# ---------------------------------------------------------------------------
# Table 1 — G-means scaling with k
# ---------------------------------------------------------------------------


def run_gmeans_once(
    k_real: int,
    n_points: int,
    nodes: int = 4,
    seed: int = 3,
    target_splits: int = 16,
    config: MRGMeansConfig | None = None,
) -> tuple[MRGMeansResult, World]:
    """One Table-1-style G-means run on a scaled paper-family dataset."""
    mixture = paper_family_dataset(n_clusters=k_real, n_points=n_points, rng=seed)
    world = build_world(
        mixture, nodes=nodes, target_splits=target_splits, seed=seed
    )
    cfg = config or MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
    result = MRGMeans(world.runtime, cfg).fit(world.dataset)
    return result, world


def table1_gmeans_scaling(
    ks: "list[int] | None" = None,
    n_points: int = 60_000,
    seed: int = 3,
) -> ExperimentResult:
    """G-means across the scaled d-family: discovered k, iterations,
    simulated time (the paper's Table 1)."""
    ks = ks or [8, 16, 32, 64, 128]
    rows = []
    for k in ks:
        result, _world = run_gmeans_once(k, n_points, seed=seed)
        rows.append(
            {
                "clusters": k,
                "discovered": result.k_found,
                "time_seconds": result.simulated_seconds,
                "iterations": result.iterations,
                "ratio": result.k_found / k,
            }
        )
    times = [r["time_seconds"] for r in rows]
    r_linear = correlation(ks, times)
    table = render_table(
        ["clusters", "discovered", "ratio", "time (sim s)", "iterations"],
        [
            [r["clusters"], r["discovered"], r["ratio"], r["time_seconds"], r["iterations"]]
            for r in rows
        ],
        title=f"Table 1 — G-means clustering ({n_points} points in R^10, scaled 1:"
        f"{paper_values.TABLE1['clusters'][0] // ks[0]} in k)",
    )
    paper_table = render_table(
        ["clusters", "discovered", "ratio", "time (s)", "iterations"],
        [
            [c, d, d / c, t, i]
            for c, d, t, i in zip(
                paper_values.TABLE1["clusters"],
                paper_values.TABLE1["discovered"],
                paper_values.TABLE1["time_seconds"],
                paper_values.TABLE1["iterations"],
            )
        ],
        title="Paper Table 1 (10M points, 4 nodes)",
    )
    text = (
        table
        + f"\n\ncorrelation(time, k) = {r_linear:.4f} (paper: time scales"
        " linearly with k)\n\n"
        + paper_table
    )
    return ExperimentResult(
        name="table1", rows=rows, text=text, data={"correlation": r_linear}
    )


# ---------------------------------------------------------------------------
# Table 2 — average time of one multi-k-means iteration
# ---------------------------------------------------------------------------


def table2_multi_kmeans(
    ks: "list[int] | None" = None,
    n_points: int = 20_000,
    iterations: int = 2,
    seed: int = 4,
) -> ExperimentResult:
    """Average simulated time of a single multi-k-means iteration for
    growing k_max (the paper's Table 2: quadratic growth)."""
    ks = ks or [12, 25, 35, 50, 100]
    rows = []
    for k_max in ks:
        mixture = paper_family_dataset(
            n_clusters=k_max, n_points=n_points, rng=seed
        )
        world = build_world(
            mixture, nodes=4, target_splits=16, seed=seed
        )
        driver = MultiKMeans(
            world.runtime, k_min=1, k_max=k_max, iterations=iterations, seed=seed
        )
        result = driver.fit(world.dataset)
        rows.append(
            {
                "clusters": k_max,
                "time_seconds": result.average_iteration_seconds,
                "distances_per_iteration": (
                    result.totals.distance_computations // (iterations + 1)
                ),
            }
        )
    times = [r["time_seconds"] for r in rows]
    # Quadratic check: time against k^2 should be far more linear than
    # time against k.
    r_k = correlation(ks, times)
    r_k2 = correlation([k * k for k in ks], times)
    table = render_table(
        ["clusters", "avg iteration time (sim s)", "distances/iteration"],
        [[r["clusters"], r["time_seconds"], r["distances_per_iteration"]] for r in rows],
        title=f"Table 2 — multi-k-means single-iteration time ({n_points} points)",
    )
    paper_table = render_table(
        ["clusters", "time (s)"],
        list(map(list, zip(paper_values.TABLE2["clusters"], paper_values.TABLE2["time_seconds"]))),
        title="Paper Table 2",
    )
    text = (
        table
        + f"\n\ncorrelation(time, k) = {r_k:.4f}; correlation(time, k^2) ="
        f" {r_k2:.4f} (paper: superlinear, ~quadratic growth)\n\n"
        + paper_table
    )
    return ExperimentResult(
        name="table2",
        rows=rows,
        text=text,
        data={"correlation_k": r_k, "correlation_k2": r_k2},
    )


# ---------------------------------------------------------------------------
# Figure 3 — running time of G-means vs multi-k-means
# ---------------------------------------------------------------------------


def fig3_crossover(
    ks: "list[int] | None" = None,
    n_points: int = 30_000,
    seed: int = 5,
) -> ExperimentResult:
    """Total G-means running time vs a single multi-k-means iteration
    across k (the paper's Figure 3: the curves cross around k ~ 100-200
    and multi-k-means grows away quadratically).

    Unlike the Table 1/2 scale-down, the *crossover position* is in
    absolute k units: it falls where ``sum(1..k) ~ k^2/2`` distance
    computations of one multi-k-means iteration overtake G-means'
    ``~2k x jobs x iterations``, i.e. near k of a hundred or two —
    directly comparable to the paper's plot.
    """
    ks = ks or [16, 32, 64, 128, 192]
    g_rows = table1_gmeans_scaling(ks=ks, n_points=n_points, seed=seed).rows
    m_rows = table2_multi_kmeans(
        ks=ks, n_points=n_points, iterations=1, seed=seed
    ).rows
    g_times = [r["time_seconds"] for r in g_rows]
    m_times = [r["time_seconds"] for r in m_rows]
    crossover = None
    for k, g, m in zip(ks, g_times, m_times):
        if m > g:
            crossover = k
            break
    table = render_table(
        ["k", "G-means total (sim s)", "multi-k-means 1 iter (sim s)"],
        list(map(list, zip(ks, g_times, m_times))),
        title=f"Figure 3 — running time vs k ({n_points} points)",
    )
    plot = ascii_series(
        [(ks, g_times, "G"), (ks, m_times, "M")],
        title="Figure 3 — G (G-means total) vs M (multi-k-means, one iteration)",
        x_label="k",
        y_label="sim seconds",
    )
    text = (
        table
        + f"\n\nmulti-k-means overtakes G-means at k = {crossover}"
        " (paper: already at k = 100 one multi-k-means iteration exceeds"
        " the whole G-means run)\n\n"
        + plot
    )
    return ExperimentResult(
        name="fig3",
        rows=[{"k": k, "gmeans": g, "multi": m} for k, g, m in zip(ks, g_times, m_times)],
        text=text,
        data={"crossover_k": crossover},
    )


# ---------------------------------------------------------------------------
# Table 3 — clustering quality (average point-to-center distance)
# ---------------------------------------------------------------------------


def table3_quality(
    ks: "list[int] | None" = None,
    n_points: int = 60_000,
    seed: int = 3,
    baseline_iterations: int = 10,
) -> ExperimentResult:
    """Average point-to-center distance of G-means vs k-means run at
    the same k for 10 iterations (the paper's Table 3: G-means wins by
    ~10% because it adds centers progressively and dodges local
    minima).

    Two baselines are reported: randomly-initialised k-means (the
    paper's setup — its deficit can be dramatic when whole cluster
    groups end up seedless) and k-means++ (the better-init production
    fix the paper's related work discusses).
    """
    ks = ks or [8, 16, 32]
    rows = []
    for k_real in ks:
        result, world = run_gmeans_once(k_real, n_points, seed=seed)
        g_distance = average_distance(world.points, result.centers)
        random_baseline = MRKMeans(
            world.runtime,
            k=result.k_found,
            max_iterations=baseline_iterations,
            seed=seed,
        ).fit(world.dataset)
        m_distance = average_distance(world.points, random_baseline.centers)
        pp_baseline = MRKMeans(
            world.runtime,
            k=result.k_found,
            init="kmeans++",
            max_iterations=baseline_iterations,
            seed=seed,
        ).fit(world.dataset)
        pp_distance = average_distance(world.points, pp_baseline.centers)
        rows.append(
            {
                "k_real": k_real,
                "k_found": result.k_found,
                "gmeans": g_distance,
                "multi_kmeans": m_distance,
                "multi_kmeans_pp": pp_distance,
                "advantage": 1.0 - g_distance / m_distance,
                "advantage_pp": 1.0 - g_distance / pp_distance,
            }
        )
    table = render_table(
        ["k_real", "k_found", "G-means", "k-means (random)", "k-means (++)",
         "adv. vs random", "adv. vs ++"],
        [
            [r["k_real"], r["k_found"], r["gmeans"], r["multi_kmeans"],
             r["multi_kmeans_pp"],
             f"{100 * r['advantage']:.1f}%", f"{100 * r['advantage_pp']:.1f}%"]
            for r in rows
        ],
        title=f"Table 3 — quality at equal k ({n_points} points in R^10)",
    )
    paper_table = render_table(
        ["k_real", "k_found", "G-means", "multi-k-means"],
        [
            list(row)
            for row in zip(
                paper_values.TABLE3["k_real"],
                paper_values.TABLE3["k_found"],
                paper_values.TABLE3["gmeans_avg_distance"],
                paper_values.TABLE3["multi_kmeans_avg_distance"],
            )
        ],
        title="Paper Table 3 (advantage ~10%)",
    )
    mean_adv = float(np.mean([r["advantage"] for r in rows]))
    text = (
        table
        + f"\n\nmean G-means advantage: {100 * mean_adv:.1f}%"
        " (paper: ~10%)\n\n" + paper_table
    )
    return ExperimentResult(
        name="table3", rows=rows, text=text, data={"mean_advantage": mean_adv}
    )


# ---------------------------------------------------------------------------
# Figure 4 — local minimum of multi-k-means on the 10-cluster demo
# ---------------------------------------------------------------------------


def _centers_per_true_cluster(
    centers: np.ndarray, mixture
) -> np.ndarray:
    """How many found centers sit nearest to each true cluster center."""
    labels, _ = assign_nearest(centers, mixture.centers)
    return np.bincount(labels, minlength=mixture.n_clusters)


def fig4_local_minimum(
    n_points: int = 4000,
    seed: int = 1,
    baseline_seeds: "list[int] | None" = None,
) -> ExperimentResult:
    """The Figure 4 tableau: G-means covers every true cluster (with a
    few extra centers); k-means at the true k=10, randomly initialised,
    regularly leaves one true cluster uncovered while doubling another
    (a local minimum) and ends with a worse average distance."""
    baseline_seeds = baseline_seeds or list(range(12))
    mixture = demo_r2_dataset(n_points=n_points, rng=seed)
    world = build_world(mixture, nodes=4, target_splits=8, seed=seed)
    gmeans_result = MRGMeans(
        world.runtime, MRGMeansConfig(seed=seed, alpha=EXPERIMENT_ALPHA)
    ).fit(world.dataset)
    g_coverage = _centers_per_true_cluster(gmeans_result.centers, mixture)
    g_distance = average_distance(world.points, gmeans_result.centers)

    # Run the fixed-k baseline from several random seeds; keep the first
    # run stuck in a local minimum (some true cluster uncovered) and
    # count how often that happens.
    stuck_runs = 0
    stuck_example = None
    baseline_distances = []
    for s in baseline_seeds:
        baseline = MRKMeans(
            world.runtime, k=mixture.n_clusters, max_iterations=10, seed=s
        ).fit(world.dataset)
        coverage = _centers_per_true_cluster(baseline.centers, mixture)
        baseline_distances.append(
            average_distance(world.points, baseline.centers)
        )
        if coverage.min() == 0:
            stuck_runs += 1
            if stuck_example is None:
                stuck_example = baseline
    rows = [
        {
            "algorithm": "MR G-means",
            "centers": gmeans_result.k_found,
            "uncovered_true_clusters": int((g_coverage == 0).sum()),
            "avg_distance": g_distance,
        },
        {
            "algorithm": f"k-means (k=10, {len(baseline_seeds)} seeds)",
            "centers": mixture.n_clusters,
            "uncovered_true_clusters": (
                None if stuck_example is None
                else int((_centers_per_true_cluster(stuck_example.centers, mixture) == 0).sum())
            ),
            "avg_distance": float(np.mean(baseline_distances)),
        },
    ]
    plots = [
        ascii_scatter(
            [(mixture.points, "."), (gmeans_result.centers, "#")],
            width=64,
            height=18,
            title=f"{gmeans_result.k_found} centers found by G-means",
        )
    ]
    if stuck_example is not None:
        plots.append(
            ascii_scatter(
                [(mixture.points, "."), (stuck_example.centers, "#")],
                width=64,
                height=18,
                title="10 centers found by k-means (local minimum: one true"
                " cluster holds 2 centers, another holds none)",
            )
        )
    table = render_table(
        ["algorithm", "centers", "uncovered true clusters", "avg distance"],
        [
            [r["algorithm"], r["centers"], r["uncovered_true_clusters"], r["avg_distance"]]
            for r in rows
        ],
        title="Figure 4 — local-minimum behaviour on the 10-cluster demo",
    )
    text = (
        table
        + f"\n\nbaseline runs stuck in a local minimum: {stuck_runs}/"
        f"{len(baseline_seeds)}; G-means uncovered clusters:"
        f" {int((g_coverage == 0).sum())} (paper: G-means finds 14 centers"
        " covering all 10 clusters; multi-k-means at k=10 leaves a cluster"
        " uncovered)\n\n" + "\n\n".join(plots)
    )
    return ExperimentResult(
        name="fig4",
        rows=rows,
        text=text,
        data={
            "stuck_runs": stuck_runs,
            "total_runs": len(baseline_seeds),
            "gmeans_k": gmeans_result.k_found,
            "gmeans_distance": g_distance,
            "baseline_mean_distance": float(np.mean(baseline_distances)),
        },
    )


# ---------------------------------------------------------------------------
# Table 4 / Figure 5 — node scaling
# ---------------------------------------------------------------------------


def table4_node_scaling(
    nodes_list: "list[int] | None" = None,
    n_points: int = 120_000,
    k_real: int = 32,
    seed: int = 7,
) -> ExperimentResult:
    """Simulated G-means running time on 4/8/12 nodes (the paper's
    Table 4 and Figure 5: near-linear speedup)."""
    nodes_list = nodes_list or [4, 8, 12]
    mixture = paper_family_dataset(n_clusters=k_real, n_points=n_points, rng=seed)
    rows = []
    for nodes in nodes_list:
        world = build_world(
            mixture,
            nodes=nodes,
            target_splits=16 * max(nodes_list),
            seed=seed,
            dataset_name=f"scaling-{nodes}",
        )
        # Fixed reducer count + forced reducer-side testing keep the
        # algorithm's trajectory byte-identical across node counts, so
        # only scheduling differs — the paper ran the same job on all
        # three cluster sizes ("All tests completed after 13 iterations").
        # The strict G-means alpha keeps the trajectory short here; the
        # point of this experiment is scheduling, not k estimation.
        cfg = MRGMeansConfig(
            seed=seed,
            alpha=1e-4,
            strategy="reducer",
            num_reduce_tasks=32,
        )
        result = MRGMeans(world.runtime, cfg).fit(world.dataset)
        rows.append(
            {
                "nodes": nodes,
                "time_seconds": result.simulated_seconds,
                "iterations": result.iterations,
                "k_found": result.k_found,
            }
        )
    t0 = rows[0]["time_seconds"]
    n0 = rows[0]["nodes"]
    for r in rows:
        r["speedup"] = t0 / r["time_seconds"]
        r["ideal_speedup"] = r["nodes"] / n0
    table = render_table(
        ["nodes", "time (sim s)", "speedup", "ideal", "k_found", "iterations"],
        [
            [r["nodes"], r["time_seconds"], r["speedup"], r["ideal_speedup"],
             r["k_found"], r["iterations"]]
            for r in rows
        ],
        title=f"Table 4 / Figure 5 — node scaling ({n_points} points,"
        f" {k_real} true clusters)",
    )
    paper_rows = [
        [n, t, paper_values.TABLE4["time_minutes"][0] / t]
        for n, t in zip(
            paper_values.TABLE4["nodes"], paper_values.TABLE4["time_minutes"]
        )
    ]
    paper_table = render_table(
        ["nodes", "time (min)", "speedup"],
        paper_rows,
        title="Paper Table 4 (100M points, 1000 clusters)",
    )
    plot = ascii_series(
        [(
            [r["nodes"] for r in rows],
            [r["time_seconds"] for r in rows],
            "*",
        )],
        title="Figure 5 — running time vs nodes",
        x_label="nodes",
        y_label="sim seconds",
        height=14,
    )
    text = table + "\n\n" + paper_table + "\n\n" + plot
    return ExperimentResult(name="table4_fig5", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Section 4 — closed-form cost model vs simulator counters
# ---------------------------------------------------------------------------


def costmodel_validation(
    k_real: int = 16,
    n_points: int = 10_000,
    seed: int = 8,
) -> ExperimentResult:
    """Check the Section-4 closed-form estimates against the counters
    the simulator actually recorded."""
    result, world = run_gmeans_once(k_real, n_points, seed=seed)
    predicted = gmeans_cost(
        n_points, k_real, kmeans_iterations=2,
        extra_iterations=max(0, result.iterations - max(1, int(np.ceil(np.log2(k_real))))),
    )
    measured_reads = result.totals.dataset_reads
    measured_distances = result.totals.distance_computations
    measured_ad = result.totals.cluster_tests

    mixture = paper_family_dataset(n_clusters=k_real, n_points=n_points, rng=seed)
    world2 = build_world(mixture, nodes=4, target_splits=16, seed=seed, dataset_name="mk")
    mk = MultiKMeans(world2.runtime, k_min=1, k_max=k_real, iterations=3, seed=seed)
    mk_result = mk.fit(world2.dataset)
    mk_predicted = multi_kmeans_cost(n_points, k_real, iterations=3)

    rows = [
        {"quantity": "G-means dataset reads", "predicted": predicted.dataset_reads,
         "measured": measured_reads},
        {"quantity": "G-means distance computations",
         "predicted": predicted.distance_computations, "measured": measured_distances},
        {"quantity": "G-means AD tests", "predicted": predicted.ad_tests,
         "measured": measured_ad},
        {"quantity": "multi-k-means dataset reads",
         "predicted": mk_predicted.dataset_reads,
         "measured": mk_result.totals.dataset_reads},
        {"quantity": "multi-k-means distance computations",
         "predicted": mk_predicted.distance_computations,
         "measured": mk_result.totals.distance_computations},
    ]
    for r in rows:
        r["ratio"] = r["measured"] / r["predicted"] if r["predicted"] else float("nan")
    table = render_table(
        ["quantity", "predicted (closed form)", "measured (counters)", "ratio"],
        [[r["quantity"], r["predicted"], r["measured"], r["ratio"]] for r in rows],
        title="Section 4 — cost model vs simulator counters",
    )
    return ExperimentResult(name="costmodel", rows=rows, text=table)
