"""Experiment harness: one entry point per paper table/figure, plus
ablations of the design choices, table/figure renderers, and the
paper's reference values."""

from repro.evaluation.ablations import (
    ablation_anchor_modes,
    ablation_balanced_partitioning,
    ablation_cache_input,
    ablation_init_methods,
    ablation_kmeans_iterations,
    ablation_normality_tests,
    ablation_test_strategy,
    ablation_vote_rules,
)
from repro.evaluation.experiments import (
    ExperimentResult,
    costmodel_validation,
    fig1_center_evolution,
    fig2_heap_memory,
    fig3_crossover,
    fig4_local_minimum,
    run_gmeans_once,
    table1_gmeans_scaling,
    table2_multi_kmeans,
    table3_quality,
    table4_node_scaling,
)
from repro.evaluation.figures import ascii_scatter, ascii_series, correlation, linear_fit
from repro.evaluation.harness import World, build_world, target_split_bytes
from repro.evaluation.tables import render_comparison, render_table

__all__ = [
    "ablation_anchor_modes",
    "ablation_balanced_partitioning",
    "ablation_cache_input",
    "ablation_init_methods",
    "ablation_kmeans_iterations",
    "ablation_normality_tests",
    "ablation_test_strategy",
    "ablation_vote_rules",
    "ExperimentResult",
    "costmodel_validation",
    "fig1_center_evolution",
    "fig2_heap_memory",
    "fig3_crossover",
    "fig4_local_minimum",
    "run_gmeans_once",
    "table1_gmeans_scaling",
    "table2_multi_kmeans",
    "table3_quality",
    "table4_node_scaling",
    "ascii_scatter",
    "ascii_series",
    "correlation",
    "linear_fit",
    "World",
    "build_world",
    "target_split_bytes",
    "render_comparison",
    "render_table",
]
