"""Shared setup for the experiment suite.

Every benchmark builds its world the same way: generate a synthetic
mixture, place it on an in-memory DFS with a split size that yields a
sensible number of map tasks, and wire a runtime for the requested
cluster topology. The helpers here keep those choices consistent
across tables and figures (and documented in one place).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import ensure_rng
from repro.common.validation import check_positive
from repro.data.generator import GaussianMixture
from repro.data.loader import write_points
from repro.data.textio import bytes_per_record
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.costmodel import CostParameters
from repro.mapreduce.executors import RuntimeConfig
from repro.mapreduce.hdfs import DFSFile, InMemoryDFS
from repro.mapreduce.runtime import MapReduceRuntime


#: Cost parameters used by the experiment suite. The paper's datasets
#: are ~300x larger than the scaled-down ones used here, so the
#: real-hardware defaults of :class:`CostParameters` would leave
#: simulated time dominated by per-job fixed costs; these constants
#: rebalance the model so per-point compute dominates, exactly as it
#: does at the paper's scale. (Only simulated *time* is affected —
#: counters, heap accounting and results are identical.)
BENCH_COST = CostParameters(
    seconds_per_coordinate_op=1e-6,
    task_startup_seconds=0.05,
    job_startup_seconds=0.3,
)


def target_split_bytes(
    n_points: int, dimensions: int, target_splits: int
) -> int:
    """Split size that chops ``n_points`` into ``~target_splits`` splits."""
    check_positive("n_points", n_points)
    check_positive("target_splits", target_splits)
    per_record = bytes_per_record(dimensions)
    records_per_split = max(1, n_points // target_splits)
    return max(per_record, records_per_split * per_record)


@dataclass
class World:
    """One experiment's substrate: DFS + runtime + dataset."""

    dfs: InMemoryDFS
    runtime: MapReduceRuntime
    dataset: DFSFile
    mixture: GaussianMixture

    @property
    def points(self) -> np.ndarray:
        return self.mixture.points


def build_world(
    mixture: GaussianMixture,
    nodes: int = 4,
    target_splits: int = 16,
    task_heap_mb: int = 1024,
    map_slots_per_node: int = 8,
    reduce_slots_per_node: int = 8,
    cost: CostParameters | None = None,
    seed: int = 0,
    dataset_name: str = "dataset",
    executor: str | None = None,
    num_workers: int | None = None,
    journal=None,
    profile_tasks: bool | None = None,
    data_plane: str | None = None,
) -> World:
    """Wire a DFS, a cluster runtime and the dataset for one experiment.

    ``target_splits`` controls map parallelism *and* the size of the
    per-split samples the mapper-side test sees; the defaults keep both
    realistic at laptop scale (the paper's 64 MB splits over 10M-point
    files behave like ~16 splits over our scaled datasets).

    ``executor``/``num_workers``/``data_plane`` pick the task-execution
    backend and how record blocks reach its workers; left as ``None``
    they defer to ``REPRO_EXECUTOR``/``REPRO_NUM_WORKERS``/
    ``REPRO_DATA_PLANE`` (and ultimately to the serial, pickled
    defaults). Backends and data planes never change results, only
    wall-clock time.
    """
    split_bytes = target_split_bytes(
        mixture.n_points, mixture.dimensions, target_splits
    )
    dfs = InMemoryDFS(split_size_bytes=split_bytes, data_plane=data_plane)
    dataset = write_points(dfs, dataset_name, mixture.points)
    cluster = ClusterConfig(
        nodes=nodes,
        map_slots_per_node=map_slots_per_node,
        reduce_slots_per_node=reduce_slots_per_node,
        task_heap_mb=task_heap_mb,
    )
    if executor is None and num_workers is None and data_plane is None:
        config = None  # defer to REPRO_EXECUTOR / REPRO_NUM_WORKERS
    else:
        base = RuntimeConfig.from_env()
        config = RuntimeConfig(
            executor=executor or base.executor,
            num_workers=num_workers if num_workers is not None else base.num_workers,
            data_plane=data_plane if data_plane is not None else base.data_plane,
            dispatch=base.dispatch,
        )
    runtime = MapReduceRuntime(
        dfs,
        cluster=cluster,
        cost=cost or BENCH_COST,
        rng=ensure_rng(seed),
        config=config,
        journal=journal,
        profile_tasks=profile_tasks,
    )
    return World(dfs=dfs, runtime=runtime, dataset=dataset, mixture=mixture)
