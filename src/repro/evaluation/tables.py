"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    """Human-friendly cell formatting (floats get 3 significant-ish
    decimals, large floats none)."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(
    label: str,
    xs: Sequence[object],
    paper: Sequence[float],
    measured: Sequence[float],
    x_name: str = "k",
    paper_name: str = "paper",
    measured_name: str = "measured",
) -> str:
    """Side-by-side paper-vs-measured table with normalised columns.

    Both series are also shown relative to their first entry, which is
    the honest way to compare shapes measured on different substrates.
    """
    if not (len(xs) == len(paper) == len(measured)):
        raise ValueError("xs, paper and measured must have equal lengths")
    p0 = paper[0] if paper and paper[0] else 1.0
    m0 = measured[0] if measured and measured[0] else 1.0
    rows = [
        [x, p, m, p / p0, m / m0]
        for x, p, m in zip(xs, paper, measured)
    ]
    return render_table(
        [x_name, paper_name, measured_name, f"{paper_name} (rel)", f"{measured_name} (rel)"],
        rows,
        title=label,
    )
