"""ASCII rendering of the paper's figures.

Terminal-friendly stand-ins for the paper's plots: 2-D scatter plots
(Figures 1 and 4) and x/y series (Figures 3 and 5) rendered as
character rasters, so the benchmark output is self-contained.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_scatter(
    layers: "Sequence[tuple[np.ndarray, str]]",
    width: int = 72,
    height: int = 24,
    title: str | None = None,
) -> str:
    """Render point layers as a character raster.

    ``layers`` is a sequence of ``(points, marker)`` with points of
    shape ``(n, 2)``; later layers draw on top (put centers last).
    """
    arrays = [np.asarray(points, dtype=np.float64) for points, _ in layers]
    stacked = np.vstack([a for a in arrays if a.size])
    x_min, y_min = stacked.min(axis=0)
    x_max, y_max = stacked.max(axis=0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for points, marker in layers:
        for x, y in np.asarray(points, dtype=np.float64):
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"x: [{x_min:.1f}, {x_max:.1f}]  y: [{y_min:.1f}, {y_max:.1f}]"
    )
    return "\n".join(lines)


def ascii_series(
    series: "Sequence[tuple[Sequence[float], Sequence[float], str]]",
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (xs, ys, marker) series on shared axes."""
    all_x = np.concatenate([np.asarray(s[0], dtype=np.float64) for s in series])
    all_y = np.concatenate([np.asarray(s[1], dtype=np.float64) for s in series])
    layers = [
        (np.column_stack([np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)]), marker)
        for xs, ys, marker in series
    ]
    plot = ascii_scatter(layers, width=width, height=height, title=title)
    legend = "  ".join(f"{marker}={y_label}[{i}]" for i, (_, _, marker) in enumerate(series))
    return f"{plot}\n{x_label} vs {y_label}; min/max from data. {legend}"


def ascii_histogram(
    values: np.ndarray,
    bins: int = 40,
    height: int = 10,
    title: str | None = None,
) -> str:
    """Vertical-bar ASCII histogram of a 1-D sample.

    Used to *show* what the Anderson-Darling test sees: a Gaussian
    projection draws one bell, a hidden pair of modes draws two.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return (title + "\n" if title else "") + "(no data)"
    counts, edges = np.histogram(arr, bins=bins)
    top = counts.max()
    lines = []
    if title:
        lines.append(title)
    if top == 0:
        top = 1
    for level in range(height, 0, -1):
        threshold = top * level / height
        row = "".join("#" if c >= threshold else " " for c in counts)
        lines.append(f"|{row}|")
    lines.append("+" + "-" * bins + "+")
    lines.append(f"{edges[0]:<{bins // 2}.2f}{edges[-1]:>{bins - bins // 2 + 2}.2f}")
    return "\n".join(lines)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares slope and intercept (used for the Figure 2
    heap regression and the linearity checks)."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size < 2:
        raise ValueError("linear fit needs at least 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation (linearity diagnostics in the benches)."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
