"""The canonical registry of experiments and ablations.

One place maps names to entry points and descriptions; the CLI, the
markdown report generator and the benchmark suite all consume it, so
adding an experiment means adding exactly one row here.
"""

from __future__ import annotations

from repro.evaluation import ablations, experiments

#: name -> zero-argument callable returning an ExperimentResult.
EXPERIMENTS = {
    "fig1": experiments.fig1_center_evolution,
    "fig2": experiments.fig2_heap_memory,
    "table1": experiments.table1_gmeans_scaling,
    "table2": experiments.table2_multi_kmeans,
    "fig3": experiments.fig3_crossover,
    "table3": experiments.table3_quality,
    "fig4": experiments.fig4_local_minimum,
    "table4": experiments.table4_node_scaling,
    "costmodel": experiments.costmodel_validation,
}

ABLATIONS = {
    "kmeans_iterations": ablations.ablation_kmeans_iterations,
    "test_strategy": ablations.ablation_test_strategy,
    "vote_rules": ablations.ablation_vote_rules,
    "anchor_modes": ablations.ablation_anchor_modes,
    "balanced_partitioning": ablations.ablation_balanced_partitioning,
    "init_methods": ablations.ablation_init_methods,
    "cache_input": ablations.ablation_cache_input,
    "normality_tests": ablations.ablation_normality_tests,
    "cluster_shapes": ablations.ablation_cluster_shapes,
    "algorithms": ablations.ablation_algorithms,
}

#: One-line description per entry.
DESCRIPTIONS = {
    "fig1": "evolution of G-means centers (10 clusters in R^2)",
    "fig2": "reducer heap frontier: 64 bytes per projection",
    "table1": "G-means scaling with k: overestimation, time, iterations",
    "table2": "one multi-k-means iteration: quadratic in k",
    "fig3": "running-time crossover, G-means vs multi-k-means",
    "table3": "quality at equal k: G-means dodges local minima",
    "fig4": "the local-minimum tableau on the demo dataset",
    "table4": "node scaling 4/8/12 (Table 4 + Figure 5)",
    "costmodel": "Section-4 closed forms vs runtime counters",
    "kmeans_iterations": "k-means passes per round (paper uses 2)",
    "test_strategy": "TestFewClusters vs TestClusters vs the auto rule",
    "vote_rules": "mapper-vote combination eagerness",
    "anchor_modes": "membership anchor: paper-literal vs centroid",
    "balanced_partitioning": "skew: hash vs weight-balanced reducers",
    "init_methods": "random vs k-means++ vs k-means|| seeding",
    "cache_input": "Spark-style dataset caching between jobs",
    "normality_tests": "Anderson-Darling vs Jarque-Bera vs Lilliefors",
    "cluster_shapes": "robustness: anisotropy, uniform balls, noise",
    "algorithms": "MR G-means vs MR X-means vs fixed-k k-means",
}
