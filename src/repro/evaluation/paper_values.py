"""Reference values transcribed from the paper's evaluation section.

Used by the benchmark harness to print paper-vs-measured comparisons
(EXPERIMENTS.md is generated from the same data). Absolute times are
testbed-specific; the quantities to match are the *shapes*: linearity
in k, the ~1.5x overestimation factor, the ~10% quality advantage, the
near-linear node speedup.
"""

from __future__ import annotations

#: Table 1 — Results of G-means clustering (10M points in R^10).
TABLE1 = {
    "clusters": [100, 200, 400, 800, 1600],
    "discovered": [134, 305, 626, 1264, 2455],
    "time_seconds": [1286, 1667, 2291, 4208, 5593],
    "iterations": [9, 10, 11, 13, 13],
}

#: Table 2 — Average time of a single multi-k-means iteration.
TABLE2 = {
    "clusters": [50, 100, 141, 200, 400],
    "time_seconds": [237, 751, 1356, 2637, 10252],
}

#: Table 3 — Quality: average point-to-center distance.
TABLE3 = {
    "k_real": [100, 200, 400],
    "k_found": [150, 279, 639],
    "gmeans_avg_distance": [3.34, 3.33, 3.23],
    "multi_kmeans_avg_distance": [3.71, 3.60, 3.39],
}

#: Table 4 / Figure 5 — Node scaling (100M points, 1000 clusters).
TABLE4 = {
    "nodes": [4, 8, 12],
    "time_minutes": [798, 447, 323],
}

#: Figure 2 — Reducer heap regression: ``heap_MB = 64 * millions_of_points - 42.67``.
FIG2_SLOPE_BYTES_PER_POINT = 64.0
FIG2_INTERCEPT_MB = -42.67

#: Figure 4 — The 10-cluster demo: G-means finds 14 centers (all 10
#: clusters covered); multi-k-means at k=10 leaves one cluster split
#: between two centers (a local minimum).
FIG4_GMEANS_CENTERS = 14
FIG4_TRUE_CLUSTERS = 10

#: Table 1's overestimation: "the proportion of discovered clusters to
#: the real number of clusters seems to be quite constant (1.5)".
OVERESTIMATION_FACTOR = 1.5

#: Table 3's quality gap: "G-means consistently outperforms
#: multi-k-means, by approximatively 10%".
QUALITY_ADVANTAGE = 0.10
