"""Statistics substrate: normal distribution, Anderson-Darling test,
streaming descriptive statistics, and 1-D projection utilities.

Everything here is implemented from scratch (no scipy dependency);
scipy is used only in the test suite as an independent oracle.
"""

from repro.stats.normal import normal_cdf, normal_pdf, normal_quantile
from repro.stats.descriptive import StreamingMoments
from repro.stats.projection import project_onto, normalize
from repro.stats.anderson import (
    AndersonDarlingResult,
    anderson_darling_statistic,
    anderson_darling_normality,
    anderson_darling_pvalue,
    critical_value,
    GMEANS_ALPHA,
)
from repro.stats.normality import (
    NORMALITY_TESTS,
    NormalityVerdict,
    jarque_bera_normality,
    lilliefors_normality,
    normality_test,
)

__all__ = [
    "normal_cdf",
    "normal_pdf",
    "normal_quantile",
    "StreamingMoments",
    "project_onto",
    "normalize",
    "AndersonDarlingResult",
    "anderson_darling_statistic",
    "anderson_darling_normality",
    "anderson_darling_pvalue",
    "critical_value",
    "GMEANS_ALPHA",
    "NORMALITY_TESTS",
    "NormalityVerdict",
    "jarque_bera_normality",
    "lilliefors_normality",
    "normality_test",
]
