"""Projection of points onto a direction vector, and z-normalisation.

G-means reduces each cluster to one dimension by projecting its points
onto ``v = c1 - c2``, the segment joining the two candidate children
centers — "the direction that k-means believes is important for
clustering" — then normalises the projections to zero mean and unit
variance before applying the Anderson-Darling test.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataFormatError


def project_onto(points: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Project each row of ``points`` onto ``vector``.

    Returns the scalar projections ``<x, v> / ||v||^2`` as used by
    G-means (Hamerly & Elkan 2003, eq. for x'_i). A zero vector cannot
    define a direction and raises :class:`DataFormatError`.
    """
    pts = np.asarray(points, dtype=np.float64)
    v = np.asarray(vector, dtype=np.float64).ravel()
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.shape[1] != v.size:
        raise DataFormatError(
            f"dimension mismatch: points have d={pts.shape[1]}, vector has d={v.size}"
        )
    norm_sq = float(np.dot(v, v))
    if norm_sq == 0.0:
        raise DataFormatError("cannot project onto a zero vector")
    return pts @ (v / norm_sq)


def normalize(values: np.ndarray, ddof: int = 0) -> np.ndarray:
    """Return ``values`` shifted/scaled to zero mean and unit variance.

    ``ddof`` selects the variance estimator: 0 for the population
    (maximum-likelihood) variance, 1 for the unbiased sample variance —
    the convention of the case-4 Anderson-Darling test. A constant
    vector has no scale; it is returned as all zeros (the test layer
    treats that case explicitly).
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return arr.copy()
    if ddof >= arr.size:
        return np.zeros_like(arr)
    centered = arr - arr.mean()
    std = centered.std(ddof=ddof)
    if std == 0.0:
        return np.zeros_like(arr)
    return centered / std
