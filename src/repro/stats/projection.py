"""Projection of points onto a direction vector, and z-normalisation.

G-means reduces each cluster to one dimension by projecting its points
onto ``v = c1 - c2``, the segment joining the two candidate children
centers — "the direction that k-means believes is important for
clustering" — then normalises the projections to zero mean and unit
variance before applying the Anderson-Darling test.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataFormatError


def project_onto(points: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Project each row of ``points`` onto ``vector``.

    Returns the scalar projections ``<x, v> / ||v||^2`` as used by
    G-means (Hamerly & Elkan 2003, eq. for x'_i). A zero vector cannot
    define a direction and raises :class:`DataFormatError`.
    """
    pts = np.asarray(points, dtype=np.float64)
    v = np.asarray(vector, dtype=np.float64).ravel()
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.shape[1] != v.size:
        raise DataFormatError(
            f"dimension mismatch: points have d={pts.shape[1]}, vector has d={v.size}"
        )
    norm_sq = float(np.dot(v, v))
    if norm_sq == 0.0:
        raise DataFormatError("cannot project onto a zero vector")
    return pts @ (v / norm_sq)


def projection_direction(pair: np.ndarray) -> "np.ndarray | None":
    """The pre-scaled direction ``(c1 - c2) / ||c1 - c2||^2`` of a
    candidate-children pair, or ``None`` when the children coincide.

    Projecting a point is then a single dot product ``x @ direction``
    (a whole split projects with one matvec) — the normalisation is
    folded into the vector once per task instead of once per point.
    Both the test-job mappers and the scalar oracle paths build their
    directions here, so the vectorized and per-record pipelines agree
    on the exact same vector bytes.
    """
    pair = np.asarray(pair, dtype=np.float64)
    v = pair[0] - pair[1]
    norm_sq = float(v @ v)
    if norm_sq == 0.0:
        return None
    return v / norm_sq


def normalize(values: np.ndarray, ddof: int = 0) -> np.ndarray:
    """Return ``values`` shifted/scaled to zero mean and unit variance.

    ``ddof`` selects the variance estimator: 0 for the population
    (maximum-likelihood) variance, 1 for the unbiased sample variance —
    the convention of the case-4 Anderson-Darling test. A constant
    vector has no scale; it is returned as all zeros (the test layer
    treats that case explicitly).
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return arr.copy()
    if ddof >= arr.size:
        return np.zeros_like(arr)
    centered = arr - arr.mean()
    std = centered.std(ddof=ddof)
    if std == 0.0:
        return np.zeros_like(arr)
    return centered / std
