"""Standard normal distribution functions, implemented from scratch.

The CDF is computed from the error function; the quantile uses the
Acklam rational approximation refined by one Halley step, giving ~1e-15
relative accuracy — more than enough for the Anderson-Darling test and
the dataset generators built on top.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)

# Coefficients of Acklam's inverse-normal rational approximation.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def normal_pdf(x: "float | np.ndarray") -> "float | np.ndarray":
    """Density of the standard normal distribution at ``x``."""
    return _INV_SQRT_2PI * np.exp(-0.5 * np.square(x))


def normal_cdf(x: "float | np.ndarray") -> "float | np.ndarray":
    """Cumulative distribution of the standard normal at ``x``.

    Vectorised; uses ``math.erf`` elementwise via numpy for arrays.
    """
    if np.isscalar(x):
        return 0.5 * (1.0 + math.erf(float(x) / _SQRT2))
    arr = np.asarray(x, dtype=np.float64)
    # numpy has no erf; evaluate through the ufunc-free vectorised path.
    return 0.5 * (1.0 + _erf_vec(arr / _SQRT2))


def _erf_vec(x: np.ndarray) -> np.ndarray:
    """Elementwise erf for float64 arrays (math.erf mapped over items)."""
    flat = x.ravel()
    out = np.fromiter((math.erf(v) for v in flat), dtype=np.float64, count=flat.size)
    return out.reshape(x.shape)


def _acklam(p: float) -> float:
    """Initial rational-approximation estimate of the normal quantile."""
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p > _P_HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (
        ((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]
    ) * q / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)


def normal_quantile(p: float) -> float:
    """Inverse CDF (quantile) of the standard normal distribution.

    Raises ``ValueError`` outside the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile requires 0 < p < 1, got {p!r}")
    x = _acklam(p)
    # One Halley refinement step: near machine precision everywhere.
    e = normal_cdf(x) - p
    u = e / max(normal_pdf(x), 1e-300)
    return x - u / (1.0 + x * u / 2.0)
