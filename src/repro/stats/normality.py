"""Pluggable normality tests.

G-means is defined with the Anderson-Darling test, which Hamerly &
Elkan chose for its power against the alternatives that matter when a
cluster hides two modes. To let that choice be *ablated* rather than
assumed, this module provides a uniform interface over three tests:

* ``anderson`` — A*^2, case 4 (the default; see
  :mod:`repro.stats.anderson`);
* ``jarque_bera`` — the moment test ``n/6 (S^2 + K^2/4)`` against its
  asymptotic chi-square(2) law (cheap, weak against symmetric
  bimodality — exactly the failure mode that matters here);
* ``lilliefors`` — Kolmogorov-Smirnov with estimated mean/variance,
  using the Dallal-Wilkinson small-sample critical-value form.

All three share the decision convention: ``is_normal`` iff the
statistic does not exceed the critical value at the chosen level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, DataFormatError
from repro.stats.anderson import anderson_darling_normality
from repro.stats.normal import normal_cdf
from repro.stats.projection import normalize


@dataclass(frozen=True)
class NormalityVerdict:
    """Uniform outcome of any normality test."""

    method: str
    statistic: float
    critical: float
    alpha: float
    n: int

    @property
    def is_normal(self) -> bool:
        return self.statistic <= self.critical


def _validate_sample(sample: np.ndarray) -> np.ndarray:
    arr = np.asarray(sample, dtype=np.float64).ravel()
    if arr.size < 2:
        raise DataFormatError(f"normality tests require n >= 2, got {arr.size}")
    return arr


def anderson_normality(sample: np.ndarray, alpha: float) -> NormalityVerdict:
    """Anderson-Darling wrapped in the uniform verdict type."""
    result = anderson_darling_normality(sample, alpha=alpha)
    return NormalityVerdict(
        method="anderson",
        statistic=result.statistic,
        critical=result.critical,
        alpha=alpha,
        n=result.n,
    )


def jarque_bera_normality(sample: np.ndarray, alpha: float) -> NormalityVerdict:
    """Jarque-Bera: JB = n/6 (S^2 + K^2/4), JB ~ chi^2(2) under H0.

    The chi-square(2) survival function is ``exp(-x/2)``, so the
    critical value at level ``alpha`` is ``-2 ln(alpha)`` exactly.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha!r}")
    arr = _validate_sample(sample)
    z = normalize(arr)
    if not np.any(z):
        return NormalityVerdict("jarque_bera", 0.0, -2.0 * math.log(alpha), alpha, arr.size)
    n = arr.size
    skewness = float(np.mean(z**3))
    kurtosis_excess = float(np.mean(z**4)) - 3.0
    statistic = n / 6.0 * (skewness**2 + kurtosis_excess**2 / 4.0)
    critical = -2.0 * math.log(alpha)
    return NormalityVerdict("jarque_bera", statistic, critical, alpha, n)


# Lilliefors critical values at the Dallal-Wilkinson reference size
# (n=100-ish normalisation); log-interpolated in alpha like the AD table.
_LILLIEFORS_TABLE: tuple[tuple[float, float], ...] = (
    (0.20, 0.741),
    (0.15, 0.775),
    (0.10, 0.819),
    (0.05, 0.895),
    (0.01, 1.035),
    (0.001, 1.212),
    (0.0001, 1.360),
)


def _lilliefors_coefficient(alpha: float) -> float:
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha!r}")
    levels = [a for a, _ in _LILLIEFORS_TABLE]
    values = [v for _, v in _LILLIEFORS_TABLE]
    if alpha >= levels[0]:
        return values[0]
    if alpha <= levels[-1]:
        return values[-1]
    for (a_hi, v_lo), (a_lo, v_hi) in zip(_LILLIEFORS_TABLE, _LILLIEFORS_TABLE[1:]):
        if a_lo <= alpha <= a_hi:
            t = (math.log(alpha) - math.log(a_hi)) / (
                math.log(a_lo) - math.log(a_hi)
            )
            return v_lo + t * (v_hi - v_lo)
    raise AssertionError("unreachable")  # pragma: no cover


def lilliefors_normality(sample: np.ndarray, alpha: float) -> NormalityVerdict:
    """Lilliefors (KS with estimated parameters).

    D = sup |F_n - Phi(z)|; critical value via the Dallal-Wilkinson
    denominator ``sqrt(n) - 0.01 + 0.85/sqrt(n)``.
    """
    arr = _validate_sample(sample)
    z = np.sort(normalize(arr, ddof=1))
    n = arr.size
    if z[0] == z[-1]:
        coefficient = _lilliefors_coefficient(alpha)
        return NormalityVerdict("lilliefors", 0.0, coefficient, alpha, n)
    cdf = normal_cdf(z)
    i = np.arange(1, n + 1)
    d_plus = float(np.max(i / n - cdf))
    d_minus = float(np.max(cdf - (i - 1) / n))
    statistic = max(d_plus, d_minus)
    denominator = math.sqrt(n) - 0.01 + 0.85 / math.sqrt(n)
    critical = _lilliefors_coefficient(alpha) / denominator
    return NormalityVerdict("lilliefors", statistic, critical, alpha, n)


#: Registry of pluggable tests.
NORMALITY_TESTS = {
    "anderson": anderson_normality,
    "jarque_bera": jarque_bera_normality,
    "lilliefors": lilliefors_normality,
}


def normality_test(
    sample: np.ndarray, alpha: float, method: str = "anderson"
) -> NormalityVerdict:
    """Run the named test; raises on unknown method names."""
    try:
        test = NORMALITY_TESTS[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown normality test {method!r}; choose from "
            f"{sorted(NORMALITY_TESTS)}"
        ) from None
    return test(sample, alpha)
