"""Streaming descriptive statistics (Welford's algorithm).

MapReduce combiners and reducers need to merge partial statistics
computed independently per split; ``StreamingMoments`` supports both
one-at-a-time updates and exact pairwise merging (Chan et al.), so the
result is independent of how the data was partitioned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class StreamingMoments:
    """Running count, mean and M2 (sum of squared deviations)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def add_many(self, xs: np.ndarray) -> None:
        """Fold a batch of observations (vectorised, then merged)."""
        arr = np.asarray(xs, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        batch = StreamingMoments(
            count=int(arr.size),
            mean=float(arr.mean()),
            m2=float(((arr - arr.mean()) ** 2).sum()),
        )
        self.merge(batch)

    def merge(self, other: "StreamingMoments") -> None:
        """Merge another partial aggregate into this one (in place)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Population variance (``m2 / count``); 0 for fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (``m2 / (count - 1)``)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)
