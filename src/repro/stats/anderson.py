"""Anderson-Darling test for normality (case 4: mean and variance
estimated from the sample), implemented from scratch.

This is the statistical heart of G-means: a cluster is kept intact when
the 1-D projection of its points onto the segment joining its two
candidate children looks Gaussian, and split otherwise.

The statistic follows D'Agostino & Stephens (1986):

    A^2  = -n - (1/n) * sum_{i=1..n} (2i - 1) [ln F(y_i) + ln(1 - F(y_{n+1-i}))]
    A*^2 = A^2 * (1 + 4/n - 25/n^2)

where ``F`` is the standard normal CDF and ``y_i`` the sorted,
z-normalised sample. The corrected statistic ``A*^2`` is compared to a
critical value for the chosen significance level; exceeding it rejects
normality. Hamerly & Elkan run G-means at a very strict level
(alpha = 0.0001) so that clusters are only split on strong evidence;
the same default is used here (:data:`GMEANS_ALPHA`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, DataFormatError
from repro.stats.normal import normal_cdf
from repro.stats.projection import normalize

#: Significance level used by the G-means paper (Hamerly & Elkan 2003).
GMEANS_ALPHA = 0.0001

#: Minimum sample size for which the test is considered reliable.
#: The EDBT paper quotes 8 as the usual rule of thumb and uses 20
#: "to stay on the safe side" in TestFewClusters.
MIN_RELIABLE_SAMPLE = 8

# Critical values of A*^2 for the normal distribution with estimated
# mean and variance (case 4), from D'Agostino & Stephens (1986),
# table 4.7, extended at the strict end with the asymptotic values
# used by G-means implementations (alpha=1e-4 -> 1.8692).
_CRITICAL_TABLE: tuple[tuple[float, float], ...] = (
    (0.25, 0.470),
    (0.15, 0.561),
    (0.10, 0.631),
    (0.05, 0.752),
    (0.025, 0.873),
    (0.01, 1.035),
    (0.005, 1.159),
    (0.0025, 1.281),
    (0.001, 1.450),
    (0.0005, 1.576),
    (0.0001, 1.8692),
)


def critical_value(alpha: float) -> float:
    """Critical value of A*^2 at significance level ``alpha``.

    Values between table entries are obtained by log-linear
    interpolation (the tail of the A^2 distribution is approximately
    exponential, so the critical value is near-linear in ``log alpha``).
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha!r}")
    levels = [a for a, _ in _CRITICAL_TABLE]
    values = [v for _, v in _CRITICAL_TABLE]
    if alpha >= levels[0]:
        return values[0]
    if alpha <= levels[-1]:
        return values[-1]
    for (a_hi, v_lo), (a_lo, v_hi) in zip(_CRITICAL_TABLE, _CRITICAL_TABLE[1:]):
        if a_lo <= alpha <= a_hi:
            t = (math.log(alpha) - math.log(a_hi)) / (
                math.log(a_lo) - math.log(a_hi)
            )
            return v_lo + t * (v_hi - v_lo)
    raise AssertionError("unreachable: alpha within table bounds")  # pragma: no cover


@dataclass(frozen=True)
class AndersonDarlingResult:
    """Outcome of one Anderson-Darling normality test.

    ``statistic`` is the small-sample-corrected A*^2; ``is_normal`` is
    the accept/reject decision at the configured level; ``reliable``
    flags whether the sample was large enough for the decision to be
    trusted (``n >= MIN_RELIABLE_SAMPLE``).
    """

    statistic: float
    critical: float
    alpha: float
    n: int

    @property
    def is_normal(self) -> bool:
        """True when normality is *not* rejected at level ``alpha``."""
        return self.statistic <= self.critical

    @property
    def reliable(self) -> bool:
        """True when the sample met the minimum reliable size."""
        return self.n >= MIN_RELIABLE_SAMPLE

    @property
    def pvalue(self) -> float:
        """Approximate p-value of the observed statistic."""
        return anderson_darling_pvalue(self.statistic)


def anderson_darling_statistic(sample: np.ndarray) -> float:
    """Corrected statistic A*^2 for normality of ``sample``.

    The sample is z-normalised internally (case 4 of the test: both
    mean and variance are estimated from the data). Requires at least
    two distinct values; a constant sample has zero variance and the
    test is undefined for it.
    """
    arr = np.asarray(sample, dtype=np.float64).ravel()
    n = arr.size
    if n < 2:
        raise DataFormatError(f"Anderson-Darling requires n >= 2, got n={n}")
    y = np.sort(normalize(arr, ddof=1))
    if y[0] == y[-1]:
        raise DataFormatError("Anderson-Darling is undefined for a constant sample")
    cdf = np.clip(normal_cdf(y), 1e-300, 1.0 - 1e-16)
    i = np.arange(1, n + 1, dtype=np.float64)
    s = np.sum((2.0 * i - 1.0) * (np.log(cdf) + np.log1p(-cdf[::-1])))
    a2 = -n - s / n
    return float(a2 * (1.0 + 4.0 / n - 25.0 / (n * n)))


def anderson_darling_pvalue(statistic: float) -> float:
    """Approximate p-value for a case-4 corrected statistic A*^2.

    D'Agostino & Stephens (1986), eq. 4.2's four-branch exponential
    approximation. Cross-checks against the critical-value table:
    ``p(0.752) ~ 0.05``, ``p(1.035) ~ 0.01``. Clamped to [0, 1].
    """
    a = float(statistic)
    if a < 0:
        raise ConfigurationError(f"statistic must be >= 0, got {a!r}")
    if a <= 0.2:
        p = 1.0 - math.exp(-13.436 + 101.14 * a - 223.73 * a * a)
    elif a <= 0.34:
        p = 1.0 - math.exp(-8.318 + 42.796 * a - 59.938 * a * a)
    elif a <= 0.6:
        p = math.exp(0.9177 - 4.279 * a - 1.38 * a * a)
    else:
        p = math.exp(1.2937 - 5.709 * a + 0.0186 * a * a)
    return min(1.0, max(0.0, p))


def anderson_darling_normality(
    sample: np.ndarray, alpha: float = GMEANS_ALPHA
) -> AndersonDarlingResult:
    """Run the full test and return statistic, critical value and verdict.

    A constant (zero-variance) sample is reported as normal with
    statistic 0: a cluster collapsed onto a single coordinate gives
    G-means no direction along which to split it.
    """
    arr = np.asarray(sample, dtype=np.float64).ravel()
    crit = critical_value(alpha)
    if arr.size >= 2 and np.min(arr) == np.max(arr):
        return AndersonDarlingResult(statistic=0.0, critical=crit, alpha=alpha, n=arr.size)
    stat = anderson_darling_statistic(arr)
    return AndersonDarlingResult(statistic=stat, critical=crit, alpha=alpha, n=arr.size)
