"""Post-processing merge of close centers.

The MR version of G-means tests all clusters in parallel and therefore
overestimates k by a roughly constant factor (~1.5 in the paper's
Table 1). The paper leaves "a post-processing step to merge close
centers" as future work; this module implements it: single-link
agglomeration of centers closer than a threshold, with the merged
center placed at the size-weighted mean, followed by an optional
k-means polish.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import check_points
from repro.clustering.lloyd import lloyd_kmeans
from repro.clustering.metrics import assign_nearest, cluster_sizes


class _UnionFind:
    """Minimal union-find over center indices."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def merge_centers(
    centers: np.ndarray,
    threshold: float,
    sizes: np.ndarray | None = None,
) -> np.ndarray:
    """Merge every group of centers linked by distances < threshold.

    ``sizes`` (points per center) weights the merged positions; without
    it the merge is an unweighted mean. Single-link semantics: chains
    of close centers collapse into one.
    """
    ctr = check_points(centers, "centers")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    k = ctr.shape[0]
    if sizes is None:
        weights = np.ones(k)
    else:
        weights = np.asarray(sizes, dtype=np.float64)
        if weights.shape != (k,):
            raise ConfigurationError(
                f"sizes must have shape ({k},), got {weights.shape}"
            )
    uf = _UnionFind(k)
    for i in range(k):
        d = np.linalg.norm(ctr[i + 1 :] - ctr[i], axis=1)
        for offset in np.flatnonzero(d < threshold):
            uf.union(i, i + 1 + int(offset))
    groups: dict[int, list[int]] = {}
    for i in range(k):
        groups.setdefault(uf.find(i), []).append(i)
    merged = np.vstack(
        [
            np.average(ctr[members], axis=0, weights=weights[members])
            for members in groups.values()
        ]
    )
    return merged


def suggest_merge_threshold(points: np.ndarray, centers: np.ndarray) -> float:
    """Data-driven threshold: twice the mean within-cluster RMS radius.

    Two Gaussian clusters whose centers sit closer than about two
    standard deviations are indistinguishable from one; their centers
    should collapse.
    """
    labels, sq = assign_nearest(points, centers)
    k = centers.shape[0]
    sizes = cluster_sizes(labels, k)
    radii = []
    for c in range(k):
        member_sq = sq[labels == c]
        if member_sq.size:
            radii.append(math.sqrt(float(member_sq.mean())))
    if not radii:
        return 0.0
    return 2.0 * float(np.mean(radii))


def merge_gmeans_centers(
    points: np.ndarray,
    centers: np.ndarray,
    threshold: float | None = None,
    polish_iterations: int = 5,
    rng=None,
) -> np.ndarray:
    """The full post-processing pass the paper proposes as future work:
    estimate a threshold, merge, then polish with a few k-means steps."""
    pts = check_points(points)
    ctr = check_points(centers, "centers")
    if threshold is None:
        threshold = suggest_merge_threshold(pts, ctr)
    labels, _ = assign_nearest(pts, ctr)
    sizes = cluster_sizes(labels, ctr.shape[0])
    merged = merge_centers(ctr, threshold, sizes=sizes)
    if polish_iterations > 0 and merged.shape[0] >= 1:
        fit = lloyd_kmeans(pts, init=merged, max_iterations=polish_iterations, rng=rng)
        merged = fit.centers
    return merged
