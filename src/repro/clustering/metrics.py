"""Clustering quality metrics.

The paper's quality comparison (Table 3) is the within-cluster sum of
squares objective of k-means and the derived average point-to-center
distance; the k-selection criteria in :mod:`repro.clustering.selection`
build on the same primitives.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataFormatError
from repro.common.validation import check_points

#: Rows per chunk when evaluating the n-by-k distance matrix; bounds
#: peak memory at ~chunk * k doubles.
_CHUNK_ROWS = 16384


def pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Full ``(n, k)`` matrix of squared Euclidean distances."""
    pts = check_points(points, "points")
    ctr = check_points(centers, "centers")
    if pts.shape[1] != ctr.shape[1]:
        raise DataFormatError(
            f"dimension mismatch: points d={pts.shape[1]}, centers d={ctr.shape[1]}"
        )
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clipped for rounding.
    sq = (
        np.sum(pts * pts, axis=1)[:, None]
        - 2.0 * (pts @ ctr.T)
        + np.sum(ctr * ctr, axis=1)[None, :]
    )
    return np.maximum(sq, 0.0)


def assign_nearest(
    points: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-center assignment.

    Returns ``(labels, sq_distances)`` where ``sq_distances[i]`` is the
    squared distance of point ``i`` to its assigned center. Processes
    points in chunks so the distance matrix never exceeds a few MB.
    """
    pts = check_points(points, "points")
    ctr = check_points(centers, "centers")
    n = pts.shape[0]
    labels = np.empty(n, dtype=np.int64)
    sq = np.empty(n, dtype=np.float64)
    for start in range(0, n, _CHUNK_ROWS):
        stop = min(start + _CHUNK_ROWS, n)
        block = pairwise_sq_distances(pts[start:stop], ctr)
        labels[start:stop] = np.argmin(block, axis=1)
        sq[start:stop] = block[np.arange(stop - start), labels[start:stop]]
    return labels, sq


def wcss(
    points: np.ndarray, centers: np.ndarray, labels: np.ndarray | None = None
) -> float:
    """Within-cluster sum of squares (the k-means objective).

    With ``labels`` given, measures that assignment; otherwise uses the
    optimal (nearest-center) assignment.
    """
    pts = check_points(points, "points")
    ctr = check_points(centers, "centers")
    if labels is None:
        _, sq = assign_nearest(pts, ctr)
        return float(sq.sum())
    lab = np.asarray(labels)
    if lab.shape != (pts.shape[0],):
        raise DataFormatError(
            f"labels shape {lab.shape} does not match {pts.shape[0]} points"
        )
    diffs = pts - ctr[lab]
    return float(np.sum(diffs * diffs))


def average_distance(points: np.ndarray, centers: np.ndarray) -> float:
    """Mean Euclidean distance from each point to its nearest center —
    the quality number reported in the paper's Table 3."""
    _, sq = assign_nearest(points, centers)
    return float(np.sqrt(sq).mean())


def cluster_sizes(labels: np.ndarray, k: int) -> np.ndarray:
    """Number of points per cluster id in ``[0, k)``."""
    lab = np.asarray(labels, dtype=np.int64)
    if lab.size and (lab.min() < 0 or lab.max() >= k):
        raise DataFormatError(
            f"labels outside [0, {k}): min={lab.min()}, max={lab.max()}"
        )
    return np.bincount(lab, minlength=k)


def label_sums(points: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Per-label coordinate sums: ``out[c] = sum of points[labels == c]``.

    The vectorized replacement for ``np.add.at(sums, labels, points)``
    in every partial-sum kernel. ``np.bincount`` with weights performs
    the same sequential input-order accumulation per label, so the
    result is *bitwise identical* to the scatter-add (and to a
    per-record Python loop) while running as one C pass per dimension
    instead of a buffered ufunc scatter — floating-point addition isn't
    associative, so only order-preserving rewrites like this one are
    admissible under the byte-identical determinism contract.
    """
    pts = np.asarray(points, dtype=np.float64)
    lab = np.asarray(labels, dtype=np.int64)
    sums = np.empty((k, pts.shape[1]), dtype=np.float64)
    for j in range(pts.shape[1]):
        sums[:, j] = np.bincount(lab, weights=pts[:, j], minlength=k)
    return sums


def explained_variance_ratio(points: np.ndarray, centers: np.ndarray) -> float:
    """Between-group over total variance (the elbow method's F-like
    "percentage of variance explained")."""
    pts = check_points(points)
    total = float(np.sum((pts - pts.mean(axis=0)) ** 2))
    if total == 0.0:
        return 1.0
    within = wcss(pts, centers)
    return max(0.0, 1.0 - within / total)
