"""X-means (Pelleg & Moore 2000) — the BIC-based comparator.

X-means is the other iterative k-finder the paper's related-work
section discusses (G-means was reported to outperform it). Each
improve-structure round fits 2-means inside every cluster and keeps the
split when the two-center model has the better Bayesian Information
Criterion on that cluster's points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.rng import ensure_rng
from repro.common.validation import check_points, check_positive
from repro.clustering.lloyd import lloyd_kmeans
from repro.clustering.metrics import assign_nearest, cluster_sizes


def spherical_bic(points: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """BIC of a spherical-Gaussian mixture fit (Pelleg & Moore, eq. 2).

    Uses the maximum-likelihood pooled variance estimate and penalises
    ``k*(d+1)`` free parameters. Returns ``-inf`` for a degenerate fit
    (zero variance), which makes any non-degenerate alternative win.
    """
    n, d = points.shape
    k = centers.shape[0]
    sizes = cluster_sizes(labels, k)
    residual = float(np.sum((points - centers[labels]) ** 2))
    dof = n - k
    if dof <= 0 or residual <= 0.0:
        return -math.inf
    variance = residual / (dof * d)
    log_likelihood = 0.0
    for ni in sizes:
        if ni > 0:
            log_likelihood += ni * math.log(ni / n)
    log_likelihood -= 0.5 * n * d * math.log(2.0 * math.pi * variance)
    log_likelihood -= 0.5 * (n - k) * d
    parameters = k * (d + 1)
    return log_likelihood - 0.5 * parameters * math.log(n)


@dataclass(frozen=True)
class XMeansResult:
    """Outcome of an X-means run."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    k_history: tuple[int, ...]

    @property
    def k(self) -> int:
        return self.centers.shape[0]


def xmeans(
    points: np.ndarray,
    k_init: int = 1,
    k_max: int = 4096,
    min_split_size: int = 10,
    max_iterations: int = 64,
    rng=None,
) -> XMeansResult:
    """Run X-means: alternate global k-means with BIC-guided splits.

    Note: with ``k_init=1`` on *low-dimensional* data the very first
    split decision compares a 2-way cut of the whole dataset against a
    single Gaussian; the hard-assignment BIC's mixture-entropy penalty
    (``n log 2``) can exceed the variance gain and stop the algorithm
    at k=1 even for clearly multi-modal data. Use ``k_init >= 2`` in
    that regime (in higher dimensions the variance term dominates and
    ``k_init=1`` is fine).
    """
    pts = check_points(points)
    check_positive("k_init", k_init)
    check_positive("k_max", k_max)
    rng = ensure_rng(rng)
    if k_init == 1:
        centers = pts.mean(axis=0, keepdims=True)
    else:
        idx = rng.choice(pts.shape[0], size=min(k_init, pts.shape[0]), replace=False)
        centers = pts[idx].copy()

    k_history: list[int] = []
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        fit = lloyd_kmeans(pts, init=centers, max_iterations=20, rng=rng)
        centers, labels = fit.centers, fit.labels
        k_history.append(centers.shape[0])
        next_centers: list[np.ndarray] = []
        split_any = False
        k_current = centers.shape[0]
        for i in range(centers.shape[0]):
            member = pts[labels == i]
            if member.shape[0] < min_split_size or k_current >= k_max:
                next_centers.append(centers[i])
                continue
            parent_bic = spherical_bic(
                member,
                centers[i : i + 1],
                np.zeros(member.shape[0], dtype=np.int64),
            )
            child_idx = rng.choice(member.shape[0], size=2, replace=False)
            child = lloyd_kmeans(
                member, init=member[child_idx], max_iterations=10, rng=rng
            )
            sizes = cluster_sizes(child.labels, 2)
            if sizes.min() == 0:
                next_centers.append(centers[i])
                continue
            child_bic = spherical_bic(member, child.centers, child.labels)
            if child_bic > parent_bic:
                next_centers.extend(child.centers)
                split_any = True
                k_current += 1
            else:
                next_centers.append(centers[i])
        centers = np.vstack(next_centers)
        if not split_any:
            break

    final = lloyd_kmeans(pts, init=centers, max_iterations=20, rng=rng)
    labels, sq = assign_nearest(pts, final.centers)
    return XMeansResult(
        centers=final.centers,
        labels=labels,
        inertia=float(sq.sum()),
        iterations=iteration,
        k_history=tuple(k_history),
    )
