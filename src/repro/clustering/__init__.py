"""Serial clustering algorithms, metrics, k-selection and merging.

The serial reference implementations (Lloyd's k-means, G-means,
X-means) serve as oracles for the MapReduce versions; the selection
criteria are the related-work k-choosers whose O(n k^2) cost motivates
the paper; the merge module implements the paper's future-work
post-processing step.
"""

from repro.clustering.external import (
    adjusted_rand_index,
    clustering_report,
    normalized_mutual_information,
    purity,
)
from repro.clustering.gmeans import (
    GMeansOptions,
    GMeansResult,
    gmeans,
    pick_children,
    split_decision,
)
from repro.clustering.init import (
    canopy_init,
    farthest_point_from,
    init_centers,
    kmeans_pp_init,
    random_init,
)
from repro.clustering.lloyd import KMeansResult, lloyd_kmeans, lloyd_step
from repro.clustering.merge import (
    merge_centers,
    merge_gmeans_centers,
    suggest_merge_threshold,
)
from repro.clustering.metrics import (
    assign_nearest,
    average_distance,
    cluster_sizes,
    explained_variance_ratio,
    pairwise_sq_distances,
    wcss,
)
from repro.clustering.selection import (
    CRITERIA,
    KSweep,
    choose_k,
    dunn_index,
    elbow_k,
    gap_statistic_k,
    jump_k,
    silhouette_score,
    sweep_kmeans,
)
from repro.clustering.xmeans import XMeansResult, spherical_bic, xmeans

__all__ = [
    "adjusted_rand_index",
    "clustering_report",
    "normalized_mutual_information",
    "purity",
    "GMeansOptions",
    "GMeansResult",
    "gmeans",
    "pick_children",
    "split_decision",
    "canopy_init",
    "farthest_point_from",
    "init_centers",
    "kmeans_pp_init",
    "random_init",
    "KMeansResult",
    "lloyd_kmeans",
    "lloyd_step",
    "merge_centers",
    "merge_gmeans_centers",
    "suggest_merge_threshold",
    "assign_nearest",
    "average_distance",
    "cluster_sizes",
    "explained_variance_ratio",
    "pairwise_sq_distances",
    "wcss",
    "CRITERIA",
    "KSweep",
    "choose_k",
    "dunn_index",
    "elbow_k",
    "gap_statistic_k",
    "jump_k",
    "silhouette_score",
    "sweep_kmeans",
    "XMeansResult",
    "spherical_bic",
    "xmeans",
]
