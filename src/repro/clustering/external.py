"""External clustering-quality metrics (against ground-truth labels).

The paper evaluates with WCSS only (it has no ground truth for real
data), but every synthetic dataset in this reproduction carries its
generating labels — so the suite can also report how well the
discovered clustering matches the truth: Adjusted Rand Index,
Normalised Mutual Information, and purity. Implemented from scratch on
the contingency table.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import DataFormatError


def _contingency(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Contingency table between two labelings."""
    a = np.asarray(labels_a, dtype=np.int64).ravel()
    b = np.asarray(labels_b, dtype=np.int64).ravel()
    if a.shape != b.shape:
        raise DataFormatError(
            f"label shapes differ: {a.shape} vs {b.shape}"
        )
    if a.size == 0:
        raise DataFormatError("cannot score empty labelings")
    if a.min() < 0 or b.min() < 0:
        raise DataFormatError("labels must be non-negative integers")
    ka, kb = int(a.max()) + 1, int(b.max()) + 1
    table = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def _comb2(x: np.ndarray) -> np.ndarray:
    """n choose 2, elementwise."""
    return x * (x - 1) // 2


def adjusted_rand_index(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Adjusted Rand Index (Hubert & Arabie): 1 = identical partitions,
    ~0 = random agreement; can be negative."""
    table = _contingency(labels_true, labels_pred)
    n = table.sum()
    sum_cells = _comb2(table).sum()
    sum_rows = _comb2(table.sum(axis=1)).sum()
    sum_cols = _comb2(table.sum(axis=0)).sum()
    total = _comb2(np.array([n]))[0]
    if total == 0:
        return 1.0
    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def normalized_mutual_information(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table = _contingency(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    mutual = 0.0
    for i in range(table.shape[0]):
        for j in range(table.shape[1]):
            if joint[i, j] > 0:
                mutual += joint[i, j] * math.log(
                    joint[i, j] / (pa[i] * pb[j])
                )
    entropy_a = -float(np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    entropy_b = -float(np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    denom = 0.5 * (entropy_a + entropy_b)
    if denom == 0.0:
        return 1.0
    return float(max(0.0, min(1.0, mutual / denom)))


def purity(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Fraction of points in the majority true class of their cluster.

    Rises trivially with the number of predicted clusters (a purity of
    1 is guaranteed at k = n), so read it together with ARI/NMI.
    """
    table = _contingency(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())


def clustering_report(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> dict[str, float]:
    """All external metrics at once (for experiment tables)."""
    return {
        "ari": adjusted_rand_index(labels_true, labels_pred),
        "nmi": normalized_mutual_information(labels_true, labels_pred),
        "purity": purity(labels_true, labels_pred),
    }
