"""Classical "choose k" criteria from the paper's related-work section.

These are the techniques that motivate the paper: they require running
a clustering algorithm for *every* candidate k (cost proportional to
n*k^2 overall) and then scoring the results. Implemented here:

* elbow method (Thorndike 1953) — knee of the explained-variance curve;
* average silhouette (Rousseeuw 1987);
* jump method (Sugar & James 2003) — transformed-distortion jumps;
* gap statistic (Tibshirani et al. 2001) — dispersion vs a null model;
* Dunn index (Dunn 1973);
* BIC / AIC on the spherical Gaussian model (as used by X-means).

The multi-k-means MR driver reuses these scorers to pick k from its
per-k WCSS output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_points
from repro.clustering.lloyd import KMeansResult, lloyd_kmeans
from repro.clustering.metrics import (
    assign_nearest,
    cluster_sizes,
    pairwise_sq_distances,
)
from repro.clustering.xmeans import spherical_bic


@dataclass
class KSweep:
    """k-means fits for a range of k, reusable by every criterion."""

    ks: list[int]
    results: dict[int, KMeansResult] = field(default_factory=dict)

    def wcss_curve(self) -> dict[int, float]:
        return {k: self.results[k].inertia for k in self.ks}


def sweep_kmeans(
    points: np.ndarray,
    ks: "list[int] | range",
    rng=None,
    init: str = "kmeans++",
    max_iterations: int = 30,
    restarts: int = 1,
) -> KSweep:
    """Fit k-means for each candidate k (best of ``restarts`` tries)."""
    pts = check_points(points)
    ks = sorted(set(int(k) for k in ks))
    if not ks or ks[0] < 1:
        raise ConfigurationError(f"candidate ks must be >= 1, got {ks!r}")
    rng = ensure_rng(rng)
    sweep = KSweep(ks=ks)
    for k in ks:
        best: KMeansResult | None = None
        for _ in range(max(1, restarts)):
            fit = lloyd_kmeans(
                pts, k=k, init=init, max_iterations=max_iterations, rng=rng
            )
            if best is None or fit.inertia < best.inertia:
                best = fit
        sweep.results[k] = best
    return sweep


# -- individual criteria -------------------------------------------------


def elbow_k(wcss_by_k: dict[int, float]) -> int:
    """Knee of the WCSS curve by maximum distance to the chord.

    A robust mechanisation of the paper's "angle in the graph": the
    selected k maximises the (normalised) vertical distance between the
    curve and the straight line joining its endpoints.
    """
    ks = sorted(wcss_by_k)
    if len(ks) < 3:
        raise ConfigurationError("elbow needs at least 3 candidate ks")
    w = np.array([wcss_by_k[k] for k in ks], dtype=np.float64)
    x = np.array(ks, dtype=np.float64)
    # Normalise both axes to [0, 1] so the chord distance is scale-free.
    xn = (x - x[0]) / (x[-1] - x[0])
    span = w[0] - w[-1]
    wn = (w - w[-1]) / span if span > 0 else np.zeros_like(w)
    chord = 1.0 - xn  # straight line from (0, 1) to (1, 0)
    distances = chord - wn
    return ks[int(np.argmax(distances))]


def silhouette_score(
    points: np.ndarray,
    labels: np.ndarray,
    sample_size: int | None = 2000,
    rng=None,
) -> float:
    """Mean silhouette over (a sample of) the points.

    Exact per-point silhouettes against full cluster populations would
    be O(n^2); sampling bounds the cost while keeping an unbiased mean.
    Singleton clusters contribute silhouette 0 (standard convention).
    """
    pts = check_points(points)
    lab = np.asarray(labels, dtype=np.int64)
    k = int(lab.max()) + 1
    if k < 2:
        raise ConfigurationError("silhouette requires at least 2 clusters")
    rng = ensure_rng(rng)
    n = pts.shape[0]
    if sample_size is not None and sample_size < n:
        idx = rng.choice(n, size=sample_size, replace=False)
    else:
        idx = np.arange(n)
    sizes = cluster_sizes(lab, k)
    # Sum of distances from each sampled point to every member of each
    # cluster; silhouette's a/b terms are means of these sums.
    totals = np.zeros((idx.size, k))
    for c in range(k):
        member = pts[lab == c]
        if member.shape[0] == 0:
            continue
        d = np.sqrt(pairwise_sq_distances(pts[idx], member))
        totals[:, c] = d.sum(axis=1)
    scores = np.zeros(idx.size)
    for row, i in enumerate(idx):
        own = lab[i]
        if sizes[own] <= 1:
            scores[row] = 0.0
            continue
        a = totals[row, own] / (sizes[own] - 1)  # exclude the point itself
        b = math.inf
        for c in range(k):
            if c != own and sizes[c] > 0:
                b = min(b, totals[row, c] / sizes[c])
        denom = max(a, b)
        scores[row] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def silhouette_k(points: np.ndarray, sweep: KSweep, rng=None) -> int:
    """k with the best average silhouette across the sweep."""
    rng = ensure_rng(rng)
    best_k, best_score = None, -math.inf
    for k in sweep.ks:
        if k < 2:
            continue
        fit = sweep.results[k]
        score = silhouette_score(points, fit.labels, rng=rng)
        if score > best_score:
            best_k, best_score = k, score
    if best_k is None:
        raise ConfigurationError("silhouette needs candidate ks >= 2")
    return best_k


def jump_k(
    wcss_by_k: dict[int, float], n_points: int, dimensions: int
) -> int:
    """Jump method: largest jump of the transformed distortion
    ``d_k^(-d/2)`` (Sugar & James 2003)."""
    ks = sorted(wcss_by_k)
    if len(ks) < 2:
        raise ConfigurationError("jump method needs at least 2 candidate ks")
    power = -dimensions / 2.0
    transformed = {}
    for k in ks:
        distortion = wcss_by_k[k] / (n_points * dimensions)
        transformed[k] = distortion**power if distortion > 0 else math.inf
    previous = 0.0  # convention: d_0^(-d/2) = 0
    best_k, best_jump = ks[0], -math.inf
    for k in ks:
        jump = transformed[k] - previous
        if jump > best_jump:
            best_k, best_jump = k, jump
        previous = transformed[k]
    return best_k


def gap_statistic_k(
    points: np.ndarray,
    sweep: KSweep,
    n_references: int = 10,
    rng=None,
) -> int:
    """Gap statistic: smallest k with Gap(k) >= Gap(k+1) - s_{k+1}.

    References are uniform samples over the data's bounding box
    (Tibshirani et al. 2001, the simplest null model).
    """
    pts = check_points(points)
    rng = ensure_rng(rng)
    ks = sweep.ks
    low, high = pts.min(axis=0), pts.max(axis=0)
    log_wk = {k: math.log(max(sweep.results[k].inertia, 1e-300)) for k in ks}
    gap, s = {}, {}
    for k in ks:
        ref_logs = []
        for _ in range(n_references):
            ref = rng.uniform(low, high, size=pts.shape)
            fit = lloyd_kmeans(ref, k=k, init="kmeans++", max_iterations=10, rng=rng)
            ref_logs.append(math.log(max(fit.inertia, 1e-300)))
        ref_logs = np.array(ref_logs)
        gap[k] = float(ref_logs.mean()) - log_wk[k]
        s[k] = float(ref_logs.std() * math.sqrt(1.0 + 1.0 / n_references))
    for k, k_next in zip(ks, ks[1:]):
        if gap[k] >= gap[k_next] - s[k_next]:
            return k
    return ks[-1]


def dunn_index(points: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """Dunn index with centroid-based separation and diameter.

    The classic Dunn index uses pairwise point distances (O(n^2)); the
    common centroid variant — min inter-center distance over max
    cluster diameter (2x max point-to-center distance) — preserves the
    ranking at a fraction of the cost.
    """
    ctr = check_points(centers, "centers")
    if ctr.shape[0] < 2:
        raise ConfigurationError("Dunn index requires at least 2 clusters")
    lab = np.asarray(labels, dtype=np.int64)
    _, sq = assign_nearest(points, ctr)
    diameters = np.zeros(ctr.shape[0])
    for c in range(ctr.shape[0]):
        member_sq = sq[lab == c]
        if member_sq.size:
            diameters[c] = 2.0 * math.sqrt(float(member_sq.max()))
    inter = pairwise_sq_distances(ctr, ctr)
    np.fill_diagonal(inter, np.inf)
    min_sep = math.sqrt(float(inter.min()))
    max_diam = float(diameters.max())
    if max_diam == 0.0:
        return math.inf
    return min_sep / max_diam


def dunn_k(points: np.ndarray, sweep: KSweep) -> int:
    """k with the highest Dunn index across the sweep."""
    best_k, best = None, -math.inf
    for k in sweep.ks:
        if k < 2:
            continue
        fit = sweep.results[k]
        value = dunn_index(points, fit.centers, fit.labels)
        if value > best:
            best_k, best = k, value
    if best_k is None:
        raise ConfigurationError("Dunn index needs candidate ks >= 2")
    return best_k


def bic_k(points: np.ndarray, sweep: KSweep) -> int:
    """k maximising the spherical-Gaussian BIC."""
    pts = check_points(points)
    best_k, best = None, -math.inf
    for k in sweep.ks:
        fit = sweep.results[k]
        value = spherical_bic(pts, fit.centers, fit.labels)
        if value > best:
            best_k, best = k, value
    return best_k


def aic_k(points: np.ndarray, sweep: KSweep) -> int:
    """k maximising the spherical-Gaussian AIC (X-means' alternative)."""
    pts = check_points(points)
    n = pts.shape[0]
    best_k, best = None, -math.inf
    for k in sweep.ks:
        fit = sweep.results[k]
        bic = spherical_bic(pts, fit.centers, fit.labels)
        # Convert the BIC penalty to AIC's: +0.5 p ln n - p.
        p = k * (pts.shape[1] + 1)
        value = bic + 0.5 * p * math.log(n) - p
        if value > best:
            best_k, best = k, value
    return best_k


#: Criteria available through :func:`choose_k`.
CRITERIA = ("elbow", "silhouette", "jump", "gap", "dunn", "bic", "aic")


def choose_k(
    points: np.ndarray,
    ks: "list[int] | range",
    method: str = "elbow",
    rng=None,
    sweep: KSweep | None = None,
) -> int:
    """Run (or reuse) a k sweep and apply the named criterion."""
    if method not in CRITERIA:
        raise ConfigurationError(
            f"unknown criterion {method!r}; choose one of {CRITERIA}"
        )
    pts = check_points(points)
    rng = ensure_rng(rng)
    if sweep is None:
        sweep = sweep_kmeans(pts, ks, rng=rng)
    wcss_by_k = sweep.wcss_curve()
    if method == "elbow":
        return elbow_k(wcss_by_k)
    if method == "silhouette":
        return silhouette_k(pts, sweep, rng=rng)
    if method == "jump":
        return jump_k(wcss_by_k, pts.shape[0], pts.shape[1])
    if method == "gap":
        return gap_statistic_k(pts, sweep, rng=rng)
    if method == "dunn":
        return dunn_k(pts, sweep)
    if method == "bic":
        return bic_k(pts, sweep)
    return aic_k(pts, sweep)
