"""Center initialisation strategies.

The paper's ``PickInitialCenters`` is a serial random pick; it also
cites k-means++ (Arthur & Vassilvitskii 2007) and canopy clustering
(McCallum et al. 2000) as drop-in alternatives — "other distributed or
more efficient algorithms can be found in the literature and can
perfectly be used instead". All three are provided and pluggable into
both the serial and MapReduce drivers.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_points, check_positive
from repro.clustering.metrics import assign_nearest, pairwise_sq_distances


def random_init(points: np.ndarray, k: int, rng=None) -> np.ndarray:
    """Pick ``k`` distinct points uniformly at random (the paper's
    PickInitialCenters)."""
    pts = check_points(points)
    check_positive("k", k)
    if k > pts.shape[0]:
        raise ConfigurationError(
            f"cannot pick {k} centers from {pts.shape[0]} points"
        )
    rng = ensure_rng(rng)
    idx = rng.choice(pts.shape[0], size=k, replace=False)
    return pts[idx].copy()


def kmeans_pp_init(points: np.ndarray, k: int, rng=None) -> np.ndarray:
    """k-means++ seeding: each next center is drawn with probability
    proportional to its squared distance from the chosen set."""
    pts = check_points(points)
    check_positive("k", k)
    n = pts.shape[0]
    if k > n:
        raise ConfigurationError(f"cannot pick {k} centers from {n} points")
    rng = ensure_rng(rng)
    centers = np.empty((k, pts.shape[1]))
    centers[0] = pts[rng.integers(n)]
    sq = pairwise_sq_distances(pts, centers[0:1]).ravel()
    for i in range(1, k):
        total = sq.sum()
        if total == 0.0:
            # All remaining points coincide with chosen centers.
            centers[i:] = pts[rng.choice(n, size=k - i)]
            break
        probs = sq / total
        centers[i] = pts[rng.choice(n, p=probs)]
        sq = np.minimum(sq, pairwise_sq_distances(pts, centers[i : i + 1]).ravel())
    return centers


def canopy_init(
    points: np.ndarray, t1: float, t2: float, rng=None, max_canopies: int | None = None
) -> np.ndarray:
    """Canopy clustering (McCallum et al.): cheap overlapping pre-groups.

    Returns the canopy centers, usable as k-means seeds. ``t1 > t2``:
    points within ``t2`` of a canopy center are removed from the
    candidate pool; within ``t1`` they join the canopy (overlap allowed).
    """
    pts = check_points(points)
    if not t1 > t2 > 0:
        raise ConfigurationError(f"canopy thresholds need t1 > t2 > 0, got {t1}, {t2}")
    rng = ensure_rng(rng)
    remaining = np.arange(pts.shape[0])
    order = rng.permutation(remaining)
    alive = np.ones(pts.shape[0], dtype=bool)
    centers: list[np.ndarray] = []
    for idx in order:
        if not alive[idx]:
            continue
        center = pts[idx]
        centers.append(center.copy())
        d = np.linalg.norm(pts[alive] - center, axis=1)
        removed = np.flatnonzero(alive)[d <= t2]
        alive[removed] = False
        alive[idx] = False
        if max_canopies is not None and len(centers) >= max_canopies:
            break
    return np.vstack(centers)


def init_centers(points: np.ndarray, k: int, method: str = "random", rng=None) -> np.ndarray:
    """Dispatch on a method name: ``random`` or ``kmeans++``."""
    if method == "random":
        return random_init(points, k, rng)
    if method in ("kmeans++", "k-means++"):
        return kmeans_pp_init(points, k, rng)
    raise ConfigurationError(f"unknown init method: {method!r}")


def farthest_point_from(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """The point farthest from its nearest center (used to re-seed
    empty clusters)."""
    _, sq = assign_nearest(points, centers)
    return points[int(np.argmax(sq))].copy()
