"""Lloyd's algorithm — "the k-means algorithm".

The serial reference implementation the MapReduce jobs are tested
against: on identical inputs and initial centers, one MR k-means
iteration must produce exactly the centers of one Lloyd iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_points, check_positive
from repro.clustering.init import farthest_point_from, init_centers
from repro.clustering.metrics import assign_nearest, cluster_sizes, label_sums


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def k(self) -> int:
        return self.centers.shape[0]


def lloyd_step(
    points: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """One Lloyd iteration: assign, then recompute means.

    Returns ``(new_centers, labels, inertia)`` where inertia is the
    WCSS *under the assignment step* (i.e. against the input centers).
    Empty clusters keep their previous center — the same policy as the
    MR reducer, which simply receives no data for them.
    """
    labels, sq = assign_nearest(points, centers)
    k, d = centers.shape
    sums = label_sums(points, labels, k)
    counts = cluster_sizes(labels, k).astype(np.float64)
    new_centers = centers.copy()
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    return new_centers, labels, float(sq.sum())


def lloyd_kmeans(
    points: np.ndarray,
    k: int | None = None,
    init: "np.ndarray | str" = "random",
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    rng=None,
    reseed_empty: bool = False,
) -> KMeansResult:
    """Full Lloyd's algorithm.

    ``init`` is either an explicit ``(k, d)`` center matrix or a method
    name (``"random"`` / ``"kmeans++"``) combined with ``k``.
    ``reseed_empty`` replaces a center that lost all its points with the
    point farthest from any center (instead of freezing it in place).
    Convergence is declared when the largest center displacement falls
    below ``tolerance``.
    """
    pts = check_points(points)
    check_positive("max_iterations", max_iterations)
    rng = ensure_rng(rng)
    if isinstance(init, str):
        if k is None:
            raise ConfigurationError("k is required when init is a method name")
        centers = init_centers(pts, k, method=init, rng=rng)
    else:
        centers = check_points(np.asarray(init, dtype=np.float64), "init")
        if k is not None and centers.shape[0] != k:
            raise ConfigurationError(
                f"init has {centers.shape[0]} centers but k={k}"
            )
    labels = np.zeros(pts.shape[0], dtype=np.int64)
    inertia = float("inf")
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        new_centers, labels, inertia = lloyd_step(pts, centers)
        if reseed_empty:
            counts = cluster_sizes(labels, centers.shape[0])
            for empty in np.flatnonzero(counts == 0):
                new_centers[empty] = farthest_point_from(pts, new_centers)
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift <= tolerance:
            converged = True
            break
    # Final assignment against the final centers.
    labels, sq = assign_nearest(pts, centers)
    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=float(sq.sum()),
        iterations=iteration,
        converged=converged,
    )
