"""Serial G-means (Hamerly & Elkan 2003) — the algorithm the paper
ports to MapReduce.

Starting from a small number of centers, each iteration refines the
centers with k-means, then tests every cluster: the cluster's points
are projected onto the segment joining two candidate children centers,
and the projections are tested for normality with Anderson-Darling. A
Gaussian-looking cluster keeps its center; anything else is split into
the two children.

This serial version analyses clusters one by one (and therefore does
not overestimate k the way the parallel MR version does); it serves as
the reference oracle in the test suite and as the baseline for the MR
version's behavioural comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_points, check_positive
from repro.clustering.lloyd import KMeansResult, lloyd_kmeans
from repro.clustering.metrics import assign_nearest
from repro.stats.anderson import GMEANS_ALPHA
from repro.stats.normality import normality_test
from repro.stats.projection import project_onto


@dataclass(frozen=True)
class GMeansResult:
    """Outcome of a G-means run."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    k_history: tuple[int, ...]
    ad_tests: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]


@dataclass
class GMeansOptions:
    """Tunables of the serial algorithm.

    ``child_init`` selects how a cluster's two candidate children are
    placed: ``"pca"`` (Hamerly & Elkan: ``c +- m`` with ``m`` along the
    principal component, scaled by ``sqrt(2 lambda / pi)``) or
    ``"random"`` (two random member points — the cheap choice the EDBT
    paper uses in MapReduce).
    """

    alpha: float = GMEANS_ALPHA
    normality_test: str = "anderson"
    k_init: int = 1
    k_max: int = 4096
    min_split_size: int = 25
    child_init: str = "pca"
    child_kmeans_iterations: int = 10
    refine_iterations: int = 10
    max_iterations: int = 64

    def __post_init__(self) -> None:
        check_positive("k_init", self.k_init)
        check_positive("k_max", self.k_max)
        check_positive("min_split_size", self.min_split_size)
        check_positive("max_iterations", self.max_iterations)
        if self.child_init not in ("pca", "random"):
            raise ConfigurationError(
                f"child_init must be 'pca' or 'random', got {self.child_init!r}"
            )
        from repro.stats.normality import NORMALITY_TESTS

        if self.normality_test not in NORMALITY_TESTS:
            raise ConfigurationError(
                f"normality_test must be one of {sorted(NORMALITY_TESTS)}, "
                f"got {self.normality_test!r}"
            )


def _principal_direction(points: np.ndarray) -> np.ndarray:
    """Unit eigenvector of the largest covariance eigenvalue, scaled by
    sqrt(2 * lambda / pi) as in Hamerly & Elkan."""
    centered = points - points.mean(axis=0)
    cov = centered.T @ centered / max(1, points.shape[0] - 1)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    lam = max(float(eigenvalues[-1]), 0.0)
    direction = eigenvectors[:, -1]
    return direction * np.sqrt(2.0 * lam / np.pi)


def pick_children(
    cluster_points: np.ndarray,
    center: np.ndarray,
    method: str,
    rng: np.random.Generator,
) -> np.ndarray | None:
    """Place the two candidate children for one cluster.

    Returns a ``(2, d)`` matrix or ``None`` when no usable pair exists
    (degenerate cluster: fewer than two distinct points).
    """
    if cluster_points.shape[0] < 2:
        return None
    if method == "pca":
        m = _principal_direction(cluster_points)
        if not np.any(m):
            return None
        return np.vstack([center + m, center - m])
    # random: two distinct member points
    idx = rng.choice(cluster_points.shape[0], size=2, replace=False)
    pair = cluster_points[idx]
    if np.array_equal(pair[0], pair[1]):
        return None
    return pair.copy()


def split_decision(
    cluster_points: np.ndarray,
    children: np.ndarray,
    alpha: float,
    normality: str = "anderson",
) -> tuple[bool, float]:
    """The G-means test for one cluster.

    Projects the cluster's points onto ``v = c1 - c2`` and runs the
    chosen normality test (Anderson-Darling by default); returns
    ``(should_split, statistic)``. A degenerate direction (children
    coincide) cannot justify a split.
    """
    v = children[0] - children[1]
    if not np.any(v):
        return False, 0.0
    projections = project_onto(cluster_points, v)
    if projections.min() == projections.max():
        return False, 0.0
    result = normality_test(projections, alpha, normality)
    return (not result.is_normal), result.statistic


def gmeans(
    points: np.ndarray,
    options: GMeansOptions | None = None,
    rng=None,
) -> GMeansResult:
    """Run serial G-means and return centers, labels and diagnostics."""
    pts = check_points(points)
    opts = options or GMeansOptions()
    rng = ensure_rng(rng)
    if opts.k_init == 1:
        centers = pts.mean(axis=0, keepdims=True)
    else:
        idx = rng.choice(pts.shape[0], size=min(opts.k_init, pts.shape[0]), replace=False)
        centers = pts[idx].copy()

    ad_tests = 0
    k_history: list[int] = []
    iteration = 0
    for iteration in range(1, opts.max_iterations + 1):
        refined: KMeansResult = lloyd_kmeans(
            pts, init=centers, max_iterations=opts.refine_iterations, rng=rng
        )
        centers = refined.centers
        labels = refined.labels
        k_history.append(centers.shape[0])

        next_centers: list[np.ndarray] = []
        split_any = False
        k_current = centers.shape[0]
        for i in range(centers.shape[0]):
            member = pts[labels == i]
            if member.shape[0] < opts.min_split_size or k_current >= opts.k_max:
                next_centers.append(centers[i])
                continue
            children = pick_children(member, centers[i], opts.child_init, rng)
            if children is None:
                next_centers.append(centers[i])
                continue
            child_fit = lloyd_kmeans(
                member,
                init=children,
                max_iterations=opts.child_kmeans_iterations,
                rng=rng,
            )
            sizes = np.bincount(child_fit.labels, minlength=2)
            if sizes.min() == 0:
                next_centers.append(centers[i])
                continue
            should_split, _stat = split_decision(
                member, child_fit.centers, opts.alpha, opts.normality_test
            )
            ad_tests += 1
            if should_split:
                next_centers.extend(child_fit.centers)
                split_any = True
                k_current += 1
            else:
                next_centers.append(centers[i])
        centers = np.vstack(next_centers)
        if not split_any:
            break

    final = lloyd_kmeans(pts, init=centers, max_iterations=opts.refine_iterations, rng=rng)
    labels, sq = assign_nearest(pts, final.centers)
    return GMeansResult(
        centers=final.centers,
        labels=labels,
        inertia=float(sq.sum()),
        iterations=iteration,
        k_history=tuple(k_history),
        ad_tests=ad_tests,
    )
