"""The declarative component manifest: every tunable knob in one place.

The ablation engine (:mod:`repro.observability.ablate`), the autotuner
(:mod:`repro.observability.tune`) and the design-choice ablations
(:mod:`repro.evaluation.ablations`) all need the same answer to "what
are the knobs, what is each one's baseline, and what do you flip it
to?". This module is that single answer: a :class:`Component` per
knob, collected in :data:`MANIFEST`. Registering a new knob here makes
it ablatable (``repro ablate``), sweepable (the evaluation ablations
pull their value lists from here) and — when it maps onto a
:class:`~repro.observability.whatif.Scenario` key — tunable
(``repro tune``) with no further wiring.

Each component names a dotted ``target`` telling the harness where the
value lands:

``gmeans.<field>``
    an :class:`~repro.core.config.MRGMeansConfig` field;
``runtime.<field>``
    a :class:`~repro.mapreduce.runtime.MapReduceRuntime` constructor
    argument (e.g. ``locality``);
``faults.<field>``
    a :class:`~repro.mapreduce.faults.FaultModel` field;
``config.<field>``
    a :class:`~repro.mapreduce.executors.RuntimeConfig` field;
``workload.<field>``
    a property of the generated workload itself (e.g. ``split_factor``
    scales the DFS split count).

Components in the ``infrastructure`` layer are *simulated-invariant*:
flipping them may change wall-clock behaviour but must not move a
single simulated metric — the ablation engine asserts exactly that,
turning the determinism contract into a measured row of the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Manifest layers, from "changes the algorithm's answers" down to
#: "changes only how the same work is executed".
LAYERS = ("algorithm", "runtime", "infrastructure")


class ComponentError(KeyError):
    """An unknown component name was requested."""


@dataclass(frozen=True)
class Component:
    """One declaratively-registered knob.

    ``baseline`` is the engine's reference value; ``flips`` are the
    single-flip variants ``repro ablate`` runs against it. ``sweep`` is
    the full ordered value list the evaluation ablations iterate
    (defaults to ``(baseline,) + flips``). ``scenario_key`` names the
    :class:`~repro.observability.whatif.Scenario` field this knob maps
    onto, when the what-if predictor can model it — that is what makes
    the knob searchable by ``repro tune`` without a re-run per
    candidate.
    """

    name: str
    description: str
    layer: str
    target: str
    baseline: object
    flips: "tuple[object, ...]" = ()
    sweep: "tuple[object, ...] | None" = None
    #: Engine components are run by ``repro ablate``; evaluation-only
    #: components merely contribute their sweep to
    #: :mod:`repro.evaluation.ablations`.
    engine: bool = True
    scenario_key: "str | None" = None
    #: Human-readable rendering of a flipped value (e.g. the
    #: checkpointing component flips a directory name but reads "on").
    flip_labels: "dict[object, str]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(
                f"component {self.name!r}: layer must be one of {LAYERS}, "
                f"got {self.layer!r}"
            )
        if "." not in self.target:
            raise ValueError(
                f"component {self.name!r}: target must be dotted "
                f"(namespace.field), got {self.target!r}"
            )
        if self.baseline in self.flips:
            raise ValueError(
                f"component {self.name!r}: baseline {self.baseline!r} "
                "must not appear in flips"
            )
        if self.engine and not self.flips:
            raise ValueError(
                f"component {self.name!r}: an engine component needs at "
                "least one flip"
            )

    @property
    def namespace(self) -> str:
        return self.target.split(".", 1)[0]

    @property
    def field(self) -> str:
        return self.target.split(".", 1)[1]

    @property
    def simulated_invariant(self) -> bool:
        """Infrastructure flips must not move any simulated metric."""
        return self.layer == "infrastructure"

    @property
    def values(self) -> "tuple[object, ...]":
        """Full ordered value list (baseline included)."""
        if self.sweep is not None:
            return self.sweep
        return (self.baseline,) + self.flips

    def label(self, value: object) -> str:
        """Render one flipped value for reports."""
        if value in self.flip_labels:
            return self.flip_labels[value]
        if isinstance(value, bool):
            return "on" if value else "off"
        return str(value)


#: Every registered knob, in report order. The engine components cover
#: the knob surface named by the ROADMAP's self-driving-ablation item;
#: the evaluation-only components carry the design-choice sweeps of
#: :mod:`repro.evaluation.ablations` so no flip list is written twice.
MANIFEST: "tuple[Component, ...]" = (
    # -- engine components: runtime & infrastructure knobs ---------------
    Component(
        name="combiner",
        description="mapper-side pre-aggregation before the shuffle",
        layer="runtime",
        target="gmeans.use_combiner",
        baseline=True,
        flips=(False,),
        scenario_key="combiner",
    ),
    Component(
        name="test_strategy",
        description="hybrid mapper/reducer normality testing (auto) vs "
        "always reducer-side TestClusters",
        layer="algorithm",
        target="gmeans.strategy",
        baseline="auto",
        flips=("reducer",),
        sweep=("mapper", "reducer", "auto"),
        flip_labels={"reducer": "always-TestClusters"},
    ),
    Component(
        name="locality",
        description="schedule map tasks onto nodes holding their split",
        layer="runtime",
        target="runtime.locality",
        baseline=False,
        flips=(True,),
    ),
    Component(
        name="speculative_execution",
        description="race slow tasks against speculative clones",
        layer="runtime",
        target="faults.speculative_execution",
        baseline=False,
        flips=(True,),
    ),
    Component(
        name="checkpointing",
        description="per-iteration checkpoint writes (cadence: off vs "
        "every iteration)",
        layer="runtime",
        target="gmeans.checkpoint_dir",
        baseline="",
        flips=("checkpoints",),
        flip_labels={"checkpoints": "every-iteration", "": "off"},
    ),
    Component(
        name="split_factor",
        description="DFS split granularity relative to the workload's "
        "target split count",
        layer="runtime",
        target="workload.split_factor",
        baseline=1.0,
        flips=(0.5, 2.0),
        scenario_key="split_factor",
    ),
    Component(
        name="executor",
        description="task-execution backend (wall-clock only)",
        layer="infrastructure",
        target="config.executor",
        baseline="serial",
        flips=("threads", "processes"),
    ),
    Component(
        name="dispatch",
        description="wave vs per-task dispatch to the executor "
        "(wall-clock only)",
        layer="infrastructure",
        target="config.dispatch",
        baseline="wave",
        flips=("task",),
    ),
    Component(
        name="data_plane",
        description="pickled copies vs zero-copy shared memory "
        "(wall-clock only)",
        layer="infrastructure",
        target="config.data_plane",
        baseline="pickled",
        flips=("shared",),
    ),
    # -- evaluation-only components: design-choice sweeps ----------------
    Component(
        name="kmeans_iterations",
        description="k-means refinement passes per G-means round "
        "(paper: 2)",
        layer="algorithm",
        target="gmeans.kmeans_iterations",
        baseline=2,
        flips=(1, 3, 4),
        sweep=(1, 2, 3, 4),
        engine=False,
    ),
    Component(
        name="vote_rule",
        description="how mapper votes combine into a split verdict",
        layer="algorithm",
        target="gmeans.vote_rule",
        baseline="weighted_majority",
        flips=("any_reject", "all_reject"),
        engine=False,
    ),
    Component(
        name="anchor",
        description="test membership anchor: paper-literal previous "
        "centers vs children centroid",
        layer="algorithm",
        target="gmeans.anchor",
        baseline="centroid",
        flips=("previous",),
        sweep=("previous", "centroid"),
        engine=False,
    ),
    Component(
        name="partitioner",
        description="hash vs weight-balanced reduce partitioning",
        layer="runtime",
        target="gmeans.balanced_partitioning",
        baseline="hash",
        flips=("balanced",),
        engine=False,
    ),
    Component(
        name="init_method",
        description="initial-center selection for k-means",
        layer="algorithm",
        target="kmeans.init",
        baseline="random",
        flips=("kmeans++", "kmeans||"),
        engine=False,
    ),
    Component(
        name="cache_input",
        description="Spark-style in-memory input between chained jobs",
        layer="runtime",
        target="driver.cache_input",
        baseline=False,
        flips=(True,),
        engine=False,
    ),
    Component(
        name="normality_test",
        description="statistical test powering the split decision",
        layer="algorithm",
        target="gmeans.normality_test",
        baseline="anderson",
        flips=("jarque_bera", "lilliefors"),
        engine=False,
    ),
)

_BY_NAME = {comp.name: comp for comp in MANIFEST}
if len(_BY_NAME) != len(MANIFEST):  # pragma: no cover - import-time guard
    raise ValueError("duplicate component names in MANIFEST")


def component(name: str) -> Component:
    """Look up one component by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ComponentError(
            f"unknown component {name!r}; known: {known}"
        ) from None


def component_values(name: str) -> "tuple[object, ...]":
    """The full ordered value list of one component (baseline included).

    This is what the evaluation ablations iterate, so their tables and
    the engine's flips can never drift apart.
    """
    return component(name).values


def engine_components() -> "tuple[Component, ...]":
    """The components ``repro ablate`` runs, in manifest order."""
    return tuple(comp for comp in MANIFEST if comp.engine)


def engine_variants(
    names: "list[str] | None" = None,
) -> "list[tuple[Component, object]]":
    """Every single-flip (component, value) pair the engine runs.

    ``names`` restricts to a subset of engine components (unknown or
    non-engine names raise :class:`ComponentError`).
    """
    if names is None:
        selected = engine_components()
    else:
        selected = []
        for name in names:
            comp = component(name)
            if not comp.engine:
                raise ComponentError(
                    f"component {name!r} is evaluation-only, not runnable "
                    "by the ablation engine"
                )
            selected.append(comp)
    return [(comp, value) for comp in selected for value in comp.flips]
