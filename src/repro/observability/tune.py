"""The autotuner behind ``repro tune``: search by prediction, pay for
one baseline plus top-N validations.

``repro ablate`` measures one flip at a time; this module searches the
*joint* config space without re-running everything. It records one
baseline journal, then ranks every candidate configuration with the
calibrated what-if re-scheduler
(:func:`~repro.observability.whatif.whatif_replay`) seeded from that
single journal — a prediction costs microseconds, a real run costs a
full fit. Only the top-N predicted winners are re-run for real, each
prediction is scored against its re-run exactly like
``benchmarks/bench_whatif_accuracy.py`` (relative makespan error, 0.02
budget), and the winning configuration is emitted as a loadable JSON
(``reports/best-config.json``) plus a journalled ``tune_decision``
event trail an operator can replay.

The workload pins the job chain the same way the accuracy bench does
(``strategy="mapper"``, explicit ``num_reduce_tasks``) so the G-means
split trajectory is invariant across node counts and the prediction
target is well-defined.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import asdict, dataclass, field, replace

from repro.observability.ablate import WorkloadSpec, run_workload
from repro.observability.journal import RUN, FileJournalSink, Journal
from repro.observability.replay import RunReplay, replay_journal
from repro.observability.whatif import Scenario, whatif_replay

#: ``tune.json`` / ``best-config.json`` schema version.
TUNE_SCHEMA_VERSION = 1

#: Default predicted-vs-actual budget: the same bound
#: ``bench_whatif_accuracy`` holds its median error to.
DEFAULT_ERROR_BUDGET = 0.02


class TuneError(ValueError):
    """The tuner cannot run, or a tune report fails verification."""


def default_tune_spec(
    n_points: int = 6000, seed: int = 11, nodes: int = 4
) -> WorkloadSpec:
    """The tuner's baseline workload: fault-free, chain-invariant.

    Faults are off (the predictor models scheduling, not chaos), the
    strategy is pinned to ``mapper`` and the reduce-task count is
    explicit so the job chain — and therefore the prediction target —
    is identical across node counts, and the network is slow enough
    that the combiner and node axes are real trade-offs.
    """
    return WorkloadSpec(
        name="tune",
        n_points=n_points,
        data_seed=seed,
        seed=seed,
        nodes=nodes,
        strategy="mapper",
        straggler_probability=0.0,
        task_failure_probability=0.0,
        max_job_retries=0,
        network_mbps_per_node=0.25,
    )


@dataclass(frozen=True)
class Candidate:
    """One point of the joint config space."""

    nodes: int
    combiner: bool
    split_factor: float

    def describe(self) -> str:
        return (
            f"nodes={self.nodes}, "
            f"combiner={'on' if self.combiner else 'off'}, "
            f"split_factor={self.split_factor}"
        )

    def slug(self) -> str:
        return (
            f"n{self.nodes}-c{'on' if self.combiner else 'off'}"
            f"-s{self.split_factor}"
        )

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Candidate":
        return cls(
            nodes=int(data["nodes"]),
            combiner=bool(data["combiner"]),
            split_factor=float(data["split_factor"]),
        )

    def scenario(self, spec: WorkloadSpec) -> Scenario:
        """The what-if scenario turning the baseline into this config."""
        return Scenario(
            nodes=None if self.nodes == spec.nodes else self.nodes,
            combiner=None if self.combiner else False,
            split_factor=(
                None if self.split_factor == 1.0 else self.split_factor
            ),
        )

    def is_baseline(self, spec: WorkloadSpec) -> bool:
        return self.scenario(spec).empty


@dataclass(frozen=True)
class TuneSpace:
    """The candidate grid: the cartesian product of these axes."""

    nodes: "tuple[int, ...]" = (2, 4, 8)
    combiner: "tuple[bool, ...]" = (True, False)
    split_factor: "tuple[float, ...]" = (0.5, 1.0, 2.0)

    def candidates(self) -> "list[Candidate]":
        return [
            Candidate(nodes=n, combiner=c, split_factor=s)
            for n, c, s in itertools.product(
                self.nodes, self.combiner, self.split_factor
            )
        ]

    def as_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "combiner": list(self.combiner),
            "split_factor": list(self.split_factor),
        }


@dataclass(frozen=True)
class PredictedCandidate:
    """One candidate with its what-if predicted makespan."""

    candidate: Candidate
    predicted_seconds: float
    predicted_delta_fraction: "float | None"

    def as_dict(self) -> dict:
        return {
            "candidate": self.candidate.as_dict(),
            "predicted_seconds": self.predicted_seconds,
            "predicted_delta_fraction": self.predicted_delta_fraction,
        }


@dataclass(frozen=True)
class ValidatedCandidate:
    """A top-N candidate after its real re-run."""

    candidate: Candidate
    predicted_seconds: float
    actual_seconds: float
    rel_error: float
    journal: str

    def as_dict(self) -> dict:
        return {
            "candidate": self.candidate.as_dict(),
            "predicted_seconds": self.predicted_seconds,
            "actual_seconds": self.actual_seconds,
            "rel_error": self.rel_error,
            "journal": self.journal,
        }


@dataclass
class TuneReport:
    """Outcome of one search: ranked predictions, validations, winner."""

    spec: WorkloadSpec
    space: TuneSpace
    budget: float
    baseline_journal: str
    baseline_seconds: float
    decisions_journal: "str | None"
    predictions: "list[PredictedCandidate]" = field(default_factory=list)
    validated: "list[ValidatedCandidate]" = field(default_factory=list)
    winner: "ValidatedCandidate | None" = None

    @property
    def ok(self) -> bool:
        """Did the top prediction validate within the error budget?"""
        return self.winner is not None and self.winner.rel_error <= self.budget

    @property
    def improvement_fraction(self) -> "float | None":
        if self.winner is None or self.baseline_seconds <= 0:
            return None
        return (
            self.baseline_seconds - self.winner.actual_seconds
        ) / self.baseline_seconds

    def as_dict(self) -> dict:
        return {
            "schema_version": TUNE_SCHEMA_VERSION,
            "spec": self.spec.as_dict(),
            "space": self.space.as_dict(),
            "budget": self.budget,
            "baseline": {
                "journal": self.baseline_journal,
                "recorded_seconds": self.baseline_seconds,
            },
            "decisions_journal": self.decisions_journal,
            "predictions": [p.as_dict() for p in self.predictions],
            "validated": [v.as_dict() for v in self.validated],
            "winner": self.winner.as_dict() if self.winner else None,
            "improvement_fraction": self.improvement_fraction,
            "ok": self.ok,
        }


def predict_candidates(
    replay: RunReplay, spec: WorkloadSpec, candidates: "list[Candidate]"
) -> "list[PredictedCandidate]":
    """Rank ``candidates`` by what-if predicted makespan (ascending).

    Ties keep grid order, so the ranking is deterministic.
    """
    recorded = replay.total_simulated_seconds()
    predictions = []
    for cand in candidates:
        report = whatif_replay(
            replay,
            cand.scenario(spec),
            task_startup_seconds=spec.task_startup_seconds,
        )
        predictions.append(
            PredictedCandidate(
                candidate=cand,
                predicted_seconds=report.predicted_total,
                predicted_delta_fraction=(
                    (report.predicted_total - recorded) / recorded
                    if recorded > 0
                    else None
                ),
            )
        )
    return [
        p
        for _, p in sorted(
            enumerate(predictions),
            key=lambda pair: (pair[1].predicted_seconds, pair[0]),
        )
    ]


def run_tune(
    spec: "WorkloadSpec | None" = None,
    space: "TuneSpace | None" = None,
    journal_dir: "str | None" = None,
    top_n: int = 3,
    budget: float = DEFAULT_ERROR_BUDGET,
) -> TuneReport:
    """Record a baseline, rank the space by prediction, validate top-N.

    A top candidate identical to the baseline config revalidates
    against the baseline journal instead of burning a re-run (its
    prediction is the identity scenario). The winner is the *measured*
    best among the validated; ``report.ok`` gates the top prediction's
    relative error against ``budget``.
    """
    spec = spec or default_tune_spec()
    space = space or TuneSpace()
    if top_n < 1:
        raise TuneError(f"top_n must be >= 1, got {top_n}")
    candidates = space.candidates()
    if not candidates:
        raise TuneError("the tune space is empty")
    top_n = min(top_n, len(candidates))

    def journal_path(stem: str) -> "str | None":
        if journal_dir is None:
            return None
        return os.path.join(journal_dir, f"{stem}.jsonl")

    decisions_path = journal_path("decisions")
    if decisions_path:
        if os.path.exists(decisions_path):
            os.unlink(decisions_path)
        decisions = Journal(FileJournalSink(decisions_path))
    else:
        decisions = Journal()

    baseline_path = journal_path("baseline")
    with decisions.span(
        RUN, "tune", workload=spec.name, candidates=len(candidates)
    ) as trail:
        baseline_replay = run_workload(spec, None, baseline_path)
        baseline_seconds = baseline_replay.total_simulated_seconds()
        decisions.event(
            "tune_decision",
            stage="baseline",
            journal=baseline_path or "(in memory)",
            recorded_seconds=baseline_seconds,
        )
        predictions = predict_candidates(baseline_replay, spec, candidates)
        for rank, pred in enumerate(predictions, start=1):
            decisions.event(
                "tune_decision",
                stage="predicted",
                rank=rank,
                config=pred.candidate.as_dict(),
                predicted_seconds=pred.predicted_seconds,
            )
        validated: "list[ValidatedCandidate]" = []
        for rank, pred in enumerate(predictions[:top_n], start=1):
            cand = pred.candidate
            if cand.is_baseline(spec):
                actual = baseline_seconds
                path = baseline_path or "(in memory)"
            else:
                path = journal_path(f"validate-{rank:02d}-{cand.slug()}")
                overrides: "dict[str, object]" = {}
                if not cand.combiner:
                    overrides["combiner"] = False
                if cand.split_factor != 1.0:
                    overrides["split_factor"] = cand.split_factor
                actual_replay = run_workload(
                    replace(spec, nodes=cand.nodes), overrides, path
                )
                actual = actual_replay.total_simulated_seconds()
                path = path or "(in memory)"
            rel_error = (
                abs(pred.predicted_seconds - actual) / actual
                if actual > 0
                else 0.0
            )
            entry = ValidatedCandidate(
                candidate=cand,
                predicted_seconds=pred.predicted_seconds,
                actual_seconds=actual,
                rel_error=rel_error,
                journal=path,
            )
            validated.append(entry)
            decisions.event(
                "tune_decision",
                stage="validated",
                rank=rank,
                config=cand.as_dict(),
                predicted_seconds=pred.predicted_seconds,
                actual_seconds=actual,
                rel_error=rel_error,
                journal=path,
            )
        winner = min(
            range(len(validated)), key=lambda i: (validated[i].actual_seconds, i)
        )
        winner_entry = validated[winner]
        report = TuneReport(
            spec=spec,
            space=space,
            budget=budget,
            baseline_journal=baseline_path or "(in memory)",
            baseline_seconds=baseline_seconds,
            decisions_journal=decisions_path,
            predictions=predictions,
            validated=validated,
            winner=winner_entry,
        )
        decisions.event(
            "tune_decision",
            stage="winner",
            config=winner_entry.candidate.as_dict(),
            predicted_seconds=winner_entry.predicted_seconds,
            actual_seconds=winner_entry.actual_seconds,
            rel_error=winner_entry.rel_error,
            improvement_fraction=report.improvement_fraction,
            within_budget=report.ok,
        )
        trail.set(
            status="ok",
            validated=len(validated),
            winner=winner_entry.candidate.describe(),
        )
    decisions.close()
    return report


# -- persistence ---------------------------------------------------------


def best_config_payload(report: TuneReport) -> dict:
    """The loadable winning-config JSON (``reports/best-config.json``)."""
    if report.winner is None:
        raise TuneError("no validated winner to emit")
    cand = report.winner.candidate
    spec = report.spec
    return {
        "schema_version": TUNE_SCHEMA_VERSION,
        "generated_by": "repro tune",
        "workload": spec.as_dict(),
        "config": {
            "nodes": cand.nodes,
            "use_combiner": cand.combiner,
            "split_factor": cand.split_factor,
            "target_splits": max(
                1, int(round(spec.target_splits * cand.split_factor))
            ),
            "num_reduce_tasks": spec.num_reduce_tasks,
            "strategy": spec.strategy,
        },
        "baseline_seconds": report.baseline_seconds,
        "predicted_seconds": report.winner.predicted_seconds,
        "validated_seconds": report.winner.actual_seconds,
        "rel_error": report.winner.rel_error,
        "improvement_fraction": report.improvement_fraction,
        "error_budget": report.budget,
        "within_budget": report.ok,
    }


def load_tuned_config(path: str) -> dict:
    """Read and validate a ``best-config.json``."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise TuneError(f"{path}: expected a JSON object")
    if data.get("schema_version") != TUNE_SCHEMA_VERSION:
        raise TuneError(
            f"{path}: schema_version {data.get('schema_version')!r}, "
            f"this loader reads {TUNE_SCHEMA_VERSION}"
        )
    for key in ("workload", "config", "validated_seconds", "rel_error"):
        if key not in data:
            raise TuneError(f"{path}: missing {key!r}")
    if not isinstance(data["config"], dict):
        raise TuneError(f"{path}: 'config' must be an object")
    return data


def render_tune(report: TuneReport) -> str:
    """Markdown tune report (deterministic, simulated-only)."""
    spec = report.spec
    lines = [
        "# Autotune report",
        "",
        f"Workload `{spec.name}`: {spec.n_points} points, "
        f"k_real={spec.k_real}, {spec.dimensions}d, seed {spec.seed}, "
        f"baseline {spec.nodes} nodes — recorded "
        f"{report.baseline_seconds:.3f} simulated s "
        f"(`{report.baseline_journal}`).",
        "",
        f"{len(report.predictions)} candidate configs ranked from the "
        "one baseline journal by the calibrated what-if re-scheduler; "
        f"top {len(report.validated)} validated by real re-runs "
        f"(error budget {report.budget}).",
        "",
        "## Predicted ranking",
        "",
        "| rank | candidate | predicted (s) | vs baseline |",
        "|---:|---|---:|---:|",
    ]
    for rank, pred in enumerate(report.predictions, start=1):
        frac = (
            f"{pred.predicted_delta_fraction * 100:+.1f}%"
            if pred.predicted_delta_fraction is not None
            else "-"
        )
        lines.append(
            f"| {rank} | {pred.candidate.describe()} "
            f"| {pred.predicted_seconds:.3f} | {frac} |"
        )
    lines += [
        "",
        "## Validation (predicted vs re-run)",
        "",
        "| rank | candidate | predicted (s) | actual (s) | rel error |",
        "|---:|---|---:|---:|---:|",
    ]
    for rank, v in enumerate(report.validated, start=1):
        lines.append(
            f"| {rank} | {v.candidate.describe()} "
            f"| {v.predicted_seconds:.3f} | {v.actual_seconds:.3f} "
            f"| {v.rel_error:.4f} |"
        )
    winner = report.winner
    lines += ["", "## Decision", ""]
    if winner is not None:
        improvement = report.improvement_fraction
        lines.append(
            f"- winner: **{winner.candidate.describe()}** — "
            f"{winner.actual_seconds:.3f} s validated "
            f"({improvement * 100:+.1f}% vs baseline)"
            if improvement is not None
            else f"- winner: **{winner.candidate.describe()}**"
        )
        lines.append(
            f"- prediction error: {winner.rel_error:.4f} "
            f"({'within' if report.ok else '**EXCEEDS**'} the "
            f"{report.budget} budget)"
        )
        lines.append(
            "- winning config written to `best-config.json`; decision "
            f"trail journalled at `{report.decisions_journal}`"
            if report.decisions_journal
            else "- winning config written to `best-config.json`"
        )
    else:  # pragma: no cover - run_tune always validates >= 1
        lines.append("- no candidate validated")
    lines.append("")
    return "\n".join(lines)


def write_tune(
    report: TuneReport,
    out_dir: str = "reports",
    basename: str = "tune",
) -> "dict[str, str]":
    """Write ``tune.md``, ``tune.json`` and ``best-config.json``."""
    os.makedirs(out_dir, exist_ok=True)
    written: "dict[str, str]" = {}
    json_path = os.path.join(out_dir, f"{basename}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written["json"] = json_path
    md_path = os.path.join(out_dir, f"{basename}.md")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(render_tune(report))
    written["markdown"] = md_path
    best_path = os.path.join(out_dir, "best-config.json")
    with open(best_path, "w", encoding="utf-8") as handle:
        json.dump(best_config_payload(report), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written["best_config"] = best_path
    return written


def load_tune(path: str) -> dict:
    """Read a ``tune.json``, validating the shape."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise TuneError(f"{path}: expected a JSON object")
    if data.get("schema_version") != TUNE_SCHEMA_VERSION:
        raise TuneError(
            f"{path}: schema_version {data.get('schema_version')!r}, "
            f"this loader reads {TUNE_SCHEMA_VERSION}"
        )
    for key in ("spec", "space", "baseline", "predictions", "validated"):
        if key not in data:
            raise TuneError(f"{path}: missing {key!r}")
    return data


def verify_tune(
    report: dict,
    base_dir: str = ".",
    best_config: "dict | None" = None,
) -> "list[str]":
    """Prove a persisted tune report still reconciles with its journals.

    Recomputes every prediction from the committed baseline journal,
    every validated actual from its committed re-run journal, and every
    relative error — exact comparisons, like
    :func:`~repro.observability.ablate.verify_importance` — then checks
    the winner respects the error budget and (when given) that
    ``best-config.json`` matches the winner. Returns problems (empty =
    fully reconciled).
    """
    problems: "list[str]" = []
    spec = WorkloadSpec.from_dict(report["spec"])
    base_path = os.path.join(base_dir, report["baseline"]["journal"])
    if not os.path.exists(base_path):
        return [f"baseline journal missing: {base_path}"]
    baseline_replay = replay_journal(base_path)
    baseline_seconds = baseline_replay.total_simulated_seconds()
    if report["baseline"]["recorded_seconds"] != baseline_seconds:
        problems.append(
            "baseline: recorded_seconds does not reconcile with its "
            f"journal (report has {report['baseline']['recorded_seconds']!r}, "
            f"replay accounting says {baseline_seconds!r})"
        )
    for rank, entry in enumerate(report["predictions"], start=1):
        cand = Candidate.from_dict(entry["candidate"])
        predicted = whatif_replay(
            baseline_replay,
            cand.scenario(spec),
            task_startup_seconds=spec.task_startup_seconds,
        ).predicted_total
        if entry["predicted_seconds"] != predicted:
            problems.append(
                f"prediction #{rank} ({cand.describe()}): predicted "
                f"seconds do not reconcile (report has "
                f"{entry['predicted_seconds']!r}, recomputed {predicted!r})"
            )
    budget = float(report.get("budget", DEFAULT_ERROR_BUDGET))
    for rank, entry in enumerate(report["validated"], start=1):
        cand = Candidate.from_dict(entry["candidate"])
        path = os.path.join(base_dir, entry["journal"])
        if not os.path.exists(path):
            problems.append(
                f"validated #{rank} ({cand.describe()}): journal missing: "
                f"{path}"
            )
            continue
        actual = replay_journal(path).total_simulated_seconds()
        if entry["actual_seconds"] != actual:
            problems.append(
                f"validated #{rank} ({cand.describe()}): actual seconds "
                f"do not reconcile (report has {entry['actual_seconds']!r}, "
                f"replay accounting says {actual!r})"
            )
        rel_error = (
            abs(entry["predicted_seconds"] - actual) / actual
            if actual > 0
            else 0.0
        )
        if entry["rel_error"] != rel_error:
            problems.append(
                f"validated #{rank} ({cand.describe()}): rel_error does "
                f"not reconcile (report has {entry['rel_error']!r}, "
                f"recomputed {rel_error!r})"
            )
    winner = report.get("winner")
    if winner is None:
        problems.append("no winner recorded")
    else:
        if winner["rel_error"] > budget:
            problems.append(
                f"winner rel_error {winner['rel_error']} exceeds the "
                f"{budget} budget"
            )
        if best_config is not None:
            for report_key, config_key in (
                ("predicted_seconds", "predicted_seconds"),
                ("actual_seconds", "validated_seconds"),
                ("rel_error", "rel_error"),
            ):
                if best_config.get(config_key) != winner[report_key]:
                    problems.append(
                        f"best-config.json {config_key} does not match the "
                        f"tune winner's {report_key}"
                    )
            win_cand = Candidate.from_dict(winner["candidate"])
            config = best_config.get("config", {})
            if (
                config.get("nodes") != win_cand.nodes
                or config.get("use_combiner") != win_cand.combiner
                or config.get("split_factor") != win_cand.split_factor
            ):
                problems.append(
                    "best-config.json config does not match the tune winner"
                )
    return problems
