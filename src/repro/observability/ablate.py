"""The self-driving ablation engine behind ``repro ablate``.

Takes one :class:`WorkloadSpec` and the declarative component manifest
(:mod:`repro.observability.components`), runs the baseline plus every
single-flip variant through the deterministic harness with a file
journal each, reduces every run with the same replay accounting the
``repro diff`` gate uses (:func:`~repro.observability.diffing
.summarize_replay`, :func:`~repro.observability.critical
.critical_path`), and scores per-component importance as signed deltas
against the baseline: makespan, shuffle bytes, wasted compute, peak
reducer heap, and the critical-path blame shift.

Every number in the report is *replay accounting over the journals* —
nothing is re-measured — so :func:`verify_importance` can later prove
a committed report still reconciles exactly with its committed
journals, and the whole grid is byte-identical across executor
backends (simulated metrics never depend on how tasks are executed).
Infrastructure flips are asserted to move no simulated metric at all:
the determinism contract becomes a measured row.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace

from repro.observability.components import (
    Component,
    component,
    engine_variants,
)
from repro.observability.critical import BLAME_CATEGORIES, critical_path
from repro.observability.diffing import summarize_replay
from repro.observability.journal import (
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
)
from repro.observability.replay import (
    RunReplay,
    left_fold_seconds,
    replay_journal,
    replay_records,
)

#: ``ablation.json`` schema version, bumped on incompatible changes.
ABLATION_SCHEMA_VERSION = 1


class AblationError(ValueError):
    """The engine cannot run or a report fails verification."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One seeded, fully-pinned workload the engine ablates.

    Everything an ablation run depends on is a field here — executor
    env vars are deliberately *not* consulted for anything that could
    move a simulated metric, so the same spec always produces the same
    report bytes. Stragglers and task failures are injected (seeded)
    so the speculative-execution and retry machinery have something to
    show; the combiner axis needs ``vectorized=False`` plus a slow
    network, exactly like ``benchmarks/bench_whatif_accuracy.py``.
    """

    name: str = "ablate"
    n_points: int = 3000
    k_real: int = 4
    dimensions: int = 4
    data_seed: int = 11
    seed: int = 11
    nodes: int = 4
    target_splits: int = 16
    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 8
    task_heap_mb: int = 1024
    strategy: str = "auto"
    kmeans_iterations: int = 2
    num_reduce_tasks: int = 16
    vectorized: bool = False
    straggler_probability: float = 0.12
    straggler_slowdown: float = 4.0
    task_failure_probability: float = 0.03
    max_job_retries: int = 2
    network_mbps_per_node: float = 0.5
    task_startup_seconds: float = 0.05

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise AblationError(
                f"unknown workload fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


def _resolve_overrides(
    overrides: "dict[str, object]",
) -> "dict[str, dict[str, object]]":
    """Component-name -> value, bucketed by target namespace."""
    buckets: "dict[str, dict[str, object]]" = {
        "gmeans": {},
        "runtime": {},
        "faults": {},
        "config": {},
        "workload": {},
    }
    for name, value in overrides.items():
        comp = component(name)
        if comp.namespace not in buckets:
            raise AblationError(
                f"component {name!r} targets {comp.target!r}, which the "
                "ablation harness cannot apply"
            )
        buckets[comp.namespace][comp.field] = value
    return buckets


def run_workload(
    spec: WorkloadSpec,
    overrides: "dict[str, object] | None" = None,
    journal_path: "str | None" = None,
) -> RunReplay:
    """Run one (possibly flipped) G-means fit; return its replay.

    ``overrides`` maps component names to values; everything else is
    pinned by the spec. With ``journal_path`` the journal is written
    to disk (any existing file is replaced); without it the run is
    journalled in memory only.
    """
    # Heavyweight imports stay local: repro.observability must be
    # importable without dragging the whole algorithm stack in.
    from repro.common.rng import ensure_rng
    from repro.core.config import MRGMeansConfig
    from repro.core.gmeans_mr import MRGMeans
    from repro.data.generator import generate_gaussian_mixture
    from repro.data.loader import write_points
    from repro.evaluation.harness import BENCH_COST, target_split_bytes
    from repro.mapreduce.cluster import ClusterConfig
    from repro.mapreduce.executors import RuntimeConfig
    from repro.mapreduce.faults import FaultModel
    from repro.mapreduce.hdfs import InMemoryDFS
    from repro.mapreduce.runtime import MapReduceRuntime

    buckets = _resolve_overrides(overrides or {})
    gmeans_over = buckets["gmeans"]
    runtime_over = buckets["runtime"]
    faults_over = buckets["faults"]
    config_over = buckets["config"]
    workload_over = buckets["workload"]

    split_factor = float(workload_over.get("split_factor", 1.0))
    target_splits = max(1, int(round(spec.target_splits * split_factor)))
    mixture = generate_gaussian_mixture(
        n_points=spec.n_points,
        n_clusters=spec.k_real,
        dimensions=spec.dimensions,
        rng=spec.data_seed,
        center_low=0.0,
        center_high=150.0,
    )
    split_bytes = target_split_bytes(
        spec.n_points, spec.dimensions, target_splits
    )
    # The executor/data-plane/dispatch axes only matter to wall clock;
    # the baseline follows the environment (so the whole grid can be
    # re-run per backend to prove byte-identity) and a flip pins the
    # one knob it names.
    env_config = RuntimeConfig.from_env()
    executor = str(config_over.get("executor", env_config.executor))
    data_plane = config_over.get("data_plane", env_config.data_plane)
    dfs = InMemoryDFS(split_size_bytes=split_bytes, data_plane=data_plane)
    dataset = write_points(dfs, spec.name, mixture.points)
    cluster = ClusterConfig(
        nodes=spec.nodes,
        map_slots_per_node=spec.map_slots_per_node,
        reduce_slots_per_node=spec.reduce_slots_per_node,
        task_heap_mb=spec.task_heap_mb,
    )
    faults = FaultModel(
        task_failure_probability=spec.task_failure_probability,
        straggler_probability=spec.straggler_probability,
        straggler_slowdown=spec.straggler_slowdown,
        speculative_execution=bool(
            faults_over.get("speculative_execution", False)
        ),
    )
    num_workers = env_config.num_workers
    if executor != "serial" and num_workers is None:
        num_workers = 2
    config = RuntimeConfig(
        executor=executor,
        num_workers=num_workers,
        max_job_retries=spec.max_job_retries,
        data_plane=data_plane,
        dispatch=str(config_over.get("dispatch", env_config.dispatch)),
    )
    cost = replace(
        BENCH_COST,
        network_mbps_per_node=spec.network_mbps_per_node,
        task_startup_seconds=spec.task_startup_seconds,
    )
    if journal_path:
        if os.path.exists(journal_path):
            os.unlink(journal_path)
        sink = FileJournalSink(journal_path)
    else:
        sink = InMemoryJournalSink()
    journal = Journal(sink)
    try:
        runtime = MapReduceRuntime(
            dfs,
            cluster=cluster,
            cost=cost,
            rng=ensure_rng(spec.seed),
            faults=faults,
            locality=bool(runtime_over.get("locality", False)),
            config=config,
            journal=journal,
        )
        cfg = MRGMeansConfig(
            seed=spec.seed,
            strategy=str(gmeans_over.get("strategy", spec.strategy)),
            use_combiner=bool(gmeans_over.get("use_combiner", True)),
            kmeans_iterations=spec.kmeans_iterations,
            num_reduce_tasks=spec.num_reduce_tasks,
            vectorized=spec.vectorized,
            checkpoint_dir=str(gmeans_over.get("checkpoint_dir", "")),
        )
        MRGMeans(runtime, cfg).fit(dataset)
    finally:
        journal.close()
    if journal_path:
        return replay_journal(journal_path)
    return replay_records(sink.records)


# -- replay accounting ---------------------------------------------------

#: Counter addresses read by :func:`metrics_from_replay` (kept as
#: strings so scripted test journals need no imports).
_FRAMEWORK = "framework"
_SHUFFLE_BYTES = "SHUFFLE_BYTES"
_WASTED_COMPUTE_SECONDS = "WASTED_COMPUTE_SECONDS"


@dataclass(frozen=True)
class VariantMetrics:
    """Everything importance scoring reads from one journal.

    Pure replay accounting: makespan is the journal's reconciled
    simulated total; wasted compute is the simulated seconds of failed
    job attempts (discarded live, recoverable only from the journal)
    plus the runtime's ``WASTED_COMPUTE_SECONDS`` counter (failed task
    attempts and losing speculative clones inside successful jobs —
    the two pools are disjoint by construction).
    """

    makespan: float
    shuffle_bytes: int
    wasted_seconds: float
    peak_heap_bytes: int
    k_found: "int | None"
    k_trajectory: "list[list[int | None]]"
    jobs: int
    job_attempts: int
    blame: "dict[str, float]"
    fault_events: "dict[str, int]"
    reconciled: bool

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VariantMetrics":
        return cls(**data)


def metrics_from_replay(replay: RunReplay) -> VariantMetrics:
    """Reduce one replayed journal to the engine's metric vector."""
    summary = summarize_replay(replay)
    cpath = critical_path(replay)
    failed_attempt_seconds = left_fold_seconds(
        float(attempt.get("simulated_seconds") or 0.0)
        for attempt in replay.jobs()
        if attempt.get("status") != "ok"
    )
    counter_wasted = float(
        summary.counters.get(_FRAMEWORK, {}).get(_WASTED_COMPUTE_SECONDS, 0.0)
    )
    peak_heap = 0
    for phase in replay.phases():
        heap = phase.get("max_key_heap_bytes")
        if heap is not None:
            peak_heap = max(peak_heap, int(heap))
    return VariantMetrics(
        makespan=summary.simulated_seconds,
        shuffle_bytes=int(
            summary.counters.get(_FRAMEWORK, {}).get(_SHUFFLE_BYTES, 0)
        ),
        wasted_seconds=failed_attempt_seconds + counter_wasted,
        peak_heap_bytes=peak_heap,
        k_found=summary.k_found,
        k_trajectory=summary.k_trajectory,
        jobs=summary.jobs,
        job_attempts=summary.job_attempts,
        blame={name: cpath.blame.get(name, 0.0) for name in BLAME_CATEGORIES},
        fault_events=dict(summary.fault_events),
        reconciled=cpath.reconciled,
    )


@dataclass(frozen=True)
class ComponentImportance:
    """One flip's signed deltas against the baseline run."""

    component: str
    value: object
    label: str
    layer: str
    simulated_invariant: bool
    journal: str
    metrics: VariantMetrics
    delta_makespan: float
    delta_fraction: "float | None"
    delta_shuffle_bytes: int
    delta_wasted_seconds: float
    delta_heap_bytes: int
    blame_shift: "dict[str, float]"
    events_delta: "dict[str, int]"
    k_drift: bool
    invariant_ok: bool

    def as_dict(self) -> dict:
        data = asdict(self)
        data["metrics"] = self.metrics.as_dict()
        return data


def score_variant(
    comp: Component,
    value: object,
    journal: str,
    baseline: VariantMetrics,
    metrics: VariantMetrics,
) -> ComponentImportance:
    """Signed importance deltas of one flip vs the baseline metrics.

    Deltas are plain float subtraction of replay-accounted values, so
    recomputing them from the journals reproduces them bit-for-bit.
    """
    delta_makespan = metrics.makespan - baseline.makespan
    delta_fraction = (
        delta_makespan / baseline.makespan if baseline.makespan > 0 else None
    )
    k_drift = (
        metrics.k_trajectory != baseline.k_trajectory
        or metrics.k_found != baseline.k_found
    )
    events_delta = {
        name: metrics.fault_events.get(name, 0)
        - baseline.fault_events.get(name, 0)
        for name in sorted(
            set(metrics.fault_events) | set(baseline.fault_events)
        )
        if metrics.fault_events.get(name, 0)
        != baseline.fault_events.get(name, 0)
    }
    simulated_same = (
        metrics.makespan == baseline.makespan
        and metrics.shuffle_bytes == baseline.shuffle_bytes
        and metrics.wasted_seconds == baseline.wasted_seconds
        and metrics.peak_heap_bytes == baseline.peak_heap_bytes
        and not events_delta
        and not k_drift
    )
    return ComponentImportance(
        component=comp.name,
        value=value,
        label=comp.label(value),
        layer=comp.layer,
        simulated_invariant=comp.simulated_invariant,
        journal=journal,
        metrics=metrics,
        delta_makespan=delta_makespan,
        delta_fraction=delta_fraction,
        delta_shuffle_bytes=metrics.shuffle_bytes - baseline.shuffle_bytes,
        delta_wasted_seconds=metrics.wasted_seconds - baseline.wasted_seconds,
        delta_heap_bytes=metrics.peak_heap_bytes - baseline.peak_heap_bytes,
        blame_shift={
            name: metrics.blame.get(name, 0.0) - baseline.blame.get(name, 0.0)
            for name in BLAME_CATEGORIES
        },
        events_delta=events_delta,
        k_drift=k_drift,
        invariant_ok=(not comp.simulated_invariant) or simulated_same,
    )


@dataclass
class ImportanceReport:
    """The full grid: baseline plus one entry per flip."""

    spec: WorkloadSpec
    baseline_journal: str
    baseline: VariantMetrics
    variants: "list[ComponentImportance]" = field(default_factory=list)

    def ranked(self) -> "list[ComponentImportance]":
        """Flips by descending |makespan delta| (manifest order tie)."""
        return sorted(
            self.variants, key=lambda v: -abs(v.delta_makespan)
        )

    @property
    def ok(self) -> bool:
        """Every run reconciled, every infrastructure flip invariant."""
        return (
            self.baseline.reconciled
            and all(v.metrics.reconciled for v in self.variants)
            and all(v.invariant_ok for v in self.variants)
        )

    def as_dict(self) -> dict:
        return {
            "schema_version": ABLATION_SCHEMA_VERSION,
            "spec": self.spec.as_dict(),
            "baseline": {
                "journal": self.baseline_journal,
                "metrics": self.baseline.as_dict(),
            },
            "variants": [v.as_dict() for v in self.variants],
            "ranking": [
                f"{v.component}={v.label}" for v in self.ranked()
            ],
            "ok": self.ok,
        }


def variant_slug(comp: Component, value: object) -> str:
    """Journal filename stem for one flip."""
    raw = str(value).replace(os.sep, "-").replace(" ", "-")
    return f"{comp.name}={raw}"


def run_ablation(
    spec: "WorkloadSpec | None" = None,
    journal_dir: "str | None" = None,
    components: "list[str] | None" = None,
) -> ImportanceReport:
    """Run the baseline and every single-flip variant; score the grid.

    With ``journal_dir`` every run's journal is written there
    (``baseline.jsonl`` plus one ``<component>=<value>.jsonl`` per
    flip) so the report stays verifiable after the fact; without it
    the journals stay in memory and only the report survives.
    """
    spec = spec or WorkloadSpec()
    variants = engine_variants(components)

    def journal_path(stem: str) -> "str | None":
        if journal_dir is None:
            return None
        return os.path.join(journal_dir, f"{stem}.jsonl")

    baseline_path = journal_path("baseline")
    baseline_replay = run_workload(spec, None, baseline_path)
    baseline_metrics = metrics_from_replay(baseline_replay)
    report = ImportanceReport(
        spec=spec,
        baseline_journal=baseline_path or "(in memory)",
        baseline=baseline_metrics,
    )
    for comp, value in variants:
        stem = variant_slug(comp, value)
        path = journal_path(stem)
        replay = run_workload(spec, {comp.name: value}, path)
        report.variants.append(
            score_variant(
                comp,
                value,
                path or "(in memory)",
                baseline_metrics,
                metrics_from_replay(replay),
            )
        )
    return report


# -- rendering and persistence -------------------------------------------


def _fmt_bytes(delta: "int | float") -> str:
    value = float(delta)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:+.1f} {unit}" if unit != "B" else f"{value:+.0f} B"
        value /= 1024
    return f"{value:+.1f} GiB"  # pragma: no cover - loop always returns


def render_importance(report: ImportanceReport) -> str:
    """Markdown importance report (deterministic, simulated-only)."""
    spec = report.spec
    base = report.baseline
    lines = [
        "# Ablation importance report",
        "",
        f"Workload `{spec.name}`: {spec.n_points} points, "
        f"k_real={spec.k_real}, {spec.dimensions}d, seed {spec.seed}, "
        f"{spec.nodes} nodes, {spec.target_splits} target splits, "
        f"stragglers p={spec.straggler_probability}, "
        f"task failures p={spec.task_failure_probability}.",
        "",
        f"Baseline (`{report.baseline_journal}`): "
        f"makespan {base.makespan:.3f} s, "
        f"shuffle {base.shuffle_bytes} bytes, "
        f"wasted {base.wasted_seconds:.3f} s, "
        f"peak reducer heap {base.peak_heap_bytes} bytes, "
        f"k={base.k_found} in {base.jobs} jobs "
        f"({base.job_attempts} attempts).",
        "",
        "Every number is replay accounting over the per-run journals —",
        "regenerate or audit with `repro ablate --check`.",
        "",
        "## Importance ranking (one flip per row)",
        "",
        "| rank | component | flip | Δ makespan (s) | Δ makespan | "
        "Δ shuffle | Δ wasted (s) | Δ peak heap | k | Δ events |",
        "|---:|---|---|---:|---:|---:|---:|---:|---|---|",
    ]
    for rank, v in enumerate(report.ranked(), start=1):
        frac = (
            f"{v.delta_fraction * 100:+.1f}%"
            if v.delta_fraction is not None
            else "-"
        )
        k_cell = (
            f"{v.metrics.k_found} (drift)" if v.k_drift else str(v.metrics.k_found)
        )
        events = ", ".join(
            f"{name} {count:+d}" for name, count in v.events_delta.items()
        )
        lines.append(
            f"| {rank} | {v.component} | {v.label} "
            f"| {v.delta_makespan:+.3f} | {frac} "
            f"| {_fmt_bytes(v.delta_shuffle_bytes)} "
            f"| {v.delta_wasted_seconds:+.3f} "
            f"| {_fmt_bytes(v.delta_heap_bytes)} "
            f"| {k_cell} | {events or '-'} |"
        )
    lines += [
        "",
        "## Critical-path blame shift per flip",
        "",
        "| flip | " + " | ".join(BLAME_CATEGORIES) + " |",
        "|---|" + "---:|" * len(BLAME_CATEGORIES),
    ]
    for v in report.ranked():
        cells = []
        for name in BLAME_CATEGORIES:
            shift = v.blame_shift.get(name, 0.0)
            cells.append(f"{shift:+.2f}s" if shift else "-")
        lines.append(
            f"| {v.component}={v.label} | " + " | ".join(cells) + " |"
        )
    infra = [v for v in report.variants if v.simulated_invariant]
    if infra:
        lines += [
            "",
            "## Infrastructure flips (determinism contract)",
            "",
            "Executor, dispatch and data-plane choices must not move a "
            "simulated metric; the engine asserts it per flip:",
            "",
        ]
        for v in infra:
            verdict = (
                "invariant confirmed"
                if v.invariant_ok
                else "**INVARIANT VIOLATED**"
            )
            lines.append(
                f"- `{v.component}={v.label}`: Δ makespan "
                f"{v.delta_makespan:+.3f} s — {verdict}"
            )
    lines.append("")
    return "\n".join(lines)


def write_importance(
    report: ImportanceReport,
    out_dir: str = "reports",
    basename: str = "ablation",
) -> "dict[str, str]":
    """Write ``<basename>.md`` + ``<basename>.json`` under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    written: "dict[str, str]" = {}
    json_path = os.path.join(out_dir, f"{basename}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written["json"] = json_path
    md_path = os.path.join(out_dir, f"{basename}.md")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(render_importance(report))
    written["markdown"] = md_path
    return written


def load_importance(path: str) -> dict:
    """Read an ``ablation.json``, validating the shape."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise AblationError(f"{path}: expected a JSON object")
    if data.get("schema_version") != ABLATION_SCHEMA_VERSION:
        raise AblationError(
            f"{path}: schema_version {data.get('schema_version')!r}, "
            f"this loader reads {ABLATION_SCHEMA_VERSION}"
        )
    for key in ("spec", "baseline", "variants"):
        if key not in data:
            raise AblationError(f"{path}: missing {key!r}")
    return data


def _check_metrics(
    problems: "list[str]",
    label: str,
    recorded: dict,
    recomputed: VariantMetrics,
) -> None:
    for key, value in recomputed.as_dict().items():
        if recorded.get(key) != value:
            problems.append(
                f"{label}: {key} does not reconcile with its journal "
                f"(report has {recorded.get(key)!r}, replay accounting "
                f"says {value!r})"
            )


def verify_importance(report: dict, base_dir: str = ".") -> "list[str]":
    """Prove a persisted report still reconciles with its journals.

    Re-replays every referenced journal, recomputes each metric vector
    and every signed delta with the same accounting, and compares
    *exactly* — the report carries no re-measured numbers, so any
    mismatch means the journals and the report have drifted apart.
    Returns a list of problems (empty = fully reconciled).
    """
    problems: "list[str]" = []
    baseline = report["baseline"]
    base_path = os.path.join(base_dir, baseline["journal"])
    if not os.path.exists(base_path):
        return [f"baseline journal missing: {base_path}"]
    base_metrics = metrics_from_replay(replay_journal(base_path))
    _check_metrics(problems, "baseline", baseline["metrics"], base_metrics)
    for entry in report["variants"]:
        label = f"{entry['component']}={entry['label']}"
        path = os.path.join(base_dir, entry["journal"])
        if not os.path.exists(path):
            problems.append(f"{label}: journal missing: {path}")
            continue
        metrics = metrics_from_replay(replay_journal(path))
        _check_metrics(problems, label, entry["metrics"], metrics)
        expected = score_variant(
            component(entry["component"]),
            entry["value"],
            entry["journal"],
            base_metrics,
            metrics,
        )
        for key in (
            "delta_makespan",
            "delta_fraction",
            "delta_shuffle_bytes",
            "delta_wasted_seconds",
            "delta_heap_bytes",
            "blame_shift",
            "events_delta",
            "k_drift",
            "invariant_ok",
        ):
            if entry.get(key) != getattr(expected, key):
                problems.append(
                    f"{label}: {key} does not reconcile "
                    f"(report has {entry.get(key)!r}, recomputed "
                    f"{getattr(expected, key)!r})"
                )
        if not expected.invariant_ok:
            problems.append(
                f"{label}: infrastructure flip moved a simulated metric"
            )
    return problems
