"""Declarative SLO watchdogs over the live telemetry stream.

Rules are given as a comma-separated spec (the CLI's ``--slo`` flag /
``$REPRO_SLO``), e.g.::

    max_k=64,warn:max_wall_seconds=600,max_heap_fraction=0.9

Each rule names a quantity derived from :class:`~repro.observability.
live.LiveRunState` and an upper limit. ``on_anomaly=TYPE`` rules
subscribe to the in-flight anomaly detectors instead (``--anomaly``):
the observed quantity is the live count of that anomaly type, with an
implicit limit of zero — the first ``heap_breach_predicted`` (or
``skew_drift``, ...) firing breaches the rule. The default action is
``abort``:
on breach the watchdog *requests* an abort, and the driver honours it
at the first clean point — for the checkpointing G-means chain, right
after the iteration's checkpoint is written — by raising
:class:`~repro.common.errors.SLOViolationError` (CLI exit code 3). The
``warn:`` prefix downgrades a rule to a one-time stderr warning.

The watchdog only *reads* the aggregate — it never emits journal
records and never touches an RNG — so canonical journals and results
stay byte-identical whether rules are armed or not, and an aborted run
resumes with ``fit(resume_from=...)`` once the rule is relaxed.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, SLOViolationError

#: Environment variable carrying the SLO rule spec (``--slo`` writes it).
SLO_ENV = "REPRO_SLO"

#: Rule names, in the order they are evaluated, mapped to how the
#: observed value is read off a ``LiveRunState``.
RULE_NAMES = (
    "max_wall_seconds",
    "max_simulated_seconds",
    "max_k",
    "max_heap_fraction",
    "max_job_retries",
    "on_anomaly",
)

ABORT = "abort"
WARN = "warn"


@dataclass(frozen=True)
class SLORule:
    """One declarative guardrail: a named quantity must stay ≤ limit.

    ``on_anomaly`` rules carry the subscribed anomaly type in
    ``anomaly`` and an implicit limit of zero (any firing breaches).
    """

    name: str
    limit: float
    action: str = ABORT
    anomaly: "str | None" = None

    def __post_init__(self) -> None:
        from repro.observability.anomaly import ANOMALY_TYPES

        if self.name not in RULE_NAMES:
            raise ConfigurationError(
                f"unknown SLO rule {self.name!r}; choose from {', '.join(RULE_NAMES)}"
            )
        if self.action not in (ABORT, WARN):
            raise ConfigurationError(
                f"unknown SLO action {self.action!r}; choose abort or warn"
            )
        if self.name == "on_anomaly":
            if self.anomaly not in ANOMALY_TYPES:
                raise ConfigurationError(
                    f"unknown anomaly type {self.anomaly!r} for on_anomaly; "
                    f"choose from {', '.join(ANOMALY_TYPES)}"
                )
            if self.limit < 0:
                raise ConfigurationError(
                    f"SLO rule {self.key} needs a non-negative limit, "
                    f"got {self.limit!r}"
                )
            return
        if self.anomaly is not None:
            raise ConfigurationError(
                f"SLO rule {self.name} does not take an anomaly type"
            )
        if not self.limit > 0:
            raise ConfigurationError(
                f"SLO rule {self.name} needs a positive limit, got {self.limit!r}"
            )

    @property
    def key(self) -> str:
        """The rule's identity (duplicates, breach naming, latching)."""
        if self.anomaly is not None:
            return f"{self.name}:{self.anomaly}"
        return self.name


@dataclass(frozen=True)
class SLOBreach:
    """A rule observed over its limit (what, by how much, what happens)."""

    rule: str
    limit: float
    observed: float
    action: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "limit": self.limit,
            "observed": self.observed,
            "action": self.action,
        }


def parse_slo_rules(spec: str) -> tuple[SLORule, ...]:
    """Parse a ``--slo`` spec string into rules.

    ``"max_k=64,warn:max_wall_seconds=600"`` → an abort rule on k and a
    warn rule on wall clock; ``"on_anomaly=heap_breach_predicted"`` →
    an abort rule on the first heap-breach prediction. Whitespace
    around separators is tolerated; duplicate rules (same name, and
    for ``on_anomaly`` the same type) are a configuration error (which
    limit would win is otherwise ambiguous).
    """
    rules: list[SLORule] = []
    seen: set[str] = set()
    for chunk in (spec or "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        action = ABORT
        if ":" in chunk:
            prefix, chunk = chunk.split(":", 1)
            action = prefix.strip().lower()
        if "=" not in chunk:
            raise ConfigurationError(
                f"SLO rule {chunk!r} is not of the form name=limit"
            )
        name, _, raw_limit = chunk.partition("=")
        name = name.strip().lower()
        if name == "on_anomaly":
            rule = SLORule(
                name=name,
                limit=0.0,
                action=action,
                anomaly=raw_limit.strip().lower(),
            )
        else:
            try:
                limit = float(raw_limit.strip())
            except ValueError:
                raise ConfigurationError(
                    f"SLO rule {name} has a non-numeric limit {raw_limit.strip()!r}"
                ) from None
            rule = SLORule(name=name, limit=limit, action=action)
        if rule.key in seen:
            raise ConfigurationError(f"duplicate SLO rule {rule.key!r}")
        seen.add(rule.key)
        rules.append(rule)
    return tuple(rules)


def _observe_rule(rule: SLORule, state, now: "float | None") -> float:
    if rule.name == "max_wall_seconds":
        return state.wall_seconds(now)
    if rule.name == "max_simulated_seconds":
        return float(state.simulated_seconds)
    if rule.name == "max_k":
        return float(state.k_current or 0)
    if rule.name == "max_heap_fraction":
        return float(state.max_heap_fraction)
    if rule.name == "max_job_retries":
        return float(state.job_retries)
    if rule.name == "on_anomaly":
        counts = getattr(state, "anomaly_counts", None) or {}
        return float(counts.get(rule.anomaly, 0))
    raise ConfigurationError(f"unknown SLO rule {rule.name!r}")  # pragma: no cover


class SLOWatchdog:
    """Evaluates SLO rules against the live aggregate on every record.

    ``observe(state)`` is called by the :class:`TelemetrySink` after
    each journal record is folded in. Each rule fires at most once per
    run: a ``warn`` rule prints one stderr warning, an ``abort`` rule
    additionally latches ``abort_requested`` — the driver then calls
    :meth:`check_abort` at its next clean point (post-checkpoint) and
    gets the typed :class:`SLOViolationError` for the *first* abort
    breach. Evaluation never raises from inside the sink: raising
    mid-record would tear the journal stream.
    """

    def __init__(self, rules, stream=None, clock=time.time):
        self.rules = tuple(rules)
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._lock = threading.Lock()
        self._fired: set[str] = set()
        self.breaches: list[SLOBreach] = []
        self.abort_requested: "SLOBreach | None" = None

    def observe(self, state) -> None:
        if not self.rules:
            return
        now = self._clock()
        with self._lock:
            for rule in self.rules:
                if rule.key in self._fired:
                    continue
                observed = _observe_rule(rule, state, now)
                if observed <= rule.limit:
                    continue
                self._fired.add(rule.key)
                breach = SLOBreach(
                    rule=rule.key,
                    limit=rule.limit,
                    observed=observed,
                    action=rule.action,
                )
                self.breaches.append(breach)
                state.breaches.append(breach.as_dict())
                verb = (
                    "aborting at next checkpoint"
                    if rule.action == ABORT
                    else "warning only"
                )
                print(
                    f"[repro] SLO breach: {rule.key} limit {rule.limit:g} "
                    f"exceeded (observed {observed:g}); {verb}",
                    file=self.stream,
                )
                if rule.action == ABORT and self.abort_requested is None:
                    self.abort_requested = breach

    def check_abort(self) -> None:
        """Raise the typed abort error if a breach requested one.

        Called by drivers at clean abort points only — i.e. when the
        current iteration's checkpoint has been durably written — so a
        breached run is always resumable.
        """
        breach = self.abort_requested
        if breach is not None:
            raise SLOViolationError(breach.rule, breach.limit, breach.observed)


def watchdog_for(journal) -> "SLOWatchdog | None":
    """The watchdog attached to a journal's sink, if telemetry armed one."""
    if journal is None or not getattr(journal, "enabled", False):
        return None
    return getattr(journal.sink, "watchdog", None)
