"""Run-wide observability: structured journal, spans, metrics, replay.

Chained MapReduce runs — dozens of jobs, retries, replica failovers,
checkpoints — are recorded as an append-only JSON-lines *run journal*
of hierarchical spans (run → iteration → job attempt → phase → task)
plus fault-tolerance events. A recorded journal can be replayed into a
span tree, rendered as a timeline / per-iteration counter table /
per-job Gantt (``repro trace``), or exported as Prometheus text.

Journalling is off by default and costs one early return per
instrumentation point; ``--journal PATH`` or ``$REPRO_JOURNAL`` turns
it on. Emission never touches an RNG stream, so results are
byte-identical with the journal on or off, and journals are identical
across executor backends modulo wall-clock fields.
"""

from repro.observability.journal import (
    EVENT,
    ITERATION,
    JOB,
    JOURNAL_ENV,
    PHASE,
    RUN,
    SPAN_END,
    SPAN_KINDS,
    SPAN_START,
    TASK,
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    JournalSink,
    NullJournalSink,
    canonical_record,
    canonical_records,
    file_journal,
    load_journal,
)
from repro.observability.analyze import (
    AnalysisReport,
    DurationStats,
    HeapAuditEntry,
    JobResidual,
    JobSkewProfile,
    PhaseResidual,
    PhaseSkew,
    analyze_replay,
    render_analysis,
    render_heap_audit,
    render_residuals,
    render_skew,
)
from repro.observability.diffing import (
    DiffEntry,
    DiffReport,
    DiffThresholds,
    RunSummary,
    diff_replays,
    diff_summaries,
    render_diff,
    summarize_replay,
)
from repro.observability.metrics import (
    MetricsRegistry,
    metric_name,
    render_prometheus,
)
from repro.observability.render import (
    render_iteration_table,
    render_job_gantts,
    render_metrics,
    render_timeline,
    render_trace,
)
from repro.observability.replay import (
    EventRecord,
    RunReplay,
    SpanNode,
    TaskRecord,
    replay_journal,
    replay_records,
)

__all__ = [
    "AnalysisReport",
    "DurationStats",
    "HeapAuditEntry",
    "JobResidual",
    "JobSkewProfile",
    "PhaseResidual",
    "PhaseSkew",
    "analyze_replay",
    "render_analysis",
    "render_heap_audit",
    "render_residuals",
    "render_skew",
    "DiffEntry",
    "DiffReport",
    "DiffThresholds",
    "RunSummary",
    "diff_replays",
    "diff_summaries",
    "render_diff",
    "summarize_replay",
    "EVENT",
    "ITERATION",
    "JOB",
    "JOURNAL_ENV",
    "PHASE",
    "RUN",
    "SPAN_END",
    "SPAN_KINDS",
    "SPAN_START",
    "TASK",
    "FileJournalSink",
    "InMemoryJournalSink",
    "Journal",
    "JournalSink",
    "NullJournalSink",
    "canonical_record",
    "canonical_records",
    "file_journal",
    "load_journal",
    "MetricsRegistry",
    "metric_name",
    "render_prometheus",
    "render_iteration_table",
    "render_job_gantts",
    "render_metrics",
    "render_timeline",
    "render_trace",
    "EventRecord",
    "RunReplay",
    "SpanNode",
    "TaskRecord",
    "replay_journal",
    "replay_records",
]
