"""Run-wide observability: structured journal, spans, metrics, replay.

Chained MapReduce runs — dozens of jobs, retries, replica failovers,
checkpoints — are recorded as an append-only JSON-lines *run journal*
of hierarchical spans (run → iteration → job attempt → phase → task)
plus fault-tolerance events. A recorded journal can be replayed into a
span tree, rendered as a timeline / per-iteration counter table /
per-job Gantt (``repro trace``), or exported as Prometheus text.

Journalling is off by default and costs one early return per
instrumentation point; ``--journal PATH`` or ``$REPRO_JOURNAL`` turns
it on. Emission never touches an RNG stream, so results are
byte-identical with the journal on or off, and journals are identical
across executor backends modulo wall-clock fields.

The *live* layer consumes the same stream in real time
(:mod:`repro.observability.live`): a ``--live`` TTY progress view, an
opt-in ``--metrics-port`` HTTP endpoint, per-task profiling
(:mod:`repro.observability.profiling`) and declarative SLO watchdogs
(:mod:`repro.observability.slo`) — all observers, never emitters, so
the determinism contract above is unchanged with telemetry on.
"""

from repro.observability.journal import (
    EVENT,
    ITERATION,
    JOB,
    JOURNAL_ENV,
    PHASE,
    RUN,
    SPAN_END,
    SPAN_KINDS,
    SPAN_START,
    TASK,
    FileJournalSink,
    InMemoryJournalSink,
    Journal,
    JournalSink,
    NullJournalSink,
    canonical_record,
    canonical_records,
    file_journal,
    load_journal,
)
from repro.observability.analyze import (
    AnalysisReport,
    DurationStats,
    HeapAuditEntry,
    JobResidual,
    JobSkewProfile,
    MemoryAuditEntry,
    PhaseResidual,
    PhaseSkew,
    ProfiledPhaseStats,
    analyze_replay,
    render_analysis,
    render_heap_audit,
    render_profile,
    render_residuals,
    render_skew,
)
from repro.observability.diffing import (
    DiffEntry,
    DiffReport,
    DiffThresholds,
    RunSummary,
    diff_replays,
    diff_summaries,
    render_diff,
    summarize_replay,
)
from repro.observability.live import (
    LIVE_ENV,
    METRICS_PORT_ENV,
    LiveRenderer,
    LiveRunState,
    MetricsServer,
    TelemetrySink,
    follow_journal,
    telemetry_journal_from_env,
)
from repro.observability.metrics import (
    MetricsRegistry,
    escape_label_value,
    metric_name,
    render_prometheus,
)
from repro.observability.profiling import (
    PROFILE_TASKS_ENV,
    TaskProfile,
    TaskProfiler,
    profiling_from_env,
    task_profiler,
)
from repro.observability.render import (
    progress_bar,
    render_iteration_table,
    render_job_gantts,
    render_live_line,
    render_live_status,
    render_metrics,
    render_timeline,
    render_trace,
)
from repro.observability.slo import (
    RULE_NAMES,
    SLO_ENV,
    SLOBreach,
    SLORule,
    SLOWatchdog,
    parse_slo_rules,
    watchdog_for,
)
from repro.observability.replay import (
    EventRecord,
    RunReplay,
    SpanNode,
    TaskRecord,
    replay_journal,
    replay_records,
)

__all__ = [
    "AnalysisReport",
    "DurationStats",
    "HeapAuditEntry",
    "JobResidual",
    "JobSkewProfile",
    "MemoryAuditEntry",
    "PhaseResidual",
    "PhaseSkew",
    "ProfiledPhaseStats",
    "analyze_replay",
    "render_analysis",
    "render_heap_audit",
    "render_profile",
    "render_residuals",
    "render_skew",
    "DiffEntry",
    "DiffReport",
    "DiffThresholds",
    "RunSummary",
    "diff_replays",
    "diff_summaries",
    "render_diff",
    "summarize_replay",
    "EVENT",
    "ITERATION",
    "JOB",
    "JOURNAL_ENV",
    "PHASE",
    "RUN",
    "SPAN_END",
    "SPAN_KINDS",
    "SPAN_START",
    "TASK",
    "FileJournalSink",
    "InMemoryJournalSink",
    "Journal",
    "JournalSink",
    "NullJournalSink",
    "canonical_record",
    "canonical_records",
    "file_journal",
    "load_journal",
    "LIVE_ENV",
    "METRICS_PORT_ENV",
    "LiveRenderer",
    "LiveRunState",
    "MetricsServer",
    "TelemetrySink",
    "follow_journal",
    "telemetry_journal_from_env",
    "MetricsRegistry",
    "escape_label_value",
    "metric_name",
    "render_prometheus",
    "PROFILE_TASKS_ENV",
    "TaskProfile",
    "TaskProfiler",
    "profiling_from_env",
    "task_profiler",
    "progress_bar",
    "render_iteration_table",
    "render_job_gantts",
    "render_live_line",
    "render_live_status",
    "render_metrics",
    "render_timeline",
    "render_trace",
    "RULE_NAMES",
    "SLO_ENV",
    "SLOBreach",
    "SLORule",
    "SLOWatchdog",
    "parse_slo_rules",
    "watchdog_for",
    "EventRecord",
    "RunReplay",
    "SpanNode",
    "TaskRecord",
    "replay_journal",
    "replay_records",
]
