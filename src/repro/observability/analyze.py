"""Journal analytics: skew/straggler profiling, heap-model audit, and
cost-model residuals over a recorded run.

PR 3's journal is a faithful record; this module *interprets* it,
re-validating the paper's two central engineering claims against what
a run actually did:

* **Skew/stragglers** — per-job task-duration distributions (p50, p95,
  max, straggler ratio) and per-reducer key/byte skew from the shuffle
  counters the runtime records on reduce phase spans. Related MR
  clustering work (Bahmani et al., Jin et al.) shows these dominate
  real deployments; the report makes them visible per job.
* **Heap model** — every ``strategy_decision`` event carries the
  inputs of the paper's switching rule (Section 3.2) and the predicted
  reducer heap (``points-in-biggest-cluster × 64`` bytes, Figure 2);
  the audit re-derives the rule from those inputs and compares the
  prediction against the biggest per-cluster projection buffer the
  test job's reducers actually materialised.
* **Cost-model residuals** — for every successful job, the recorded
  per-task simulated durations are re-assembled through the cost
  model's LPT scheduler and compared against the per-phase timings the
  job span recorded, exposing any divergence between
  :mod:`repro.mapreduce.costmodel` and what the runtime charged
  (locality-aware scheduling, for example, shows up here).

``repro analyze JOURNAL`` renders all three; :func:`analyze_replay` is
the programmatic entry point.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.mapreduce.cluster import MIB
from repro.mapreduce.costmodel import CostParameters, makespan
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.observability.critical import (
    CriticalPath,
    critical_path,
    render_critical,
)
from repro.observability.replay import RunReplay, SpanNode

#: Strategy names as journalled by ``strategy_decision`` events (kept
#: local: the observability layer must not import :mod:`repro.core`).
MAPPER_SIDE = "mapper"
REDUCER_SIDE = "reducer"


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values, q in [0,1]."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


@dataclass(frozen=True)
class DurationStats:
    """Distribution summary of one set of task durations."""

    count: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    max_seconds: float
    #: max / p50 — how much longer the slowest task ran than the
    #: typical one (1.0 = perfectly balanced; 0.0 when p50 is zero).
    straggler_ratio: float

    @classmethod
    def from_seconds(cls, seconds: "list[float]") -> "DurationStats | None":
        if not seconds:
            return None
        ordered = sorted(seconds)
        p50 = _percentile(ordered, 0.50)
        peak = ordered[-1]
        return cls(
            count=len(ordered),
            total_seconds=sum(ordered),
            mean_seconds=sum(ordered) / len(ordered),
            p50_seconds=p50,
            p95_seconds=_percentile(ordered, 0.95),
            max_seconds=peak,
            straggler_ratio=(peak / p50) if p50 > 0 else 0.0,
        )


@dataclass(frozen=True)
class PhaseSkew:
    """Task-duration and (reduce-side) shuffle-skew profile of a phase."""

    phase: str
    tasks: DurationStats
    #: Reduce phases only: per-reducer record/key/byte loads as the
    #: runtime recorded them, and max/mean skew ratios over non-empty
    #: means. ``None`` on map phases and journals predating the fields.
    bucket_records: "list[int] | None" = None
    bucket_keys: "list[int] | None" = None
    bucket_bytes: "list[int] | None" = None
    record_skew: "float | None" = None
    byte_skew: "float | None" = None
    max_key_records: "int | None" = None
    max_key_heap_bytes: "int | None" = None


@dataclass(frozen=True)
class JobSkewProfile:
    """Skew/straggler profile of one job attempt."""

    job: str
    attempt: int
    status: str
    phases: "list[PhaseSkew]"


@dataclass(frozen=True)
class HeapAuditEntry:
    """One ``strategy_decision`` event checked against the journal.

    ``consistent`` means the recorded verdict follows from the recorded
    inputs under the paper's two-condition rule (forced strategies are
    audited against the rule's would-be verdict but can never be
    inconsistent — the operator overrode the rule knowingly).
    ``relative_error`` is ``(predicted - actual) / actual`` for
    reducer-side tests where the journal recorded the actual biggest
    per-cluster projection buffer; ``None`` otherwise.
    """

    iteration: "int | None"
    strategy: str
    rule_strategy: str
    forced: bool
    clusters_to_test: int
    max_cluster_points: int
    predicted_heap_bytes: int
    usable_heap_bytes: int
    total_reduce_slots: int
    consistent: bool
    test_job: "str | None" = None
    actual_heap_bytes: "int | None" = None
    relative_error: "float | None" = None


@dataclass(frozen=True)
class ProfiledPhaseStats:
    """Real (profiled) resource usage of all tasks of one phase name.

    Present only for journals recorded with ``--profile-tasks``: the
    cost model's simulated seconds say what a task *would* cost on the
    paper's testbed, these say what the task body actually cost here —
    host wall and CPU seconds for every task, and the tracemalloc peak
    of the memory-sampled tasks (first task per phase of geometrically
    sampled jobs).
    """

    phase: str
    wall: DurationStats
    cpu: DurationStats
    max_peak_memory_bytes: int
    mean_peak_memory_bytes: float


@dataclass(frozen=True)
class MemoryAuditEntry:
    """Figure-2 model vs measured memory for one test job's reducers.

    ``modeled_heap_bytes`` is the per-cluster projection buffer the
    64-bytes/point model predicts (the ``max_key_heap_bytes`` the
    runtime recorded); ``measured_peak_bytes`` is the biggest
    tracemalloc peak any of the job's reduce-task bodies reached.
    ``ratio`` (measured / modeled) shows how conservative the paper's
    model is against real Python allocations — Python object overhead
    makes ratios well above 1 expected; the audit is about *scaling*,
    not equality.
    """

    job: str
    attempt: int
    modeled_heap_bytes: int
    measured_peak_bytes: int

    @property
    def ratio(self) -> "float | None":
        if self.modeled_heap_bytes > 0:
            return self.measured_peak_bytes / self.modeled_heap_bytes
        return None


@dataclass(frozen=True)
class NodeHealthEntry:
    """Lifecycle summary of one node over the whole run.

    Folded from the ``node_lost`` / ``node_recovered`` /
    ``node_blacklisted`` events: how often the node died and came back,
    how many replica copies its deaths took with it, and the status the
    journal leaves it in.
    """

    node_id: int
    deaths: int
    recoveries: int
    blacklisted: bool
    blocks_lost: int
    final_status: str


@dataclass(frozen=True)
class CapacityPoint:
    """One step of the cluster's live-capacity timeline.

    Every node lifecycle event stamps the capacity that resulted from
    it; the ordered sequence shows how the slot pool the scheduler (and
    the Section-3.2 strategy rule) saw shrank and recovered.
    """

    seq: int
    event: str
    node_id: int
    schedulable_nodes: int
    total_map_slots: int
    total_reduce_slots: int


@dataclass(frozen=True)
class PhaseResidual:
    """Model-vs-journal comparison of one phase of one job."""

    phase: str
    predicted_seconds: float
    recorded_seconds: float

    @property
    def residual_seconds(self) -> float:
        return self.predicted_seconds - self.recorded_seconds

    @property
    def relative_residual(self) -> "float | None":
        if self.recorded_seconds > 0:
            return self.residual_seconds / self.recorded_seconds
        return None if self.predicted_seconds > 0 else 0.0


@dataclass(frozen=True)
class JobResidual:
    """Cost-model residuals of one successful job."""

    job: str
    attempt: int
    phases: "list[PhaseResidual]"

    @property
    def max_abs_relative(self) -> float:
        worst = 0.0
        for phase in self.phases:
            rel = phase.relative_residual
            if rel is not None:
                worst = max(worst, abs(rel))
        return worst


#: Version of the ``repro analyze --json`` payload (its ``schema_version``
#: key), bumped on incompatible shape changes. v2 added the key itself
#: plus the ``anomalies`` section (the journal's recorded in-flight
#: detector firings); consumers should reject versions they don't know.
ANALYZE_SCHEMA_VERSION = 2


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` derives from one journal."""

    jobs: "list[JobSkewProfile]" = field(default_factory=list)
    map_tasks: "DurationStats | None" = None
    reduce_tasks: "DurationStats | None" = None
    heap_audit: "list[HeapAuditEntry]" = field(default_factory=list)
    residuals: "list[JobResidual]" = field(default_factory=list)
    #: Populated only for journals recorded with ``--profile-tasks``.
    profile: "list[ProfiledPhaseStats]" = field(default_factory=list)
    memory_audit: "list[MemoryAuditEntry]" = field(default_factory=list)
    #: Populated only for journals with node lifecycle events.
    node_health: "list[NodeHealthEntry]" = field(default_factory=list)
    capacity_timeline: "list[CapacityPoint]" = field(default_factory=list)
    #: Critical path + blame breakdown; carries the exact-reconciliation
    #: verdict (:attr:`CriticalPath.reconciled`).
    critical: "CriticalPath | None" = None
    #: Recorded in-flight detector firings (``anomaly`` event attrs, in
    #: journal order); empty when the run did not arm ``--anomaly``.
    anomalies: "list[dict]" = field(default_factory=list)

    @property
    def heap_audit_consistent(self) -> bool:
        """True when every journalled decision follows from its inputs."""
        return all(entry.consistent for entry in self.heap_audit)

    @property
    def max_abs_relative_residual(self) -> float:
        return max((job.max_abs_relative for job in self.residuals), default=0.0)

    def as_dict(self) -> dict:
        """JSON-ready form (``repro analyze --json``).

        The payload is versioned: ``schema_version`` is
        :data:`ANALYZE_SCHEMA_VERSION`, bumped whenever a key is
        renamed, removed or changes meaning (additions alone do not
        bump it). The full key catalogue is documented in
        ``docs/observability.md``.
        """
        return {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "jobs": [asdict(job) for job in self.jobs],
            "map_tasks": asdict(self.map_tasks) if self.map_tasks else None,
            "reduce_tasks": (
                asdict(self.reduce_tasks) if self.reduce_tasks else None
            ),
            "heap_audit": [asdict(entry) for entry in self.heap_audit],
            "heap_audit_consistent": self.heap_audit_consistent,
            "residuals": [
                {
                    "job": job.job,
                    "attempt": job.attempt,
                    "phases": [
                        {
                            **asdict(phase),
                            "residual_seconds": phase.residual_seconds,
                            "relative_residual": phase.relative_residual,
                        }
                        for phase in job.phases
                    ],
                }
                for job in self.residuals
            ],
            "max_abs_relative_residual": self.max_abs_relative_residual,
            "profile": [asdict(stats) for stats in self.profile],
            "memory_audit": [
                {**asdict(entry), "ratio": entry.ratio}
                for entry in self.memory_audit
            ],
            "node_health": [asdict(entry) for entry in self.node_health],
            "capacity_timeline": [
                asdict(point) for point in self.capacity_timeline
            ],
            "critical": self.critical.as_dict() if self.critical else None,
            "anomalies": [dict(attrs) for attrs in self.anomalies],
        }


# -- skew / stragglers ---------------------------------------------------


def _skew_ratio(loads: "list[int] | None") -> "float | None":
    if not loads:
        return None
    mean = sum(loads) / len(loads)
    return (max(loads) / mean) if mean > 0 else None


def _phase_skew(phase: SpanNode) -> "PhaseSkew | None":
    stats = DurationStats.from_seconds([t.sim_seconds for t in phase.tasks])
    if stats is None:
        return None
    bucket_records = phase.get("bucket_records")
    bucket_bytes = phase.get("bucket_bytes")
    return PhaseSkew(
        phase=phase.name,
        tasks=stats,
        bucket_records=bucket_records,
        bucket_keys=phase.get("bucket_keys"),
        bucket_bytes=bucket_bytes,
        record_skew=_skew_ratio(bucket_records),
        byte_skew=_skew_ratio(bucket_bytes),
        max_key_records=phase.get("max_key_records"),
        max_key_heap_bytes=phase.get("max_key_heap_bytes"),
    )


def _job_profiles(replay: RunReplay) -> "list[JobSkewProfile]":
    profiles = []
    for job in replay.jobs():
        phases = []
        for child in job.children:
            if child.kind != "phase":
                continue
            skew = _phase_skew(child)
            if skew is not None:
                phases.append(skew)
        if phases:
            profiles.append(
                JobSkewProfile(
                    job=job.name,
                    attempt=int(job.get("attempt") or 1),
                    status=str(job.get("status", "incomplete")),
                    phases=phases,
                )
            )
    return profiles


# -- heap-model audit ----------------------------------------------------


def _iteration_test_job(
    replay: RunReplay, parent_id: "int | None"
) -> "SpanNode | None":
    """The test-strategy job span of the iteration holding the event
    (preferring the successful attempt, else the last one)."""
    iteration = replay.spans.get(parent_id) if parent_id is not None else None
    if iteration is None:
        return None
    candidates = [
        job
        for job in iteration.find("job")
        if job.name.startswith(("TestClusters", "TestFewClusters"))
    ]
    for job in reversed(candidates):
        if job.get("status") == "ok":
            return job
    return candidates[-1] if candidates else None


def _actual_heap_bytes(test_job: "SpanNode | None") -> "int | None":
    """Biggest per-cluster projection buffer the reducers materialised."""
    if test_job is None:
        return None
    for phase in test_job.children:
        if phase.kind == "phase" and phase.name == "reduce":
            value = phase.get("max_key_heap_bytes")
            if value is not None:
                return int(value)
    value = test_job.get("max_reduce_heap_bytes")
    return int(value) if value else None


def _heap_audit(replay: RunReplay) -> "list[HeapAuditEntry]":
    entries = []
    for event in replay.events_named("strategy_decision"):
        attrs = event.attrs
        strategy = str(attrs.get("strategy", ""))
        forced = bool(attrs.get("forced", False))
        clusters_to_test = int(attrs.get("clusters_to_test", 0))
        max_points = int(attrs.get("max_cluster_points", 0))
        predicted = int(attrs.get("predicted_heap_bytes", 0))
        usable = int(attrs.get("usable_heap_bytes", 0))
        slots = int(attrs.get("total_reduce_slots", 0))
        rule_strategy = str(attrs.get("rule_strategy", strategy))
        # Re-derive the verdict from the recorded inputs alone.
        expected = (
            REDUCER_SIDE
            if clusters_to_test > slots and predicted <= usable
            else MAPPER_SIDE
        )
        consistent = expected == rule_strategy and (
            forced or strategy == rule_strategy
        )
        test_job = _iteration_test_job(replay, event.parent)
        actual = None
        relative_error = None
        if strategy == REDUCER_SIDE:
            actual = _actual_heap_bytes(test_job)
            if actual:
                relative_error = (predicted - actual) / actual
        entries.append(
            HeapAuditEntry(
                iteration=attrs.get("iteration"),
                strategy=strategy,
                rule_strategy=rule_strategy,
                forced=forced,
                clusters_to_test=clusters_to_test,
                max_cluster_points=max_points,
                predicted_heap_bytes=predicted,
                usable_heap_bytes=usable,
                total_reduce_slots=slots,
                consistent=consistent,
                test_job=test_job.name if test_job is not None else None,
                actual_heap_bytes=actual,
                relative_error=relative_error,
            )
        )
    return entries


# -- real-resource profiling (--profile-tasks journals) ------------------


def _profile_stats(replay: RunReplay) -> "list[ProfiledPhaseStats]":
    by_phase: dict[str, list] = {}
    for phase in replay.phases():
        profiled = [t for t in phase.tasks if t.profiled]
        if profiled:
            by_phase.setdefault(phase.name, []).extend(profiled)
    stats = []
    for name in sorted(by_phase):
        tasks = by_phase[name]
        # Memory peaks are sampled (first task per phase of sampled
        # jobs), not per-task;
        # fold stats over the sampled measurements only.
        peaks = [
            int(t.peak_memory_bytes)
            for t in tasks
            if t.peak_memory_bytes is not None
        ]
        stats.append(
            ProfiledPhaseStats(
                phase=name,
                wall=DurationStats.from_seconds([t.wall_seconds for t in tasks]),
                cpu=DurationStats.from_seconds(
                    [float(t.cpu_seconds or 0.0) for t in tasks]
                ),
                max_peak_memory_bytes=max(peaks, default=0),
                mean_peak_memory_bytes=(
                    sum(peaks) / len(peaks) if peaks else 0.0
                ),
            )
        )
    return stats


def _memory_audit(replay: RunReplay) -> "list[MemoryAuditEntry]":
    entries = []
    for job in replay.successful_jobs():
        if not job.name.startswith(("TestClusters", "TestFewClusters")):
            continue
        for phase in job.children:
            if phase.kind != "phase" or phase.name != "reduce":
                continue
            modeled = phase.get("max_key_heap_bytes")
            peaks = [
                int(t.peak_memory_bytes)
                for t in phase.tasks
                if t.peak_memory_bytes is not None
            ]
            if modeled is None or not peaks:
                continue
            entries.append(
                MemoryAuditEntry(
                    job=job.name,
                    attempt=int(job.get("attempt") or 1),
                    modeled_heap_bytes=int(modeled),
                    measured_peak_bytes=max(peaks),
                )
            )
    return entries


# -- node failure domains ------------------------------------------------


def _node_sections(
    replay: RunReplay,
) -> "tuple[list[NodeHealthEntry], list[CapacityPoint]]":
    """Fold node lifecycle events into per-node health + the capacity
    timeline (both empty for journals without node faults)."""
    events = replay.node_events()
    if not events:
        return [], []
    deaths: dict[int, int] = {}
    recoveries: dict[int, int] = {}
    blacklisted: dict[int, bool] = {}
    blocks_lost: dict[int, int] = {}
    status: dict[int, str] = {}
    timeline: list[CapacityPoint] = []
    for event in events:
        attrs = event.attrs
        node_id = int(attrs.get("node", -1))
        if event.name == "node_lost":
            deaths[node_id] = int(attrs.get("deaths", 0)) or (
                deaths.get(node_id, 0) + 1
            )
            blocks_lost[node_id] = blocks_lost.get(node_id, 0) + int(
                attrs.get("blocks_lost", 0)
            )
            status[node_id] = "dead"
        elif event.name == "node_recovered":
            recoveries[node_id] = int(attrs.get("recoveries", 0)) or (
                recoveries.get(node_id, 0) + 1
            )
            status[node_id] = "alive"
        elif event.name == "node_blacklisted":
            blacklisted[node_id] = True
            status[node_id] = "blacklisted"
        timeline.append(
            CapacityPoint(
                seq=event.seq,
                event=event.name,
                node_id=node_id,
                schedulable_nodes=int(attrs.get("schedulable_nodes", 0)),
                total_map_slots=int(attrs.get("total_map_slots", 0)),
                total_reduce_slots=int(attrs.get("total_reduce_slots", 0)),
            )
        )
    health = [
        NodeHealthEntry(
            node_id=node_id,
            deaths=deaths.get(node_id, 0),
            recoveries=recoveries.get(node_id, 0),
            blacklisted=blacklisted.get(node_id, False),
            blocks_lost=blocks_lost.get(node_id, 0),
            final_status=status.get(node_id, "alive"),
        )
        for node_id in sorted(
            set(deaths) | set(recoveries) | set(blacklisted) | set(status)
        )
    ]
    return health, timeline


# -- cost-model residuals ------------------------------------------------


def _job_residual(
    job: SpanNode, params: CostParameters
) -> "JobResidual | None":
    timing = job.get("timing") or {}
    if not timing:
        return None
    phases: list[PhaseResidual] = []
    for child in job.children:
        if child.kind != "phase" or not child.tasks:
            continue
        recorded = float(timing.get(f"{child.name}_seconds") or 0.0)
        slots = int(child.get("slots") or 1)
        predicted = makespan([t.sim_seconds for t in child.tasks], slots)
        phases.append(
            PhaseResidual(
                phase=child.name,
                predicted_seconds=predicted,
                recorded_seconds=recorded,
            )
        )
    nodes = job.get("nodes")
    shuffle_recorded = float(timing.get("shuffle_seconds") or 0.0)
    shuffle_bytes = job.counters().get(FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)
    if nodes and (shuffle_recorded > 0 or shuffle_bytes > 0):
        predicted = shuffle_bytes / (
            params.network_mbps_per_node * int(nodes) * MIB
        )
        phases.append(
            PhaseResidual(
                phase="shuffle",
                predicted_seconds=predicted,
                recorded_seconds=shuffle_recorded,
            )
        )
    if not phases:
        return None
    return JobResidual(
        job=job.name, attempt=int(job.get("attempt") or 1), phases=phases
    )


def analyze_replay(
    replay: RunReplay, params: "CostParameters | None" = None
) -> AnalysisReport:
    """Derive the full analysis report from a replayed journal.

    ``params`` are the cost-model constants used for the shuffle
    residual (the map/reduce residuals need none: the LPT scheduler is
    parameter-free over the recorded task durations). Defaults match
    the runtime's defaults; a run recorded with custom constants shows
    a corresponding shuffle residual, which is the point of the report.
    """
    params = params or CostParameters()
    report = AnalysisReport(jobs=_job_profiles(replay))
    map_seconds: list[float] = []
    reduce_seconds: list[float] = []
    for phase in replay.phases():
        seconds = [t.sim_seconds for t in phase.tasks]
        if phase.name == "map":
            map_seconds.extend(seconds)
        elif phase.name == "reduce":
            reduce_seconds.extend(seconds)
    report.map_tasks = DurationStats.from_seconds(map_seconds)
    report.reduce_tasks = DurationStats.from_seconds(reduce_seconds)
    report.heap_audit = _heap_audit(replay)
    report.profile = _profile_stats(replay)
    report.memory_audit = _memory_audit(replay)
    report.node_health, report.capacity_timeline = _node_sections(replay)
    report.critical = critical_path(replay)
    report.anomalies = [
        dict(event.attrs) for event in replay.anomaly_events()
    ]
    for job in replay.successful_jobs():
        residual = _job_residual(job, params)
        if residual is not None:
            report.residuals.append(residual)
    return report


# -- rendering -----------------------------------------------------------


def _fmt_stats(stats: "DurationStats | None") -> str:
    if stats is None:
        return "(no tasks)"
    return (
        f"n={stats.count}  p50={stats.p50_seconds:.2f}s  "
        f"p95={stats.p95_seconds:.2f}s  max={stats.max_seconds:.2f}s  "
        f"straggler x{stats.straggler_ratio:.2f}"
    )


def _fmt_bytes(value: "int | None") -> str:
    if value is None:
        return "?"
    if value >= MIB:
        return f"{value / MIB:.1f}MiB"
    return f"{value}B"


def render_skew(report: AnalysisReport, limit: int = 20) -> str:
    """The skew/straggler section of the analysis report."""
    lines = [
        f"all map tasks:     {_fmt_stats(report.map_tasks)}",
        f"all reduce tasks:  {_fmt_stats(report.reduce_tasks)}",
    ]
    ranked = sorted(
        report.jobs,
        key=lambda p: max(
            (phase.tasks.straggler_ratio for phase in p.phases), default=0.0
        ),
        reverse=True,
    )
    shown = ranked[:limit]
    if shown:
        lines.append("")
        lines.append("per-job phases (worst straggler ratio first):")
    for profile in shown:
        for phase in profile.phases:
            extra = ""
            if phase.record_skew is not None:
                extra = (
                    f"  rec-skew x{phase.record_skew:.2f}"
                    f"  byte-skew x{phase.byte_skew:.2f}"
                    if phase.byte_skew is not None
                    else f"  rec-skew x{phase.record_skew:.2f}"
                )
            lines.append(
                f"  {profile.job} [{profile.status}] {phase.phase:<6} "
                f"{_fmt_stats(phase.tasks)}{extra}"
            )
    if len(ranked) > limit:
        lines.append(f"  ... {len(ranked) - limit} more jobs not shown")
    return "\n".join(lines)


def render_heap_audit(report: AnalysisReport) -> str:
    """The heap-model audit section of the analysis report."""
    if not report.heap_audit:
        return "(no strategy decisions recorded)"
    lines = []
    for entry in report.heap_audit:
        verdict = "consistent" if entry.consistent else "INCONSISTENT"
        detail = (
            f"iter {entry.iteration}: {entry.strategy}"
            + (" (forced)" if entry.forced else "")
            + f"  clusters={entry.clusters_to_test}"
            f" slots={entry.total_reduce_slots}"
            f"  predicted={_fmt_bytes(entry.predicted_heap_bytes)}"
            f" usable={_fmt_bytes(entry.usable_heap_bytes)}"
        )
        if entry.actual_heap_bytes is not None:
            detail += f"  actual={_fmt_bytes(entry.actual_heap_bytes)}"
        if entry.relative_error is not None:
            detail += f"  rel.err {entry.relative_error * +100:+.1f}%"
        lines.append(f"{detail}  -- {verdict}")
    status = (
        "all consistent with estimate_reducer_heap_bytes inputs"
        if report.heap_audit_consistent
        else "SOME DECISIONS INCONSISTENT WITH THEIR RECORDED INPUTS"
    )
    lines.append(f"{len(report.heap_audit)} decisions audited: {status}")
    return "\n".join(lines)


def render_residuals(report: AnalysisReport, limit: int = 20) -> str:
    """The cost-model residual section of the analysis report."""
    if not report.residuals:
        return "(no successful jobs with timing recorded)"
    lines = []
    ranked = sorted(
        report.residuals, key=lambda job: job.max_abs_relative, reverse=True
    )
    for job in ranked[:limit]:
        parts = [f"{job.job} (attempt {job.attempt}):"]
        for phase in job.phases:
            rel = phase.relative_residual
            rel_text = f"{rel * 100:+.2f}%" if rel is not None else "n/a"
            parts.append(
                f"{phase.phase} model {phase.predicted_seconds:.2f}s"
                f" vs journal {phase.recorded_seconds:.2f}s ({rel_text})"
            )
        lines.append("  " + "  ".join(parts))
    if len(ranked) > limit:
        lines.append(f"  ... {len(ranked) - limit} more jobs not shown")
    lines.append(
        f"max |relative residual| over {len(report.residuals)} jobs: "
        f"{report.max_abs_relative_residual * 100:.2f}%"
    )
    return "\n".join(lines)


def render_profile(report: AnalysisReport) -> str:
    """The real-resource profiling section (``--profile-tasks`` runs)."""
    if not report.profile:
        return "(no profiled tasks recorded; run with --profile-tasks)"
    lines = []
    for stats in report.profile:
        lines.append(
            f"{stats.phase:<6} wall {_fmt_stats(stats.wall)}\n"
            f"       cpu  {_fmt_stats(stats.cpu)}\n"
            f"       mem  peak={_fmt_bytes(stats.max_peak_memory_bytes)}"
            f"  mean={_fmt_bytes(int(stats.mean_peak_memory_bytes))}"
        )
    if report.memory_audit:
        lines.append("")
        lines.append("measured reducer memory vs Figure-2 64B/point model:")
        for entry in report.memory_audit:
            ratio = entry.ratio
            ratio_text = f"x{ratio:.1f}" if ratio is not None else "n/a"
            lines.append(
                f"  {entry.job} (attempt {entry.attempt}): "
                f"model {_fmt_bytes(entry.modeled_heap_bytes)}"
                f"  measured {_fmt_bytes(entry.measured_peak_bytes)}"
                f"  ({ratio_text})"
            )
    return "\n".join(lines)


def render_node_health(report: AnalysisReport, limit: int = 30) -> str:
    """The node failure-domain section (node-fault journals only)."""
    if not report.node_health:
        return "(no node lifecycle events recorded)"
    lines = []
    for entry in report.node_health:
        flags = f"  deaths={entry.deaths} recoveries={entry.recoveries}"
        if entry.blocks_lost:
            flags += f" blocks_lost={entry.blocks_lost}"
        if entry.blacklisted:
            flags += " blacklisted"
        lines.append(f"  node {entry.node_id}: {entry.final_status}{flags}")
    lines.append("")
    lines.append("capacity timeline (nodes / map slots / reduce slots):")
    shown = report.capacity_timeline[:limit]
    for point in shown:
        lines.append(
            f"  seq {point.seq:>6} {point.event:<16} node {point.node_id}"
            f" -> {point.schedulable_nodes} nodes,"
            f" {point.total_map_slots} map, {point.total_reduce_slots} reduce"
        )
    if len(report.capacity_timeline) > limit:
        lines.append(
            f"  ... {len(report.capacity_timeline) - limit} more steps"
            " not shown"
        )
    return "\n".join(lines)


def render_analysis(report: AnalysisReport) -> str:
    """The full ``repro analyze`` text report."""
    sections = [
        "== task skew / stragglers " + "=" * 38,
        render_skew(report),
        "",
        "== heap-model audit (Figure 2) " + "=" * 33,
        render_heap_audit(report),
        "",
        "== cost-model residuals " + "=" * 40,
        render_residuals(report),
    ]
    if report.critical is not None:
        sections += [
            "",
            "== critical path " + "=" * 47,
            render_critical(report.critical),
        ]
    if report.node_health:
        sections += [
            "",
            "== node failure domains " + "=" * 40,
            render_node_health(report),
        ]
    if report.profile:
        sections += [
            "",
            "== real-resource profiling " + "=" * 37,
            render_profile(report),
        ]
    if report.anomalies:
        # Lazy import: anomaly imports DurationStats from this module.
        from repro.observability.anomaly import render_anomalies

        sections += [
            "",
            "== in-flight anomalies " + "=" * 41,
            render_anomalies(report.anomalies),
        ]
    return "\n".join(sections)
