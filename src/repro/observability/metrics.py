"""Counter snapshots at span boundaries, and Prometheus text export.

The runtime's :class:`~repro.mapreduce.counters.Counters` accumulate
monotonically over a whole chained run; what the paper's tables need
is the *per-iteration* and *per-job* breakdown. A
:class:`MetricsRegistry` wraps a live ``Counters`` object and marks
span boundaries, handing out the delta accumulated since the previous
mark (``Counters.diff``, which respects ``_MAX`` high-water
semantics). :func:`render_prometheus` turns any counter set — a span
delta or a run total — into the Prometheus text exposition format, so
a recorded journal can feed a real metrics pipeline.
"""

from __future__ import annotations

from repro.mapreduce.counters import Counters


class MetricsRegistry:
    """Boundary snapshots over one live :class:`Counters` object.

    ::

        registry = MetricsRegistry(driver.totals.counters)
        ... run one iteration ...
        delta = registry.mark()   # Counters accumulated this iteration
    """

    def __init__(self, counters: Counters):
        self.counters = counters
        self._mark = counters.copy()

    def delta(self) -> Counters:
        """Counters accumulated since the last mark (does not advance)."""
        return self.counters.diff(self._mark)

    def mark(self) -> Counters:
        """Delta since the previous mark, advancing the boundary."""
        delta = self.counters.diff(self._mark)
        self._mark = self.counters.copy()
        return delta


def metric_name(group: str, name: str, prefix: str = "repro") -> str:
    """Prometheus-legal metric name for counter ``(group, name)``."""
    return f"{prefix}_{group}_{name}".lower()


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside ``label="value"``.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: "dict[str, str] | None") -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def render_prometheus(
    counters: Counters,
    extra: "dict[str, float] | None" = None,
    prefix: str = "repro",
    labels: "dict[str, str] | None" = None,
) -> str:
    """Prometheus text exposition of ``counters`` (plus ``extra`` gauges).

    ``_MAX`` counters are high-water marks and export as gauges;
    everything else is a monotone counter. ``extra`` adds run-level
    gauges such as ``simulated_seconds`` that live outside the counter
    map, and ``labels`` attaches a constant label set to every sample
    (values escaped per the exposition format). Each metric gets one
    ``# HELP`` and one ``# TYPE`` line. Output is sorted, so equal
    counter sets render identically.

    Names can collide: metric names are lowercased (the exposition
    format convention), so the counter ``(live, k)`` and the extra
    gauge ``live_k`` would both render as ``{prefix}_live_k`` — and so
    would two extras differing only by case (``live_K`` vs ``live_k``,
    e.g. gauge names derived from journal event attrs) or two counters
    differing only by case (``(live, K)`` vs ``(live, k)``).
    Deduplication is therefore *case-insensitive over the final metric
    name*, applied to counters and extras alike: counters are emitted
    first in sorted-key order, then extras in sorted-key order, and
    every later colliding name is deterministically renamed with as
    many ``_extra`` suffixes as it takes to be unique, rather than
    silently double-registering one metric under two types or two
    samples (which Prometheus scrapers reject as a format error).
    """
    label_text = _render_labels(labels)
    lines: list[str] = []
    seen_metrics: set[str] = set()
    for (group, name), value in sorted(counters.snapshot().items()):
        metric = metric_name(group, name, prefix)
        while metric in seen_metrics:
            metric = f"{metric}_extra"
        seen_metrics.add(metric)
        kind = "gauge" if name.endswith("_MAX") else "counter"
        what = "high-water mark" if kind == "gauge" else "monotone counter"
        lines.append(f"# HELP {metric} {group}:{name} {what} from the run journal")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric}{label_text} {value}")
    for name, value in sorted((extra or {}).items()):
        metric = f"{prefix}_{name}".lower()
        while metric in seen_metrics:
            metric = f"{metric}_extra"
        seen_metrics.add(metric)
        lines.append(f"# HELP {metric} run-level gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_text} {value}")
    return "\n".join(lines)
