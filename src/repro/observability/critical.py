"""Critical-path extraction over a replayed run journal.

The driver executes jobs serially (each job's input is the previous
job's output), so the dependency chain that bounds a recorded run's
simulated makespan is the serial sequence of *clock-charged* work:
every restored checkpoint baseline, then every successful job attempt
— failed attempts are off the clock (only their retry backoff rides
the winning attempt's ``overhead_seconds``). Inside each job the bound
is ``startup → map critical chain → shuffle → reduce critical chain →
fault-recovery overhead``, where a phase's critical chain is the
longest slot of the LPT schedule rebuilt from the recorded per-task
durations (:func:`repro.mapreduce.costmodel.critical_chain`).

Exact-reconciliation guarantee
------------------------------

:attr:`CriticalPath.total_seconds` is computed with the *same float
summation order* as
:meth:`repro.observability.replay.RunReplay.total_simulated_seconds`
(left-fold over restores, then left-fold over successful jobs), and
the per-segment ``start``/``end`` placements are the intermediate
partial sums of that very fold — so the critical-path length equals
the journalled simulated makespan bit for bit, and every second of
makespan is attributed to a named segment. The *blame* breakdown is a
derived decomposition of each segment (categories below) whose sum
matches the total up to float association; any unexplained overhead
lands in the explicit ``recovery`` remainder instead of being silently
absorbed.

Blame categories::

    checkpointing   simulated seconds inherited from restored baselines
    startup         per-job framework startup
    compute         balanced phase work: sum(task seconds) / slots
    stragglers      phase makespan above the balanced bound
    shuffle         cross-fabric data movement
    retries         exponential backoff charged by job_retry events
    heartbeat       node-loss detection timeouts under the winning attempt
    recovery        remaining overhead: re-replication writes, replica
                    failover re-reads, and any unexplained remainder
                    (clamped at zero)
    residual        accounting anomaly, <= 0: when journalled backoff +
                    heartbeat seconds exceed ``overhead_seconds`` the
                    negative residue lands here (and is rendered as a
                    warning) instead of producing a negative recovery
                    bucket, keeping the blame sum equal to the total

Everything here derives from canonical (``wall``-free) journal fields
only, so critical paths are byte-identical across executor backends
and data planes for the same seeded run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.mapreduce.costmodel import lpt_schedule
from repro.observability.replay import EventRecord, RunReplay, SpanNode

#: Categories of :attr:`CriticalPath.blame`, in rendering order.
BLAME_CATEGORIES = (
    "checkpointing",
    "startup",
    "compute",
    "stragglers",
    "shuffle",
    "retries",
    "heartbeat",
    "recovery",
    "residual",
)


@dataclass(frozen=True)
class TaskSlack:
    """One task's placement and slack inside its phase's LPT schedule.

    ``slack`` is how much longer the task's slot could have run without
    extending the phase (``phase makespan − slot completion``); tasks
    on the critical chain have slack 0.
    """

    index: int
    slot: int
    start: float
    end: float
    slack: float
    critical: bool


@dataclass(frozen=True)
class PhaseOnPath:
    """One map/reduce phase of an on-path job."""

    phase: str
    seconds: float
    #: Balanced lower bound: sum of task seconds / slots.
    ideal_seconds: float
    straggler_seconds: float
    slots: int
    #: Task indices on the longest LPT slot, in start order — the
    #: phase's critical chain (durations sum to the LPT makespan).
    chain: "list[int]"
    chain_seconds: float
    tasks: "list[TaskSlack]" = field(default_factory=list)


@dataclass(frozen=True)
class JobOnPath:
    """One successful job attempt on the critical path."""

    job: str
    attempt: int
    span: int
    start: float
    end: float
    sim_seconds: float
    overhead_seconds: float
    retries: int
    blame: "dict[str, float]"
    phases: "list[PhaseOnPath]" = field(default_factory=list)


@dataclass(frozen=True)
class RestoreOnPath:
    """One restored checkpoint baseline at the head of the path."""

    name: str
    iteration: "int | None"
    jobs: int
    start: float
    end: float
    seconds: float


@dataclass(frozen=True)
class OffPathAttempt:
    """A failed/abandoned job attempt: infinite slack, zero clock time."""

    job: str
    attempt: int
    span: int
    status: str


@dataclass
class CriticalPath:
    """The longest dependency chain bounding a run's simulated makespan."""

    #: Sum of segment durations in the journal's own accounting order.
    total_seconds: float
    #: ``RunReplay.total_simulated_seconds()`` — must equal
    #: ``total_seconds`` exactly (bitwise), see the module docstring.
    journal_seconds: float
    restores: "list[RestoreOnPath]" = field(default_factory=list)
    jobs: "list[JobOnPath]" = field(default_factory=list)
    off_path: "list[OffPathAttempt]" = field(default_factory=list)
    blame: "dict[str, float]" = field(default_factory=dict)

    @property
    def reconciled(self) -> bool:
        """True iff critical-path length == journalled makespan, exactly."""
        return self.total_seconds == self.journal_seconds

    @property
    def blame_seconds(self) -> float:
        return sum(self.blame.values())

    def as_dict(self) -> dict:
        """JSON-ready, canonical form (no wall-clock fields anywhere)."""
        return {
            "total_seconds": self.total_seconds,
            "journal_seconds": self.journal_seconds,
            "reconciled": self.reconciled,
            "blame": dict(self.blame),
            "restores": [asdict(restore) for restore in self.restores],
            "jobs": [asdict(job) for job in self.jobs],
            "off_path": [asdict(attempt) for attempt in self.off_path],
        }


def _phase_on_path(phase: SpanNode, timing: dict) -> "PhaseOnPath | None":
    seconds = float(timing.get(f"{phase.name}_seconds") or 0.0)
    sims = [task.sim_seconds for task in phase.tasks]
    if not sims:
        return None
    slots = int(phase.get("slots") or 1)
    placement = lpt_schedule(sims, slots)
    chain_end = max(end for _, _, _, end in placement)
    completion: dict[int, float] = {}
    for _, slot, _, end in placement:
        completion[slot] = max(completion.get(slot, 0.0), end)
    worst = min(completion, key=lambda slot: (-completion[slot], slot))
    chain = [index for index, slot, _, _ in placement if slot == worst]
    ideal = sum(sims) / slots
    tasks = [
        TaskSlack(
            index=index,
            slot=slot,
            start=start,
            end=end,
            slack=chain_end - completion[slot],
            critical=slot == worst,
        )
        for index, slot, start, end in placement
    ]
    return PhaseOnPath(
        phase=phase.name,
        seconds=seconds,
        ideal_seconds=ideal,
        straggler_seconds=max(0.0, seconds - min(seconds, ideal)),
        slots=slots,
        chain=chain,
        chain_seconds=chain_end,
        tasks=tasks,
    )


def _retry_backoff(job: SpanNode, retry_events: "list[EventRecord]") -> float:
    """Backoff seconds the winning attempt inherited from its failed
    predecessors: ``job_retry`` events are emitted between attempts
    (parent: the enclosing iteration span) and name the job."""
    parent_id = job.parent.id if job.parent is not None else None
    return sum(
        float(event.attrs.get("backoff_seconds") or 0.0)
        for event in retry_events
        if event.parent == parent_id and event.attrs.get("job") == job.name
    )


def _heartbeat_seconds(job: SpanNode) -> float:
    """Heartbeat-timeout overhead charged under this attempt's span."""
    return sum(
        float(event.attrs.get("heartbeat_timeout_seconds") or 0.0)
        for event in job.events
        if event.name == "node_lost"
    )


def _job_on_path(
    job: SpanNode,
    start: float,
    end: float,
    retry_events: "list[EventRecord]",
) -> JobOnPath:
    timing = job.get("timing") or {}
    sim = float(job.get("simulated_seconds") or 0.0)
    overhead = float(job.get("overhead_seconds") or 0.0)
    phases = []
    for child in job.children:
        if child.kind != "phase":
            continue
        placed = _phase_on_path(child, timing)
        if placed is not None:
            phases.append(placed)
    startup = float(timing.get("startup_seconds") or 0.0)
    shuffle = float(timing.get("shuffle_seconds") or 0.0)
    compute = sum(min(p.seconds, p.ideal_seconds) for p in phases)
    stragglers = sum(p.straggler_seconds for p in phases)
    retries = _retry_backoff(job, retry_events)
    heartbeat = _heartbeat_seconds(job)
    recovery = overhead - retries - heartbeat
    blame = {
        "startup": startup,
        "compute": compute,
        "stragglers": stragglers,
        "shuffle": shuffle,
        "retries": retries,
        "heartbeat": heartbeat,
        # Whatever overhead the named causes don't explain stays
        # visible here instead of vanishing: re-replication writes,
        # replica-failover re-reads, and accounting residue. If the
        # journalled backoff/heartbeat exceed the overhead, recovery
        # clamps at zero and the negative residue stays visible under
        # ``residual`` so the decomposition still sums to the total.
        "recovery": max(0.0, recovery),
        "residual": min(0.0, recovery),
    }
    return JobOnPath(
        job=job.name,
        attempt=int(job.get("attempt") or 1),
        span=job.id,
        start=start,
        end=end,
        sim_seconds=sim,
        overhead_seconds=overhead,
        retries=int(job.get("retries") or 0),
        blame=blame,
        phases=phases,
    )


def critical_path(replay: RunReplay) -> CriticalPath:
    """Extract the critical path (and blame breakdown) of a replay.

    Works on complete and interrupted journals alike: only
    clock-charged segments (restored baselines + successful attempts)
    appear on the path; everything else is listed under ``off_path``.
    """
    restores: list[RestoreOnPath] = []
    restore_sum = 0.0
    for event in replay.restored_baselines():
        seconds = float(event.attrs.get("simulated_seconds") or 0.0)
        start = restore_sum
        restore_sum = restore_sum + seconds
        restores.append(
            RestoreOnPath(
                name=str(event.attrs.get("name") or "checkpoint"),
                iteration=event.attrs.get("iteration"),
                jobs=int(event.attrs.get("jobs") or 0),
                start=start,
                end=restore_sum,
                seconds=seconds,
            )
        )
    retry_events = replay.events_named("job_retry")
    jobs: list[JobOnPath] = []
    job_sum = 0.0
    for job in replay.successful_jobs():
        seconds = float(job.get("simulated_seconds") or 0.0)
        start = restore_sum + job_sum
        job_sum = job_sum + seconds
        jobs.append(
            _job_on_path(job, start, restore_sum + job_sum, retry_events)
        )
    off_path = [
        OffPathAttempt(
            job=attempt.name,
            attempt=int(attempt.get("attempt") or 1),
            span=attempt.id,
            status=str(attempt.get("status") or "incomplete"),
        )
        for attempt in replay.jobs()
        if attempt.get("status") != "ok"
    ]
    blame = {category: 0.0 for category in BLAME_CATEGORIES}
    blame["checkpointing"] = restore_sum
    for job in jobs:
        for category, seconds in job.blame.items():
            blame[category] += seconds
    # The exact-reconciliation identity: same left-folds, same order,
    # same final addition as RunReplay.total_simulated_seconds(),
    # which goes through replay.left_fold_seconds — NOT builtin sum(),
    # whose compensated summation on CPython 3.12+ diverges bitwise.
    total_seconds = restore_sum + job_sum
    return CriticalPath(
        total_seconds=total_seconds,
        journal_seconds=replay.total_simulated_seconds(),
        restores=restores,
        jobs=jobs,
        off_path=off_path,
        blame=blame,
    )


def makespan_of_chain(chain: "list[int]", sims: "list[float]") -> float:
    """Duration of a task chain (sanity helper for tests/tools)."""
    return sum(sims[index] for index in chain)


# -- rendering -----------------------------------------------------------


def render_critical(path: CriticalPath, limit: int = 10) -> str:
    """The critical-path section of ``repro analyze``."""
    verdict = (
        "reconciled exactly"
        if path.reconciled
        else "NOT RECONCILED (journal accounting mismatch)"
    )
    lines = [
        f"critical path: {path.total_seconds:.6f}s over {len(path.jobs)} "
        f"jobs + {len(path.restores)} restored baselines "
        f"== journalled makespan {path.journal_seconds:.6f}s -- {verdict}",
    ]
    total = path.total_seconds or 1.0
    blame_bits = []
    for category in BLAME_CATEGORIES:
        seconds = path.blame.get(category, 0.0)
        if seconds:
            blame_bits.append(
                f"{category} {seconds:.2f}s ({seconds / total * 100:.1f}%)"
            )
    lines.append("blame: " + ("  ".join(blame_bits) or "(empty run)"))
    residual = path.blame.get("residual", 0.0)
    if residual < 0:
        lines.append(
            f"warning: accounting residual {residual:.2f}s -- journalled "
            "retry backoff + heartbeat timeouts exceed overhead_seconds"
        )
    ranked = sorted(path.jobs, key=lambda job: -job.sim_seconds)
    if ranked:
        lines.append("")
        lines.append(f"longest path segments (top {min(limit, len(ranked))}):")
    for job in ranked[:limit]:
        bits = [
            f"  [{job.start:9.2f}s -> {job.end:9.2f}s] {job.job} "
            f"(attempt {job.attempt}) {job.sim_seconds:.2f}s"
        ]
        for phase in job.phases:
            critical_tasks = len(phase.chain)
            bits.append(
                f"{phase.phase} chain {critical_tasks} tasks"
                f" {phase.chain_seconds:.2f}s"
                f" (+{phase.straggler_seconds:.2f}s straggler)"
            )
        if job.overhead_seconds:
            bits.append(f"overhead {job.overhead_seconds:.2f}s")
        lines.append("  ".join(bits))
    if len(ranked) > limit:
        lines.append(f"  ... {len(ranked) - limit} more segments not shown")
    if path.off_path:
        lines.append(
            f"off-path: {len(path.off_path)} failed/abandoned attempts "
            "(0 clock seconds; their backoff rides the winning attempt)"
        )
    return "\n".join(lines)
