"""Render a replayed journal for terminal consumption.

Four views, matching what the paper's evaluation section reasons
about: the run timeline (where the chain spent its simulated time,
with every retry, fault and checkpoint inline), the per-iteration
counter table (the per-round breakdown Tables 1–4 are built from),
per-job Gantt charts (reusing :mod:`repro.mapreduce.trace` over the
recorded task times), and a Prometheus text dump of the run totals.
"""

from __future__ import annotations

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    MRCounter,
    USER_GROUP,
    UserCounter,
)
from repro.mapreduce.trace import build_schedule, render_gantt
from repro.observability.metrics import render_prometheus
from repro.observability.replay import RunReplay, SpanNode


def _fmt_seconds(value) -> str:
    return f"{float(value):.2f}s" if value is not None else "?"


def _job_line(job: SpanNode) -> str:
    status = job.get("status", "incomplete")
    parts = [f"job {job.name!r} attempt {job.get('attempt', '?')}: {status}"]
    if status == "ok":
        parts.append(_fmt_seconds(job.get("simulated_seconds")))
        timing = job.get("timing") or {}
        if timing:
            parts.append(
                "(map {map}, shuffle {shuffle}, reduce {reduce})".format(
                    map=_fmt_seconds(timing.get("map_seconds")),
                    shuffle=_fmt_seconds(timing.get("shuffle_seconds")),
                    reduce=_fmt_seconds(timing.get("reduce_seconds")),
                )
            )
        retries = job.get("retries", 0)
        if retries:
            parts.append(f"[survived {retries} retries]")
    elif job.get("error"):
        parts.append(f"({job.get('error')})")
    return " ".join(parts)


def render_timeline(replay: RunReplay) -> str:
    """Indented run → iteration → job timeline with inline events."""
    lines: list[str] = []

    def emit(node: SpanNode, depth: int) -> None:
        pad = "  " * depth
        if node.kind == "job":
            lines.append(pad + _job_line(node))
        elif node.kind == "phase":
            return  # phases are summarised on the job line
        else:
            label = f"{node.kind} {node.name!r}"
            seconds = node.get("simulated_seconds")
            if seconds is not None:
                label += f": {_fmt_seconds(seconds)}"
            if node.get("degraded"):
                label += " [degraded]"
            if not node.complete:
                label += " [interrupted]"
            lines.append(pad + label)
        for event in node.events:
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(event.attrs.items())
                if key != "counters"
            )
            lines.append(f"{pad}  ! {event.name} {detail}".rstrip())
        for child in node.children:
            emit(child, depth + 1)

    for root in replay.roots:
        emit(root, 0)
    orphans = [event for event in replay.events if event.parent is None]
    for event in orphans:
        lines.append(f"! {event.name}")
    return "\n".join(lines) if lines else "(empty journal)"


#: Columns of the per-iteration counter table: header, (group, name).
_ITERATION_COUNTERS = (
    ("reads", (FRAMEWORK_GROUP, MRCounter.DATASET_READS)),
    ("cached", (FRAMEWORK_GROUP, MRCounter.CACHED_READS)),
    ("shuffle_B", (FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)),
    ("ad_tests", (USER_GROUP, UserCounter.AD_TESTS)),
    ("dist_comp", (USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS)),
    ("retries", (FRAMEWORK_GROUP, MRCounter.JOB_RETRIES)),
    ("task_fail", (FRAMEWORK_GROUP, "TASK_FAILURES")),
    ("repl_reads", (FRAMEWORK_GROUP, MRCounter.REPLICA_READS)),
    ("blocks_lost", (FRAMEWORK_GROUP, MRCounter.BLOCKS_LOST)),
)


def render_iteration_table(replay: RunReplay) -> str:
    """One row per iteration: k trajectory, time, counter deltas."""
    iterations = replay.iterations()
    if not iterations:
        return "(no iterations recorded)"
    headers = ["iter", "k", "jobs", "seconds"] + [
        header for header, _key in _ITERATION_COUNTERS
    ] + ["degraded"]
    rows = []
    for span in iterations:
        counters = span.counters()
        k_before, k_after = span.get("k_before"), span.get("k_after")
        k_cell = f"{k_before}->{k_after}" if k_before is not None else "-"
        row = [
            str(span.get("iteration", span.name)),
            k_cell,
            str(len([j for j in span.find("job") if j.get("status") == "ok"])),
            f"{float(span.get('simulated_seconds') or 0.0):.2f}",
        ]
        for _header, (group, name) in _ITERATION_COUNTERS:
            row.append(str(counters.get(group, name)))
        row.append("yes" if span.get("degraded") else "")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    return "\n".join([fmt(headers)] + [fmt(row) for row in rows])


def render_job_gantts(replay: RunReplay, width: int = 64) -> str:
    """Per-job Gantt charts rebuilt from the recorded task times."""
    sections = []
    for job in replay.jobs():
        parts = [_job_line(job)]
        for phase in job.children:
            if phase.kind != "phase" or not phase.tasks:
                continue
            seconds = [0.0] * len(phase.tasks)
            for task in phase.tasks:
                seconds[task.index] = task.sim_seconds
            slots = int(phase.get("slots") or 1)
            parts.append(
                render_gantt(
                    build_schedule(seconds, slots),
                    width=width,
                    title=f"{phase.name} phase "
                    f"({len(seconds)} tasks over {slots} slots)",
                )
            )
        sections.append("\n".join(parts))
    return "\n\n".join(sections) if sections else "(no jobs recorded)"


def render_metrics(replay: RunReplay) -> str:
    """Prometheus text dump of the journal's accounted run totals."""
    extra = {
        "simulated_seconds_total": replay.total_simulated_seconds(),
        "jobs_total": float(len(replay.successful_jobs())),
        "job_attempts_total": float(len(replay.jobs())),
    }
    return render_prometheus(replay.total_counters(), extra=extra)


def progress_bar(done: int, total: int, width: int = 32) -> str:
    """A fixed-width text progress bar: ``[#####....] 5/9``.

    Tolerates ``total == 0`` (renders an empty bar) and ``done`` past
    ``total`` (clamps), since live phase ticks can race the span end.
    """
    total = max(0, int(total))
    done = max(0, min(int(done), total))
    filled = int(round(width * (done / total))) if total else 0
    return f"[{'#' * filled}{'.' * (width - filled)}] {done}/{total}"


#: Counters shown in the live rolling table: label, (group, name).
_LIVE_COUNTERS = (
    ("reads", (FRAMEWORK_GROUP, MRCounter.DATASET_READS)),
    ("cached", (FRAMEWORK_GROUP, MRCounter.CACHED_READS)),
    ("shuffle_B", (FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)),
    ("ad_tests", (USER_GROUP, UserCounter.AD_TESTS)),
    ("retries", (FRAMEWORK_GROUP, MRCounter.JOB_RETRIES)),
)


def render_live_line(snapshot: dict) -> str:
    """One-line live status (the non-TTY / log-friendly form)."""
    k_traj = snapshot.get("k_trajectory") or []
    trajectory = "->".join(str(k) for k in k_traj[-6:]) or str(snapshot.get("k") or "?")
    parts = [
        f"[live] {snapshot.get('run') or 'run'}",
        f"status={snapshot.get('run_status')}",
        f"iter={snapshot.get('iterations_done')}",
        f"k={trajectory}",
        f"jobs={snapshot.get('jobs_ok')}",
        f"sim={float(snapshot.get('simulated_seconds') or 0.0):.2f}s",
    ]
    retries = snapshot.get("job_retries")
    if retries:
        parts.append(f"retries={retries}")
    eta = float(snapshot.get("eta_simulated_seconds") or 0.0)
    if eta:
        parts.append(f"~eta={eta:.2f}s")
    breaches = snapshot.get("slo_breaches") or []
    if breaches:
        parts.append(f"slo_breaches={len(breaches)}")
    anomalies = snapshot.get("anomalies") or []
    if anomalies:
        parts.append(f"anomalies={len(anomalies)}")
    return " ".join(parts)


def render_live_status(snapshot: dict, width: int = 32) -> str:
    """The multi-line ``--live`` TTY status block.

    Progress bars for the iteration's job/phase position plus a rolling
    counter table, built from the :class:`LiveRunState` snapshot dict
    (same shape the ``/state`` endpoint serves).
    """
    lines = [render_live_line(snapshot)]
    phase = snapshot.get("phase")
    if phase and snapshot.get("run_status") in (None, "pending", "running"):
        job = snapshot.get("job") or "?"
        attempt = snapshot.get("job_attempt")
        attempt_note = f" attempt {attempt}" if attempt and attempt > 1 else ""
        bar = progress_bar(
            snapshot.get("phase_tasks_done") or 0,
            snapshot.get("phase_tasks_total") or 0,
            width=width,
        )
        lines.append(f"  iter {snapshot.get('iteration')} · {job}{attempt_note} · {phase} {bar}")
    counters = snapshot.get("counters") or {}
    cells = []
    for label, (group, name) in _LIVE_COUNTERS:
        value = counters.get(group, {}).get(name, 0)
        cells.append(f"{label}={value}")
    lines.append("  " + "  ".join(cells))
    heap = float(snapshot.get("max_heap_fraction") or 0.0)
    tail = [f"heap_peak={heap:.0%}"]
    events = snapshot.get("events") or {}
    for name in ("task_failure", "replica_read", "checkpoint_write"):
        if events.get(name):
            tail.append(f"{name}={events[name]}")
    for breach in snapshot.get("slo_breaches") or []:
        tail.append(
            f"SLO:{breach.get('rule')}>{breach.get('limit')}({breach.get('action')})"
        )
    for kind, count in sorted((snapshot.get("anomaly_counts") or {}).items()):
        tail.append(f"ANOMALY:{kind}x{count}")
    lines.append("  " + "  ".join(tail))
    return "\n".join(lines)


def render_trace(
    replay: RunReplay,
    gantt: bool = False,
    metrics: bool = False,
    width: int = 64,
) -> str:
    """The full ``repro trace`` report (timeline + table + options)."""
    sections = [
        "== run timeline " + "=" * 48,
        render_timeline(replay),
        "",
        "== per-iteration counters " + "=" * 38,
        render_iteration_table(replay),
    ]
    if gantt:
        sections += ["", "== job gantts " + "=" * 50, render_job_gantts(replay, width)]
    if metrics:
        sections += ["", "== metrics " + "=" * 53, render_metrics(replay)]
    return "\n".join(sections)
